// Ablation: how the Section-3 construction responds to its two main design
// knobs — the fragment materialization cap (exhaustive vs sampled C(M, r))
// and the fragment size k. Reports the quantities docs/ARCHITECTURE.md calls out:
// exact counts, instance sizes, verifier acceptance, and the cost of the
// pivot's Lemma-2 check.
#include <chrono>
#include <iostream>

#include "core/locald.h"

using namespace locald;

int main() {
  std::cout << "=== Ablation: fragment policy and fragment size ===\n\n";
  const tm::TuringMachine m = tm::halt_after(2, 0);

  std::cout << "--- materialization cap (k = 3) ---\n";
  TextTable caps({"cap", "|C| exact", "|C| used", "exhaustive", "|G|",
                  "verify", "verify time(s)"});
  for (std::size_t cap : {50ul, 200ul, 1000ul, 5000ul}) {
    tm::FragmentPolicy policy;
    policy.max_fragments = cap;
    policy.seed = 5;
    halting::GmrParams params{m, 1, 3, policy, false, 4096};
    const auto inst = halting::build_gmr(params);
    const auto verifier = halting::make_gmr_verifier(3, policy, false, 4096);
    const auto t0 = std::chrono::steady_clock::now();
    const bool ok = local::run_oblivious(*verifier, inst.graph).accepted;
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    caps.add_row({cat(cap), cat(inst.exact_fragment_count),
                  cat(inst.fragment_count),
                  inst.fragments_exhaustive ? "yes" : "no",
                  cat(inst.graph.node_count()), ok ? "accept" : "REJECT",
                  fixed(secs, 2)});
  }
  std::cout << caps.render() << "\n";
  std::cout << "builder and verifier share the policy, so capped and "
               "exhaustive collections both verify; the cap trades instance "
               "size against fidelity to the paper's full C(M, r).\n\n";

  std::cout << "--- fragment size k ---\n";
  TextTable sizes({"k", "|C| exact", "row space C^k", "count time(s)"});
  for (int k : {3, 4}) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto exact = tm::count_fragments(m, k);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    double space = 1;
    for (int i = 0; i < k; ++i) space *= m.cell_code_count();
    sizes.add_row({cat(k), cat(exact), cat(static_cast<long long>(space)),
                   fixed(secs, 3)});
  }
  std::cout << sizes.render() << "\n";
  std::cout << "the count grows like |codes|^Theta(k^2): the explosion that "
               "forces the cap at larger parameters.\n\n";

  std::cout << "--- diagonalization vs candidate budget ---\n";
  tm::FragmentPolicy policy;
  policy.max_fragments = 150;
  TextTable diag({"candidate budget b", "fooling machine", "R accepts",
                  "misclassified"});
  for (long long b : {1, 2, 4}) {
    const auto candidate =
        halting::candidate_bounded_simulation(3, policy, false, 4096, b);
    const tm::TuringMachine fool = tm::halt_after(static_cast<int>(b) + 1, 1);
    halting::GmrParams params{fool, 1, 3, policy, false, 4096};
    const bool accepts = halting::separation_accepts(*candidate, params);
    diag.add_row({cat(b), fool.name(), accepts ? "yes" : "no",
                  accepts ? "yes (fooled)" : "no"});
  }
  std::cout << diag.render();
  std::cout << "\nevery budget has a fooling machine one step beyond it — "
               "the constructive face of Lemma 1.\n";
  return 0;
}
