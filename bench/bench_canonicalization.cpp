// Measures the two-tier canonicalization engine against the pre-PR kernel.
//
// The baseline below is a faithful copy of the original
// graph/isomorphism.cpp search: per-round std::map colour refinement,
// individualization over the FIRST non-singleton class, no automorphism
// discovery, no orbit pruning, no bulk census. It is kept here — in the
// bench only — so the speedup on canonicalization-bound cells is measured
// against the real predecessor rather than asserted. The acceptance gate
// for the engine PR is >= 3x on a canonicalization-bound cell; symmetric
// cells (stars, hypercube balls) improve by orders of magnitude because
// the baseline search is factorial in interchangeable-leaf count.
#include <chrono>
#include <functional>
#include <iostream>
#include <map>
#include <unordered_set>

#include "core/locald.h"

using namespace locald;

namespace legacy {

using graph::CsrGraph;
using graph::NodeId;
using Coloring = std::vector<int>;

void refine(const CsrGraph& g, Coloring& color) {
  const std::size_t n = color.size();
  if (n == 0) return;
  for (;;) {
    using Key = std::pair<int, std::vector<int>>;
    std::vector<Key> keys(n);
    for (std::size_t v = 0; v < n; ++v) {
      std::vector<int> around;
      around.reserve(g.neighbors(static_cast<NodeId>(v)).size());
      for (NodeId w : g.neighbors(static_cast<NodeId>(v))) {
        around.push_back(color[static_cast<std::size_t>(w)]);
      }
      std::sort(around.begin(), around.end());
      keys[v] = {color[v], std::move(around)};
    }
    std::map<Key, int> rank;
    for (const Key& k : keys) rank.emplace(k, 0);
    int next = 0;
    for (auto& [k, r] : rank) r = next++;
    bool changed = false;
    for (std::size_t v = 0; v < n; ++v) {
      const int c = rank[keys[v]];
      if (c != color[v]) changed = true;
      color[v] = c;
    }
    if (!changed) return;
  }
}

std::vector<NodeId> first_non_singleton_class(const Coloring& color) {
  std::map<int, std::vector<NodeId>> classes;
  for (std::size_t v = 0; v < color.size(); ++v) {
    classes[color[v]].push_back(static_cast<NodeId>(v));
  }
  for (const auto& [c, members] : classes) {
    if (members.size() > 1) return members;
  }
  return {};
}

std::string encode_discrete(const CsrGraph& g,
                            const std::vector<std::string>& payloads,
                            const Coloring& color) {
  const std::size_t n = color.size();
  std::vector<NodeId> order(n);
  for (std::size_t v = 0; v < n; ++v) {
    order[static_cast<std::size_t>(color[v])] = static_cast<NodeId>(v);
  }
  std::vector<int> position(n);
  for (std::size_t i = 0; i < n; ++i) {
    position[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  std::string enc = "n=" + std::to_string(n) + ";";
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId v = order[i];
    const std::string& p = payloads[static_cast<std::size_t>(v)];
    enc += "L" + std::to_string(p.size()) + ":" + p + "|A";
    std::vector<int> around;
    for (NodeId w : g.neighbors(v)) {
      const int pw = position[static_cast<std::size_t>(w)];
      if (pw < static_cast<int>(i)) around.push_back(pw);
    }
    std::sort(around.begin(), around.end());
    for (int a : around) enc += std::to_string(a) + ",";
    enc += ";";
  }
  return enc;
}

struct SearchState {
  const CsrGraph* g = nullptr;
  const std::vector<std::string>* payloads = nullptr;
  std::string best;
  bool has_best = false;
};

void search(SearchState& st, Coloring color) {
  refine(*st.g, color);
  const std::vector<NodeId> cell = first_non_singleton_class(color);
  if (cell.empty()) {
    std::string enc = encode_discrete(*st.g, *st.payloads, color);
    if (!st.has_best || enc < st.best) {
      st.best = std::move(enc);
      st.has_best = true;
    }
    return;
  }
  for (NodeId v : cell) {
    Coloring child = color;
    for (int& c : child) c *= 2;
    child[static_cast<std::size_t>(v)] -= 1;
    search(st, std::move(child));
  }
}

std::string canonical_encoding(const CsrGraph& g,
                               const std::vector<std::string>& payloads) {
  std::map<std::string, int> payload_rank;
  for (const auto& p : payloads) payload_rank.emplace(p, 0);
  int next = 0;
  for (auto& [p, r] : payload_rank) r = next++;
  Coloring color(payloads.size());
  for (std::size_t v = 0; v < payloads.size(); ++v) {
    color[v] = payload_rank[payloads[v]];
  }
  SearchState st;
  st.g = &g;
  st.payloads = &payloads;
  search(st, std::move(color));
  return g.node_count() == 0 ? "n=0;" : st.best;
}

// The pre-PR census: one independent canonical_form per ball, no dedup.
std::size_t census_classes(const CsrGraph& host, int radius) {
  std::unordered_set<std::string> classes;
  for (NodeId v = 0; v < host.node_count(); ++v) {
    const auto members = graph::nodes_within(host, v, radius);
    auto sub = graph::induced_subgraph(host, members);
    std::vector<std::string> payloads;
    for (std::size_t i = 0; i < sub.to_parent.size(); ++i) {
      payloads.emplace_back(
          static_cast<NodeId>(i) == sub.from_parent.at(v) ? "C" : "N");
    }
    classes.insert(canonical_encoding(sub.graph, payloads));
  }
  return classes.size();
}

}  // namespace legacy

namespace {

double wall_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// Median-of-5 to keep the tiny cells off timer noise.
double measured_ms(const std::function<void()>& fn) {
  std::vector<double> runs;
  for (int i = 0; i < 5; ++i) runs.push_back(wall_ms(fn));
  std::sort(runs.begin(), runs.end());
  return runs[2];
}

}  // namespace

int main() {
  std::cout << "=== canonicalization engine vs pre-PR kernel ===\n\n";
  bool gate_met = false;

  // Single-graph canonical_form, legacy-feasible shapes. star:8 is the
  // cliff edge the old workload pre-check banned (k >= 7 leaves => k!
  // legacy search leaves); Q4 and K_{6,6} branch via orbit discovery.
  TextTable single({"input", "legacy(ms)", "engine(ms)", "speedup"});
  struct Shape {
    std::string name;
    graph::CsrGraph g;
  };
  std::vector<Shape> shapes;
  shapes.push_back(
      {"random n=24 m=40", graph::make_random_connected(24, 17, 5)});
  shapes.push_back({"Q4 (16 nodes)", graph::make_hypercube(4)});
  shapes.push_back({"K_{6,6}", graph::make_complete_bipartite(6, 6)});
  shapes.push_back({"star k=8", graph::make_star(8)});
  for (const Shape& shape : shapes) {
    const std::vector<std::string> payloads(
        static_cast<std::size_t>(shape.g.node_count()));
    std::string legacy_enc;
    std::string engine_enc;
    const double legacy_ms = measured_ms(
        [&] { legacy_enc = legacy::canonical_encoding(shape.g, payloads); });
    const double engine_ms = measured_ms(
        [&] { engine_enc = graph::canonical_form(shape.g, payloads).encoding; });
    // Both kernels minimize over leaf encodings of the same refinement
    // family; equal bytes double as a correctness cross-check.
    const double speedup = legacy_ms / engine_ms;
    gate_met = gate_met || speedup >= 3.0;
    single.add_row({shape.name + (legacy_enc == engine_enc ? "" : " (DIVERGED)"),
                    fixed(legacy_ms, 3), fixed(engine_ms, 3),
                    fixed(speedup, 1)});
  }
  std::cout << "canonical_form, one graph at a time:\n"
            << single.render() << '\n';

  // Canonicalization-bound census cells (the `locald bench --canon` grid):
  // legacy = independent per-ball searches, engine = the bulk census with
  // raw dedup + orbit pruning. Q6 balls are stars with 6 interchangeable
  // leaves — 720 legacy leaves per ball, 64 balls.
  TextTable census({"cell", "balls", "legacy(ms)", "engine(ms)", "speedup",
                    "classes"});
  struct Cell {
    std::string name;
    graph::CsrGraph g;
  };
  std::vector<Cell> cells;
  cells.push_back({"hypercube:dims=6", graph::make_hypercube(6)});
  cells.push_back({"complete-bipartite 6x6", graph::make_complete_bipartite(6, 6)});
  cells.push_back({"cycle n=256", graph::make_cycle(256)});
  cells.push_back({"caterpillar 32x5", graph::make_caterpillar(32, 5)});
  for (const Cell& cell : cells) {
    std::size_t legacy_classes = 0;
    graph::BallCensusResult engine_out;
    const double legacy_ms =
        measured_ms([&] { legacy_classes = legacy::census_classes(cell.g, 1); });
    const double engine_ms = measured_ms([&] {
      engine_out = graph::canonical_census(
          cell.g,
          std::vector<std::string>(static_cast<std::size_t>(cell.g.node_count())),
          1);
    });
    const double speedup = legacy_ms / engine_ms;
    gate_met = gate_met || speedup >= 3.0;
    const bool agree =
        legacy_classes == static_cast<std::size_t>(engine_out.distinct);
    census.add_row({cell.name + (agree ? "" : " (DIVERGED)"),
                    cat(cell.g.node_count()), fixed(legacy_ms, 3),
                    fixed(engine_ms, 3), fixed(speedup, 1),
                    cat(engine_out.distinct)});
  }
  std::cout << "radius-1 ball census (the bench --canon cells):\n"
            << census.render() << '\n';

  std::cout << (gate_met
                    ? "gate: >= 3x on a canonicalization-bound cell: MET\n"
                    : "gate: >= 3x on a canonicalization-bound cell: NOT MET\n");
  return gate_met ? 0 : 1;
}
