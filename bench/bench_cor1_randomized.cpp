// Reproduces Corollary 1 / Section 3.3: the randomized Id-oblivious decider
// for P. Completeness is exact (p = 1); the measured rejection probability
// on no-instances is compared against the paper's failure bound
// (1 - 1/sqrt(n))^n -> 0.
#include <iostream>

#include "core/locald.h"

using namespace locald;

int main() {
  std::cout << "=== Corollary 1: randomness replaces identifiers ===\n\n";
  tm::FragmentPolicy policy;
  policy.max_fragments = 60;
  const auto decider =
      halting::make_randomized_gmr_decider(3, policy, false, 4096);
  const std::uint64_t seed = 31337;
  const int trials = 40;

  TextTable table({"instance", "n", "truth", "accepted/trials",
                   "paper failure bound"});
  // Yes-instance: perfect completeness.
  {
    halting::GmrParams params{tm::halt_after(2, 0), 1, 3, policy, false,
                              4096};
    const auto inst = halting::build_gmr(params).graph;
    const auto est = local::estimate_acceptance(*decider, inst, nullptr,
                                                trials, {{}, seed});
    table.add_row({cat("G(", params.machine.name(), ")"),
                   cat(inst.node_count()), "member",
                   cat(est.accepted, "/", est.trials), "-"});
  }
  // No-instances of growing size: rejection w.h.p.; the bound decays in n.
  for (int rounds : {1, 2, 3}) {
    halting::GmrParams params{tm::zigzag_halt(rounds, 1), 1, 3, policy,
                              false, 4096};
    const auto inst = halting::build_gmr(params).graph;
    const auto est = local::estimate_acceptance(
        *decider, inst, nullptr, trials,
        {{}, seed + static_cast<std::uint64_t>(rounds)});
    table.add_row(
        {cat("G(", params.machine.name(), ")"), cat(inst.node_count()),
         "non-member", cat(est.accepted, "/", est.trials),
         fixed(halting::corollary1_failure_bound(
                   static_cast<double>(inst.node_count())), 6)});
  }
  std::cout << table.render() << "\n";

  std::cout << "analytic curve (1 - 1/sqrt(n))^n:\n";
  TextTable curve({"n", "bound"});
  for (double n = 16; n <= 1 << 16; n *= 4) {
    curve.add_row({cat(static_cast<long long>(n)),
                   fixed(halting::corollary1_failure_bound(n), 8)});
  }
  std::cout << curve.render();
  std::cout << "\nmeasured acceptance of no-instances stays below the bound "
               "(expected: 0 accepts at these sizes) and the bound is o(1).\n";
  return 0;
}
