// Measures the batch-execution engine: strong scaling of the Corollary-1
// randomized decider over thread counts (identical accept counts at every
// width — the determinism contract), and the ball-fingerprint cache's
// effect on the Id-oblivious simulation A*.
#include <chrono>
#include <iostream>

#include "core/locald.h"
#include "exec/context.h"

using namespace locald;

namespace {

double wall_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  std::cout << "=== execution engine scaling ===\n\n";

  tm::FragmentPolicy policy;
  policy.max_fragments = 60;
  const auto decider =
      halting::make_randomized_gmr_decider(3, policy, false, 4096);
  halting::GmrParams params{tm::zigzag_halt(2, 1), 1, 3, policy, false, 4096};
  const auto inst = halting::build_gmr(params).graph;
  constexpr int kTrials = 400;
  constexpr std::uint64_t kSeed = 42;

  TextTable scaling({"threads", "wall(ms)", "speedup", "accepted/trials"});
  double serial_ms = 0.0;
  const int hw = exec::ThreadPool::hardware_parallelism();
  for (int threads = 1; threads <= hw; threads *= 2) {
    exec::ThreadPool pool(threads);
    exec::ExecContext ctx{&pool, nullptr};
    local::AcceptanceEstimate est;
    const double ms = wall_ms([&] {
      est = local::estimate_acceptance(*decider, inst, nullptr, kTrials,
                                       {ctx, kSeed});
    });
    if (threads == 1) serial_ms = ms;
    scaling.add_row({cat(threads), fixed(ms, 1), fixed(serial_ms / ms, 2),
                     cat(est.accepted, "/", est.trials)});
  }
  std::cout << "estimate_acceptance, n = " << inst.node_count()
            << " nodes x " << kTrials << " trials:\n"
            << scaling.render() << '\n';

  // Cache effect: A* over a cycle, where every stripped ball is isomorphic.
  auto reading = std::make_shared<local::LambdaAlgorithm>(
      "parity-with-ids", 1, false, [](const local::BallView& ball) {
        (void)ball.center_id();
        return ball.g.degree(ball.center) == 2 ? local::Verdict::yes
                                               : local::Verdict::no;
      });
  oblivious::SimulationOptions options;
  options.id_universe = 1 << 16;
  options.max_assignments = 2'000;
  const auto sim = oblivious::make_oblivious_simulation(reading, options);
  // A* opts out of memoization in general (sampled-mode verdicts can depend
  // on ball numbering), but this inner never reads its ids, so the composite
  // is genuinely a pure function of the canonical class. Wrapping it in a
  // LambdaAlgorithm — which is memoization-safe by default — is the idiom
  // for asserting that.
  const auto wrapped = local::make_oblivious(
      "A*-degree-check-classpure", 1,
      [&](const local::BallView& ball) { return sim->evaluate(ball); });
  const local::LabeledGraph cycle =
      local::LabeledGraph::uniform(graph::make_cycle(64), local::Label{});

  TextTable memo({"mode", "wall(ms)", "cache hits", "cache entries"});
  {
    exec::ExecContext plain;
    const double ms =
        wall_ms([&] { (void)local::run_oblivious(*wrapped, cycle, {plain}); });
    memo.add_row({"unmemoized", fixed(ms, 1), "-", "-"});
  }
  {
    exec::VerdictCache cache;
    exec::ExecContext memoized{nullptr, &cache};
    const double ms =
        wall_ms([&] { (void)local::run_oblivious(*wrapped, cycle, {memoized}); });
    const auto stats = cache.stats();
    memo.add_row({"memoized", fixed(ms, 1), cat(stats.hits),
                  cat(stats.entries)});
  }
  std::cout << "A* on a 64-cycle (all balls isomorphic):\n" << memo.render();
  return 0;
}
