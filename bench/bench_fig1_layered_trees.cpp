// Reproduces Figure 1 / Section 2 quantitatively: the layered trees T_r,
// the small-instance family H_r, the ball-coverage audit behind P ∉ LD*,
// and the LD decider's verdicts.
//
// Expected shape: coverage 1.0 at r >= 3 (with the trapezoid-patch family;
// the aligned-subtree reading stays strictly below 1 — the documented
// reproduction finding), decider correct everywhere.
#include <chrono>
#include <iostream>

#include "core/locald.h"

using namespace locald;

int main() {
  std::cout << "=== Figure 1 / Section 2: T_r vs H_r ===\n\n";
  TextTable table({"r", "R(r)", "|T_r|", "max|H+|", "audited", "coverage",
                   "subtree-cover", "canon-checked", "mismatch",
                   "LD decider", "time(s)"});
  Rng rng(2024);
  for (int r = 1; r <= 3; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    trees::TreeParams p;
    p.r = r;
    p.f = local::IdBound::linear_plus(1);
    const auto R = p.capital_R();
    const std::uint64_t n = (std::uint64_t{1} << (R + 1)) - 1;

    // Audit: exhaustive for small T_r, large sample at r = 3.
    const std::uint64_t sample = (r <= 2) ? 0 : 300'000;
    const std::uint64_t canon = (r == 3) ? 200 : 50;
    const auto audit = trees::audit_tree_coverage(p, sample, canon, rng);

    // Decider correctness on representative instances (patches + T_r).
    const auto decider = trees::make_P_decider(p);
    const auto property = trees::property_P(p);
    std::vector<local::LabeledGraph> instances;
    instances.push_back(
        trees::build_patch_instance(p, trees::subtree_patch(p, 0, 0)));
    instances.push_back(trees::build_patch_instance(
        p, trees::subtree_patch(p, 1, std::min<trees::Coord>(2, R - r))));
    if (r <= 2) {
      instances.push_back(trees::build_T(p));
    }
    const auto report = local::evaluate_decider(
        *decider, *property, instances, local::bounded_policy(p.f), 2, rng);

    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    table.add_row({cat(r), cat(R), cat(n),
                   cat(p.yes_size_bound() - 1),
                   cat(audit.nodes_audited),
                   fixed(static_cast<double>(audit.patch_covered) /
                             audit.nodes_audited, 4),
                   fixed(audit.subtree_fraction(), 4),
                   cat(audit.canonical_checked),
                   cat(audit.canonical_mismatch),
                   report.all_correct() ? "correct" : "WRONG",
                   fixed(secs, 2)});
  }
  std::cout << table.render() << "\n";
  std::cout << "coverage = 1.0 certifies: any Id-oblivious horizon-1 "
               "algorithm accepting all of H_r accepts T_r (P ∉ LD*).\n";
  std::cout << "subtree-cover < 1.0: the aligned-subtree reading of the "
               "paper's H <= r T_r misses alignment boundaries; the "
               "trapezoid-patch family (implemented) restores the claim.\n";
  return 0;
}
