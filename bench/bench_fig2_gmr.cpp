// Reproduces Figure 2 / Section 3 quantitatively: the G(M, r) construction
// across the machine zoo — table sizes, exact fragment counts (the
// combinatorial explosion the paper sidesteps analytically), instance
// sizes, verifier/decider verdicts, and the totality of the neighbourhood
// generator B on diverging machines.
#include <chrono>
#include <iostream>

#include "core/locald.h"

using namespace locald;

int main() {
  std::cout << "=== Figure 2 / Section 3: G(M, r) construction ===\n\n";
  tm::FragmentPolicy policy;
  policy.max_fragments = 400;
  policy.seed = 5;
  const long long budget = 4096;

  TextTable table({"machine", "halts", "s", "out", "|C| exact", "|C| used",
                   "table", "|G|", "verify", "LD decide", "time(s)"});
  const auto verifier = halting::make_gmr_verifier(3, policy, false, budget);
  const auto decider = halting::make_gmr_decider(3, policy, false, budget);

  for (const tm::ZooEntry& e : tm::small_zoo()) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto exact = tm::count_fragments(e.machine, 3);
    std::string verify = "-";
    std::string decide = "-";
    std::string g_size = "-";
    std::string tbl = "-";
    std::string used = "-";
    if (e.halts) {
      halting::GmrParams params{e.machine, 1, 3, policy, false, budget};
      const auto inst = halting::build_gmr(params);
      tbl = cat(inst.table_side, "x", inst.table_side);
      g_size = cat(inst.graph.node_count());
      used = cat(inst.fragment_count);
      verify = local::run_oblivious(*verifier, inst.graph).accepted
                   ? "accept"
                   : "reject";
      const auto ids = local::make_consecutive(inst.graph.node_count());
      const bool acc = local::accepts(*decider, inst.graph, ids);
      // Membership requires output 0.
      const bool correct = acc == (e.output == 0);
      decide = cat(acc ? "accept" : "reject", correct ? " (ok)" : " (BAD)");
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    table.add_row({e.machine.name(), e.halts ? "yes" : "no",
                   e.halts ? cat(e.runtime) : "-",
                   e.halts ? cat(e.output) : "-", cat(exact), used, tbl,
                   g_size, verify, decide, fixed(secs, 2)});
  }
  std::cout << table.render() << "\n";

  std::cout << "neighbourhood generator B(N, 2) totality (property P3):\n";
  TextTable gen({"machine", "behaviour", "mode", "host", "eligible balls"});
  for (const tm::ZooEntry& e : tm::small_zoo()) {
    halting::GmrParams params{e.machine, 1, 3, policy, false, budget};
    const auto out = halting::neighborhood_generator(params, 2);
    gen.add_row({e.machine.name(), e.halts ? "halts" : "diverges",
                 out.exact ? "exact G(M,r)" : "prefix glue",
                 cat(out.host.node_count()), cat(out.centers.size())});
  }
  std::cout << gen.render() << "\n";
  std::cout << "B halts on every machine — including the diverging ones — "
               "which is what makes the separation algorithm R total.\n";
  return 0;
}
