// Reproduces Figure 3 / Appendix A: the quadtree pyramid T-hat over
// execution tables — sizes, construction and verification cost, and the
// pyramidal G(M, r) variant.
#include <chrono>
#include <iostream>

#include "core/locald.h"

using namespace locald;

int main() {
  std::cout << "=== Figure 3 / Appendix A: pyramidal execution tables ===\n\n";
  TextTable table({"h", "grid", "pyramid nodes", "edges", "apex deg",
                   "build(ms)", "oracle(ms)", "valid"});
  for (int h = 1; h <= 7; ++h) {
    const graph::PyramidIndexer idx(h);
    const auto t0 = std::chrono::steady_clock::now();
    const graph::CsrGraph g = graph::build_pyramid(idx);
    const auto t1 = std::chrono::steady_clock::now();
    const bool ok = h <= 5 ? graph::is_pyramid(g, h) : true;  // oracle is
    // canonical-form based; cap its cost at moderate sizes.
    const auto t2 = std::chrono::steady_clock::now();
    table.add_row({cat(h), cat(idx.side(0), "x", idx.side(0)),
                   cat(g.node_count()), cat(g.edge_count()),
                   cat(g.degree(idx.apex())),
                   fixed(std::chrono::duration<double, std::milli>(t1 - t0)
                             .count(), 2),
                   h <= 5
                       ? fixed(std::chrono::duration<double, std::milli>(
                                   t2 - t1).count(), 2)
                       : std::string("skipped"),
                   ok ? "yes" : "NO"});
  }
  std::cout << table.render() << "\n";

  // Pyramidal G(M, r): the Appendix-A construction end to end.
  tm::FragmentPolicy policy;
  policy.max_fragments = 120;
  std::cout << "pyramidal G(M, r) (fragment pyramids of height 2):\n";
  TextTable gmr({"machine", "|G| plain", "|G| pyramidal", "overhead"});
  for (int k : {1, 2}) {
    const tm::TuringMachine m = tm::halt_after(k, 0);
    halting::GmrParams plain{m, 1, 4, policy, false, 4096};
    halting::GmrParams pyr{m, 1, 4, policy, true, 4096};
    const auto a = halting::build_gmr(plain);
    const auto b = halting::build_gmr(pyr);
    gmr.add_row({m.name(), cat(a.graph.node_count()),
                 cat(b.graph.node_count()),
                 fixed(static_cast<double>(b.graph.node_count()) /
                           a.graph.node_count(), 3)});
  }
  std::cout << gmr.render() << "\n";
  std::cout << "the pyramid fixes each grid's global structure (unique "
               "apex), closing the torus-quotient gap of plain grids.\n";
  return 0;
}
