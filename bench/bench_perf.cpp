// Substrate micro-benchmarks (google-benchmark): ball extraction, canonical
// forms, the message-passing engine, Turing-machine simulation, fragment
// counting, and Section-2/3 construction costs.
#include <benchmark/benchmark.h>

#include "core/locald.h"

using namespace locald;

namespace {

void BM_BallExtraction(benchmark::State& state) {
  const int radius = static_cast<int>(state.range(0));
  Rng rng(1);
  local::LabeledGraph g(graph::make_random_connected(2000, 3000, 1));
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    g.set_label(v, local::Label{static_cast<std::int64_t>(rng.below(4))});
  }
  graph::NodeId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(local::extract_ball(g, nullptr, v, radius));
    v = (v + 37) % g.node_count();
  }
}
BENCHMARK(BM_BallExtraction)->Arg(1)->Arg(2)->Arg(3);

void BM_CanonicalBall(benchmark::State& state) {
  Rng rng(2);
  local::LabeledGraph g(graph::make_random_connected(500, 800, 2));
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    g.set_label(v, local::Label{static_cast<std::int64_t>(rng.below(4))});
  }
  const auto ball = local::extract_ball(g, nullptr, 17, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ball.canonical_encoding());
  }
}
BENCHMARK(BM_CanonicalBall);

void BM_SyncEngineFullInfo(benchmark::State& state) {
  local::LabeledGraph g =
      local::LabeledGraph::uniform(graph::make_cycle(64), local::Label{1});
  const auto ids = local::make_consecutive(64);
  const auto alg = props::agreement_decider();
  for (auto _ : state) {
    benchmark::DoNotOptimize(local::run_via_message_passing(*alg, g, ids));
  }
}
BENCHMARK(BM_SyncEngineFullInfo);

void BM_TuringSimulation(benchmark::State& state) {
  const tm::TuringMachine m = tm::zigzag_expander();
  const long long steps = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tm::run_machine(m, steps));
  }
  state.SetItemsProcessed(state.iterations() * steps);
}
BENCHMARK(BM_TuringSimulation)->Arg(1000)->Arg(10000);

void BM_FragmentCountDP(benchmark::State& state) {
  const tm::TuringMachine m = tm::halt_after(2, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tm::count_fragments(m, 3));
  }
}
BENCHMARK(BM_FragmentCountDP);

void BM_BuildPatchInstance(benchmark::State& state) {
  trees::TreeParams p;
  p.r = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trees::build_patch_instance(p, trees::subtree_patch(p, 1, 2)));
  }
}
BENCHMARK(BM_BuildPatchInstance)->Arg(2)->Arg(3)->Arg(4);

void BM_BuildGmr(benchmark::State& state) {
  tm::FragmentPolicy policy;
  policy.max_fragments = static_cast<std::size_t>(state.range(0));
  halting::GmrParams params{tm::halt_after(1, 0), 1, 3, policy, false, 4096};
  for (auto _ : state) {
    benchmark::DoNotOptimize(halting::build_gmr(params));
  }
}
BENCHMARK(BM_BuildGmr)->Arg(50)->Arg(200);

void BM_Sec2Verifier(benchmark::State& state) {
  trees::TreeParams p;
  p.r = 2;
  const auto verifier = trees::make_P_prime_verifier(p);
  const auto g = trees::build_patch_instance(p, trees::subtree_patch(p, 1, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(local::run_oblivious(*verifier, g));
  }
  state.SetItemsProcessed(state.iterations() * g.node_count());
}
BENCHMARK(BM_Sec2Verifier);

}  // namespace

BENCHMARK_MAIN();
