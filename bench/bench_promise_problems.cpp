// Reproduces the two warm-up promise problems (Sections 2 and 3): the
// cycle-length problem where identifiers leak n through the bound f, and
// the machine-labelled cycles where identifiers bound the simulation time.
// In both cases the id-based decider is exact while Id-oblivious candidates
// are provably/visibly stuck.
#include <iostream>

#include "core/locald.h"

using namespace locald;

int main() {
  std::cout << "=== Promise problems (Sections 2 and 3) ===\n\n";

  std::cout << "--- Section 2: r-cycle vs (f(r)+1)-cycle, f(n) = n^2+1 ---\n";
  TextTable t1({"r", "yes n", "no n", "decider yes", "decider no",
                "oblivious-indistinguishable"});
  Rng rng(7);
  for (int r : {4, 6, 8, 12}) {
    trees::PromiseCycleParams pc;
    pc.r = r;
    pc.f = local::IdBound::quadratic();
    const auto yes = trees::build_yes_cycle(pc);
    const auto no = trees::build_no_cycle(pc);
    const auto decider = trees::make_promise_cycle_decider(pc);
    bool yes_ok = true;
    bool no_ok = true;
    for (int trial = 0; trial < 5; ++trial) {
      yes_ok &= local::accepts(
          *decider, yes,
          local::make_random_bounded(yes.node_count(), pc.f, rng));
      no_ok &= !local::accepts(
          *decider, no,
          local::make_random_bounded(no.node_count(), pc.f, rng));
    }
    const auto profile = local::BallProfile::of_graph(yes, 1);
    const auto audit = local::audit_indistinguishability(no, profile);
    t1.add_row({cat(r), cat(yes.node_count()), cat(no.node_count()),
                yes_ok ? "accept" : "WRONG", no_ok ? "reject" : "WRONG",
                audit.indistinguishable() ? "yes" : "no"});
  }
  std::cout << t1.render() << "\n";

  std::cout << "--- Section 3: machine-labelled cycles (promise n >= s) ---\n";
  TextTable t2({"machine", "halts", "s", "n", "id decider",
                "oblivious budget-4", "oblivious budget-16"});
  const auto decider = halting::make_promise_halting_decider();
  const auto cand4 = halting::promise_halting_candidate(4);
  const auto cand16 = halting::promise_halting_candidate(16);
  const auto property = halting::promise_halting_property(100'000);
  for (const tm::ZooEntry& e : {tm::ZooEntry{tm::bouncer(), false, -1, -1},
                                tm::ZooEntry{tm::halt_after(3, 0), true, 3, 0},
                                tm::ZooEntry{tm::halt_after(8, 1), true, 8, 1},
                                tm::ZooEntry{tm::zigzag_halt(3, 0), true, -1,
                                             0}}) {
    const graph::NodeId n = e.machine.name() == "zigzag_halt(3,0)" ? 40 : 12;
    const auto inst = halting::build_promise_halting_instance(e.machine, n);
    const bool member = property->contains(inst);
    const bool id_ok =
        local::accepts(*decider, inst,
                       local::make_consecutive(inst.node_count())) == member;
    t2.add_row({e.machine.name(), e.halts ? "yes" : "no",
                e.halts ? cat(tm::run_machine(e.machine, 100000).steps)
                        : std::string("-"),
                cat(n), id_ok ? "correct" : "WRONG",
                local::run_oblivious(*cand4, inst).accepted
                    ? std::string("accept")
                    : std::string("reject"),
                local::run_oblivious(*cand16, inst).accepted
                    ? std::string("accept")
                    : std::string("reject")});
  }
  std::cout << t2.render() << "\n";
  std::cout << "budget-b candidates accept every machine outlasting b — no "
               "fixed budget works for all machines (the halting problem).\n";
  return 0;
}
