// Reproduces the paper's Section-1.1 table (its only table): the LD* vs LD
// relationship under all four combinations of (B)/(¬B) and (C)/(¬C).
//
// Paper:            (C)    (¬C)
//        (B)        !=     !=
//        (¬B)       !=     =
#include <iostream>

#include "core/locald.h"

int main() {
  std::cout << "=== Table 1 (Section 1.1): LD* vs LD across model "
               "assumptions ===\n\n";
  const auto results = locald::core::evaluate_separation_matrix(42);
  std::cout << locald::core::render_matrix(results) << "\n";

  std::cout << "paper's table:   (C)   (¬C)\n";
  std::cout << "          (B)    !=    !=\n";
  std::cout << "          (¬B)   !=    =\n\n";
  std::cout << "measured:        (C)   (¬C)\n";
  auto cell = [&](std::size_t i) {
    return results[i].separated ? "!=" : (results[i].equal ? "= " : "??");
  };
  std::cout << "          (B)    " << cell(0) << "    " << cell(1) << "\n";
  std::cout << "          (¬B)   " << cell(2) << "    " << cell(3) << "\n";
  return 0;
}
