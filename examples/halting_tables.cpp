// Section-3 walkthrough: execution tables, fragments, G(M, r), and the
// deciders with and without identifiers.
//
//   $ ./halting_tables
#include <iostream>

#include "core/locald.h"

using namespace locald;

int main() {
  const tm::TuringMachine m0 = tm::halt_after(2, 0);  // in L0
  const tm::TuringMachine m1 = tm::halt_after(2, 1);  // in L1

  // The execution table of m0, padded to a power of two.
  const tm::ExecutionTable table = tm::ExecutionTable::build_padded_pow2(
      m0, 100);
  std::cout << "execution table of " << m0.name() << " ("
            << table.width() << "x" << table.height() << ", halts at step "
            << *table.halting_step() << "):\n"
            << table.to_string() << "\n";

  // The fragment collection C(M, r): all syntactically possible windows.
  tm::FragmentPolicy policy;
  policy.max_fragments = 200;
  const auto count = tm::count_fragments(m0, 3);
  std::cout << "|C(M, r)| exact count (3x3): " << count << "\n";

  // G(M, r) for both machines.
  for (const tm::TuringMachine* m : {&m0, &m1}) {
    halting::GmrParams params{*m, 1, 3, policy, false, 4096};
    const auto inst = halting::build_gmr(params);
    std::cout << "G(" << m->name() << ", 1): " << inst.graph.node_count()
              << " nodes, " << inst.fragment_count
              << " fragments glued to the pivot (exhaustive: "
              << (inst.fragments_exhaustive ? "yes" : "no") << ")\n";

    const auto verifier = halting::make_gmr_verifier(3, policy, false, 4096);
    const auto decider = halting::make_gmr_decider(3, policy, false, 4096);
    const auto ids = local::make_consecutive(inst.graph.node_count());
    std::cout << "  structure verifier (Id-oblivious): "
              << (local::run_oblivious(*verifier, inst.graph).accepted
                      ? "accept"
                      : "reject")
              << "\n";
    std::cout << "  LD decider (simulates M for Id(v) steps): "
              << (local::accepts(*decider, inst.graph, ids) ? "accept"
                                                            : "reject")
              << "  (membership in P requires output 0)\n";
  }

  // The separation algorithm R fooling a bounded candidate.
  std::cout << "\nseparation algorithm R with candidate simulate-2:\n";
  const auto candidate =
      halting::candidate_bounded_simulation(3, policy, false, 4096, 2);
  for (const tm::TuringMachine& n :
       {tm::halt_after(1, 1), tm::halt_after(4, 1), tm::bouncer()}) {
    halting::GmrParams params{n, 1, 3, policy, false, 4096};
    std::cout << "  R(" << n.name() << ") = "
              << (halting::separation_accepts(*candidate, params)
                      ? "accept"
                      : "reject")
              << "\n";
  }
  std::cout << "halt_after(4,1) outlasts the budget and fools the candidate "
               "— Lemma 1 in action.\n";
  return 0;
}
