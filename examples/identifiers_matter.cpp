// Section-2 walkthrough: why identifiers matter under assumption (B).
//
// Builds the layered tree T_r and a small instance H+, shows that the
// Id-oblivious verifier accepts both (they are locally indistinguishable),
// and that the id-based decider separates them because T_r must contain an
// identifier >= R(r).
//
//   $ ./identifiers_matter
#include <iostream>

#include "core/locald.h"

using namespace locald;

int main() {
  trees::TreeParams p;
  p.r = 2;
  p.f = local::IdBound::linear_plus(1);
  const auto R = p.capital_R();
  std::cout << "r = " << p.r << ", f(n) = " << p.f.name()
            << ", R(r) = f(2^{r+1} + r + 1) = " << R << "\n";

  const local::LabeledGraph T = trees::build_T(p);
  const local::LabeledGraph H =
      trees::build_patch_instance(p, trees::subtree_patch(p, 1, 2));
  std::cout << "T_r: " << T.node_count() << " nodes (the \"large\" instance)\n";
  std::cout << "H+:  " << H.node_count() << " nodes (a \"small\" instance)\n\n";

  // The Id-oblivious verifier for P' accepts both: without identifiers the
  // two are locally consistent with the same structure.
  const auto verifier = trees::make_P_prime_verifier(p);
  std::cout << verifier->name() << " on H+: "
            << (local::run_oblivious(*verifier, H).accepted ? "accept"
                                                            : "reject")
            << "\n";
  std::cout << verifier->name() << " on T_r: "
            << (local::run_oblivious(*verifier, T).accepted ? "accept"
                                                            : "reject")
            << "\n\n";

  // The id-based decider for P rejects T_r under EVERY bounded assignment:
  // with 2^{R+1}-1 nodes and one-to-one ids, some id reaches R(r).
  const auto decider = trees::make_P_decider(p);
  Rng rng(7);
  for (int trial = 0; trial < 3; ++trial) {
    const auto idsH = local::make_random_bounded(H.node_count(), p.f, rng);
    const auto idsT = local::make_random_bounded(T.node_count(), p.f, rng);
    std::cout << "trial " << trial << ": decider on H+ -> "
              << (local::accepts(*decider, H, idsH) ? "accept" : "reject")
              << ", on T_r -> "
              << (local::accepts(*decider, T, idsT) ? "accept" : "reject")
              << "\n";
  }

  // The indistinguishability audit behind "P not in LD*": every radius-1
  // ball of T_3 occurs in some yes-instance.
  trees::TreeParams p3;
  p3.r = 3;
  const auto audit = trees::audit_tree_coverage(p3, 10'000, 25, rng);
  std::cout << "\naudit (r=3): " << audit.patch_covered << "/"
            << audit.nodes_audited
            << " balls covered by yes-instances; canonical spot-checks: "
            << audit.canonical_checked << " compared, "
            << audit.canonical_mismatch << " mismatches\n";
  std::cout << "aligned-subtree reading covers only "
            << fixed(100.0 * audit.subtree_fraction(), 1)
            << "% (the reproduction finding documented in docs/ARCHITECTURE.md)\n";
  return 0;
}
