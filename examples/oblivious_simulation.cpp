// The Id-oblivious simulation A* (the (¬B, ¬C) equality) and its failure
// under (B): simulating the Section-2 decider destroys it.
//
//   $ ./oblivious_simulation
#include <iostream>

#include "core/locald.h"

using namespace locald;

int main() {
  // 1. A* reproduces an id-reading but id-independent decider exactly.
  auto reading = std::make_shared<local::LambdaAlgorithm>(
      "agreement-with-ids", 1, false, [](const local::BallView& ball) {
        (void)ball.center_id();  // reads identifiers, never uses them
        const auto x = ball.center_label().at(0);
        for (graph::NodeId w : ball.g.neighbors(ball.center)) {
          if (ball.label(w).at(0) != x) return local::Verdict::no;
        }
        return local::Verdict::yes;
      });
  oblivious::SimulationOptions options;
  options.id_universe = 32;
  const auto sim = oblivious::make_oblivious_simulation(reading, options);
  local::LabeledGraph agree =
      local::LabeledGraph::uniform(graph::make_cycle(8), local::Label{5});
  local::LabeledGraph disagree = agree;
  disagree.set_label(3, local::Label{6});
  std::cout << sim->name() << " under (¬B, ¬C):\n";
  std::cout << "  all-agree cycle:    "
            << (local::run_oblivious(*sim, agree).accepted ? "accept"
                                                           : "reject")
            << "\n";
  std::cout << "  one disagreement:   "
            << (local::run_oblivious(*sim, disagree).accepted ? "accept"
                                                              : "reject")
            << "\n\n";

  // 2. Under (B) the simulation breaks: applied to the Section-2 decider it
  // explores assignments the bounded-id promise forbids and rejects a
  // yes-instance.
  trees::TreeParams p;
  p.r = 2;
  auto sec2 = std::shared_ptr<const local::LocalAlgorithm>(
      trees::make_P_decider(p).release());
  oblivious::SimulationOptions wide;
  wide.id_universe = 4 * static_cast<local::Id>(p.capital_R());
  wide.max_assignments = 400;
  const auto broken = oblivious::make_oblivious_simulation(sec2, wide);
  const auto H = trees::build_patch_instance(p, trees::subtree_patch(p, 0, 0));
  Rng rng(4);
  const auto bounded_ids =
      local::make_random_bounded(H.node_count(), p.f, rng);
  std::cout << "Section-2 decider on a small instance (bounded ids): "
            << (local::accepts(*trees::make_P_decider(p), H, bounded_ids)
                    ? "accept"
                    : "reject")
            << "\n";
  std::cout << "its Id-oblivious simulation on the same instance:     "
            << (local::run_oblivious(*broken, H).accepted ? "accept"
                                                          : "reject")
            << "   <- the simulation needs (¬B)\n";
  return 0;
}
