// Quickstart: define a labelled-graph property, write an Id-oblivious local
// decider for it, and run it through the decision harness.
//
//   $ ./quickstart
#include <iostream>

#include "core/locald.h"

using namespace locald;

int main() {
  // A 6-cycle, properly 3-coloured: labels are the colours.
  local::LabeledGraph good(graph::make_cycle(6),
                           {local::Label{0}, local::Label{1}, local::Label{2},
                            local::Label{0}, local::Label{1}, local::Label{2}});
  // The same cycle with a clash between nodes 0 and 5.
  local::LabeledGraph bad = good;
  bad.set_label(5, local::Label{0});

  const auto property = props::proper_coloring_property(3);
  const auto decider = props::proper_coloring_decider(3);

  std::cout << "property: " << property->name() << "\n";
  std::cout << "decider:  " << decider->name() << " (horizon "
            << decider->horizon() << ", Id-oblivious: "
            << (decider->id_oblivious() ? "yes" : "no") << ")\n\n";

  for (const auto& [label, instance] :
       {std::pair{"proper", &good}, std::pair{"clashing", &bad}}) {
    const auto run = local::run_oblivious(*decider, *instance);
    std::cout << label << " colouring: oracle says "
              << (property->contains(*instance) ? "member" : "non-member")
              << ", decider " << (run.accepted ? "accepts" : "rejects");
    if (run.first_rejecting.has_value()) {
      std::cout << " (first no at node " << *run.first_rejecting << ")";
    }
    std::cout << "\n";
  }

  // The same decider evaluated through the full harness with random
  // bounded identifier assignments (they are stripped automatically:
  // obliviousness is enforced by the framework).
  Rng rng(1);
  const auto report = local::evaluate_decider(
      *decider, *property, {good, bad},
      local::bounded_policy(local::IdBound::linear_plus(1)), 3, rng);
  std::cout << "\nharness: " << report.evaluations << " evaluations, "
            << report.failures.size() << " failures\n";
  return 0;
}
