// Corollary 1: randomness replaces identifiers for the Section-3 property.
//
// Each node draws n_v = 4^{coin tosses until heads} and simulates M for n_v
// steps — no identifiers needed, success with probability 1 - o(1).
//
//   $ ./randomized_decider
#include <iostream>

#include "core/locald.h"

using namespace locald;

int main() {
  tm::FragmentPolicy policy;
  policy.max_fragments = 100;
  const auto decider = halting::make_randomized_gmr_decider(3, policy, false,
                                                            4096);

  halting::GmrParams yes{tm::halt_after(2, 0), 1, 3, policy, false, 4096};
  halting::GmrParams no{tm::zigzag_halt(2, 1), 1, 3, policy, false, 4096};
  const auto yes_inst = halting::build_gmr(yes).graph;
  const auto no_inst = halting::build_gmr(no).graph;

  const int trials = 30;
  const auto p_yes = local::estimate_acceptance(*decider, yes_inst, nullptr,
                                                trials, {{}, 99});
  const auto p_no = local::estimate_acceptance(*decider, no_inst, nullptr,
                                               trials, {{}, 100});

  std::cout << "randomized Id-oblivious decider: " << decider->name() << "\n";
  std::cout << "yes-instance G(" << yes.machine.name() << "): accepted "
            << p_yes.accepted << "/" << p_yes.trials
            << " (completeness p = 1)\n";
  std::cout << "no-instance  G(" << no.machine.name() << "): accepted "
            << p_no.accepted << "/" << p_no.trials
            << " (soundness q = 1 - o(1))\n\n";

  std::cout << "the paper's failure bound (1 - 1/sqrt(n))^n:\n";
  for (double n : {16.0, 64.0, 256.0, 1024.0, 4096.0}) {
    std::cout << "  n = " << n << ": "
              << halting::corollary1_failure_bound(n) << "\n";
  }
  return 0;
}
