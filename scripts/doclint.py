#!/usr/bin/env python3
"""Lint README.md and docs/*.md against the tree they describe.

Stdlib-only checker, run by CI so the prose cannot drift from the code.
Three claim classes are extracted and verified:

  - File paths in inline code spans (`src/...`, `docs/...`, a bare
    `graph/isomorphism.h`, ...) must name a file or directory that exists,
    either verbatim from the repo root or under `src/`.
  - CLI flags in inline code spans (`--threads`, `--faults`, ...) must
    appear in `locald help` output — pass a dump via --help-text; without
    one the usage text in src/cli/main.cpp is scraped as a fallback.
  - `/v1/*` endpoints mentioned anywhere (prose, tables, curl examples)
    must appear in the server's route dispatch (src/server/server.cpp),
    so the docs can never advertise an endpoint the router would 404.

Usage: doclint.py [--root DIR] [--help-text FILE]
Exits 0 when clean, 1 with one line per violation otherwise.
"""

import argparse
import glob
import os
import re
import sys

INLINE_CODE = re.compile(r"`([^`]+)`")
# A path-like span: slash-separated tokens, at least two of them, nothing
# but filename characters (spans holding selectors, URLs, or shell lines
# contain ':', '=', spaces, ... and simply fail the whole-span match).
PATH_SPAN = re.compile(r"^[A-Za-z0-9_.-]+(?:/[A-Za-z0-9_.-]+)+$")
FLAG = re.compile(r"--[a-z][a-z-]*")
ENDPOINT = re.compile(r"/v1/[a-z_]+")
# Doc paths that intentionally name build products, not tracked files.
IGNORED_PREFIXES = ("build/", "./build")


def extract_flags(text):
    return set(FLAG.findall(text))


def known_flags(root, help_text_path):
    """Ground truth for CLI flags: real `locald help` output when CI hands
    us one, the usage() string table in main.cpp otherwise."""
    if help_text_path:
        with open(help_text_path, "r", encoding="utf-8") as f:
            return extract_flags(f.read()), help_text_path
    fallback = os.path.join(root, "src", "cli", "main.cpp")
    with open(fallback, "r", encoding="utf-8") as f:
        return extract_flags(f.read()), fallback


def known_endpoints(root):
    """Ground truth for routes: every /v1/* literal in the server's
    dispatch (including the 404 catalogue, which lists them all)."""
    source = os.path.join(root, "src", "server", "server.cpp")
    with open(source, "r", encoding="utf-8") as f:
        return set(ENDPOINT.findall(f.read())), source


def path_exists(root, span):
    if os.path.exists(os.path.join(root, span)):
        return True
    # Prose often drops the `src/` prefix: `graph/isomorphism.h`.
    return os.path.exists(os.path.join(root, "src", span))


def lint_doc(root, doc, flags, endpoints):
    errors = []
    rel = os.path.relpath(doc, root)
    with open(doc, "r", encoding="utf-8") as f:
        text = f.read()
    for lineno, line in enumerate(text.splitlines(), start=1):
        for span in INLINE_CODE.findall(line):
            if PATH_SPAN.match(span):
                if span.startswith(IGNORED_PREFIXES):
                    continue
                if not path_exists(root, span):
                    errors.append(
                        f"{rel}:{lineno}: path `{span}` not in the tree"
                    )
            # Only spans that are themselves flag spellings or locald
            # invocations are held to the help text; inline mentions of
            # other tools' flags stay out of scope.
            if span.startswith("--") or "locald" in span:
                for flag in extract_flags(span):
                    if flag not in flags:
                        errors.append(
                            f"{rel}:{lineno}: flag `{flag}` not in "
                            f"locald help"
                        )
        for endpoint in ENDPOINT.findall(line):
            if endpoint not in endpoints:
                errors.append(
                    f"{rel}:{lineno}: endpoint {endpoint} not routed"
                )
    return errors


def main():
    parser = argparse.ArgumentParser(
        description="check README/docs claims against the tree"
    )
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument(
        "--help-text",
        default=None,
        help="file holding `locald help` output (ground truth for flags)",
    )
    args = parser.parse_args()

    docs = [os.path.join(args.root, "README.md")]
    docs += sorted(glob.glob(os.path.join(args.root, "docs", "*.md")))
    docs = [d for d in docs if os.path.exists(d)]
    if not docs:
        print("doclint: no documents found", file=sys.stderr)
        return 2

    flags, flag_source = known_flags(args.root, args.help_text)
    endpoints, route_source = known_endpoints(args.root)

    errors = []
    for doc in docs:
        errors.extend(lint_doc(args.root, doc, flags, endpoints))
    for error in errors:
        print(error, file=sys.stderr)
    if not errors:
        names = ", ".join(os.path.relpath(d, args.root) for d in docs)
        print(
            f"doclint: clean ({names}; flags vs "
            f"{os.path.relpath(flag_source, args.root)}, routes vs "
            f"{os.path.relpath(route_source, args.root)})"
        )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
