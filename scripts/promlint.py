#!/usr/bin/env python3
"""Lint a Prometheus text exposition (format 0.0.4) document.

Stdlib-only checker for the `GET /metrics` endpoint, run by CI against a
live scrape. Validates the subset of the format locald emits:

  - `# HELP <name> <text>` / `# TYPE <name> <counter|gauge|histogram|...>`
    comment grammar, with TYPE preceding the family's first sample and at
    most one HELP/TYPE per family.
  - Sample lines `name[{label="value",...}] value [timestamp]` with legal
    metric/label names, properly escaped label values (\\, \", \n only),
    and parseable float values.
  - Histogram families: `_bucket` samples carry an `le` label, cumulative
    bucket counts are monotone ending in a mandatory `le="+Inf"` bucket
    that equals `_count`.
  - Counter samples are finite and non-negative.

Usage: promlint.py [FILE]   (reads stdin when FILE is omitted)
Exits 0 when clean, 1 with one line per violation otherwise.
"""

import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# A sample line: name, optional {labels}, value, optional timestamp.
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{.*\})?"
    r" (?P<value>[^ ]+)"
    r"(?: (?P<timestamp>-?\d+))?$"
)
VALID_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def parse_labels(text, errors, lineno):
    """Parse `{k="v",...}` into a dict, reporting escaping violations."""
    labels = {}
    body = text[1:-1]
    pos = 0
    while pos < len(body):
        eq = body.find("=", pos)
        if eq < 0:
            errors.append(f"line {lineno}: malformed label pair in {text!r}")
            return labels
        name = body[pos:eq]
        if not LABEL_NAME.match(name):
            errors.append(f"line {lineno}: bad label name {name!r}")
        if eq + 1 >= len(body) or body[eq + 1] != '"':
            errors.append(f"line {lineno}: label value must be quoted")
            return labels
        value = []
        i = eq + 2
        while i < len(body):
            c = body[i]
            if c == "\\":
                if i + 1 >= len(body) or body[i + 1] not in ('\\', '"', "n"):
                    errors.append(
                        f"line {lineno}: illegal escape in label value"
                    )
                    return labels
                value.append("\n" if body[i + 1] == "n" else body[i + 1])
                i += 2
            elif c == '"':
                break
            else:
                value.append(c)
                i += 1
        else:
            errors.append(f"line {lineno}: unterminated label value")
            return labels
        labels[name] = "".join(value)
        pos = i + 1
        if pos < len(body):
            if body[pos] != ",":
                errors.append(f"line {lineno}: expected ',' between labels")
                return labels
            pos += 1
    return labels


def base_family(name):
    """Histogram sample names map back to their family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def lint(text):
    errors = []
    helps = {}
    types = {}
    seen_samples = {}  # family -> list of (labels, float value, lineno)
    sample_seen_before_type = set()

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line != line.rstrip():
            errors.append(f"line {lineno}: trailing whitespace")
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            kind = line[2:6]
            rest = line[7:]
            parts = rest.split(" ", 1)
            name = parts[0]
            if not METRIC_NAME.match(name):
                errors.append(f"line {lineno}: bad metric name {name!r}")
                continue
            store = helps if kind == "HELP" else types
            if name in store:
                errors.append(f"line {lineno}: duplicate # {kind} for {name}")
            store[name] = parts[1] if len(parts) > 1 else ""
            if kind == "TYPE":
                if store[name] not in VALID_TYPES:
                    errors.append(
                        f"line {lineno}: unknown type {store[name]!r}"
                    )
                if name in sample_seen_before_type:
                    errors.append(
                        f"line {lineno}: # TYPE {name} after its samples"
                    )
            continue
        if line.startswith("#"):
            continue  # free-form comment
        m = SAMPLE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name = m.group("name")
        labels = {}
        if m.group("labels"):
            labels = parse_labels(m.group("labels"), errors, lineno)
        raw_value = m.group("value")
        try:
            value = float(raw_value)
        except ValueError:
            if raw_value not in ("+Inf", "-Inf", "NaN"):
                errors.append(
                    f"line {lineno}: unparseable value {raw_value!r}"
                )
                continue
            value = float(raw_value.replace("Inf", "inf").replace("NaN", "nan"))
        family = base_family(name)
        sample_seen_before_type.add(family)
        seen_samples.setdefault(family, []).append((name, labels, value, lineno))

    for family, samples in seen_samples.items():
        ftype = types.get(family) or types.get(samples[0][0])
        if ftype is None:
            errors.append(f"family {family}: no # TYPE line")
            continue
        if family not in helps and samples[0][0] not in helps:
            errors.append(f"family {family}: no # HELP line")
        if ftype == "counter":
            for name, _labels, value, lineno in samples:
                if not value >= 0:
                    errors.append(
                        f"line {lineno}: counter {name} is negative"
                    )
        if ftype == "histogram":
            buckets = [s for s in samples if s[0] == family + "_bucket"]
            counts = [s for s in samples if s[0] == family + "_count"]
            if not buckets:
                errors.append(f"family {family}: histogram has no _bucket")
                continue
            for name, labels, _value, lineno in buckets:
                if "le" not in labels:
                    errors.append(
                        f"line {lineno}: histogram bucket without le label"
                    )
            last = buckets[-1]
            if last[1].get("le") != "+Inf":
                errors.append(
                    f"family {family}: final bucket is not le=\"+Inf\""
                )
            values = [b[2] for b in buckets]
            if values != sorted(values):
                errors.append(
                    f"family {family}: bucket counts are not cumulative"
                )
            if counts and last[1].get("le") == "+Inf":
                if counts[0][2] != last[2]:
                    errors.append(
                        f"family {family}: +Inf bucket != _count"
                    )

    return errors


def main():
    if len(sys.argv) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    if len(sys.argv) == 2:
        with open(sys.argv[1], "r", encoding="utf-8") as f:
            text = f.read()
    else:
        text = sys.stdin.read()
    errors = lint(text)
    for error in errors:
        print(error, file=sys.stderr)
    if not errors:
        samples = sum(1 for s in text.splitlines()
                      if s and not s.startswith("#"))
        print(f"promlint: clean ({samples} sample lines OK)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
