#!/usr/bin/env bash
# Multi-process serving smoke: one writer and one read-only follower share a
# single --store directory and must answer /v1/run byte-identically — to each
# other and to a cold single-threaded CLI run. Also gates the two crash-path
# contracts: a second concurrent writer is rejected fast with a clear error,
# and a follower keeps serving from the shared log after the writer is killed
# with SIGKILL.
#
# Usage: serve_follower_smoke.sh LOCALD_BIN
set -euo pipefail

LOCALD="${1:?usage: serve_follower_smoke.sh LOCALD_BIN}"
WRITER_PORT=18091
SECOND_PORT=18092
FOLLOWER_PORT=18093

WORK="$(mktemp -d /tmp/locald-follower-smoke-XXXXXX)"
STORE="$WORK/store"
WRITER_PID=""
FOLLOWER_PID=""
cleanup() {
  [ -n "$WRITER_PID" ] && kill -9 "$WRITER_PID" 2>/dev/null || true
  [ -n "$FOLLOWER_PID" ] && kill -9 "$FOLLOWER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

wait_healthz() {
  local port="$1"
  for _ in $(seq 1 50); do
    curl -sf "http://127.0.0.1:$port/v1/healthz" >/dev/null && return 0
    sleep 0.2
  done
  echo "::error::server on port $port never became healthy" >&2
  return 1
}

# --- Writer up, holding the store's write lease -----------------------------
"$LOCALD" serve --port "$WRITER_PORT" --threads 2 --workers 4 \
  --store "$STORE" &
WRITER_PID=$!
wait_healthz "$WRITER_PORT"

# --- A second writer on the same store must fail fast, not interleave -------
set +e
timeout 10 "$LOCALD" serve --port "$SECOND_PORT" --threads 1 --workers 1 \
  --store "$STORE" >"$WORK/second.out" 2>"$WORK/second.err"
SECOND_STATUS=$?
set -e
if [ "$SECOND_STATUS" -eq 0 ]; then
  echo "::error::second writer on $STORE was accepted; expected rejection" >&2
  exit 1
fi
if ! grep -q "live writer" "$WORK/second.err"; then
  echo "::error::second-writer error does not name the held lease:" >&2
  cat "$WORK/second.err" >&2
  exit 1
fi

# --- Follower up BEFORE the store is warmed, so the records it will serve
# --- arrive via the tail-refresh path, not the open-time load ---------------
"$LOCALD" serve --port "$FOLLOWER_PORT" --threads 2 --workers 4 \
  --store "$STORE" --follower &
FOLLOWER_PID=$!
wait_healthz "$FOLLOWER_PORT"

BODY='{"scenario": "promise-halting", "seed": 7}'
curl -sf -X POST -d "$BODY" \
  "http://127.0.0.1:$WRITER_PORT/v1/run" >"$WORK/writer.json"
curl -sf -X POST -d "$BODY" \
  "http://127.0.0.1:$FOLLOWER_PORT/v1/run" >"$WORK/follower.json"
cmp "$WORK/writer.json" "$WORK/follower.json"

# The follower's answer came off the shared log: correct role, at least one
# tail refresh, and store hits feeding its cache.
curl -sf "http://127.0.0.1:$FOLLOWER_PORT/v1/metrics" \
  >"$WORK/follower_metrics.json"
python3 - "$WORK/follower_metrics.json" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
assert m["store"]["role"] == "follower", m["store"]
assert m["store"]["tail_refreshes"] >= 1, m["store"]
assert m["cache"]["store_hits"] > 0, m["cache"]
EOF
curl -sf "http://127.0.0.1:$WRITER_PORT/v1/metrics" \
  >"$WORK/writer_metrics.json"
python3 - "$WORK/writer_metrics.json" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
assert m["store"]["role"] == "writer", m["store"]
assert m["store"]["appended"] > 0, m["store"]
EOF

# Both processes match a cold single-threaded CLI run bit for bit.
"$LOCALD" run promise-halting --seed 7 --threads 1 --format json \
  >"$WORK/cold.json"
cmp "$WORK/writer.json" "$WORK/cold.json"

# --- Writer dies hard; the follower keeps serving the last good prefix ------
kill -9 "$WRITER_PID"
WRITER_PID=""
curl -sf -X POST -d "$BODY" \
  "http://127.0.0.1:$FOLLOWER_PORT/v1/run" >"$WORK/follower_after.json"
cmp "$WORK/follower.json" "$WORK/follower_after.json"

echo "follower smoke OK: writer/follower/CLI byte-identical," \
  "second writer rejected, follower survived kill -9"
