#include "cli/bench.h"

#include <optional>

#include "exec/context.h"
#include "gen/workload.h"
#include "local/fault_profile.h"
#include "obs/process.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"
#include "support/format.h"
#include "support/schema.h"

namespace locald::cli {

namespace {

// One (family, size) cell, measured at every thread count of the grid.
struct BenchCell {
  std::string selector;  // as requested (family text)
  int size = 0;
  std::string error;  // resolution/build failure; empty otherwise
  gen::WorkloadResult result;   // from the first thread count
  // Event-engine robustness pass (bench --faults only), first thread count.
  std::optional<gen::FaultRobustnessResult> fault;
  bool threads_agree = true;    // later counts reproduced `result`
  std::vector<double> wall_ms;  // per thread-grid entry
  // Process peak RSS observed right after the cell's runs, in KiB.
  // ru_maxrss is a process-lifetime high-water mark, so the sequence is
  // monotone across cells; the jump at a cell is that cell's contribution.
  long peak_rss_kb = 0;
};

bool deterministic_fields_equal(const gen::WorkloadResult& a,
                                const gen::WorkloadResult& b) {
  if (a.family != b.family || a.nodes != b.nodes || a.edges != b.edges ||
      a.max_degree != b.max_degree || a.invariants_ok != b.invariants_ok ||
      a.invariant_failures != b.invariant_failures ||
      a.ball_classes != b.ball_classes || a.memo_hits != b.memo_hits ||
      a.panel.size() != b.panel.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.panel.size(); ++i) {
    if (a.panel[i].algorithm != b.panel[i].algorithm ||
        a.panel[i].yes_nodes != b.panel[i].yes_nodes ||
        a.panel[i].accepted != b.panel[i].accepted) {
      return false;
    }
  }
  return true;
}

bool fault_fields_equal(const gen::FaultRobustnessResult& a,
                        const gen::FaultRobustnessResult& b) {
  if (a.family != b.family || a.profile != b.profile || a.nodes != b.nodes ||
      !(a.stats == b.stats) || a.panel.size() != b.panel.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.panel.size(); ++i) {
    if (a.panel[i].algorithm != b.panel[i].algorithm ||
        a.panel[i].sync_yes != b.panel[i].sync_yes ||
        a.panel[i].faulty_yes != b.panel[i].faulty_yes ||
        a.panel[i].agree_nodes != b.panel[i].agree_nodes ||
        a.panel[i].control_identical != b.panel[i].control_identical) {
      return false;
    }
  }
  return true;
}

BenchCell run_cell(const std::string& selector, int size,
                   const BenchOptions& bench) {
  BenchCell cell;
  cell.selector = selector;
  cell.size = size;
  std::optional<gen::FamilyInstanceSpec> spec;
  try {
    spec.emplace(gen::resolve_family_text(selector, size));
  } catch (const std::exception& e) {
    cell.error = e.what();
    return cell;
  }
  std::optional<local::FaultProfileInstance> profile;
  if (!bench.faults.empty()) {
    try {
      profile.emplace(local::resolve_faults_text(bench.faults));
    } catch (const std::exception& e) {
      cell.error = e.what();
      return cell;
    }
  }
  gen::WorkloadOptions wopts;
  wopts.seed = bench.seed;
  for (std::size_t t = 0; t < bench.thread_grid.size(); ++t) {
    const int threads = bench.thread_grid[t];
    std::optional<exec::ThreadPool> pool;
    if (threads != 1) {
      pool.emplace(threads);
    }
    exec::ExecContext ctx;
    ctx.pool = pool ? &*pool : nullptr;
    const obs::Stopwatch stopwatch;
    gen::WorkloadResult result;
    std::optional<gen::FaultRobustnessResult> fault;
    try {
      obs::Span span("bench-cell",
                     selector + " threads=" + std::to_string(threads));
      result = gen::run_family_workload(*spec, wopts, ctx);
      if (profile) {
        fault.emplace(gen::run_fault_robustness(*spec, wopts, *profile, ctx));
      }
    } catch (const std::exception& e) {
      cell.error = e.what();
      return cell;
    }
    cell.wall_ms.push_back(stopwatch.elapsed_ms());
    if (t == 0) {
      cell.result = std::move(result);
      cell.fault = std::move(fault);
    } else if (!deterministic_fields_equal(cell.result, result) ||
               (cell.fault.has_value() != fault.has_value()) ||
               (cell.fault && !fault_fields_equal(*cell.fault, *fault))) {
      // The engine's central promise broke: record it as a cell failure so
      // the gate trips even without CI's external byte diff.
      cell.threads_agree = false;
    }
  }
  cell.peak_rss_kb = static_cast<long>(obs::peak_rss_kb());
  return cell;
}

void write_cell(JsonWriter& w, const BenchCell& cell,
                const BenchOptions& bench) {
  w.begin_object();
  w.key("family");
  w.value(cell.error.empty() ? cell.result.family : cell.selector);
  if (cell.size > 0) {
    w.key("size");
    w.value(cell.size);
  }
  if (!cell.error.empty()) {
    w.key("error");
    w.value(cell.error);
    w.key("ok");
    w.value(false);
    w.end_object();
    return;
  }
  const gen::WorkloadResult& r = cell.result;
  w.key("nodes");
  w.value(r.nodes);
  w.key("edges");
  w.value(r.edges);
  w.key("max_degree");
  w.value(r.max_degree);
  w.key("invariants_ok");
  w.value(r.invariants_ok);
  if (!r.invariant_failures.empty()) {
    w.key("invariant_failures");
    w.begin_array();
    for (const std::string& why : r.invariant_failures) {
      w.value(why);
    }
    w.end_array();
  }
  w.key("ball_classes");
  w.value(r.ball_classes);
  w.key("memo_hits");
  w.value(r.memo_hits);
  w.key("verdicts");
  w.begin_array();
  for (const gen::PanelVerdict& v : r.panel) {
    w.begin_object();
    w.key("algorithm");
    w.value(v.algorithm);
    w.key("yes_nodes");
    w.value(v.yes_nodes);
    w.key("accepted");
    w.value(v.accepted);
    w.end_object();
  }
  w.end_array();
  if (cell.fault) {
    const gen::FaultRobustnessResult& f = *cell.fault;
    w.key("fault");
    w.begin_object();
    w.key("profile");
    w.value(f.profile);
    w.key("rows");
    w.begin_array();
    for (const gen::FaultPanelRow& row : f.panel) {
      w.begin_object();
      w.key("algorithm");
      w.value(row.algorithm);
      w.key("sync_yes");
      w.value(row.sync_yes);
      w.key("faulty_yes");
      w.value(row.faulty_yes);
      w.key("agree_nodes");
      w.value(row.agree_nodes);
      w.key("control_identical");
      w.value(row.control_identical);
      w.end_object();
    }
    w.end_array();
    w.key("events_dispatched");
    w.value(f.stats.events_dispatched);
    w.key("messages_dropped");
    w.value(f.stats.messages_dropped);
    w.key("messages_delayed");
    w.value(f.stats.messages_delayed);
    w.key("fragments_sent");
    w.value(f.stats.fragments_sent);
    w.key("max_queue_depth");
    w.value(f.stats.max_queue_depth);
    w.key("ok");
    w.value(f.ok());
    w.end_object();
  }
  w.key("threads_agree");
  w.value(cell.threads_agree);
  w.key("ok");
  w.value(r.invariants_ok && cell.threads_agree &&
          (!cell.fault || cell.fault->ok()));
  if (bench.timing) {
    w.key("timing");
    w.begin_array();
    for (std::size_t t = 0; t < cell.wall_ms.size(); ++t) {
      w.begin_object();
      w.key("threads");
      w.value(bench.thread_grid[t]);
      w.key("wall_ms");
      w.value(cell.wall_ms[t], 3);
      w.end_object();
    }
    w.end_array();
    // Scheduling- and allocator-dependent like wall time, so --timing only.
    w.key("peak_rss_kb");
    w.value(static_cast<std::int64_t>(cell.peak_rss_kb));
  }
  w.end_object();
}

}  // namespace

const std::vector<std::string>& canonicalization_bench_families() {
  // Hypercube and complete-bipartite balls are stars with interchangeable
  // leaves (the shapes that cost k! search leaves without orbit pruning);
  // `complete-bipartite:a=1` IS a star, so its hub ball has size-1 leaves;
  // caterpillars hang leaf bundles off every spine node. These cells were
  // inexact (degree-profile fallback) before the two-tier engine.
  static const std::vector<std::string> families = {
      "hypercube",
      "complete-bipartite",
      "complete-bipartite:a=1",
      "caterpillar:legs=8",
  };
  return families;
}

int run_bench(const BenchOptions& bench_in, std::ostream& out) {
  BenchOptions bench = bench_in;
  if (bench.canon) {
    bench.families = canonicalization_bench_families();
  }
  if (bench.families.empty()) {
    for (const gen::Family& f : gen::family_registry()) {
      bench.families.push_back(f.name);
    }
  }
  if (bench.sizes.empty()) {
    bench.sizes.push_back(0);
  }
  if (bench.thread_grid.empty()) {
    bench.thread_grid.push_back(1);
  }

  const obs::Stopwatch bench_stopwatch;
  std::vector<BenchCell> cells;
  cells.reserve(bench.families.size() * bench.sizes.size());
  // Grid order is (family, size), families outermost; cells run serially
  // and parallelism lives inside the workload, keeping the JSON order and
  // the per-cell determinism independent of the machine.
  for (const std::string& selector : bench.families) {
    for (int size : bench.sizes) {
      cells.push_back(run_cell(selector, size, bench));
    }
  }
  const double total_ms = bench_stopwatch.elapsed_ms();

  bool all_ok = true;
  for (const BenchCell& cell : cells) {
    all_ok = all_ok && cell.error.empty() && cell.result.invariants_ok &&
             cell.threads_agree && (!cell.fault || cell.fault->ok());
  }

  JsonWriter w(out, 2);
  w.begin_object();
  w.key("tool");
  w.value("locald-bench");
  w.key("schema_version");
  w.value(kSchemaVersion);
  w.key("graph_core");
  w.value(kGraphCoreId);
  w.key("seed");
  w.value(bench.seed);
  if (!bench.faults.empty()) {
    w.key("faults");
    w.value(bench.faults);
  }
  w.key("panel");
  w.begin_array();
  for (const std::string& name : gen::workload_panel_names()) {
    w.value(name);
  }
  w.end_array();
  if (bench.timing) {
    // Thread counts are grid coordinates, but emitting them in the default
    // document would break the `--threads 1` vs `--threads N` byte gate —
    // so, like everything scheduling-adjacent, they ride with --timing.
    w.key("threads");
    w.begin_array();
    for (int threads : bench.thread_grid) {
      w.value(threads);
    }
    w.end_array();
    w.key("total_wall_ms");
    w.value(total_ms, 3);
    w.key("peak_rss_kb");
    w.value(static_cast<std::int64_t>(obs::peak_rss_kb()));
  }
  w.key("cells");
  w.begin_array();
  for (const BenchCell& cell : cells) {
    write_cell(w, cell, bench);
  }
  w.end_array();
  w.key("all_ok");
  w.value(all_ok);
  w.end_object();
  out << "\n";
  return all_ok ? 0 : 1;
}

}  // namespace locald::cli
