// `locald bench` — sweep the workload generator's (family x size x threads)
// grid on the execution engine and emit one machine-readable JSON document
// (the `BENCH_*.json` artifact shape).
//
// Every cell is one gen::run_family_workload measurement. The default
// document is the CI perf-trend gate's contract: all fields — verdict
// counts, ball-class censuses, serial-equivalent memo-hit counts, invariant
// audits — are pure functions of (seed, families, sizes), so two bench runs
// of the same grid must be byte-identical at ANY `--threads` value; CI
// compares `--threads 1` against `--threads $(nproc)` with a plain byte
// diff. When the thread grid holds several counts, bench additionally
// re-runs every cell at each count and fails the cell if any deterministic
// field diverges — the gate runs inside the tool as well as in CI. Wall
// times and live cache counters are real but scheduling-dependent, so they
// only appear under `--timing` (the run CI uploads as the benchmark
// artifact).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace locald::cli {

struct BenchOptions {
  std::uint64_t seed = 42;
  // `--canon`: use the pinned canonicalization-bound grid (the families
  // whose ball censuses are dominated by symmetric-ball canonicalization —
  // hypercubes, complete-bipartite, stars, caterpillars) instead of
  // `families`. This is the grid CI tracks as the BENCH_PR5 trajectory;
  // see canonicalization_bench_families().
  bool canon = false;
  // `--family` selectors in grid order; empty = every registered family.
  std::vector<std::string> families;
  // `--faults` profile selector; when non-empty every cell additionally
  // runs the event-engine fault-robustness pass (gen::run_fault_robustness)
  // under this profile, with its deterministic fields included in the
  // document and in the cross-thread-count agreement gate.
  std::string faults;
  // `--sizes` grid applied to each family's size mapping; empty = {0}
  // (family defaults).
  std::vector<int> sizes;
  // Thread counts each cell runs at (0 = hardware); the *first* count's
  // results are the document's deterministic fields, later counts must
  // reproduce them byte-for-byte. Empty = {1}.
  std::vector<int> thread_grid;
  bool timing = false;  // include the volatile wall-time/cache fields
};

// The pinned `--canon` grid: family selectors whose workload cells are
// canonicalization-bound (censuses over highly symmetric balls). Stable
// across PRs so the BENCH_* artifacts graph one trajectory.
const std::vector<std::string>& canonicalization_bench_families();

// Runs the grid and writes the JSON document to `out`. Returns the process
// exit code: 0 when every cell's invariants held and every thread count
// reproduced the same deterministic fields, 1 otherwise.
int run_bench(const BenchOptions& bench, std::ostream& out);

}  // namespace locald::cli
