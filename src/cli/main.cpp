// Entry point of the `locald` scenario runner.
//
//   locald list [--families|--faults] [--format text|csv|json]
//   locald run <scenario>... [--seed N] [--size N] [--trials N]
//              [--family spec] [--faults spec] [--threads N]
//              [--format text|csv|json]
//   locald run --all [options]
//   locald sweep <scenario> [--sizes a,b,c] [--trials N] [--seed N]
//                [--family spec] [--faults spec] [--threads N] [--timing]
//                [--format json]
//   locald bench [--family spec]... [--faults spec] [--sizes a,b,c]
//                [--seed N] [--threads a,b,c] [--timing]
//   locald serve [--port P] [--threads N] [--workers N] [--queue N]
//                [--store DIR [--follower]]
//   locald help [scenario]
//
// Exit status: 0 when every executed scenario reproduced the paper's
// prediction, 1 when any scenario reported a mismatch, 2 on usage errors.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <functional>
#include <iostream>
#include <limits>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cli/bench.h"
#include "cli/scenario.h"
#include "cli/sweep.h"
#include "exec/context.h"
#include "gen/family.h"
#include "local/fault_profile.h"
#include "obs/process.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"
#include "server/api.h"
#include "server/server.h"

namespace locald::cli {
namespace {

int usage(std::ostream& out, int status) {
  out << "locald — scenario runner for the PODC 2013 reproduction\n"
         "\n"
         "usage:\n"
         "  locald list [--format text|csv]      enumerate paper scenarios\n"
         "  locald list --families               enumerate graph families\n"
         "  locald list --faults                 enumerate fault profiles\n"
         "  locald run <scenario>... [options]   run named scenarios\n"
         "  locald run --all [options]           run the whole registry\n"
         "  locald sweep <scenario> [options]    fan one scenario across a\n"
         "                                       size grid; JSON on stdout\n"
         "  locald bench [options]               sweep the workload "
         "generator's\n"
         "                                       (family x size x threads) "
         "grid;\n"
         "                                       JSON on stdout\n"
         "  locald serve [options]               long-lived HTTP/JSON API\n"
         "                                       over the scenario registry\n"
         "  locald help [scenario]               describe a scenario\n"
         "\n"
         "options:\n"
         "  --seed N        RNG seed (default 42)\n"
         "  --size N        scenario scale knob (scenario-specific; see "
         "`locald help <scenario>`)\n"
         "  --sizes a,b,c   sweep/bench: the --size grid (default: scenario "
         "or family\n"
         "                  default size)\n"
         "  --trials N      sample count for randomized scenarios\n"
         "  --family F      graph-family selector `name:k=v,...` (see "
         "`locald list\n"
         "                  --families`); family-aware scenarios only; "
         "repeatable for bench\n"
         "  --faults P      fault-profile selector `name:k=v,...` (see "
         "`locald list\n"
         "                  --faults`); fault-aware scenarios only; the "
         "event engine's\n"
         "                  schedule is seeded, so results stay bit-"
         "identical\n"
         "  --canon         bench: the pinned canonicalization-bound grid "
         "(symmetric-ball\n"
         "                  families exercising the census kernel)\n"
         "  --threads N     execution-engine threads (0 = all hardware "
         "threads; default 1);\n"
         "                  results are bit-identical at every thread "
         "count; bench takes a\n"
         "                  comma-separated grid\n"
         "  --timing        include wall-time columns (run tables) or "
         "wall-time and\n"
         "                  cache-hit fields (sweep JSON); scheduling-"
         "dependent, so off\n"
         "                  by default — default output is a pure function "
         "of the inputs\n"
         "  --format F      run/list: text (default), csv, or json (run: "
         "one scenario);\n"
         "                  sweep: json\n"
         "  --port P        serve only: TCP port on 127.0.0.1 (default "
         "8080; 0 = ephemeral)\n"
         "  --workers N     serve only: concurrent request handlers "
         "(default 4)\n"
         "  --queue N       serve only: accepted-connection bound; beyond "
         "it requests\n"
         "                  are shed with 503 + Retry-After (default 64)\n"
         "  --store DIR     serve only: persistent verdict store backing "
         "the shared\n"
         "                  cache; a restarted server starts warm. One "
         "process per\n"
         "                  store is the writer (it holds the write "
         "lease); start\n"
         "                  more with --follower\n"
         "  --follower      serve only: open --store DIR read-only and "
         "follow the\n"
         "                  writer's appends (tail refresh on miss); a "
         "second writer\n"
         "                  without this flag is rejected at startup\n"
         "  --trace-out F   run/sweep/bench/serve: collect stage spans and "
         "write Chrome\n"
         "                  trace_event JSON to F (open in Perfetto or "
         "chrome://tracing);\n"
         "                  the deterministic stdout document is unchanged\n"
         "  --access-log F  serve only: append one NDJSON line per request "
         "to F (method,\n"
         "                  path, status, bytes, duration, worker, cache "
         "hits)\n";
  return status;
}

// Flag values parse through the shared strict reader `locald::parse_int`
// (support/format.h), the same one family selectors use.

// Comma-separated list of non-negative integers (--sizes, bench --threads);
// nullopt on an empty list or any malformed/negative item, with the
// offender reported through `bad_item` for the error message.
std::optional<std::vector<int>> parse_count_list(const std::string& text,
                                                 std::string* bad_item) {
  std::vector<int> out;
  std::istringstream list(text);
  std::string item;
  while (std::getline(list, item, ',')) {
    const auto parsed = parse_int(item);
    if (!parsed || *parsed < 0 ||
        *parsed > std::numeric_limits<int>::max()) {
      *bad_item = item;
      return std::nullopt;
    }
    out.push_back(static_cast<int>(*parsed));
  }
  if (out.empty()) {
    *bad_item = text;
    return std::nullopt;
  }
  return out;
}

int list_scenarios(const ScenarioOptions& opts, const std::string& format) {
  if (format == "json") {
    // The same bytes GET /v1/scenarios serves (CI diff-checks this).
    std::cout << server::scenarios_document();
    return 0;
  }
  TextTable table({"scenario", "paper", "summary"});
  for (const Scenario& s : scenario_registry()) {
    table.add_row({s.name, s.paper_ref, s.summary});
  }
  if (opts.format == OutputFormat::csv) {
    std::cout << table.render_csv();
  } else {
    std::cout << table.render();
  }
  return 0;
}

int list_families(const ScenarioOptions& opts, const std::string& format) {
  if (format == "json") {
    // The same bytes GET /v1/families serves (CI diff-checks this).
    std::cout << server::families_document();
    return 0;
  }
  TextTable table({"family", "parameters", "random", "summary"});
  for (const gen::Family& f : gen::family_registry()) {
    std::vector<std::string> params;
    for (const gen::ParamSpec& p : f.params) {
      params.push_back(cat(p.name, "=", p.default_value));
    }
    table.add_row({f.name, join(params, ","), f.randomized ? "yes" : "no",
                   f.summary});
  }
  if (opts.format == OutputFormat::csv) {
    std::cout << table.render_csv();
  } else {
    std::cout << table.render();
  }
  return 0;
}

int list_faults(const ScenarioOptions& opts, const std::string& format) {
  if (format == "json") {
    // The same bytes GET /v1/faults serves (CI diff-checks this).
    std::cout << server::faults_document();
    return 0;
  }
  TextTable table({"profile", "parameters", "summary"});
  for (const local::FaultProfile& p : local::fault_registry()) {
    std::vector<std::string> params;
    for (const local::FaultParamSpec& spec : p.params) {
      params.push_back(cat(spec.name, "=", spec.default_value));
    }
    table.add_row({p.name, join(params, ","), p.summary});
  }
  if (opts.format == OutputFormat::csv) {
    std::cout << table.render_csv();
  } else {
    std::cout << table.render();
  }
  return 0;
}

// `run --format json`: one scenario, the same document POST /v1/run returns
// for the same (scenario, seed, size, trials) — CI byte-compares the two.
int run_scenario_json(const std::string& name, const ScenarioOptions& base,
                      int threads) {
  const Scenario* scenario = find_scenario(name);
  if (scenario == nullptr) {
    std::cerr << "unknown scenario: " << name << " (see `locald list`)\n";
    return 2;
  }
  if (!base.family.empty() && scenario->family_help.empty()) {
    std::cerr << "scenario " << name << " does not take --family (see "
              << "`locald help " << name << "`)\n";
    return 2;
  }
  if (!base.faults.empty() && scenario->fault_help.empty()) {
    std::cerr << "scenario " << name << " does not take --faults (see "
              << "`locald help " << name << "`)\n";
    return 2;
  }
  std::optional<exec::ThreadPool> pool;
  if (threads != 1) {
    pool.emplace(threads);
  }
  exec::VerdictCache cache;
  server::RunRequest request;
  request.scenario = name;
  request.seed = base.seed;
  request.size = base.size;
  request.trials = base.trials;
  request.family = base.family;
  request.fault_profile = base.faults;
  exec::ExecContext ctx;
  ctx.pool = pool ? &*pool : nullptr;
  ctx.cache = &cache;
  bool ok = false;
  std::cout << server::run_document(request, ctx, &ok);
  return ok ? 0 : 1;
}

std::atomic<bool> g_shutdown{false};
void on_shutdown_signal(int) { g_shutdown.store(true); }

int run_serve(const server::ServeOptions& serve_opts) {
  server::Server srv(serve_opts);
  try {
    srv.start();
  } catch (const std::exception& e) {
    std::cerr << "serve: " << e.what() << "\n";
    return 2;
  }
  std::cout << "locald serve: http://" << serve_opts.host << ":" << srv.port()
            << " (workers=" << serve_opts.workers
            << ", queue=" << serve_opts.max_queue;
  if (!serve_opts.store_path.empty()) {
    std::cout << ", store=" << serve_opts.store_path << " ("
              << (serve_opts.store_follower ? "follower" : "writer") << ")";
  }
  std::cout << "); Ctrl-C to stop\n" << std::flush;
  std::signal(SIGINT, on_shutdown_signal);
  std::signal(SIGTERM, on_shutdown_signal);
  while (!g_shutdown.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  srv.stop();
  std::cout << "locald serve: stopped\n";
  return 0;
}

int help_scenario(const std::string& name) {
  const Scenario* s = find_scenario(name);
  if (s == nullptr) {
    std::cerr << "unknown scenario: " << name << " (see `locald list`)\n";
    return 2;
  }
  std::cout << s->name << " — " << s->paper_ref << "\n  " << s->summary
            << "\n  --size: "
            << (s->size_help.empty() ? "unused" : s->size_help)
            << "\n  --family: "
            << (s->family_help.empty() ? "unsupported" : s->family_help)
            << "\n  --faults: "
            << (s->fault_help.empty() ? "unsupported" : s->fault_help)
            << "\n";
  return 0;
}

int run_scenarios(const std::vector<std::string>& names,
                  const ScenarioOptions& base_opts, int threads) {
  std::optional<exec::ThreadPool> pool;
  if (threads != 1) {
    pool.emplace(threads);
  }
  bool all_ok = true;
  for (const std::string& name : names) {
    const Scenario* s = find_scenario(name);
    if (s == nullptr) {
      std::cerr << "unknown scenario: " << name << " (see `locald list`)\n";
      return 2;
    }
    if (!base_opts.family.empty() && s->family_help.empty()) {
      std::cerr << "scenario " << name << " does not take --family (see "
                << "`locald help " << name << "`)\n";
      return 2;
    }
    if (!base_opts.faults.empty() && s->fault_help.empty()) {
      std::cerr << "scenario " << name << " does not take --faults (see "
                << "`locald help " << name << "`)\n";
      return 2;
    }
    // Fresh cache per scenario: memoized verdicts are keyed by algorithm
    // name, so scoping the cache to one scenario run keeps name reuse
    // across scenarios harmless.
    exec::VerdictCache cache;
    ScenarioOptions opts = base_opts;
    opts.exec.pool = pool ? &*pool : nullptr;
    opts.exec.cache = &cache;
    const obs::Stopwatch stopwatch;
    if (opts.format == OutputFormat::text) {
      std::cout << "=== " << s->name << " (" << s->paper_ref << ") ===\n\n";
    }
    // A throwing scenario counts as a mismatch but must not take down the
    // rest of a --all run.
    bool ok = false;
    try {
      obs::Span span("scenario", s->name);
      ok = s->run(opts, std::cout);
    } catch (const std::exception& e) {
      std::cerr << "[" << s->name << "] error: " << e.what() << "\n";
    }
    const double secs = stopwatch.elapsed_seconds();
    if (opts.format == OutputFormat::text) {
      std::cout << "[" << s->name << "] "
                << (ok ? "reproduced" : "MISMATCH with the paper") << " in "
                << fixed(secs, 2) << "s\n\n";
    } else {
      std::cout << "# [" << s->name << "] " << (ok ? "reproduced" : "MISMATCH")
                << "\n";
    }
    all_ok = all_ok && ok;
  }
  return all_ok ? 0 : 1;
}

int main_impl(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    return usage(std::cerr, 2);
  }
  const std::string command = args.front();
  args.erase(args.begin());

  ScenarioOptions opts;
  std::vector<std::string> positional;
  std::vector<int> sizes;
  std::vector<int> thread_grid;         // bench sweeps it; others take one
  std::vector<std::string> families;    // --family, repeatable for bench
  std::string format;
  int port = -1;     // serve only; -1 = default
  int workers = -1;  // serve only
  int queue = -1;    // serve only
  std::string store;     // serve only; persistent verdict-store directory
  bool follower = false;  // serve only; open --store read-only
  std::string trace_out;   // run/sweep/bench/serve; Chrome trace JSON path
  std::string access_log;  // serve only; NDJSON request log path
  bool run_all = false;
  bool timing = false;
  bool canon = false;          // bench --canon
  bool families_flag = false;  // list --families
  bool faults_flag = false;    // list --faults (no selector value)
  bool seed_set = false;  // an explicit --seed 42 must still be rejectable
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto take_value = [&]() -> std::optional<std::string> {
      if (i + 1 >= args.size()) return std::nullopt;
      return args[++i];
    };
    if (arg == "--all") {
      run_all = true;
    } else if (arg == "--timing") {
      timing = true;
    } else if (arg == "--canon") {
      canon = true;
    } else if (arg == "--families") {
      families_flag = true;
    } else if (arg == "--faults") {
      // Value-less `--faults` lists the profile registry (`locald list
      // --faults`, mirroring --families); with a selector it picks the
      // profile for run/sweep/bench.
      if (i + 1 >= args.size() ||
          (!args[i + 1].empty() && args[i + 1][0] == '-')) {
        faults_flag = true;
      } else {
        opts.faults = args[++i];
      }
    } else if (arg == "--family") {
      const auto value = take_value();
      if (!value || value->empty()) {
        std::cerr << "--family needs a selector, e.g. cycle or "
                     "torus:width=8,height=6\n";
        return 2;
      }
      families.push_back(*value);
    } else if (arg == "--port" || arg == "--workers" || arg == "--queue") {
      const auto value = take_value();
      const auto parsed = value ? parse_int(*value) : std::nullopt;
      if (!parsed || *parsed < 0 || *parsed > 65535) {
        std::cerr << arg << " needs an integer in [0, 65535]\n";
        return 2;
      }
      if (arg == "--port") {
        port = static_cast<int>(*parsed);
      } else if (arg == "--workers") {
        workers = static_cast<int>(*parsed);
      } else {
        queue = static_cast<int>(*parsed);
      }
    } else if (arg == "--store") {
      const auto value = take_value();
      if (!value || value->empty()) {
        std::cerr << "--store needs a directory path\n";
        return 2;
      }
      store = *value;
    } else if (arg == "--follower") {
      follower = true;
    } else if (arg == "--trace-out") {
      const auto value = take_value();
      if (!value || value->empty()) {
        std::cerr << "--trace-out needs a file path\n";
        return 2;
      }
      trace_out = *value;
    } else if (arg == "--access-log") {
      const auto value = take_value();
      if (!value || value->empty()) {
        std::cerr << "--access-log needs a file path\n";
        return 2;
      }
      access_log = *value;
    } else if (arg == "--seed" || arg == "--size" || arg == "--trials") {
      const auto value = take_value();
      const auto parsed = value ? parse_int(*value) : std::nullopt;
      if (!parsed || *parsed < 0) {
        std::cerr << arg << " needs a non-negative integer\n";
        return 2;
      }
      if (arg == "--seed") {
        opts.seed = static_cast<std::uint64_t>(*parsed);
        seed_set = true;
      } else if (arg == "--size") {
        opts.size = static_cast<int>(*parsed);
      } else {
        opts.trials = static_cast<int>(*parsed);
      }
    } else if (arg == "--threads" || arg == "--sizes") {
      // Both take comma-separated count lists (--threads is a single count
      // everywhere except bench, enforced after parsing). For --threads,
      // 0 means "all hardware threads"; anything far beyond the machine is
      // a typo, not a request for a thousand OS threads, and the floor of
      // 32 keeps cross-thread-count determinism checks runnable on small
      // boxes.
      const auto value = take_value();
      std::string bad_item;
      std::optional<std::vector<int>> parsed;
      if (value) {
        parsed = parse_count_list(*value, &bad_item);
      }
      if (!parsed) {
        std::cerr << arg << " needs a comma-separated list of non-negative "
                  << "integers";
        if (value) {
          std::cerr << ", got `" << bad_item << "`";
        }
        std::cerr << "\n";
        return 2;
      }
      if (arg == "--sizes") {
        sizes = *parsed;
      } else {
        const long long max_threads =
            std::max(32LL, 4LL * exec::ThreadPool::hardware_parallelism());
        for (int threads : *parsed) {
          if (threads > max_threads) {
            std::cerr << "--threads " << threads
                      << " exceeds the sane maximum " << max_threads
                      << "; use 0 for all hardware threads\n";
            return 2;
          }
        }
        thread_grid = *parsed;
      }
    } else if (arg == "--format") {
      const auto value = take_value();
      if (!value || (*value != "text" && *value != "csv" && *value != "json")) {
        std::cerr << "--format needs `text`, `csv`, or `json`\n";
        return 2;
      }
      format = *value;
      opts.format = *value == "csv" ? OutputFormat::csv : OutputFormat::text;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      return usage(std::cerr, 2);
    } else {
      positional.push_back(arg);
    }
  }

  if (command != "serve" &&
      (port != -1 || workers != -1 || queue != -1 || !store.empty() ||
       follower)) {
    std::cerr << "--port/--workers/--queue/--store/--follower are serve "
                 "options\n";
    return 2;
  }
  if (follower && store.empty()) {
    std::cerr << "--follower requires --store DIR (the shared store to "
                 "follow)\n";
    return 2;
  }
  if (command != "serve" && !access_log.empty()) {
    std::cerr << "--access-log is a serve option\n";
    return 2;
  }
  if (!trace_out.empty() && command != "run" && command != "sweep" &&
      command != "bench" && command != "serve") {
    std::cerr << "--trace-out applies to run, sweep, bench, and serve\n";
    return 2;
  }
  // Traced commands: collect spans for exactly the command's duration and
  // write the Chrome trace on the way out. The deterministic stdout
  // document is untouched — the trace is its own file.
  const auto with_trace = [&](const std::function<int()>& fn) -> int {
    if (trace_out.empty()) return fn();
    obs::tracing_start();
    int code = 2;
    try {
      code = fn();
    } catch (...) {
      std::string ignored;
      obs::tracing_stop_to_file(trace_out, &ignored);
      throw;
    }
    std::string error;
    if (!obs::tracing_stop_to_file(trace_out, &error)) {
      std::cerr << "trace: " << error << "\n";
      if (code == 0) code = 2;
    }
    return code;
  };
  if (command != "bench" && thread_grid.size() > 1) {
    std::cerr << "--threads takes a comma-separated grid only for bench\n";
    return 2;
  }
  if (command != "list" && families_flag) {
    std::cerr << "--families lists the family registry: `locald list "
                 "--families`\n";
    return 2;
  }
  if (command != "list" && faults_flag) {
    std::cerr << "--faults without a selector lists the profile registry: "
                 "`locald list --faults`\n";
    return 2;
  }
  if (command != "bench" && families.size() > 1) {
    std::cerr << "--family is repeatable only for bench\n";
    return 2;
  }
  if (command != "bench" && canon) {
    std::cerr << "--canon selects the canonicalization-bound bench grid: "
                 "`locald bench --canon`\n";
    return 2;
  }
  if ((command == "list" || command == "help") && !families.empty()) {
    std::cerr << "--family selects a workload for run/sweep/bench; to "
                 "enumerate families use `locald list --families`\n";
    return 2;
  }
  if ((command == "list" || command == "help") && !opts.faults.empty()) {
    std::cerr << "--faults with a selector applies to run/sweep/bench; to "
                 "enumerate profiles use `locald list --faults`\n";
    return 2;
  }
  const int threads = thread_grid.empty() ? 1 : thread_grid.front();
  if (!families.empty()) {
    opts.family = families.front();
  }
  if (command == "list") {
    if (families_flag && faults_flag) {
      std::cerr << "--families and --faults list different registries; "
                   "pick one\n";
      return 2;
    }
    if (families_flag) return list_families(opts, format);
    if (faults_flag) return list_faults(opts, format);
    return list_scenarios(opts, format);
  }
  if (command == "help" || command == "--help" || command == "-h") {
    if (positional.empty()) {
      return usage(std::cout, 0);
    }
    return help_scenario(positional.front());
  }
  if (command == "run") {
    std::vector<std::string> names = positional;
    if (run_all) {
      for (const Scenario& s : scenario_registry()) {
        if (std::find(names.begin(), names.end(), s.name) == names.end()) {
          names.push_back(s.name);
        }
      }
    }
    if (names.empty()) {
      std::cerr << "run needs scenario names or --all\n";
      return 2;
    }
    if (!sizes.empty()) {
      std::cerr << "--sizes is a sweep option; run takes a single --size\n";
      return 2;
    }
    opts.timing = timing;
    if (format == "json") {
      if (names.size() != 1) {
        std::cerr << "run --format json takes exactly one scenario\n";
        return 2;
      }
      if (timing) {
        // The json document is the serving layer's byte-identity contract;
        // wall-clock fields have no place in it.
        std::cerr << "--timing is not available with --format json\n";
        return 2;
      }
      return with_trace(
          [&] { return run_scenario_json(names.front(), opts, threads); });
    }
    return with_trace([&] { return run_scenarios(names, opts, threads); });
  }
  if (command == "serve") {
    if (!positional.empty() || run_all || timing || !sizes.empty() ||
        !format.empty() || opts.size != 0 || opts.trials != 0 || seed_set ||
        !families.empty() || !opts.faults.empty()) {
      std::cerr << "serve takes only --port, --threads, --workers, --queue, "
                   "--store, --follower, --trace-out, --access-log\n";
      return 2;
    }
    server::ServeOptions serve_opts;
    if (port != -1) serve_opts.port = port;
    serve_opts.threads = threads;
    serve_opts.store_path = store;
    serve_opts.store_follower = follower;
    serve_opts.trace_out = trace_out;
    serve_opts.access_log_path = access_log;
    if (workers != -1) {
      if (workers == 0) {
        std::cerr << "--workers must be at least 1\n";
        return 2;
      }
      serve_opts.workers = workers;
    }
    if (queue != -1) {
      if (queue == 0) {
        std::cerr << "--queue must be at least 1\n";
        return 2;
      }
      serve_opts.max_queue = queue;
    }
    return run_serve(serve_opts);
  }
  if (command == "sweep") {
    if (positional.size() != 1) {
      std::cerr << "sweep needs exactly one scenario name\n";
      return 2;
    }
    if (!format.empty() && format != "json") {
      std::cerr << "sweep emits json only\n";
      return 2;
    }
    if (opts.size != 0) {
      std::cerr << "--size is a run option; sweep takes a --sizes grid\n";
      return 2;
    }
    SweepOptions sweep;
    sweep.seed = opts.seed;
    sweep.sizes = sizes;
    sweep.trials = opts.trials;
    sweep.family = opts.family;
    sweep.faults = opts.faults;
    sweep.threads = threads;
    sweep.timing = timing;
    return with_trace(
        [&] { return run_sweep(positional.front(), sweep, std::cout); });
  }
  if (command == "bench") {
    if (!positional.empty() || run_all || !format.empty() || opts.size != 0 ||
        opts.trials != 0) {
      std::cerr << "bench takes --canon, --family (repeatable), --faults, "
                   "--sizes, --seed, --threads a,b,c, --timing\n";
      return 2;
    }
    if (canon && !families.empty()) {
      std::cerr << "--canon is a pinned grid; drop --family or --canon\n";
      return 2;
    }
    BenchOptions bench;
    bench.seed = opts.seed;
    bench.canon = canon;
    bench.families = families;
    bench.faults = opts.faults;
    bench.sizes = sizes;
    bench.thread_grid = thread_grid;
    bench.timing = timing;
    return with_trace([&] { return run_bench(bench, std::cout); });
  }
  std::cerr << "unknown command: " << command << "\n";
  return usage(std::cerr, 2);
}

}  // namespace
}  // namespace locald::cli

int main(int argc, char** argv) {
  locald::obs::anchor_uptime();
  return locald::cli::main_impl(argc, argv);
}
