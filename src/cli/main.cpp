// Entry point of the `locald` scenario runner.
//
//   locald list [--format text|csv]
//   locald run <scenario>... [--seed N] [--size N] [--trials N]
//              [--format text|csv]
//   locald run --all [options]
//   locald help [scenario]
//
// Exit status: 0 when every executed scenario reproduced the paper's
// prediction, 1 when any scenario reported a mismatch, 2 on usage errors.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "cli/scenario.h"

namespace locald::cli {
namespace {

int usage(std::ostream& out, int status) {
  out << "locald — scenario runner for the PODC 2013 reproduction\n"
         "\n"
         "usage:\n"
         "  locald list [--format text|csv]      enumerate paper scenarios\n"
         "  locald run <scenario>... [options]   run named scenarios\n"
         "  locald run --all [options]           run the whole registry\n"
         "  locald help [scenario]               describe a scenario\n"
         "\n"
         "options:\n"
         "  --seed N        RNG seed (default 42)\n"
         "  --size N        scenario scale knob (scenario-specific; see "
         "`locald help <scenario>`)\n"
         "  --trials N      sample count for randomized scenarios\n"
         "  --format F      text (default) or csv\n";
  return status;
}

std::optional<long long> parse_int(const std::string& text) {
  try {
    std::size_t used = 0;
    const long long value = std::stoll(text, &used);
    if (used != text.size()) return std::nullopt;
    return value;
  } catch (...) {
    return std::nullopt;
  }
}

int list_scenarios(const ScenarioOptions& opts) {
  TextTable table({"scenario", "paper", "summary"});
  for (const Scenario& s : scenario_registry()) {
    table.add_row({s.name, s.paper_ref, s.summary});
  }
  if (opts.format == OutputFormat::csv) {
    std::cout << table.render_csv();
  } else {
    std::cout << table.render();
  }
  return 0;
}

int help_scenario(const std::string& name) {
  const Scenario* s = find_scenario(name);
  if (s == nullptr) {
    std::cerr << "unknown scenario: " << name << " (see `locald list`)\n";
    return 2;
  }
  std::cout << s->name << " — " << s->paper_ref << "\n  " << s->summary
            << "\n  --size: "
            << (s->size_help.empty() ? "unused" : s->size_help) << "\n";
  return 0;
}

int run_scenarios(const std::vector<std::string>& names,
                  const ScenarioOptions& opts) {
  bool all_ok = true;
  for (const std::string& name : names) {
    const Scenario* s = find_scenario(name);
    if (s == nullptr) {
      std::cerr << "unknown scenario: " << name << " (see `locald list`)\n";
      return 2;
    }
    const auto t0 = std::chrono::steady_clock::now();
    if (opts.format == OutputFormat::text) {
      std::cout << "=== " << s->name << " (" << s->paper_ref << ") ===\n\n";
    }
    // A throwing scenario counts as a mismatch but must not take down the
    // rest of a --all run.
    bool ok = false;
    try {
      ok = s->run(opts, std::cout);
    } catch (const std::exception& e) {
      std::cerr << "[" << s->name << "] error: " << e.what() << "\n";
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (opts.format == OutputFormat::text) {
      std::cout << "[" << s->name << "] "
                << (ok ? "reproduced" : "MISMATCH with the paper") << " in "
                << fixed(secs, 2) << "s\n\n";
    } else {
      std::cout << "# [" << s->name << "] " << (ok ? "reproduced" : "MISMATCH")
                << "\n";
    }
    all_ok = all_ok && ok;
  }
  return all_ok ? 0 : 1;
}

int main_impl(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    return usage(std::cerr, 2);
  }
  const std::string command = args.front();
  args.erase(args.begin());

  ScenarioOptions opts;
  std::vector<std::string> positional;
  bool run_all = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto take_value = [&]() -> std::optional<std::string> {
      if (i + 1 >= args.size()) return std::nullopt;
      return args[++i];
    };
    if (arg == "--all") {
      run_all = true;
    } else if (arg == "--seed" || arg == "--size" || arg == "--trials") {
      const auto value = take_value();
      const auto parsed = value ? parse_int(*value) : std::nullopt;
      if (!parsed || *parsed < 0) {
        std::cerr << arg << " needs a non-negative integer\n";
        return 2;
      }
      if (arg == "--seed") {
        opts.seed = static_cast<std::uint64_t>(*parsed);
      } else if (arg == "--size") {
        opts.size = static_cast<int>(*parsed);
      } else {
        opts.trials = static_cast<int>(*parsed);
      }
    } else if (arg == "--format") {
      const auto value = take_value();
      if (!value || (*value != "text" && *value != "csv")) {
        std::cerr << "--format needs `text` or `csv`\n";
        return 2;
      }
      opts.format = *value == "csv" ? OutputFormat::csv : OutputFormat::text;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      return usage(std::cerr, 2);
    } else {
      positional.push_back(arg);
    }
  }

  if (command == "list") {
    return list_scenarios(opts);
  }
  if (command == "help" || command == "--help" || command == "-h") {
    if (positional.empty()) {
      return usage(std::cout, 0);
    }
    return help_scenario(positional.front());
  }
  if (command == "run") {
    std::vector<std::string> names = positional;
    if (run_all) {
      for (const Scenario& s : scenario_registry()) {
        if (std::find(names.begin(), names.end(), s.name) == names.end()) {
          names.push_back(s.name);
        }
      }
    }
    if (names.empty()) {
      std::cerr << "run needs scenario names or --all\n";
      return 2;
    }
    return run_scenarios(names, opts);
  }
  std::cerr << "unknown command: " << command << "\n";
  return usage(std::cerr, 2);
}

}  // namespace
}  // namespace locald::cli

int main(int argc, char** argv) { return locald::cli::main_impl(argc, argv); }
