#include "cli/scenario.h"

#include "cli/scenarios.h"

namespace locald::cli {

const std::vector<Scenario>& scenario_registry() {
  static const std::vector<Scenario> registry = [] {
    std::vector<Scenario> all;
    for (auto* section : {&matrix_scenarios, &tree_scenarios,
                          &halting_scenarios, &gen_scenarios,
                          &fault_scenarios}) {
      auto scenarios = (*section)();
      all.insert(all.end(), std::make_move_iterator(scenarios.begin()),
                 std::make_move_iterator(scenarios.end()));
    }
    return all;
  }();
  return registry;
}

const Scenario* find_scenario(const std::string& name) {
  for (const Scenario& s : scenario_registry()) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

void emit_table(std::ostream& out, const ScenarioOptions& opts,
                const std::string& title, const TextTable& table) {
  if (opts.format == OutputFormat::csv) {
    out << "# " << title << '\n' << table.render_csv();
  } else {
    out << title << '\n' << table.render() << '\n';
  }
}

void emit_note(std::ostream& out, const ScenarioOptions& opts,
               const std::string& text) {
  if (opts.format == OutputFormat::text) {
    out << text << '\n';
  }
}

}  // namespace locald::cli
