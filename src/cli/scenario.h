// The scenario registry behind the `locald` command-line driver.
//
// Every paper artifact the benches and examples reproduce — the Section-1.1
// separation matrix, the Figure-1 layered trees, the Figure-2 G(M, r)
// construction, the Figure-3 pyramids, the Corollary-1 randomized decider,
// and the two warm-up promise problems — is registered here under a stable
// name. `locald list` enumerates the registry; `locald run <name>` executes
// one scenario end to end with selectable sizes, seeds, and text/CSV output,
// so the eight ad-hoc bench main()s share a single parameterized harness.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "exec/context.h"
#include "support/format.h"

namespace locald::cli {

enum class OutputFormat { text, csv };

// Knobs shared by every scenario. `size` is the scenario's principal scale
// parameter (documented per scenario in `Scenario::size_help`); 0 means
// "use the scenario default", matching the bench binaries.
struct ScenarioOptions {
  std::uint64_t seed = 42;
  int size = 0;
  int trials = 0;
  // `--family name:k=v,...` selector (gen/family.h); empty = the scenario's
  // built-in topology. Only meaningful for scenarios declaring
  // `family_help`; the driver and the HTTP API reject it elsewhere.
  std::string family;
  // `--faults name:k=v,...` selector (local/fault_profile.h); empty = the
  // scenario's default profile. Only meaningful for scenarios declaring
  // `fault_help`; the driver and the HTTP API reject it elsewhere.
  std::string faults;
  OutputFormat format = OutputFormat::text;
  // Include wall-clock columns in scenario tables (`locald run --timing`).
  // Scheduling-dependent, so off by default: the default output of every
  // scenario is a pure function of (seed, size, trials), which the serving
  // layer's byte-identity contract and CI's serve smoke both gate on.
  bool timing = false;
  // Execution engine handed down by the driver (--threads); the default is
  // the serial engine. Scenarios route their hot paths through it; verdicts
  // must not depend on the thread count (`locald sweep` gates on this).
  exec::ExecContext exec;
};

// A named, runnable paper artifact.
struct Scenario {
  std::string name;       // stable CLI name, e.g. "fig1-layered-trees"
  std::string paper_ref;  // where it lives in the paper, e.g. "Fig. 1, Sec. 2"
  std::string summary;      // one line for `locald list`
  std::string size_help;    // what --size means here (empty: unused)
  std::string family_help;  // what --family selects here (empty: unsupported)
  // Runs the scenario, writing tables to `out`. Returns true when every
  // reproduced verdict matched the paper's prediction.
  std::function<bool(const ScenarioOptions&, std::ostream&)> run;
  // What --faults selects here (empty: unsupported). Declared after `run`
  // so the registry's positional aggregate initializers — written before
  // fault profiles existed — keep their meaning; scenarios opting in set
  // the field by name.
  std::string fault_help;
};

// The full registry, in paper order.
const std::vector<Scenario>& scenario_registry();

// Lookup by CLI name; nullptr when unknown.
const Scenario* find_scenario(const std::string& name);

// Shared table emission: a titled aligned table in text mode, a
// `# title`-prefixed RFC-4180 block in CSV mode.
void emit_table(std::ostream& out, const ScenarioOptions& opts,
                const std::string& title, const TextTable& table);

// A plain narrative line; suppressed in CSV mode so output stays parseable.
void emit_note(std::ostream& out, const ScenarioOptions& opts,
               const std::string& text);

}  // namespace locald::cli
