// Internal to src/cli: per-section scenario constructors assembled by
// scenario_registry(). Grouped by the part of the paper they reproduce so
// each translation unit pulls in only one subsystem cluster.
#pragma once

#include <vector>

#include "cli/scenario.h"

namespace locald::cli {

std::vector<Scenario> matrix_scenarios();   // Section 1.1 (Table 1)
std::vector<Scenario> tree_scenarios();     // Section 2 (Fig. 1, promise cycles)
std::vector<Scenario> halting_scenarios();  // Section 3 + Appendix A
std::vector<Scenario> gen_scenarios();      // gen/ workload-generator families
std::vector<Scenario> fault_scenarios();    // event-engine fault robustness

}  // namespace locald::cli
