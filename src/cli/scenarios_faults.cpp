// The fault-robustness scenario: sync engine vs event-driven engine under a
// selectable fault profile, per family cell.
//
// The paper's model assumes clean synchronous rounds; the follow-up papers
// probe verdict sensitivity to model perturbations. This scenario makes the
// network itself the perturbed axis: the Id-oblivious panel runs over a
// generated family instance through the clean synchronous engine and
// through the event-driven engine (local/event_engine.h) under a `--faults`
// profile, and the table reports per-algorithm verdict agreement plus the
// simulated schedule's deterministic statistics. A `none`-profile control
// run must reproduce the sync engine verbatim — that equivalence is the
// scenario's pass criterion (divergence under real faults is the data, not
// a failure).
#include "cli/scenarios.h"
#include "gen/workload.h"
#include "local/fault_profile.h"
#include "support/rng.h"

namespace locald::cli {
namespace {

constexpr const char* kDefaultFamily = "cycle";
constexpr const char* kDefaultFaults = "chaos";

// --size is the family's target node count; --trials audits that many
// instances (per-instance seeds derived by counter stream, so the grid of
// trials is scheduling-independent).
bool run_fault_robustness(const ScenarioOptions& opts, std::ostream& out) {
  const gen::FamilyInstanceSpec spec = gen::resolve_family_text(
      opts.family.empty() ? kDefaultFamily : opts.family, opts.size);
  const local::FaultProfileInstance profile = local::resolve_faults_text(
      opts.faults.empty() ? kDefaultFaults : opts.faults);
  const int trials = opts.trials == 0 ? 1 : opts.trials;
  bool ok = true;

  TextTable table({"instance", "algorithm", "sync yes", "faulty yes",
                   "agree", "control"});
  TextTable schedule({"instance", "seed", "events", "delivered", "dropped",
                      "delayed", "fragments", "retransmits", "max queue"});
  for (int t = 0; t < trials; ++t) {
    gen::WorkloadOptions wopts;
    // The same per-trial stream plane the family-workload scenario uses:
    // trials stay independent without correlating adjacent user seeds.
    wopts.seed = t == 0 ? opts.seed
                        : Rng::stream(opts.seed, 0xFA71171E5ULL,
                                      static_cast<std::uint64_t>(t))
                              .next_u64();
    const gen::FaultRobustnessResult r =
        gen::run_fault_robustness(spec, wopts, profile, opts.exec);
    ok = ok && r.ok();
    for (const gen::FaultPanelRow& row : r.panel) {
      table.add_row({cat("#", t), row.algorithm, cat(row.sync_yes),
                     cat(row.faulty_yes),
                     cat(row.agree_nodes, "/", r.nodes),
                     row.control_identical ? "identical" : "DIVERGED"});
    }
    schedule.add_row({cat("#", t), cat(wopts.seed),
                      cat(r.stats.events_dispatched),
                      cat(r.stats.messages_delivered),
                      cat(r.stats.messages_dropped),
                      cat(r.stats.messages_delayed),
                      cat(r.stats.fragments_sent),
                      cat(r.stats.retransmissions),
                      cat(r.stats.max_queue_depth)});
  }
  emit_table(out, opts,
             cat("fault robustness: ", spec.canonical(), " under ",
                 profile.canonical()),
             table);
  emit_table(out, opts, "event-engine schedule (seeded, deterministic)",
             schedule);
  emit_note(out, opts,
            "the `none` control run must reproduce the synchronous engine "
            "verbatim; the faulty columns and the schedule table are pure "
            "functions of (family, profile, seed) at any --threads value.");
  return ok;
}

}  // namespace

std::vector<Scenario> fault_scenarios() {
  Scenario s;
  s.name = "fault-robustness";
  s.paper_ref = "robustness follow-ups";
  s.summary =
      "sync vs event-driven verdicts per family cell under a fault profile";
  s.size_help =
      "target node count for the family's size mapping (0 = family defaults)";
  s.family_help =
      "any registered family (default cycle; see `locald list --families`)";
  s.fault_help =
      "any registered profile (default chaos; see `locald list --faults`)";
  s.run = run_fault_robustness;
  return {std::move(s)};
}

}  // namespace locald::cli
