// The workload-generator scenario: one composable (algorithm x property x
// family) cell. Where the paper scenarios hard-code their topology, this
// one takes any registered graph family via --family, audits the family's
// declared invariants on the built instance, and runs the fixed
// Id-oblivious panel over it on the execution engine — the family-level
// view the follow-up papers (identifier impact, anonymous MDS) probe.
#include "cli/scenarios.h"
#include "gen/workload.h"
#include "support/rng.h"

namespace locald::cli {
namespace {

constexpr const char* kDefaultFamily = "cycle";

// --size is the family's target node count; --trials audits that many
// instances (seeds derived per instance), which only matters for the
// randomized families.
bool run_family_workload(const ScenarioOptions& opts, std::ostream& out) {
  const gen::FamilyInstanceSpec spec = gen::resolve_family_text(
      opts.family.empty() ? kDefaultFamily : opts.family, opts.size);
  const int trials = opts.trials == 0 ? 1 : opts.trials;
  bool ok = true;

  TextTable cells({"instance", "seed", "nodes", "edges", "max deg",
                   "ball classes", "memo hits", "invariants"});
  std::vector<gen::WorkloadResult> results;
  for (int t = 0; t < trials; ++t) {
    gen::WorkloadOptions wopts;
    // Stream-derived per-instance seeds keep trials independent without
    // correlating adjacent user seeds.
    wopts.seed = t == 0 ? opts.seed
                        : Rng::stream(opts.seed, 0xFA71171E5ULL,
                                      static_cast<std::uint64_t>(t))
                              .next_u64();
    results.push_back(gen::run_family_workload(spec, wopts, opts.exec));
    const gen::WorkloadResult& r = results.back();
    ok = ok && r.ok();
    cells.add_row({r.family, cat(wopts.seed), cat(r.nodes), cat(r.edges),
                   cat(r.max_degree), cat(r.ball_classes), cat(r.memo_hits),
                   r.invariants_ok ? "ok" : "VIOLATED"});
    for (const std::string& why : r.invariant_failures) {
      emit_note(out, opts, cat("invariant violation [", r.family, "]: ", why));
    }
  }
  emit_table(out, opts, cat("family workload: ", spec.canonical()), cells);

  TextTable panel({"instance", "algorithm", "yes nodes", "global verdict"});
  for (std::size_t t = 0; t < results.size(); ++t) {
    for (const gen::PanelVerdict& v : results[t].panel) {
      panel.add_row({cat("#", t), v.algorithm, cat(v.yes_nodes),
                     v.accepted ? "accept" : "reject"});
    }
  }
  emit_table(out, opts, "Id-oblivious panel (horizon 1)", panel);
  emit_note(out, opts,
            "every declared family invariant must hold on every built "
            "instance; panel verdict counts are bit-identical at any "
            "--threads value.");
  return ok;
}

}  // namespace

std::vector<Scenario> gen_scenarios() {
  return {{
      "family-workload",
      "gen/ registry",
      "invariant audit + Id-oblivious panel over a generated graph family",
      "target node count for the family's size mapping (0 = family defaults)",
      "any registered family (default cycle; see `locald list --families`)",
      run_family_workload,
  }};
}

}  // namespace locald::cli
