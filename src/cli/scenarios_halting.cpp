// Section 3 and Appendix A scenarios: the G(M, r) construction, quadtree
// pyramids, the Corollary-1 randomized decider, the machine-labelled-cycle
// promise problem, and the fragment-policy ablation.
#include <algorithm>

#include "cli/scenarios.h"
#include "graph/pyramid.h"
#include "obs/stopwatch.h"
#include "halting/analysis.h"
#include "halting/gmr.h"
#include "halting/promise_halting.h"
#include "halting/verifier.h"
#include "local/identifiers.h"
#include "local/simulator.h"
#include "support/rng.h"
#include "tm/fragments.h"
#include "tm/run.h"
#include "tm/zoo.h"

namespace locald::cli {
namespace {

// Fig. 2 / Sec. 3.2: G(M, r) across the machine zoo — fragment counts,
// instance sizes, verifier/decider verdicts, and totality of the
// neighbourhood generator B. --size caps fragment materialization
// (default 400).
bool run_fig2(const ScenarioOptions& opts, std::ostream& out) {
  tm::FragmentPolicy policy;
  policy.max_fragments = opts.size == 0 ? 400 : static_cast<std::size_t>(
                                                    std::max(10, opts.size));
  policy.seed = opts.seed;
  const long long budget = 4096;
  bool ok = true;

  std::vector<std::string> columns{"machine", "halts", "|C| exact",
                                   "|C| used", "table", "|G|", "verify",
                                   "LD decide"};
  if (opts.timing) {
    columns.push_back("time(s)");
  }
  TextTable table(columns);
  const auto verifier = halting::make_gmr_verifier(3, policy, false, budget);
  const auto decider = halting::make_gmr_decider(3, policy, false, budget);
  for (const tm::ZooEntry& e : tm::small_zoo()) {
    const obs::Stopwatch stopwatch;
    const auto exact = tm::count_fragments(e.machine, 3);
    std::string verify = "-";
    std::string decide = "-";
    std::string g_size = "-";
    std::string tbl = "-";
    std::string used = "-";
    if (e.halts) {
      halting::GmrParams params{e.machine, 1, 3, policy, false, budget};
      const auto inst = halting::build_gmr(params);
      tbl = cat(inst.table_side, "x", inst.table_side);
      g_size = cat(inst.graph.node_count());
      used = cat(inst.fragment_count);
      // Memoized on the shared cache (the PR-3 wholesale bypass is gone):
      // the engine class-keys the thousands of small repeating grid-cell
      // balls and size-caps the pivot's huge unique hub balls out of the
      // cache (see decide_ball in local/simulator.cpp), so caching costs
      // ~nothing here and pays across requests in the serving layer.
      const bool verified =
          local::run_oblivious(*verifier, inst.graph, {opts.exec}).accepted;
      verify = verified ? "accept" : "REJECT";
      const auto ids = local::make_consecutive(inst.graph.node_count());
      const bool acc = local::accepts(*decider, inst.graph, ids);
      const bool correct = acc == (e.output == 0);  // membership: output 0
      ok = ok && verified && correct;
      decide = cat(acc ? "accept" : "reject", correct ? " (ok)" : " (BAD)");
    }
    const double secs = stopwatch.elapsed_seconds();
    std::vector<std::string> row{e.machine.name(), e.halts ? "yes" : "no",
                                 cat(exact), used, tbl, g_size, verify,
                                 decide};
    if (opts.timing) {
      row.push_back(fixed(secs, 2));
    }
    table.add_row(std::move(row));
  }
  emit_table(out, opts, "Figure 2 / Section 3: G(M, r) construction", table);

  TextTable gen({"machine", "behaviour", "mode", "host", "eligible balls"});
  for (const tm::ZooEntry& e : tm::small_zoo()) {
    halting::GmrParams params{e.machine, 1, 3, policy, false, budget};
    const auto gen_out = halting::neighborhood_generator(params, 2);
    gen.add_row({e.machine.name(), e.halts ? "halts" : "diverges",
                 gen_out.exact ? "exact G(M,r)" : "prefix glue",
                 cat(gen_out.host.node_count()), cat(gen_out.centers.size())});
  }
  emit_table(out, opts,
             "neighbourhood generator B(N, 2) totality (property P3)", gen);
  emit_note(out, opts,
            "B halts on every machine — including the diverging ones — "
            "which is what makes the separation algorithm R total.");
  return ok;
}

// Fig. 3 / Appendix A: quadtree pyramids over execution tables and the
// pyramidal G(M, r) variant. --size selects the largest pyramid height
// (default 6; the canonical-form oracle is capped at h = 5).
bool run_fig3(const ScenarioOptions& opts, std::ostream& out) {
  const int max_h = std::clamp(opts.size == 0 ? 6 : opts.size, 1, 9);
  bool ok = true;

  std::vector<std::string> columns{"h", "grid", "pyramid nodes", "edges",
                                   "apex deg"};
  if (opts.timing) {
    columns.push_back("build(ms)");
  }
  columns.push_back("valid");
  TextTable table(columns);
  for (int h = 1; h <= max_h; ++h) {
    const graph::PyramidIndexer idx(h);
    const obs::Stopwatch stopwatch;
    const graph::CsrGraph g = graph::build_pyramid(idx);
    const double build_ms = stopwatch.elapsed_ms();
    const bool valid = h <= 5 ? graph::is_pyramid(g, h) : true;
    ok = ok && valid;
    std::vector<std::string> row{
        cat(h), cat(idx.side(0), "x", idx.side(0)), cat(g.node_count()),
        cat(g.edge_count()), cat(g.degree(idx.apex()))};
    if (opts.timing) {
      row.push_back(fixed(build_ms, 2));
    }
    row.push_back(valid ? (h <= 5 ? "yes" : "unchecked") : "NO");
    table.add_row(std::move(row));
  }
  emit_table(out, opts, "Figure 3 / Appendix A: pyramidal execution tables",
             table);

  tm::FragmentPolicy policy;
  policy.max_fragments = 120;
  TextTable gmr({"machine", "|G| plain", "|G| pyramidal", "overhead"});
  for (int k : {1, 2}) {
    const tm::TuringMachine m = tm::halt_after(k, 0);
    halting::GmrParams plain{m, 1, 4, policy, false, 4096};
    halting::GmrParams pyr{m, 1, 4, policy, true, 4096};
    const auto a = halting::build_gmr(plain);
    const auto b = halting::build_gmr(pyr);
    gmr.add_row({m.name(), cat(a.graph.node_count()),
                 cat(b.graph.node_count()),
                 fixed(static_cast<double>(b.graph.node_count()) /
                           a.graph.node_count(),
                       3)});
  }
  emit_table(out, opts, "pyramidal G(M, r) (fragment pyramids of height 2)",
             gmr);
  emit_note(out, opts,
            "the pyramid fixes each grid's global structure (unique apex), "
            "closing the torus-quotient gap of plain grids.");
  return ok;
}

// Cor. 1 / Sec. 3.3: randomness replaces identifiers. Completeness is exact;
// measured rejection of no-instances is compared to (1 - 1/sqrt(n))^n.
// --trials sets the per-instance sample count (default 40).
bool run_cor1(const ScenarioOptions& opts, std::ostream& out) {
  tm::FragmentPolicy policy;
  policy.max_fragments = opts.size == 0 ? 60 : static_cast<std::size_t>(
                                                   std::max(10, opts.size));
  const auto decider =
      halting::make_randomized_gmr_decider(3, policy, false, 4096);
  const int trials = opts.trials == 0 ? 40 : opts.trials;
  bool ok = true;

  TextTable table({"instance", "n", "truth", "accepted/trials",
                   "paper failure bound"});
  {
    halting::GmrParams params{tm::halt_after(2, 0), 1, 3, policy, false, 4096};
    const auto inst = halting::build_gmr(params).graph;
    // Instance 0 of the sweep cell: coins come from counter streams under
    // (seed, instance), so trials parallelize without changing the counts.
    const auto est = local::estimate_acceptance(
        *decider, inst, nullptr, trials, {opts.exec, opts.seed});
    ok = ok && est.accepted == est.trials;  // perfect completeness
    table.add_row({cat("G(", params.machine.name(), ")"),
                   cat(inst.node_count()), "member",
                   cat(est.accepted, "/", est.trials), "-"});
  }
  for (int rounds : {1, 2, 3}) {
    halting::GmrParams params{tm::zigzag_halt(rounds, 1), 1, 3, policy, false,
                              4096};
    const auto inst = halting::build_gmr(params).graph;
    const auto est = local::estimate_acceptance(
        *decider, inst, nullptr, trials,
        {opts.exec, opts.seed + static_cast<std::uint64_t>(rounds)});
    const double bound = halting::corollary1_failure_bound(
        static_cast<double>(inst.node_count()));
    // Soundness w.h.p.: the empirical acceptance rate of a no-instance must
    // not exceed the paper's failure bound by more than sampling noise.
    ok = ok && static_cast<double>(est.accepted) / est.trials <=
                   std::max(bound, 1.0 / trials);
    table.add_row({cat("G(", params.machine.name(), ")"),
                   cat(inst.node_count()), "non-member",
                   cat(est.accepted, "/", est.trials), fixed(bound, 6)});
  }
  emit_table(out, opts, "Corollary 1: randomness replaces identifiers", table);

  TextTable curve({"n", "bound"});
  for (double n = 16; n <= 1 << 16; n *= 4) {
    curve.add_row({cat(static_cast<long long>(n)),
                   fixed(halting::corollary1_failure_bound(n), 8)});
  }
  emit_table(out, opts, "analytic curve (1 - 1/sqrt(n))^n", curve);
  emit_note(out, opts,
            "measured acceptance of no-instances stays below the bound "
            "(expected: 0 accepts at these sizes) and the bound is o(1).");
  return ok;
}

// Sec. 3 warm-up: machine-labelled cycles under the promise n >= s. The
// id-based decider is exact; no fixed simulation budget works obliviously.
bool run_promise_halting(const ScenarioOptions& opts, std::ostream& out) {
  bool ok = true;
  TextTable table({"machine", "halts", "s", "n", "id decider",
                   "oblivious budget-4", "oblivious budget-16"});
  const auto decider = halting::make_promise_halting_decider();
  const auto cand4 = halting::promise_halting_candidate(4);
  const auto cand16 = halting::promise_halting_candidate(16);
  const auto property = halting::promise_halting_property(100'000);
  for (const tm::ZooEntry& e :
       {tm::ZooEntry{tm::bouncer(), false, -1, -1},
        tm::ZooEntry{tm::halt_after(3, 0), true, 3, 0},
        tm::ZooEntry{tm::halt_after(8, 1), true, 8, 1},
        tm::ZooEntry{tm::zigzag_halt(3, 0), true, -1, 0}}) {
    const graph::NodeId n = e.machine.name() == "zigzag_halt(3,0)" ? 40 : 12;
    const auto inst = halting::build_promise_halting_instance(e.machine, n);
    const bool member = property->contains(inst);
    const bool id_ok =
        local::accepts(*decider, inst,
                       local::make_consecutive(inst.node_count())) == member;
    ok = ok && id_ok;
    table.add_row({e.machine.name(), e.halts ? "yes" : "no",
                   e.halts ? cat(tm::run_machine(e.machine, 100000).steps)
                           : std::string("-"),
                   cat(n), id_ok ? "correct" : "WRONG",
                   local::run_oblivious(*cand4, inst, {opts.exec}).accepted
                       ? std::string("accept")
                       : std::string("reject"),
                   local::run_oblivious(*cand16, inst, {opts.exec}).accepted
                       ? std::string("accept")
                       : std::string("reject")});
  }
  emit_table(out, opts,
             "promise halting (Section 3): machine-labelled cycles", table);
  emit_note(out, opts,
            "budget-b candidates accept every machine outlasting b — no "
            "fixed budget works for all machines (the halting problem).");
  return ok;
}

// Ablation: the fragment materialization cap and the fragment size k, plus
// the diagonalization against bounded-simulation candidates (Lemma 1).
bool run_ablation(const ScenarioOptions& opts, std::ostream& out) {
  const tm::TuringMachine m = tm::halt_after(2, 0);
  bool ok = true;

  TextTable caps({"cap", "|C| exact", "|C| used", "exhaustive", "|G|",
                  "verify"});
  for (std::size_t cap : {50ul, 200ul, 1000ul}) {
    tm::FragmentPolicy policy;
    policy.max_fragments = cap;
    policy.seed = opts.seed;
    halting::GmrParams params{m, 1, 3, policy, false, 4096};
    const auto inst = halting::build_gmr(params);
    const auto verifier = halting::make_gmr_verifier(3, policy, false, 4096);
    // Memoized (see run_fig2): back on the shared cache, with the engine's
    // hub-ball size cap keeping the pivot balls out of the keying cost.
    const bool verified =
        local::run_oblivious(*verifier, inst.graph, {opts.exec}).accepted;
    ok = ok && verified;
    caps.add_row({cat(cap), cat(inst.exact_fragment_count),
                  cat(inst.fragment_count),
                  inst.fragments_exhaustive ? "yes" : "no",
                  cat(inst.graph.node_count()), verified ? "accept" : "REJECT"});
  }
  emit_table(out, opts, "ablation: fragment materialization cap (k = 3)",
             caps);

  TextTable diag({"candidate budget b", "fooling machine", "R accepts",
                  "misclassified"});
  tm::FragmentPolicy policy;
  policy.max_fragments = 150;
  for (long long b : {1, 2, 4}) {
    const auto candidate =
        halting::candidate_bounded_simulation(3, policy, false, 4096, b);
    const tm::TuringMachine fool = tm::halt_after(static_cast<int>(b) + 1, 1);
    halting::GmrParams params{fool, 1, 3, policy, false, 4096};
    const bool accepts = halting::separation_accepts(*candidate, params);
    ok = ok && accepts;  // every budget must be fooled
    diag.add_row({cat(b), fool.name(), accepts ? "yes" : "no",
                  accepts ? "yes (fooled)" : "no"});
  }
  emit_table(out, opts, "diagonalization vs candidate budget (Lemma 1)", diag);
  emit_note(out, opts,
            "every budget has a fooling machine one step beyond it — the "
            "constructive face of Lemma 1.");
  return ok;
}

}  // namespace

std::vector<Scenario> halting_scenarios() {
  return {
      {
          "fig2-gmr",
          "Fig. 2, Sec. 3.2",
          "G(M, r) across the machine zoo; verifier, decider, generator B",
          "fragment materialization cap (default 400)",
          "",
          run_fig2,
      },
      {
          "fig3-pyramid",
          "Fig. 3, App. A",
          "quadtree pyramids over execution tables; pyramidal G(M, r)",
          "largest pyramid height h (default 6)",
          "",
          run_fig3,
      },
      {
          "cor1-randomized",
          "Cor. 1, Sec. 3.3",
          "randomized Id-oblivious decider vs the (1-1/sqrt(n))^n bound",
          "fragment materialization cap (default 60)",
          "",
          run_cor1,
      },
      {
          "promise-halting",
          "Sec. 3 warm-up",
          "machine-labelled cycles: ids bound the simulation time",
          "",
          "",
          run_promise_halting,
      },
      {
          "ablation-fragments",
          "Sec. 3.2 design",
          "fragment-policy ablation and the Lemma-1 diagonalization",
          "",
          "",
          run_ablation,
      },
  };
}

}  // namespace locald::cli
