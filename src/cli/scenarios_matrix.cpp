// Section 1.1: the separation matrix (the paper's Table 1).
#include "cli/scenarios.h"

#include "core/matrix.h"
#include "gen/family.h"
#include "support/rng.h"

namespace locald::cli {
namespace {

// Paper's table: (B, C), (B, ¬C), (¬B, C) separated; (¬B, ¬C) equal.
// --family swaps the (¬B, ¬C) A*-agreement instances from the built-in
// random connected graphs to any registered family — the equality quadrant
// is a claim about every topology, so it should survive all of them.
bool run_table1(const ScenarioOptions& opts, std::ostream& out) {
  core::InstanceSource instances;
  if (!opts.family.empty()) {
    const gen::FamilyInstanceSpec spec =
        gen::resolve_family_text(opts.family);
    instances = [spec, seed = opts.seed](int index) {
      // One independent stream-derived seed per instance.
      return spec.build(Rng::stream(seed, 0x7AB1E1ULL,
                                    static_cast<std::uint64_t>(index))
                            .next_u64());
    };
  }
  const auto results = core::evaluate_separation_matrix(
      opts.seed, opts.exec, opts.size, instances);
  bool ok = results.size() == 4;

  TextTable table({"quadrant", "paper", "measured", "witness", "agrees"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& q = results[i];
    const bool expect_separated = i < 3;
    const bool agrees =
        expect_separated ? (q.separated && !q.equal) : (q.equal && !q.separated);
    ok = ok && agrees;
    table.add_row({q.quadrant, expect_separated ? "LD* != LD" : "LD* = LD",
                   q.separated ? "LD* != LD" : (q.equal ? "LD* = LD" : "??"),
                   q.witness, agrees ? "yes" : "NO"});
  }
  emit_table(out, opts, "Table 1 (Section 1.1): LD* vs LD", table);

  TextTable evidence({"quadrant", "evidence"});
  for (const auto& q : results) {
    evidence.add_row({q.quadrant, q.evidence});
  }
  emit_table(out, opts, "per-quadrant evidence", evidence);
  emit_note(out, opts,
            "all four quadrants must match the paper's table: separation "
            "everywhere except (¬B, ¬C), where the Id-oblivious simulation "
            "A* makes the classes coincide.");
  return ok;
}

}  // namespace

std::vector<Scenario> matrix_scenarios() {
  return {{
      "table1-matrix",
      "Table 1, Sec. 1.1",
      "LD* vs LD under the four (B)/(C) model assumptions",
      "random instances in the (¬B, ¬C) A* agreement quadrant (default 12)",
      "family of the (¬B, ¬C) A*-agreement instances (keep them small; "
      "default: random connected n=8)",
      run_table1,
  }};
}

}  // namespace locald::cli
