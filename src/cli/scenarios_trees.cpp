// Section 2 scenarios: the Figure-1 layered trees T_r and the r-cycle
// promise problem where identifiers leak n through the bound f.
#include <algorithm>

#include "cli/scenarios.h"
#include "local/indistinguishability.h"
#include "obs/stopwatch.h"
#include "local/property.h"
#include "local/simulator.h"
#include "support/rng.h"
#include "trees/audit.h"
#include "trees/construction.h"
#include "trees/decide.h"
#include "trees/promise_cycle.h"

namespace locald::cli {
namespace {

// Fig. 1 / Sec. 2: ball-coverage audit behind P ∉ LD* plus the LD decider.
// --size selects the largest r audited (default and max 3; the audit is
// exhaustive through r = 2 and sampled at r = 3). r = 4 is out of reach:
// R(4) = 32 exceeds the construction's R <= 24 tree-size guard.
bool run_fig1(const ScenarioOptions& opts, std::ostream& out) {
  const int max_r = std::clamp(opts.size == 0 ? 3 : opts.size, 1, 3);
  Rng rng(opts.seed);
  bool ok = true;

  std::vector<std::string> columns{"r", "R(r)", "|T_r|", "audited",
                                   "coverage", "subtree-cover",
                                   "canon-mismatch", "LD decider"};
  if (opts.timing) {
    columns.push_back("time(s)");
  }
  TextTable table(columns);
  for (int r = 1; r <= max_r; ++r) {
    const obs::Stopwatch stopwatch;
    trees::TreeParams p;
    p.r = r;
    p.f = local::IdBound::linear_plus(1);
    const auto R = p.capital_R();
    const std::uint64_t n = (std::uint64_t{1} << (R + 1)) - 1;

    const std::uint64_t sample = (r <= 2) ? 0 : 100'000;
    const std::uint64_t canon = (r >= 3) ? 100 : 50;
    const auto audit = trees::audit_tree_coverage(p, sample, canon, rng);

    const auto decider = trees::make_P_decider(p);
    const auto property = trees::property_P(p);
    std::vector<local::LabeledGraph> instances;
    instances.push_back(
        trees::build_patch_instance(p, trees::subtree_patch(p, 0, 0)));
    instances.push_back(trees::build_patch_instance(
        p, trees::subtree_patch(p, 1, std::min<trees::Coord>(2, R - r))));
    if (r <= 2) {
      instances.push_back(trees::build_T(p));
    }
    const auto report = local::evaluate_decider(
        *decider, *property, instances, local::bounded_policy(p.f), 2, rng);

    // Full patch coverage is the documented expectation from r >= 3 (small
    // r lack room for every trapezoid patch); canonical checks and the LD
    // decider must be clean at every r.
    const bool row_ok = (r < 3 || audit.full_patch_coverage()) &&
                        audit.canonical_mismatch == 0 && report.all_correct();
    ok = ok && row_ok;
    const double secs = stopwatch.elapsed_seconds();
    std::vector<std::string> row{
        cat(r), cat(R), cat(n), cat(audit.nodes_audited),
        fixed(static_cast<double>(audit.patch_covered) / audit.nodes_audited,
              4),
        fixed(audit.subtree_fraction(), 4), cat(audit.canonical_mismatch),
        report.all_correct() ? "correct" : "WRONG"};
    if (opts.timing) {
      row.push_back(fixed(secs, 2));
    }
    table.add_row(std::move(row));
  }
  emit_table(out, opts, "Figure 1 / Section 2: T_r vs H_r", table);
  emit_note(out, opts,
            "coverage = 1.0 certifies: any Id-oblivious horizon-1 algorithm "
            "accepting all of H_r accepts T_r (P ∉ LD*); the LD decider "
            "stays correct with bounded identifiers.");
  return ok;
}

// Sec. 2 warm-up: r-cycle vs (f(r)+1)-cycle under f(n) = n^2 + 1. The
// id-based decider is exact; radius-1 balls are indistinguishable to any
// Id-oblivious algorithm. --size selects the largest r (default 12).
bool run_promise_cycle(const ScenarioOptions& opts, std::ostream& out) {
  const int max_r = std::clamp(opts.size == 0 ? 12 : opts.size, 4, 64);
  const int trials = opts.trials == 0 ? 5 : opts.trials;
  Rng rng(opts.seed);
  bool ok = true;

  TextTable table({"r", "yes n", "no n", "decider yes", "decider no",
                   "oblivious-indistinguishable"});
  for (int r = 4; r <= max_r; r += std::max(2, (max_r - 4) / 4)) {
    trees::PromiseCycleParams pc;
    pc.r = r;
    pc.f = local::IdBound::quadratic();
    const auto yes = trees::build_yes_cycle(pc);
    const auto no = trees::build_no_cycle(pc);
    const auto decider = trees::make_promise_cycle_decider(pc);
    bool yes_ok = true;
    bool no_ok = true;
    for (int trial = 0; trial < trials; ++trial) {
      yes_ok &= local::accepts(
          *decider, yes,
          local::make_random_bounded(yes.node_count(), pc.f, rng));
      no_ok &= !local::accepts(
          *decider, no,
          local::make_random_bounded(no.node_count(), pc.f, rng));
    }
    const auto profile = local::BallProfile::of_graph(yes, 1);
    const auto audit = local::audit_indistinguishability(no, profile);
    ok = ok && yes_ok && no_ok && audit.indistinguishable();
    table.add_row({cat(r), cat(yes.node_count()), cat(no.node_count()),
                   yes_ok ? "accept" : "WRONG", no_ok ? "reject" : "WRONG",
                   audit.indistinguishable() ? "yes" : "NO"});
  }
  emit_table(out, opts,
             "promise cycles (Section 2): r-cycle vs (f(r)+1)-cycle", table);
  emit_note(out, opts,
            "the id-based decider reads n off the identifier bound f; "
            "Id-oblivious algorithms see identical radius-1 balls on both "
            "instances and cannot distinguish them.");
  return ok;
}

}  // namespace

std::vector<Scenario> tree_scenarios() {
  return {
      {
          "fig1-layered-trees",
          "Fig. 1, Sec. 2",
          "layered trees T_r, coverage audit for P ∉ LD*, LD decider",
          "largest audited r (default and max 3)",
          "",
          run_fig1,
      },
      {
          "promise-cycle",
          "Sec. 2 warm-up",
          "r-cycle promise problem: identifiers leak n through f",
          "largest cycle parameter r (default 12)",
          "",
          run_promise_cycle,
      },
  };
}

}  // namespace locald::cli
