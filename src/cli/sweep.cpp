#include "cli/sweep.h"

#include <iostream>
#include <optional>
#include <sstream>

#include "cli/scenario.h"
#include "exec/context.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"
#include "support/format.h"
#include "support/schema.h"

namespace locald::cli {

namespace {

struct CellResult {
  int size = 0;
  bool ok = false;
  std::string error;  // non-empty when the scenario threw
  double wall_ms = 0.0;
  exec::VerdictCache::Stats cache;
};

CellResult run_cell(const Scenario& scenario, const SweepOptions& sweep,
                    int size, exec::ThreadPool* pool) {
  CellResult cell;
  cell.size = size;
  // A fresh cache per cell keeps memory bounded and makes the reported hit
  // rate a per-cell figure rather than a cross-cell accumulation.
  exec::VerdictCache cache;
  ScenarioOptions opts;
  opts.seed = sweep.seed;
  opts.size = size;
  opts.trials = sweep.trials;
  opts.family = sweep.family;
  opts.faults = sweep.faults;
  opts.format = OutputFormat::csv;
  opts.exec.pool = pool;
  opts.exec.cache = &cache;
  std::ostringstream sink;  // tables are the run-mode UI; sweep keeps JSON
  const obs::Stopwatch stopwatch;
  try {
    obs::Span span("sweep-cell", "size=" + std::to_string(size));
    cell.ok = scenario.run(opts, sink);
  } catch (const std::exception& e) {
    cell.ok = false;
    cell.error = e.what();
  }
  cell.wall_ms = stopwatch.elapsed_ms();
  cell.cache = cache.stats();
  return cell;
}

}  // namespace

int run_sweep(const std::string& scenario_name, const SweepOptions& sweep,
              std::ostream& out, const std::function<void()>& flush) {
  const Scenario* scenario = find_scenario(scenario_name);
  if (scenario == nullptr) {
    std::cerr << "unknown scenario: " << scenario_name
              << " (see `locald list`)\n";
    return 2;
  }
  if (!sweep.family.empty() && scenario->family_help.empty()) {
    std::cerr << "scenario " << scenario_name
              << " does not take --family (see `locald help " << scenario_name
              << "`)\n";
    return 2;
  }
  if (!sweep.faults.empty() && scenario->fault_help.empty()) {
    std::cerr << "scenario " << scenario_name
              << " does not take --faults (see `locald help " << scenario_name
              << "`)\n";
    return 2;
  }
  std::vector<int> sizes = sweep.sizes;
  if (sizes.empty()) {
    sizes.push_back(0);
  }
  std::optional<exec::ThreadPool> owned_pool;
  exec::ThreadPool* pool = sweep.pool;
  if (pool == nullptr && sweep.threads != 1) {
    owned_pool.emplace(sweep.threads);
    pool = &*owned_pool;
  }

  // The document is emitted incrementally — prelude, one object per cell as
  // it finishes, postlude — so a `flush` hook can ship each piece the
  // moment it exists (the serving layer's streamed /v1/sweep). Emission
  // order is exactly the buffered order; the bytes cannot differ.
  // Deterministic fields only, unless --timing opts into the volatile ones
  // (see sweep.h for the byte-identity contract).
  JsonWriter w(out, 2);
  w.begin_object();
  w.key("tool");
  w.value("locald-sweep");
  w.key("schema_version");
  w.value(kSchemaVersion);
  w.key("scenario");
  w.value(scenario_name);
  w.key("paper_ref");
  w.value(scenario->paper_ref);
  w.key("seed");
  w.value(sweep.seed);
  if (!sweep.family.empty()) {
    w.key("family");
    w.value(sweep.family);
  }
  if (!sweep.faults.empty()) {
    w.key("faults");
    w.value(sweep.faults);
  }
  // 0 means "each cell ran its scenario-default trial count", which the
  // sweep cannot know; omitting the field beats recording a false zero.
  if (sweep.trials > 0) {
    w.key("trials");
    w.value(sweep.trials);
  }
  if (sweep.timing) {
    w.key("threads");
    w.value(pool ? pool->parallelism() : 1);
  }
  w.key("cells");
  w.begin_array();
  if (flush) flush();

  const obs::Stopwatch sweep_stopwatch;
  bool all_ok = true;
  // Cells run in grid order on one thread; parallelism lives inside the
  // scenario's hot paths, which keeps nested pools out of the picture and
  // the JSON cell order fixed.
  for (int size : sizes) {
    const CellResult cell = run_cell(*scenario, sweep, size, pool);
    all_ok = all_ok && cell.ok;
    w.begin_object();
    w.key("size");
    w.value(cell.size);
    w.key("ok");
    w.value(cell.ok);
    if (!cell.error.empty()) {
      w.key("error");
      w.value(cell.error);
    }
    if (sweep.timing) {
      w.key("wall_ms");
      w.value(cell.wall_ms, 3);
      w.key("cache_hits");
      w.value(cell.cache.hits);
      w.key("cache_misses");
      w.value(cell.cache.misses);
      w.key("cache_hit_rate");
      w.value(cell.cache.hit_rate(), 4);
    }
    w.end_object();
    if (flush) flush();
  }
  const double total_ms = sweep_stopwatch.elapsed_ms();

  w.end_array();
  if (sweep.timing) {
    // Known only once every cell has run, so it lives in the postlude.
    w.key("total_wall_ms");
    w.value(total_ms, 3);
  }
  w.key("all_ok");
  w.value(all_ok);
  w.end_object();
  out << "\n";
  if (flush) flush();
  return all_ok ? 0 : 1;
}

}  // namespace locald::cli
