#include "cli/sweep.h"

#include <chrono>
#include <iostream>
#include <optional>
#include <sstream>

#include "cli/scenario.h"
#include "exec/context.h"
#include "support/format.h"

namespace locald::cli {

namespace {

struct CellResult {
  int size = 0;
  bool ok = false;
  std::string error;  // non-empty when the scenario threw
  double wall_ms = 0.0;
  exec::VerdictCache::Stats cache;
};

CellResult run_cell(const Scenario& scenario, const SweepOptions& sweep,
                    int size, exec::ThreadPool* pool) {
  CellResult cell;
  cell.size = size;
  // A fresh cache per cell keeps memory bounded and makes the reported hit
  // rate a per-cell figure rather than a cross-cell accumulation.
  exec::VerdictCache cache;
  ScenarioOptions opts;
  opts.seed = sweep.seed;
  opts.size = size;
  opts.trials = sweep.trials;
  opts.format = OutputFormat::csv;
  opts.exec.pool = pool;
  opts.exec.cache = &cache;
  std::ostringstream sink;  // tables are the run-mode UI; sweep keeps JSON
  const auto t0 = std::chrono::steady_clock::now();
  try {
    cell.ok = scenario.run(opts, sink);
  } catch (const std::exception& e) {
    cell.ok = false;
    cell.error = e.what();
  }
  cell.wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  cell.cache = cache.stats();
  return cell;
}

}  // namespace

int run_sweep(const std::string& scenario_name, const SweepOptions& sweep,
              std::ostream& out) {
  const Scenario* scenario = find_scenario(scenario_name);
  if (scenario == nullptr) {
    std::cerr << "unknown scenario: " << scenario_name
              << " (see `locald list`)\n";
    return 2;
  }
  std::vector<int> sizes = sweep.sizes;
  if (sizes.empty()) {
    sizes.push_back(0);
  }
  std::optional<exec::ThreadPool> pool;
  if (sweep.threads != 1) {
    pool.emplace(sweep.threads);
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<CellResult> cells;
  cells.reserve(sizes.size());
  // Cells run in grid order on one thread; parallelism lives inside the
  // scenario's hot paths, which keeps nested pools out of the picture and
  // the JSON cell order fixed.
  for (int size : sizes) {
    cells.push_back(run_cell(*scenario, sweep, size, pool ? &*pool : nullptr));
  }
  const double total_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();

  bool all_ok = true;
  for (const CellResult& cell : cells) {
    all_ok = all_ok && cell.ok;
  }

  // Deterministic fields first; everything scheduling-dependent is gated on
  // --timing (see sweep.h for the byte-identity contract).
  out << "{\n";
  out << "  \"tool\": \"locald-sweep\",\n";
  out << "  \"scenario\": " << json_quote(scenario_name) << ",\n";
  out << "  \"paper_ref\": " << json_quote(scenario->paper_ref) << ",\n";
  out << "  \"seed\": " << sweep.seed << ",\n";
  // 0 means "each cell ran its scenario-default trial count", which the
  // sweep cannot know; omitting the field beats recording a false zero.
  if (sweep.trials > 0) {
    out << "  \"trials\": " << sweep.trials << ",\n";
  }
  if (sweep.timing) {
    out << "  \"threads\": "
        << (pool ? pool->parallelism() : 1) << ",\n";
    out << "  \"total_wall_ms\": " << fixed(total_ms, 3) << ",\n";
  }
  out << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& cell = cells[i];
    out << "    {\"size\": " << cell.size << ", \"ok\": "
        << (cell.ok ? "true" : "false");
    if (!cell.error.empty()) {
      out << ", \"error\": " << json_quote(cell.error);
    }
    if (sweep.timing) {
      out << ", \"wall_ms\": " << fixed(cell.wall_ms, 3)
          << ", \"cache_hits\": " << cell.cache.hits
          << ", \"cache_misses\": " << cell.cache.misses
          << ", \"cache_hit_rate\": " << fixed(cell.cache.hit_rate(), 4);
    }
    out << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"all_ok\": " << (all_ok ? "true" : "false") << "\n";
  out << "}\n";
  return all_ok ? 0 : 1;
}

}  // namespace locald::cli
