// `locald sweep` — fan one scenario out across a parameter grid and emit a
// single machine-readable JSON document.
//
// The document on stdout is the CI perf gate's contract: every field in the
// default output is scheduling-deterministic, so two sweeps of the same
// (scenario, seed, sizes, trials) must be byte-identical at ANY --threads
// value — CI compares `--threads 1` against `--threads $(nproc)` with a
// plain byte diff. Wall times, thread counts and cache hit rates are real
// but scheduling-dependent, so they only appear when `--timing` opts in
// (the run CI uploads as the benchmark artifact).
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "exec/thread_pool.h"

namespace locald::cli {

struct SweepOptions {
  std::uint64_t seed = 42;
  std::vector<int> sizes;  // grid of --size values; empty => {0} (default)
  int trials = 0;          // per-cell --trials (0 = scenario default)
  // `--family` selector handed to every cell (family-aware scenarios only;
  // rejected otherwise). For `family-workload` the size grid then sweeps
  // the family's size mapping.
  std::string family;
  // `--faults` profile selector handed to every cell (fault-aware scenarios
  // only; rejected otherwise). The event engine's schedule is seeded, so the
  // byte-identity contract above holds with faults enabled.
  std::string faults;
  int threads = 1;         // 0 = hardware parallelism
  bool timing = false;     // include the volatile timing/cache fields
  // Externally-owned pool (the serving layer's process-wide one). When set,
  // `threads` is ignored and the sweep borrows this pool instead of
  // constructing its own; the document bytes are identical either way.
  exec::ThreadPool* pool = nullptr;
};

// Runs every cell and writes the JSON document to `out`. Returns the
// process exit code: 0 when every cell reproduced the paper's prediction,
// 1 otherwise.
//
// The document is written incrementally: the prelude (everything before the
// cells array), then one cell object as each cell finishes, then the
// postlude. `flush`, when set, is invoked after each of those writes — the
// serving layer's chunked-transfer hook (each flush boundary becomes one
// chunk, so `/v1/sweep` streams cells as they finish). The bytes written to
// `out` are identical whether or not `flush` is set: streaming changes only
// WHEN bytes leave, never WHICH bytes — the byte-identity contract above
// extends across the streamed/buffered split. A `flush` that throws aborts
// the sweep (the exception propagates; the serving layer uses this to stop
// computing for a disconnected client).
int run_sweep(const std::string& scenario_name, const SweepOptions& sweep,
              std::ostream& out, const std::function<void()>& flush = {});

}  // namespace locald::cli
