// Umbrella header: the complete public API of the locald library.
//
// locald reproduces "What can be decided locally without identifiers?"
// (Fraigniaud, Göös, Korman, Suomela; PODC 2013). See README.md for the
// build/test quickstart and subsystem map, and docs/ARCHITECTURE.md for the
// simulation pipeline and the scenario registry.
#pragma once

// Substrates
#include "exec/context.h"
#include "exec/thread_pool.h"
#include "exec/verdict_cache.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/induced.h"
#include "graph/io.h"
#include "graph/isomorphism.h"
#include "graph/pyramid.h"
#include "support/format.h"
#include "support/rng.h"

// The LOCAL model and local decision
#include "local/algorithm.h"
#include "local/ball.h"
#include "local/identifiers.h"
#include "local/indistinguishability.h"
#include "local/label.h"
#include "local/labeled_graph.h"
#include "local/property.h"
#include "local/simulator.h"
#include "local/sync_engine.h"

// Example properties (LD* baselines)
#include "props/properties.h"

// Turing machines and execution tables
#include "tm/fragments.h"
#include "tm/machine.h"
#include "tm/rules.h"
#include "tm/run.h"
#include "tm/table.h"
#include "tm/zoo.h"

// Section 2: separation under bounded identifiers
#include "trees/audit.h"
#include "trees/construction.h"
#include "trees/decide.h"
#include "trees/promise_cycle.h"

// Section 3: separation under computability
#include "halting/analysis.h"
#include "halting/gmr.h"
#include "halting/promise_halting.h"
#include "halting/verifier.h"

// The (¬B, ¬C) simulation and the Section-1.1 matrix
#include "core/matrix.h"
#include "oblivious/simulation.h"
