#include "core/matrix.h"

#include "graph/generators.h"
#include "halting/analysis.h"
#include "local/indistinguishability.h"
#include "local/property.h"
#include "local/simulator.h"
#include "oblivious/simulation.h"
#include "props/properties.h"
#include "support/format.h"
#include "tm/zoo.h"
#include "trees/audit.h"
#include "trees/construction.h"
#include "trees/decide.h"

namespace locald::core {

namespace {

// (B): the Section-2 construction separates LD* from LD. Evidence:
//  - the id-based decider is correct on patches and on T_r under every
//    bounded assignment tried;
//  - the coverage audit certifies that every radius-1 ball of T_r occurs in
//    a yes-instance, so no Id-oblivious horizon-1 algorithm accepting all
//    yes-instances rejects T_r.
QuadrantResult bounded_quadrant(bool computable, Rng& rng) {
  // Decider runs at r = 2 (T_2 has 8191 nodes); the ball-coverage audit at
  // r = 3 where it is exhaustive-by-witness over 4.2M nodes is sampled.
  trees::TreeParams p;
  p.r = 2;
  p.f = local::IdBound::linear_plus(1);
  QuadrantResult out;
  out.quadrant = computable ? "(B, C)" : "(B, ¬C)";
  out.witness = "Section 2: layered trees T_r vs patches H_r";

  const auto decider = trees::make_P_decider(p);
  const auto property = trees::property_P(p);
  std::vector<local::LabeledGraph> instances;
  instances.push_back(
      trees::build_patch_instance(p, trees::subtree_patch(p, 0, 0)));
  instances.push_back(
      trees::build_patch_instance(p, trees::subtree_patch(p, 5, 4)));
  instances.push_back(trees::build_T(p));
  const auto report = local::evaluate_decider(
      *decider, *property, instances, local::bounded_policy(p.f), 2, rng);

  trees::TreeParams audit_params;
  audit_params.r = 3;
  audit_params.f = local::IdBound::linear_plus(1);
  const auto audit = trees::audit_tree_coverage(audit_params, 20'000, 0, rng);

  out.separated = report.all_correct() && audit.full_patch_coverage();
  out.evidence = cat("LD decider correct on ", report.evaluations,
                     " evaluations; ball coverage ", audit.patch_covered, "/",
                     audit.nodes_audited,
                     " => no Id-oblivious decider exists");
  return out;
}

// (¬B, C): the Section-3 construction. Evidence: the id-based decider is
// correct while every computable Id-oblivious candidate, run through the
// separation algorithm R, misclassifies some machine.
QuadrantResult computable_quadrant(Rng& rng) {
  QuadrantResult out;
  out.quadrant = "(¬B, C)";
  out.witness = "Section 3: G(M, r) execution tables + fragments";
  tm::FragmentPolicy policy;
  policy.max_fragments = 150;
  policy.seed = 11;

  const auto property = halting::property_gmr_outputs0(3, policy, false, 4096);
  const auto decider = halting::make_gmr_decider(3, policy, false, 4096);
  std::vector<local::LabeledGraph> instances;
  instances.push_back(
      halting::build_gmr({tm::halt_after(2, 0), 1, 3, policy, false, 4096})
          .graph);
  instances.push_back(
      halting::build_gmr({tm::halt_after(2, 1), 1, 3, policy, false, 4096})
          .graph);
  const auto report = local::evaluate_decider(
      *decider, *property, instances, local::consecutive_policy(), 1, rng);

  std::vector<std::pair<std::string,
                        std::unique_ptr<local::LocalAlgorithm>>> candidates;
  candidates.emplace_back(
      "structure-only",
      halting::candidate_structure_only(3, policy, false, 4096));
  candidates.emplace_back(
      "simulate-2",
      halting::candidate_bounded_simulation(3, policy, false, 4096, 2));
  std::vector<tm::TuringMachine> machines;
  machines.push_back(tm::halt_after(1, 0));
  machines.push_back(tm::halt_after(1, 1));
  machines.push_back(tm::halt_after(4, 1));
  const auto rows = halting::run_separation_experiment(
      candidates, machines, 1, 3, policy, false, 4096);
  int fooled = 0;
  for (const auto& row : rows) {
    fooled += row.misclassified;
  }
  out.separated = report.all_correct() && fooled >= 2;
  out.evidence = cat("LD decider correct; ", fooled, "/", rows.size(),
                     " separator runs misclassified (every computable "
                     "candidate fooled)");
  return out;
}

// (¬B, ¬C): the Id-oblivious simulation A* reproduces an id-reading (but
// id-independent) decider verbatim, so LD* = LD.
QuadrantResult unrestricted_quadrant(Rng& rng, const exec::ExecContext& ctx,
                                     int instances,
                                     const InstanceSource& source) {
  QuadrantResult out;
  out.quadrant = "(¬B, ¬C)";
  out.witness = "Id-oblivious simulation A*";
  // An id-READING proper-3-colouring decider (reads ids, output does not
  // depend on them).
  auto reading = std::make_shared<local::LambdaAlgorithm>(
      "coloring-with-ids", 1, false, [](const local::BallView& ball) {
        (void)ball.center_id();  // reads, never uses
        const auto c = ball.center_label().at(0);
        if (c < 0 || c >= 3) return local::Verdict::no;
        for (graph::NodeId w : ball.g.neighbors(ball.center)) {
          if (ball.label(w).at(0) == c) return local::Verdict::no;
        }
        return local::Verdict::yes;
      });
  oblivious::SimulationOptions options;
  options.id_universe = 64;
  options.max_assignments = 5'000;
  options.pool = ctx.pool;
  const auto simulated = oblivious::make_oblivious_simulation(reading, options);
  const auto property = props::proper_coloring_property(3);

  int agreements = 0;
  int cases = 0;
  for (int trial = 0; trial < instances; ++trial) {
    local::LabeledGraph g(source ? source(trial)
                                 : graph::make_random_connected(
                                       8, 4, rng.next_u64()));
    for (graph::NodeId v = 0; v < g.node_count(); ++v) {
      g.set_label(v, local::Label{static_cast<std::int64_t>(rng.below(3))});
    }
    const bool truth = property->contains(g);
    const bool sim = local::run_oblivious(*simulated, g, {ctx}).accepted;
    ++cases;
    agreements += (truth == sim);
  }
  out.equal = agreements == cases;
  out.evidence = cat("A* agrees with the global oracle on ", agreements, "/",
                     cases, " random instances");
  return out;
}

}  // namespace

std::vector<QuadrantResult> evaluate_separation_matrix(
    std::uint64_t seed, const exec::ExecContext& ctx, int a_star_instances,
    const InstanceSource& instances) {
  Rng rng(seed);
  std::vector<QuadrantResult> out;
  out.push_back(bounded_quadrant(/*computable=*/true, rng));
  out.push_back(bounded_quadrant(/*computable=*/false, rng));
  out.push_back(computable_quadrant(rng));
  out.push_back(unrestricted_quadrant(
      rng, ctx, a_star_instances > 0 ? a_star_instances : 12, instances));
  return out;
}

std::string render_matrix(const std::vector<QuadrantResult>& results) {
  TextTable table({"quadrant", "LD* vs LD", "witness", "evidence"});
  for (const auto& q : results) {
    table.add_row({q.quadrant,
                   q.separated ? "!=" : (q.equal ? "=" : "inconclusive"),
                   q.witness, q.evidence});
  }
  return table.render();
}

}  // namespace locald::core
