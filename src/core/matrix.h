// The paper's Section-1.1 table: LD* vs LD under the four combinations of
// (B)/(¬B) and (C)/(¬C), evaluated empirically from the constructions.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "exec/context.h"
#include "graph/csr.h"

namespace locald::core {

// Supplies instance `index` for the (¬B, ¬C) A*-agreement experiment; the
// workload generator's families plug in here (cli wires `--family` to a
// gen::FamilyInstanceSpec). Null = the built-in random connected instances.
using InstanceSource = std::function<graph::CsrGraph(int index)>;

struct QuadrantResult {
  std::string quadrant;   // e.g. "(B, C)"
  bool separated = false; // LD* != LD demonstrated
  bool equal = false;     // LD* = LD demonstrated (¬B, ¬C)
  std::string witness;    // which construction/experiment supplied evidence
  std::string evidence;   // one-line measured summary
};

// Runs the four quadrant experiments at laptop scale:
//  (B, ¬C)  — the Section-2 layered-tree construction;
//  (B, C)   — same witness (a fortiori);
//  (¬B, C)  — the Section-3 G(M, r) construction + diagonalization;
//  (¬B, ¬C) — the Id-oblivious simulation A* reproduces an id-reading
//             decider exactly.
// `ctx` parallelizes the A* quadrant (node loop, assignment search, ball
// memoization); the verdicts are identical at every thread count.
// `a_star_instances` scales the (¬B, ¬C) agreement experiment — how many
// random instances A* is compared against the global oracle on (0 = the
// default of 12); `instances` overrides where those instances come from.
std::vector<QuadrantResult> evaluate_separation_matrix(
    std::uint64_t seed, const exec::ExecContext& ctx = {},
    int a_star_instances = 0, const InstanceSource& instances = nullptr);

// Rendered like the paper's table.
std::string render_matrix(const std::vector<QuadrantResult>& results);

}  // namespace locald::core
