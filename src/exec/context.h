// The execution context threaded through every parallel hot path.
//
// Both members are optional and non-owning: a null pool means "run serially
// on the calling thread" and a null cache means "no memoization", so the
// default-constructed context IS the serial engine and legacy callers keep
// their exact behaviour. The CLI owns the pool (sized by --threads) and a
// per-run VerdictCache and hands this struct down through ScenarioOptions.
#pragma once

#include <cstddef>
#include <functional>

#include "exec/thread_pool.h"
#include "exec/verdict_cache.h"

namespace locald::exec {

struct ExecContext {
  ThreadPool* pool = nullptr;     // null => serial
  VerdictCache* cache = nullptr;  // null => no memoization

  // Serial-or-parallel loop: the one entry point hot paths call, so the
  // serial path and the pool path cannot diverge structurally.
  void for_each(std::size_t n, const std::function<void(std::size_t)>& fn) const {
    if (pool != nullptr) {
      pool->parallel_for(n, fn);
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        fn(i);
      }
    }
  }

  int parallelism() const { return pool == nullptr ? 1 : pool->parallelism(); }
};

}  // namespace locald::exec
