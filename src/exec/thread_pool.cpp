#include "exec/thread_pool.h"

#include <algorithm>

namespace locald::exec {

namespace {

// Set while the current thread executes loop iterations; a nested
// parallel_for (from any pool) sees it and runs inline instead of trying to
// re-enter a pool that is busy running it.
thread_local bool t_inside_loop = false;

// Process-wide activity counters (across all pool instances). Relaxed adds:
// these feed only the observability surfaces.
std::atomic<std::uint64_t> g_loops{0};
std::atomic<std::uint64_t> g_inline_loops{0};
std::atomic<std::uint64_t> g_chunks{0};
std::atomic<std::uint64_t> g_steals{0};

}  // namespace

ThreadPool::ActivityCounters ThreadPool::activity() {
  ActivityCounters c;
  c.loops = g_loops.load(std::memory_order_relaxed);
  c.inline_loops = g_inline_loops.load(std::memory_order_relaxed);
  c.chunks = g_chunks.load(std::memory_order_relaxed);
  c.steals = g_steals.load(std::memory_order_relaxed);
  return c;
}

int ThreadPool::hardware_parallelism() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    threads = hardware_parallelism();
  }
  const std::size_t workers = static_cast<std::size_t>(threads - 1);
  queues_.reserve(workers + 1);
  for (std::size_t i = 0; i < workers + 1; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (workers_.empty() || t_inside_loop || n == 1) {
    g_inline_loops.fetch_add(1, std::memory_order_relaxed);
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }

  g_loops.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> submit(submit_mu_);
  const std::size_t executors = queues_.size();
  // A few chunks per executor so stealing has something to grab; never
  // smaller than one index per chunk.
  const std::size_t chunk_count = std::min(n, executors * 4);
  const std::size_t base = n / chunk_count;
  const std::size_t extra = n % chunk_count;

  // Loop state must be in place before the first chunk becomes visible: a
  // straggler worker from the previous loop may still be polling the queues
  // and can legally start on new chunks the moment they are pushed.
  body_ = &fn;
  first_error_ = nullptr;
  chunks_remaining_.store(chunk_count, std::memory_order_release);

  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunk_count; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    Chunk chunk{begin, begin + len};
    begin += len;
    Queue& q = *queues_[c % executors];
    std::lock_guard<std::mutex> lk(q.mu);
    q.chunks.push_back(chunk);
  }

  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    ++generation_;
  }
  wake_cv_.notify_all();

  // The caller is the last executor.
  run_chunks(executors - 1);
  {
    std::unique_lock<std::mutex> lk(done_mu_);
    done_cv_.wait(lk, [this] {
      return chunks_remaining_.load(std::memory_order_acquire) == 0;
    });
  }
  body_ = nullptr;
  if (first_error_) {
    std::rethrow_exception(first_error_);
  }
}

void ThreadPool::worker_main(std::size_t self) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(wake_mu_);
      wake_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) {
        return;
      }
      seen = generation_;
    }
    run_chunks(self);
  }
}

bool ThreadPool::try_pop(std::size_t self, Chunk& out) {
  {
    Queue& own = *queues_[self];
    std::lock_guard<std::mutex> lk(own.mu);
    if (!own.chunks.empty()) {
      out = own.chunks.back();  // LIFO: stay on recently dealt ranges
      own.chunks.pop_back();
      return true;
    }
  }
  for (std::size_t i = 1; i < queues_.size(); ++i) {
    Queue& victim = *queues_[(self + i) % queues_.size()];
    std::lock_guard<std::mutex> lk(victim.mu);
    if (!victim.chunks.empty()) {
      out = victim.chunks.front();  // FIFO: steal the range farthest from
      victim.chunks.pop_front();    // the victim's working end
      g_steals.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::execute(const Chunk& chunk) {
  // After a failure the loop still drains, but remaining chunks are skipped
  // so the caller sees the first error quickly.
  {
    std::lock_guard<std::mutex> lk(error_mu_);
    if (first_error_) {
      return;
    }
  }
  try {
    for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
      (*body_)(i);
    }
  } catch (...) {
    std::lock_guard<std::mutex> lk(error_mu_);
    if (!first_error_) {
      first_error_ = std::current_exception();
    }
  }
}

void ThreadPool::run_chunks(std::size_t self) {
  t_inside_loop = true;
  Chunk chunk;
  while (chunks_remaining_.load(std::memory_order_acquire) > 0 &&
         try_pop(self, chunk)) {
    execute(chunk);
    g_chunks.fetch_add(1, std::memory_order_relaxed);
    if (chunks_remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lk(done_mu_);
      done_cv_.notify_all();
    }
  }
  t_inside_loop = false;
}

}  // namespace locald::exec
