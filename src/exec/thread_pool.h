// Work-stealing thread pool behind every parallel hot path.
//
// The pool owns `threads - 1` workers; the caller of `parallel_for`
// participates as the final executor, so `ThreadPool(1)` spawns no threads
// and runs everything inline on the calling thread — the serial path IS the
// one-thread pool. Loop iterations are split into contiguous chunks dealt
// round-robin across per-executor deques; an executor drains its own deque
// LIFO and steals from the others FIFO, which keeps contiguous index ranges
// on one core while letting idle executors absorb imbalance (the balls of a
// scenario vary wildly in evaluation cost).
//
// Determinism contract: `parallel_for` guarantees only that fn(i) runs
// exactly once per index, on some executor, at some time. Callers that need
// scheduling-independent results (all of locald does) must make each
// iteration self-contained — writes go to per-index slots or commutative
// accumulators, and randomness comes from `Rng::stream` counters rather than
// shared sequential state. See docs/ARCHITECTURE.md, "Execution engine".
//
// Nested `parallel_for` calls (from inside a running iteration) execute
// inline on the calling executor rather than deadlocking on the pool.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace locald::exec {

class ThreadPool {
 public:
  // `threads` <= 0 means hardware_parallelism().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Executors available to a loop: workers plus the calling thread.
  int parallelism() const { return static_cast<int>(workers_.size()) + 1; }

  static int hardware_parallelism();

  // Runs fn(i) exactly once for every i in [0, n); blocks until all
  // iterations finished. The first exception thrown by any iteration is
  // rethrown on the caller after the loop drains (remaining chunks are
  // skipped). Runs inline when the pool has no workers, when n is tiny, or
  // when called from inside another parallel_for of any pool.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  // Process-wide pool activity, summed across every pool instance. Exported
  // to the metrics registry (locald_pool_*); pure observability — nothing
  // reads these to make decisions.
  struct ActivityCounters {
    std::uint64_t loops = 0;          // parallel_for calls that fanned out
    std::uint64_t inline_loops = 0;   // calls that ran serially instead
    std::uint64_t chunks = 0;         // chunks executed by any executor
    std::uint64_t steals = 0;         // chunks popped from a victim's deque
  };
  static ActivityCounters activity();

 private:
  struct Chunk {
    std::size_t begin = 0;
    std::size_t end = 0;
  };
  struct Queue {
    std::mutex mu;
    std::deque<Chunk> chunks;
  };

  void worker_main(std::size_t self);
  // Drains chunks (own deque first, then stealing) until none are left.
  void run_chunks(std::size_t self);
  bool try_pop(std::size_t self, Chunk& out);
  void execute(const Chunk& chunk);

  std::vector<std::thread> workers_;
  // One deque per worker plus one for the submitting caller (last slot).
  std::vector<std::unique_ptr<Queue>> queues_;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;

  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::atomic<std::size_t> chunks_remaining_{0};

  std::mutex submit_mu_;  // one loop at a time
  const std::function<void(std::size_t)>* body_ = nullptr;

  std::mutex error_mu_;
  std::exception_ptr first_error_;
};

}  // namespace locald::exec
