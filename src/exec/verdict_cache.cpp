#include "exec/verdict_cache.h"

#include "exec/verdict_store.h"
#include "obs/metrics.h"
#include "support/check.h"

namespace locald::exec {

VerdictCache::VerdictCache(std::size_t shard_count)
    : shards_(shard_count == 0 ? 1 : shard_count) {}

const VerdictCache::Shard& VerdictCache::shard_for(
    std::uint64_t fingerprint) const {
  // The fingerprint is already an avalanche of the encoding; the low bits
  // spread classes evenly across shards.
  return shards_[static_cast<std::size_t>(fingerprint % shards_.size())];
}

std::string VerdictCache::key(const std::string& algorithm,
                              const std::string& encoding) {
  std::string k;
  k.reserve(algorithm.size() + 1 + encoding.size());
  k += algorithm;
  k += '\0';
  k += encoding;
  return k;
}

std::optional<bool> VerdictCache::lookup(std::uint64_t fingerprint,
                                         const std::string& algorithm,
                                         const std::string& encoding) const {
  const Shard& shard = shard_for(fingerprint);
  std::lock_guard<std::mutex> lk(shard.mu);
  const auto it = shard.map.find(key(algorithm, encoding));
  if (it != shard.map.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  if (store_ != nullptr) {
    // Memory miss: fall through to the disk tier, and promote a hit back
    // into the memory tier so the detour is paid once per eviction.
    if (const auto stored = store_->lookup(fingerprint, algorithm, encoding)) {
      const_cast<Shard&>(shard).map.emplace(key(algorithm, encoding),
                                            *stored);
      store_hits_.fetch_add(1, std::memory_order_relaxed);
      return stored;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void VerdictCache::insert(std::uint64_t fingerprint,
                          const std::string& algorithm,
                          const std::string& encoding, bool accepted) {
  Shard& shard =
      shards_[static_cast<std::size_t>(fingerprint % shards_.size())];
  std::lock_guard<std::mutex> lk(shard.mu);
  const auto [it, inserted] =
      shard.map.emplace(key(algorithm, encoding), accepted);
  // Two threads can race to decide the same class; they must agree.
  LOCALD_ASSERT(inserted || it->second == accepted,
                "conflicting verdicts memoized for one canonical class");
  if (store_ != nullptr && inserted && store_->writable()) {
    // Write-through: the store dedups replays, so a promote-then-reinsert
    // never grows the log. A follower's store is read-only — its freshly
    // decided verdicts stay in the memory tier, and the shared log grows
    // only through the single writer.
    store_->append(fingerprint, algorithm, encoding, accepted);
  }
}

void VerdictCache::clear() {
  // Every entry was appended to the store at insert time; eviction only
  // needs the log durable before the memory tier forgets it.
  if (store_ != nullptr) store_->sync();
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard.mu);
    shard.map.clear();
  }
}

std::vector<std::shared_ptr<void>> VerdictCache::register_metrics() {
  obs::Registry& reg = obs::registry();
  std::vector<std::shared_ptr<void>> handles;
  handles.push_back(reg.counter_fn(
      "locald_cache_hits_total", "Verdict-cache memory-tier hits",
      [this] { return hits_.load(std::memory_order_relaxed); }));
  handles.push_back(reg.counter_fn(
      "locald_cache_store_hits_total",
      "Verdict-cache hits answered from the attached persistent store",
      [this] { return store_hits_.load(std::memory_order_relaxed); }));
  handles.push_back(reg.counter_fn(
      "locald_cache_misses_total", "Verdict-cache misses (neither tier)",
      [this] { return misses_.load(std::memory_order_relaxed); }));
  handles.push_back(reg.gauge_fn(
      "locald_cache_entries", "Memoized verdicts resident in memory",
      [this] { return static_cast<double>(stats().entries); }));
  return handles;
}

VerdictCache::Stats VerdictCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.store_hits = store_hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard.mu);
    s.entries += shard.map.size();
  }
  return s;
}

}  // namespace locald::exec
