// Sharded memoization of deterministic per-ball verdicts.
//
// A deterministic, isomorphism-invariant local algorithm decides every ball
// in a canonical-isomorphism class identically, so the class — named by
// `Ball::canonical_encoding()` — needs deciding once per algorithm. The
// cache maps (algorithm name, canonical encoding) to the verdict; the
// 64-bit `canonical_fingerprint()` picks the shard, and the full encoding
// is the key inside the shard, so fingerprint collisions cost a shard
// detour, never a wrong verdict.
//
// Sharding keeps the cache safe and cheap under the thread pool: each shard
// has its own mutex and map, so concurrent lookups of unrelated balls never
// contend. Hit/miss counters are atomics; note that under parallelism two
// threads can miss the same class concurrently and both insert, so the
// counters (unlike the cached verdicts) are NOT scheduling-deterministic —
// `locald sweep` therefore reports them only in its volatile `--timing`
// section.
//
// Correctness contract for callers: memoize only algorithms whose verdict is
// a pure function of the ball's isomorphism class — deterministic, and
// either id-oblivious or invariant under ball-node renumbering. Randomized
// algorithms must never be memoized (their verdict depends on the coins).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace locald::exec {

class VerdictCache {
 public:
  explicit VerdictCache(std::size_t shard_count = 16);

  VerdictCache(const VerdictCache&) = delete;
  VerdictCache& operator=(const VerdictCache&) = delete;

  // `accepted` for the class named by (algorithm, encoding), if decided.
  std::optional<bool> lookup(std::uint64_t fingerprint,
                             const std::string& algorithm,
                             const std::string& encoding) const;

  void insert(std::uint64_t fingerprint, const std::string& algorithm,
              const std::string& encoding, bool accepted);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t entries = 0;
    double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };
  Stats stats() const;

  // Drops every memoized verdict; hit/miss counters keep accumulating
  // (they are reported as monotonic metrics). Long-lived owners — the
  // serving layer keeps ONE cache for the whole process — call this when
  // `stats().entries` crosses their memory budget: dropping entries can
  // never change a verdict (memoized == unmemoized is the engine's
  // contract), it only costs re-deciding classes.
  void clear();

  std::size_t shard_count() const { return shards_.size(); }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, bool> map;
  };

  const Shard& shard_for(std::uint64_t fingerprint) const;
  static std::string key(const std::string& algorithm,
                         const std::string& encoding);

  std::vector<Shard> shards_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

}  // namespace locald::exec
