// Sharded memoization of deterministic per-ball verdicts.
//
// A deterministic, isomorphism-invariant local algorithm decides every ball
// in a canonical-isomorphism class identically, so the class — named by
// `Ball::canonical_encoding()` — needs deciding once per algorithm. The
// cache maps (algorithm name, canonical encoding) to the verdict; the
// 64-bit `canonical_fingerprint()` picks the shard, and the full encoding
// is the key inside the shard, so fingerprint collisions cost a shard
// detour, never a wrong verdict.
//
// Sharding keeps the cache safe and cheap under the thread pool: each shard
// has its own mutex and map, so concurrent lookups of unrelated balls never
// contend. Hit/miss counters are atomics; note that under parallelism two
// threads can miss the same class concurrently and both insert, so the
// counters (unlike the cached verdicts) are NOT scheduling-deterministic —
// `locald sweep` therefore reports them only in its volatile `--timing`
// section.
//
// Correctness contract for callers: memoize only algorithms whose verdict is
// a pure function of the ball's isomorphism class — deterministic, and
// either id-oblivious or invariant under ball-node renumbering. Randomized
// algorithms must never be memoized (their verdict depends on the coins).
//
// With `attach_store`, a persistent `VerdictStore` becomes the disk tier:
// every insert writes through to the store, a memory miss falls through to
// a store lookup (counted as `store_hits`, and the verdict is promoted back
// into the memory tier), and `clear()` syncs the store before dropping
// entries — so eviction trades memory for a disk detour, never for
// recomputation. `locald serve --store PATH` rides on this to start warm.
// A read-only follower store (`VerdictStore::Role::follower`) skips the
// write-through: the follower's own decisions live only in its memory
// tier, while the single writer's appends arrive via the store's tail
// refresh on the next miss.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace locald::exec {

class VerdictStore;

class VerdictCache {
 public:
  explicit VerdictCache(std::size_t shard_count = 16);

  VerdictCache(const VerdictCache&) = delete;
  VerdictCache& operator=(const VerdictCache&) = delete;

  // Backs this cache with a persistent store (non-owning; the store must
  // outlive the cache). Call before the cache is shared across threads.
  void attach_store(VerdictStore* store) { store_ = store; }
  VerdictStore* store() const { return store_; }

  // `accepted` for the class named by (algorithm, encoding), if decided.
  std::optional<bool> lookup(std::uint64_t fingerprint,
                             const std::string& algorithm,
                             const std::string& encoding) const;

  void insert(std::uint64_t fingerprint, const std::string& algorithm,
              const std::string& encoding, bool accepted);

  struct Stats {
    std::uint64_t hits = 0;        // answered from the memory tier
    std::uint64_t store_hits = 0;  // answered from the attached store
    std::uint64_t misses = 0;      // answered by neither tier
    std::uint64_t entries = 0;
    double hit_rate() const {
      const std::uint64_t total = hits + store_hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits + store_hits) / total;
    }
  };
  Stats stats() const;

  // Registers this cache's tiers into the process metrics registry under
  // `locald_cache_*`. Callback-based: the registry pulls from the same
  // atomics `stats()` reads, so Prometheus and JSON surfaces always agree.
  // The returned handles own the registration — drop them to unregister
  // (last registration wins when several caches coexist, e.g. server tests).
  std::vector<std::shared_ptr<void>> register_metrics();

  // Drops every memoized verdict; hit/miss counters keep accumulating
  // (they are reported as monotonic metrics). Long-lived owners — the
  // serving layer keeps ONE cache for the whole process — call this when
  // `stats().entries` crosses their memory budget: dropping entries can
  // never change a verdict (memoized == unmemoized is the engine's
  // contract), it only costs re-deciding classes. With a store attached
  // every entry was written through at insert time, so clear() fsyncs the
  // store before dropping — evicted classes are answered from disk, not
  // recomputed.
  void clear();

  std::size_t shard_count() const { return shards_.size(); }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, bool> map;
  };

  const Shard& shard_for(std::uint64_t fingerprint) const;
  static std::string key(const std::string& algorithm,
                         const std::string& encoding);

  std::vector<Shard> shards_;
  VerdictStore* store_ = nullptr;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> store_hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

}  // namespace locald::exec
