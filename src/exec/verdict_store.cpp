#include "exec/verdict_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "obs/metrics.h"
#include "support/check.h"
#include "support/format.h"
#include "support/hash.h"

namespace locald::exec {

namespace {

constexpr char kMagic[4] = {'L', 'D', 'V', 'S'};
constexpr std::uint32_t kVersion = 1;

struct FileHeader {
  char magic[4];
  std::uint32_t version;
  std::uint32_t shard_index;
  std::uint32_t shard_count;
};
static_assert(sizeof(FileHeader) == 16);

struct RecordHeader {
  std::uint32_t checksum;
  std::uint32_t algo_len;
  std::uint32_t enc_len;
  std::uint8_t verdict;
  std::uint8_t pad[3];
};
static_assert(sizeof(RecordHeader) == 16);

// A canonical encoding is bounded by the memo ball cap upstream; anything
// near this bound in a length field is log corruption, not a real record.
constexpr std::uint32_t kMaxKeyBytes = 1u << 24;

// Test hook (test_fail_next_append_after): byte count after which the next
// append fails mid-write, or -1 when disarmed.
std::atomic<long> g_fail_append_after{-1};

std::uint32_t fold32(std::uint64_t h) {
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

// Checksum over everything after the checksum field: the rest of the
// header, then the key bytes.
std::uint32_t record_checksum(const RecordHeader& header,
                              const std::string& algorithm,
                              const std::string& encoding) {
  std::uint64_t h =
      fnv1a(reinterpret_cast<const char*>(&header) + sizeof(std::uint32_t),
            sizeof(RecordHeader) - sizeof(std::uint32_t));
  h = fnv1a(algorithm.data(), algorithm.size(), h);
  h = fnv1a(encoding.data(), encoding.size(), h);
  return fold32(h);
}

std::uint32_t record_checksum_raw(const char* record, std::size_t len) {
  return fold32(fnv1a(record + sizeof(std::uint32_t),
                      len - sizeof(std::uint32_t)));
}

std::uint64_t key_hash(const std::string& algorithm,
                       const std::string& encoding) {
  std::uint64_t h = fnv1a(algorithm.data(), algorithm.size());
  h = fnv1a("\0", 1, h);
  return fnv1a(encoding.data(), encoding.size(), h);
}

void write_fully(int fd, const char* data, std::size_t len,
                 const std::string& what) {
  std::size_t written = 0;
  while (written < len) {
    const ssize_t n = ::write(fd, data + written, len - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(cat("verdict store: write(", what,
                      "): ", std::strerror(errno)));
    }
    written += static_cast<std::size_t>(n);
  }
}

// Shard file names are zero-padded to a fixed width per store so a
// directory listing sorts in shard-index order: two digits covers the
// common counts, three once the store is sharded past 100 files.
std::string shard_file(const std::string& path, std::size_t index,
                       std::size_t count) {
  const std::size_t width = count > 100 ? 3 : 2;
  std::string digits = std::to_string(index);
  while (digits.size() < width) digits.insert(digits.begin(), '0');
  return cat(path, "/shard-", digits, ".log");
}

}  // namespace

void VerdictStore::test_fail_next_append_after(std::size_t bytes) {
  g_fail_append_after.store(static_cast<long>(bytes),
                            std::memory_order_relaxed);
}

VerdictStore::VerdictStore(std::string path, std::size_t shard_count,
                           Role role)
    : path_(std::move(path)), role_(role), shards_(shard_count) {
  LOCALD_CHECK(!path_.empty(), "verdict store path must be non-empty");
  LOCALD_CHECK(shard_count >= 1 && shard_count <= 256,
               "verdict store shard count must be in [1, 256]");
  if (writable()) {
    if (::mkdir(path_.c_str(), 0755) != 0 && errno != EEXIST) {
      throw Error(cat("verdict store: cannot create directory ", path_, ": ",
                      std::strerror(errno)));
    }
    acquire_write_lease();
  }
  try {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      open_shard(shards_[i], i);
    }
  } catch (...) {
    // Half-open stores must not leak the lease or shard descriptors; the
    // destructor will not run for a throwing constructor.
    for (Shard& shard : shards_) {
      if (shard.map != nullptr) {
        ::munmap(const_cast<char*>(shard.map), shard.map_size);
      }
      if (shard.fd >= 0) ::close(shard.fd);
    }
    if (lease_fd_ >= 0) ::close(lease_fd_);
    throw;
  }
}

VerdictStore::~VerdictStore() {
  sync();
  for (Shard& shard : shards_) {
    if (shard.map != nullptr) {
      ::munmap(const_cast<char*>(shard.map), shard.map_size);
    }
    if (shard.fd >= 0) ::close(shard.fd);
  }
  // Closing the lease descriptor releases the OFD lock with it.
  if (lease_fd_ >= 0) ::close(lease_fd_);
}

void VerdictStore::acquire_write_lease() {
  const std::string lock_file = cat(path_, "/LOCK");
  lease_fd_ = ::open(lock_file.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (lease_fd_ < 0) {
    throw Error(cat("verdict store: cannot open write lease ", lock_file,
                    ": ", std::strerror(errno)));
  }
  // An open-file-description (OFD) lock: held for the life of this open
  // description, released on close or process death — never by another fd
  // in this process touching the file — and it conflicts between two
  // opens even inside one process, so the single-writer invariant is
  // testable without forking.
  struct flock lease{};
  lease.l_type = F_WRLCK;
  lease.l_whence = SEEK_SET;
  lease.l_start = 0;
  lease.l_len = 0;  // the whole file
  if (::fcntl(lease_fd_, F_OFD_SETLK, &lease) != 0) {
    const bool held = errno == EAGAIN || errno == EACCES;
    const std::string why = std::strerror(errno);
    ::close(lease_fd_);
    lease_fd_ = -1;
    if (held) {
      throw Error(cat("verdict store: ", path_,
                      " already has a live writer (write lease ", lock_file,
                      " is held); run additional processes as read-only "
                      "followers (--follower)"));
    }
    throw Error(cat("verdict store: cannot acquire write lease ", lock_file,
                    ": ", why));
  }
}

void VerdictStore::open_shard(Shard& shard, std::size_t index) {
  const std::string file = shard_file(path_, index, shards_.size());
  shard.fd = writable()
                 ? ::open(file.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644)
                 : ::open(file.c_str(), O_RDONLY | O_CLOEXEC);
  if (shard.fd < 0) {
    throw Error(cat("verdict store: cannot open ", file, ": ",
                    std::strerror(errno),
                    writable() ? ""
                               : " (follower mode: the store must be "
                                 "created by a writer first)"));
  }
  struct stat st{};
  LOCALD_CHECK(::fstat(shard.fd, &st) == 0,
               cat("verdict store: fstat(", file, ")"));
  std::uint64_t file_size = static_cast<std::uint64_t>(st.st_size);

  if (file_size == 0) {
    if (!writable()) {
      throw Error(cat("verdict store: ", file,
                      " has no header yet (follower mode: wait for the "
                      "writer to initialize the store)"));
    }
    FileHeader header{};
    std::memcpy(header.magic, kMagic, sizeof(kMagic));
    header.version = kVersion;
    header.shard_index = static_cast<std::uint32_t>(index);
    header.shard_count = static_cast<std::uint32_t>(shards_.size());
    write_fully(shard.fd, reinterpret_cast<const char*>(&header),
                sizeof(header), file);
    shard.size = sizeof(header);
    return;
  }

  if (file_size < sizeof(FileHeader)) {
    if (!writable()) {
      throw Error(cat("verdict store: ", file,
                      " has no header yet (follower mode: wait for the "
                      "writer to initialize the store)"));
    }
    // Crash before even the header landed: start the shard over.
    LOCALD_CHECK(::ftruncate(shard.fd, 0) == 0,
                 cat("verdict store: ftruncate(", file, ")"));
    dropped_bytes_ += file_size;
    truncations_ += 1;
    open_shard(shard, index);
    return;
  }

  // Recovery scan over a private read-only mapping of the whole log.
  void* mapped = ::mmap(nullptr, static_cast<std::size_t>(file_size),
                        PROT_READ, MAP_PRIVATE, shard.fd, 0);
  if (mapped == MAP_FAILED) {
    throw Error(cat("verdict store: mmap(", file, "): ",
                    std::strerror(errno)));
  }
  const char* base = static_cast<const char*>(mapped);

  FileHeader header{};
  std::memcpy(&header, base, sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0 ||
      header.version != kVersion ||
      header.shard_index != static_cast<std::uint32_t>(index) ||
      header.shard_count != static_cast<std::uint32_t>(shards_.size())) {
    ::munmap(mapped, static_cast<std::size_t>(file_size));
    throw Error(cat("verdict store: ", file,
                    " is not a shard of this store (wrong magic, version, "
                    "or shard layout)"));
  }

  std::uint64_t offset = sizeof(FileHeader);
  while (offset < file_size) {
    if (file_size - offset < sizeof(RecordHeader)) break;  // torn tail
    RecordHeader rec{};
    std::memcpy(&rec, base + offset, sizeof(rec));
    if (rec.algo_len > kMaxKeyBytes || rec.enc_len > kMaxKeyBytes) {
      break;  // garbage lengths: unwalkable tail, drop from here
    }
    const std::uint64_t record_len =
        sizeof(RecordHeader) + rec.algo_len + rec.enc_len;
    if (file_size - offset < record_len) break;  // torn tail
    const std::uint32_t expected =
        record_checksum_raw(base + offset, record_len);
    if (rec.checksum != expected) {
      // Quarantine: the lengths walked us past exactly this record; what
      // follows is intact and keeps loading.
      quarantined_ += 1;
      offset += record_len;
      continue;
    }
    const std::string algorithm(base + offset + sizeof(RecordHeader),
                                rec.algo_len);
    const std::string encoding(
        base + offset + sizeof(RecordHeader) + rec.algo_len, rec.enc_len);
    shard.index.emplace(key_hash(algorithm, encoding), offset);
    records_loaded_ += 1;
    offset += record_len;
  }

  if (offset < file_size && writable()) {
    // Torn or unwalkable tail: truncate so new appends start on a clean
    // record boundary.
    dropped_bytes_ += file_size - offset;
    truncations_ += 1;
    LOCALD_CHECK(::ftruncate(shard.fd, static_cast<off_t>(offset)) == 0,
                 cat("verdict store: ftruncate(", file, ")"));
    ::munmap(mapped, static_cast<std::size_t>(file_size));
    mapped = nullptr;
    if (offset > sizeof(FileHeader)) {
      mapped = ::mmap(nullptr, static_cast<std::size_t>(offset), PROT_READ,
                      MAP_PRIVATE, shard.fd, 0);
      if (mapped == MAP_FAILED) {
        throw Error(cat("verdict store: mmap(", file, "): ",
                        std::strerror(errno)));
      }
      shard.map = static_cast<const char*>(mapped);
      shard.map_size = static_cast<std::size_t>(offset);
    }
  } else {
    // Follower: never truncate — the bytes past `offset` may be a write
    // still in flight; the map covers the whole file and the high-water
    // mark stays at the last whole record until a tail refresh moves it.
    shard.map = base;
    shard.map_size = static_cast<std::size_t>(file_size);
  }
  shard.size = offset;
  if (writable()) {
    // Appends go through the fd's own offset; position it at the log's end
    // (O_APPEND is avoided so a truncated fd and the logical size agree).
    LOCALD_CHECK(::lseek(shard.fd, static_cast<off_t>(shard.size),
                         SEEK_SET) >= 0,
                 cat("verdict store: lseek(", file, ")"));
  }
}

bool VerdictStore::refresh_tail(Shard& shard) const {
  struct stat st{};
  if (::fstat(shard.fd, &st) != 0) return false;
  const std::uint64_t file_size = static_cast<std::uint64_t>(st.st_size);
  if (file_size <= shard.size) return false;  // nothing new
  tail_refreshes_.fetch_add(1, std::memory_order_relaxed);

  // Records are append-only and immutable, so a refresh is a fresh private
  // map of the grown file plus a scan from the old high-water offset. The
  // old map is replaced (not extended): a MAP_PRIVATE page already faulted
  // in is not guaranteed to reflect writes made after the map, a fresh one
  // is.
  void* mapped = ::mmap(nullptr, static_cast<std::size_t>(file_size),
                        PROT_READ, MAP_PRIVATE, shard.fd, 0);
  if (mapped == MAP_FAILED) return false;
  if (shard.map != nullptr) {
    ::munmap(const_cast<char*>(shard.map), shard.map_size);
  }
  shard.map = static_cast<const char*>(mapped);
  shard.map_size = static_cast<std::size_t>(file_size);

  const char* base = shard.map;
  std::uint64_t offset = shard.size;
  std::uint64_t picked = 0;
  while (offset < file_size) {
    if (file_size - offset < sizeof(RecordHeader)) break;
    RecordHeader rec{};
    std::memcpy(&rec, base + offset, sizeof(rec));
    if (rec.algo_len > kMaxKeyBytes || rec.enc_len > kMaxKeyBytes) break;
    const std::uint64_t record_len =
        sizeof(RecordHeader) + rec.algo_len + rec.enc_len;
    if (file_size - offset < record_len) break;
    if (rec.checksum != record_checksum_raw(base + offset, record_len)) {
      // Either the writer's write() is still partially visible or the
      // record is genuinely corrupt; the follower cannot tell, so it holds
      // the high-water mark here and retries on the next miss. A writer
      // restart repairs true corruption.
      break;
    }
    const std::string algorithm(base + offset + sizeof(RecordHeader),
                                rec.algo_len);
    const std::string encoding(
        base + offset + sizeof(RecordHeader) + rec.algo_len, rec.enc_len);
    shard.index.emplace(key_hash(algorithm, encoding), offset);
    picked += 1;
    offset += record_len;
  }
  shard.size = offset;
  tail_records_.fetch_add(picked, std::memory_order_relaxed);
  return picked > 0;
}

std::optional<bool> VerdictStore::match_record(
    const Shard& shard, std::uint64_t offset, const std::string& algorithm,
    const std::string& encoding) const {
  const std::size_t record_len =
      sizeof(RecordHeader) + algorithm.size() + encoding.size();
  std::vector<char> scratch;
  const char* record = nullptr;
  if (offset + record_len <= shard.map_size) {
    record = shard.map + offset;
  } else {
    scratch.resize(record_len);
    const ssize_t n = ::pread(shard.fd, scratch.data(), record_len,
                              static_cast<off_t>(offset));
    if (n != static_cast<ssize_t>(record_len)) return std::nullopt;
    record = scratch.data();
  }
  RecordHeader rec{};
  std::memcpy(&rec, record, sizeof(rec));
  if (rec.algo_len != algorithm.size() || rec.enc_len != encoding.size()) {
    return std::nullopt;  // hash collision with a different key
  }
  const char* keys = record + sizeof(RecordHeader);
  if (std::memcmp(keys, algorithm.data(), algorithm.size()) != 0 ||
      std::memcmp(keys + algorithm.size(), encoding.data(),
                  encoding.size()) != 0) {
    return std::nullopt;
  }
  return rec.verdict != 0;
}

std::optional<bool> VerdictStore::lookup(std::uint64_t fingerprint,
                                         const std::string& algorithm,
                                         const std::string& encoding) const {
  Shard& shard =
      shards_[static_cast<std::size_t>(fingerprint % shards_.size())];
  const std::uint64_t hash = key_hash(algorithm, encoding);
  std::lock_guard<std::mutex> lk(shard.mu);
  for (int pass = 0; pass < 2; ++pass) {
    const auto [begin, end] = shard.index.equal_range(hash);
    for (auto it = begin; it != end; ++it) {
      if (const auto verdict =
              match_record(shard, it->second, algorithm, encoding)) {
        return verdict;
      }
    }
    // Follower miss: the writer may have appended this class since our
    // last scan — pick up the grown tail once, then re-check the index.
    if (writable() || pass == 1 || !refresh_tail(shard)) break;
  }
  return std::nullopt;
}

void VerdictStore::append(std::uint64_t fingerprint,
                          const std::string& algorithm,
                          const std::string& encoding, bool accepted) {
  LOCALD_ASSERT(writable(),
                "verdict store: append() on a read-only follower");
  LOCALD_CHECK(algorithm.size() < kMaxKeyBytes && encoding.size() < kMaxKeyBytes,
               "verdict store: key too large");
  Shard& shard =
      shards_[static_cast<std::size_t>(fingerprint % shards_.size())];
  const std::uint64_t hash = key_hash(algorithm, encoding);
  std::lock_guard<std::mutex> lk(shard.mu);
  const auto [begin, end] = shard.index.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    if (match_record(shard, it->second, algorithm, encoding)) {
      return;  // already persisted; replays must not grow the log
    }
  }
  RecordHeader rec{};
  rec.algo_len = static_cast<std::uint32_t>(algorithm.size());
  rec.enc_len = static_cast<std::uint32_t>(encoding.size());
  rec.verdict = accepted ? 1 : 0;
  rec.checksum = record_checksum(rec, algorithm, encoding);
  std::string bytes;
  bytes.reserve(sizeof(rec) + algorithm.size() + encoding.size());
  bytes.append(reinterpret_cast<const char*>(&rec), sizeof(rec));
  bytes += algorithm;
  bytes += encoding;
  const std::string file = shard_file(
      path_, static_cast<std::size_t>(fingerprint % shards_.size()),
      shards_.size());
  try {
    const long inject = g_fail_append_after.exchange(
        -1, std::memory_order_relaxed);
    if (inject >= 0) {
      write_fully(shard.fd, bytes.data(),
                  std::min(static_cast<std::size_t>(inject), bytes.size()),
                  file);
      throw Error(cat("verdict store: write(", file,
                      "): injected short write"));
    }
    write_fully(shard.fd, bytes.data(), bytes.size(), file);
  } catch (...) {
    // A partial append would leave torn bytes mid-file: the next
    // successful append would land after them and recovery's
    // declared-length walk would misparse everything that follows. Roll
    // the file back to the pre-append boundary before the error
    // propagates; best-effort — if even ftruncate fails here the open-time
    // recovery scan still drops the torn tail.
    ::ftruncate(shard.fd, static_cast<off_t>(shard.size));
    ::lseek(shard.fd, static_cast<off_t>(shard.size), SEEK_SET);
    throw;
  }
  shard.index.emplace(hash, shard.size);
  shard.size += bytes.size();
  appended_.fetch_add(1, std::memory_order_relaxed);
  appended_bytes_.fetch_add(bytes.size(), std::memory_order_relaxed);
}

void VerdictStore::sync() {
  if (!writable()) return;  // followers have nothing of their own to flush
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard.mu);
    if (shard.fd >= 0) {
      ::fsync(shard.fd);
      fsyncs_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

VerdictStore::Stats VerdictStore::stats() const {
  Stats s;
  s.records_loaded = records_loaded_;
  s.quarantined = quarantined_;
  s.dropped_bytes = dropped_bytes_;
  s.truncations = truncations_;
  s.appended = appended_.load(std::memory_order_relaxed);
  s.appended_bytes = appended_bytes_.load(std::memory_order_relaxed);
  s.fsyncs = fsyncs_.load(std::memory_order_relaxed);
  s.tail_refreshes = tail_refreshes_.load(std::memory_order_relaxed);
  s.tail_records = tail_records_.load(std::memory_order_relaxed);
  return s;
}

std::vector<std::shared_ptr<void>> VerdictStore::register_metrics() {
  obs::Registry& reg = obs::registry();
  std::vector<std::shared_ptr<void>> handles;
  handles.push_back(reg.counter_fn(
      "locald_store_records_loaded_total",
      "Valid verdict records indexed when the store opened",
      [this] { return records_loaded_; }));
  handles.push_back(reg.counter_fn(
      "locald_store_appended_total",
      "Verdict records appended to the store by this process",
      [this] { return appended_.load(std::memory_order_relaxed); }));
  handles.push_back(reg.counter_fn(
      "locald_store_appended_bytes_total",
      "Log bytes appended to the store by this process",
      [this] { return appended_bytes_.load(std::memory_order_relaxed); }));
  handles.push_back(reg.counter_fn(
      "locald_store_fsyncs_total", "Shard fsync calls issued by sync()",
      [this] { return fsyncs_.load(std::memory_order_relaxed); }));
  handles.push_back(reg.counter_fn(
      "locald_store_quarantined_total",
      "Checksum-failed records skipped during crash recovery",
      [this] { return quarantined_; }));
  handles.push_back(reg.counter_fn(
      "locald_store_truncations_total",
      "Crash-recovery truncations applied to shard logs at open",
      [this] { return truncations_; }));
  handles.push_back(reg.counter_fn(
      "locald_store_dropped_bytes_total",
      "Torn-tail bytes discarded during crash recovery",
      [this] { return dropped_bytes_; }));
  handles.push_back(reg.gauge_fn(
      "locald_store_follower",
      "1 when this process serves the store as a read-only follower",
      [this] { return writable() ? 0.0 : 1.0; }));
  handles.push_back(reg.counter_fn(
      "locald_store_tail_refreshes_total",
      "Follower rescans of a shard's grown tail after a lookup miss",
      [this] { return tail_refreshes_.load(std::memory_order_relaxed); }));
  handles.push_back(reg.counter_fn(
      "locald_store_tail_records_total",
      "Writer-appended records a follower picked up via tail refreshes",
      [this] { return tail_records_.load(std::memory_order_relaxed); }));
  return handles;
}

}  // namespace locald::exec
