// Persistent, checksummed append-log store for canonical-class verdicts.
//
// A verdict is a pure function of (algorithm, canonical ball encoding), so
// it is the ideal durable artifact: once decided it is correct forever, and
// a restarted server can answer from disk what a cold one would recompute.
// The store is the disk tier under `VerdictCache` (attach_store): cache
// inserts append write-through, cache misses fall through to the store, and
// hits promote back into memory — `locald serve --store PATH` starts warm.
//
// Layout: `PATH/` is a directory of per-shard append logs, sharded by the
// same fingerprint discipline `VerdictCache` uses (fingerprint mod shard
// count picks the file), so independent classes never contend on one lock
// or one file. Each shard file is
//
//   header  : "LDVS" magic, u32 version, u32 shard index, u32 shard count
//   record* : u32 checksum   — 32-bit fold of FNV-1a over the rest
//             u32 algo_len, u32 enc_len
//             u8 verdict, u8 pad[3]
//             algo_len bytes algorithm name, enc_len bytes encoding
//
// (platform-endian: the store is a per-host cache, not an interchange
// format). Appends are plain write()s under the shard lock, so a crash can
// tear at most the final record; a failed partial append (ENOSPC, ...) is
// rolled back with ftruncate before the error propagates, so the log never
// carries torn bytes in its interior. Recovery on open memory-maps each
// shard and walks it: a truncated or garbage tail is dropped (the file is
// truncated back to the last whole record), and a record whose checksum
// fails is quarantined — skipped by its declared length, costing exactly
// that record and nothing after it.
//
// Multi-process sharing is single-writer / many-reader. The writer (the
// default role) holds an exclusive fcntl open-file-description write lease
// on `PATH/LOCK` for its whole life; a second writer on the same directory
// fails fast at open with a clear error instead of interleaving appends.
// Followers (`Role::follower`) never take the lease: they open shards
// read-only through private mmaps and pick up the writer's appends lazily —
// records are append-only and immutable, so when a lookup misses the
// follower re-scans the grown tail past its high-water offset (remapping
// the shard) and indexes whatever complete, checksum-valid records landed
// since. A record the writer is still mid-write() simply fails the scan's
// checksum or length check and is retried on the next miss; the follower
// never truncates, so a writer crash leaves it serving the last good
// prefix until a restarted writer repairs the tail.
//
// Lookups verify key bytes against the log (the in-memory index maps a
// 64-bit key hash to a file offset, keeping resident memory at ~16 bytes
// per record with the mmap as the backing key storage), so a hash collision
// costs a detour, never a wrong verdict — the same contract the cache's
// fingerprint sharding keeps.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace locald::exec {

class VerdictStore {
 public:
  enum class Role {
    writer,    // exclusive appender; owns the PATH/LOCK write lease
    follower,  // read-only; observes the writer's appends via tail refresh
  };

  // Opens the sharded store in directory `path` (creating it in writer
  // mode; a follower requires an existing, writer-initialized store).
  // Throws `Error` when the directory or a shard cannot be opened, when an
  // existing store declares a different shard count or version, when
  // `shard_count` is outside [1, 256], or when another live writer already
  // holds the write lease.
  explicit VerdictStore(std::string path, std::size_t shard_count = 16,
                        Role role = Role::writer);
  ~VerdictStore();

  VerdictStore(const VerdictStore&) = delete;
  VerdictStore& operator=(const VerdictStore&) = delete;

  // The verdict persisted for (algorithm, encoding), if any. `fingerprint`
  // picks the shard exactly as in VerdictCache::lookup. In follower mode a
  // miss against the in-memory index triggers a tail refresh — the shard is
  // remapped and any records the writer appended past the follower's
  // high-water offset are indexed — before the miss is final.
  std::optional<bool> lookup(std::uint64_t fingerprint,
                             const std::string& algorithm,
                             const std::string& encoding) const;

  // Appends one verdict record (write-through: durable up to OS buffering
  // immediately, fsync'd by sync()). A key already present in the shard is
  // skipped — replaying warm traffic must not grow the log. Writer only;
  // calling it on a follower is a bug (`VerdictCache` checks writable()).
  void append(std::uint64_t fingerprint, const std::string& algorithm,
              const std::string& encoding, bool accepted);

  // fsync every shard. Called by VerdictCache::clear() before entries are
  // dropped (the eviction write-through hook) and by the destructor.
  // No-op in follower mode (nothing of ours to flush).
  void sync();

  Role role() const { return role_; }
  // Whether append() is allowed — the write-through guard followers trip.
  bool writable() const { return role_ == Role::writer; }

  struct Stats {
    std::uint64_t records_loaded = 0;  // valid records indexed at open
    std::uint64_t quarantined = 0;     // checksum-failed records skipped
    std::uint64_t dropped_bytes = 0;   // truncated-tail bytes discarded
    std::uint64_t truncations = 0;     // crash-recovery ftruncate calls
    std::uint64_t appended = 0;        // records written by this process
    std::uint64_t appended_bytes = 0;  // log bytes written by this process
    std::uint64_t fsyncs = 0;          // shard fsync calls issued by sync()
    // Follower-mode counters (zero for writers):
    std::uint64_t tail_refreshes = 0;  // grown-tail rescans on lookup miss
    std::uint64_t tail_records = 0;    // records picked up by refreshes
  };
  Stats stats() const;

  // Registers the durability counters into the process metrics registry
  // under `locald_store_*` (callback-based — the registry reads the same
  // state `stats()` reports). Handles own the registration.
  std::vector<std::shared_ptr<void>> register_metrics();

  std::size_t shard_count() const { return shards_.size(); }
  const std::string& path() const { return path_; }

  // Test hook: the next append() writes only the first `bytes` bytes of its
  // record and then fails as a short write would (ENOSPC). One-shot.
  static void test_fail_next_append_after(std::size_t bytes);

 private:
  struct Shard {
    mutable std::mutex mu;
    int fd = -1;
    std::uint64_t size = 0;       // logical end of the log
    const char* map = nullptr;    // mapping of [0, map_size) made at open
    std::size_t map_size = 0;
    // key-hash → record offset; multimap so a 64-bit collision keeps both
    // records reachable (lookups verify key bytes before trusting one).
    std::unordered_multimap<std::uint64_t, std::uint64_t> index;
  };

  void acquire_write_lease();
  void open_shard(Shard& shard, std::size_t index);
  // Follower: remap the shard past its high-water offset and index every
  // complete, checksum-valid record that landed since. Returns whether any
  // new record was picked up. Caller holds shard.mu.
  bool refresh_tail(Shard& shard) const;
  // Reads the record at `offset` and returns its verdict iff its key
  // equals (algorithm, encoding).
  std::optional<bool> match_record(const Shard& shard, std::uint64_t offset,
                                   const std::string& algorithm,
                                   const std::string& encoding) const;

  std::string path_;
  Role role_;
  int lease_fd_ = -1;  // writer: the held PATH/LOCK open-file-description
  mutable std::vector<Shard> shards_;
  std::uint64_t records_loaded_ = 0;
  std::uint64_t quarantined_ = 0;
  std::uint64_t dropped_bytes_ = 0;
  std::uint64_t truncations_ = 0;
  std::atomic<std::uint64_t> appended_{0};
  std::atomic<std::uint64_t> appended_bytes_{0};
  std::atomic<std::uint64_t> fsyncs_{0};
  mutable std::atomic<std::uint64_t> tail_refreshes_{0};
  mutable std::atomic<std::uint64_t> tail_records_{0};
};

}  // namespace locald::exec
