// Persistent, checksummed append-log store for canonical-class verdicts.
//
// A verdict is a pure function of (algorithm, canonical ball encoding), so
// it is the ideal durable artifact: once decided it is correct forever, and
// a restarted server can answer from disk what a cold one would recompute.
// The store is the disk tier under `VerdictCache` (attach_store): cache
// inserts append write-through, cache misses fall through to the store, and
// hits promote back into memory — `locald serve --store PATH` starts warm.
//
// Layout: `PATH/` is a directory of per-shard append logs, sharded by the
// same fingerprint discipline `VerdictCache` uses (fingerprint mod shard
// count picks the file), so independent classes never contend on one lock
// or one file and multi-process workers can split shards between them.
// Each shard file is
//
//   header  : "LDVS" magic, u32 version, u32 shard index, u32 shard count
//   record* : u32 checksum   — 32-bit fold of FNV-1a over the rest
//             u32 algo_len, u32 enc_len
//             u8 verdict, u8 pad[3]
//             algo_len bytes algorithm name, enc_len bytes encoding
//
// (platform-endian: the store is a per-host cache, not an interchange
// format). Appends are plain write()s under the shard lock, so a crash can
// tear at most the final record. Recovery on open memory-maps each shard
// and walks it: a truncated or garbage tail is dropped (the file is
// truncated back to the last whole record), and a record whose checksum
// fails is quarantined — skipped by its declared length, costing exactly
// that record and nothing after it.
//
// Lookups verify key bytes against the log (the in-memory index maps a
// 64-bit key hash to a file offset, keeping resident memory at ~16 bytes
// per record with the mmap as the backing key storage), so a hash collision
// costs a detour, never a wrong verdict — the same contract the cache's
// fingerprint sharding keeps.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace locald::exec {

class VerdictStore {
 public:
  // Opens (creating if absent) the sharded store in directory `path`.
  // Throws `Error` when the directory cannot be created, a shard file
  // cannot be opened, or an existing store declares a different shard
  // count or version.
  explicit VerdictStore(std::string path, std::size_t shard_count = 16);
  ~VerdictStore();

  VerdictStore(const VerdictStore&) = delete;
  VerdictStore& operator=(const VerdictStore&) = delete;

  // The verdict persisted for (algorithm, encoding), if any. `fingerprint`
  // picks the shard exactly as in VerdictCache::lookup.
  std::optional<bool> lookup(std::uint64_t fingerprint,
                             const std::string& algorithm,
                             const std::string& encoding) const;

  // Appends one verdict record (write-through: durable up to OS buffering
  // immediately, fsync'd by sync()). A key already present in the shard is
  // skipped — replaying warm traffic must not grow the log.
  void append(std::uint64_t fingerprint, const std::string& algorithm,
              const std::string& encoding, bool accepted);

  // fsync every shard. Called by VerdictCache::clear() before entries are
  // dropped (the eviction write-through hook) and by the destructor.
  void sync();

  struct Stats {
    std::uint64_t records_loaded = 0;  // valid records indexed at open
    std::uint64_t quarantined = 0;     // checksum-failed records skipped
    std::uint64_t dropped_bytes = 0;   // truncated-tail bytes discarded
    std::uint64_t truncations = 0;     // crash-recovery ftruncate calls
    std::uint64_t appended = 0;        // records written by this process
    std::uint64_t appended_bytes = 0;  // log bytes written by this process
    std::uint64_t fsyncs = 0;          // shard fsync calls issued by sync()
  };
  Stats stats() const;

  // Registers the durability counters into the process metrics registry
  // under `locald_store_*` (callback-based — the registry reads the same
  // state `stats()` reports). Handles own the registration.
  std::vector<std::shared_ptr<void>> register_metrics();

  std::size_t shard_count() const { return shards_.size(); }
  const std::string& path() const { return path_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    int fd = -1;
    std::uint64_t size = 0;       // logical end of the log
    const char* map = nullptr;    // mapping of [0, map_size) made at open
    std::size_t map_size = 0;
    // key-hash → record offset; multimap so a 64-bit collision keeps both
    // records reachable (lookups verify key bytes before trusting one).
    std::unordered_multimap<std::uint64_t, std::uint64_t> index;
  };

  void open_shard(Shard& shard, std::size_t index);
  // Reads the record at `offset` and returns its verdict iff its key
  // equals (algorithm, encoding).
  std::optional<bool> match_record(const Shard& shard, std::uint64_t offset,
                                   const std::string& algorithm,
                                   const std::string& encoding) const;

  std::string path_;
  std::vector<Shard> shards_;
  std::uint64_t records_loaded_ = 0;
  std::uint64_t quarantined_ = 0;
  std::uint64_t dropped_bytes_ = 0;
  std::uint64_t truncations_ = 0;
  std::atomic<std::uint64_t> appended_{0};
  std::atomic<std::uint64_t> appended_bytes_{0};
  std::atomic<std::uint64_t> fsyncs_{0};
};

}  // namespace locald::exec
