#include "gen/family.h"

#include "support/check.h"
#include "support/format.h"

namespace locald::gen {

FamilySpec parse_family_spec(const std::string& text) {
  FamilySpec spec;
  const std::size_t colon = text.find(':');
  spec.family = text.substr(0, colon);
  LOCALD_CHECK(!spec.family.empty(),
               "family selector needs a name, e.g. \"cycle\" or "
               "\"torus:width=8,height=6\"");
  if (colon == std::string::npos) {
    return spec;
  }
  const std::string rest = text.substr(colon + 1);
  LOCALD_CHECK(!rest.empty(),
               cat("family selector \"", text, "\" has a ':' but no k=v list"));
  std::size_t start = 0;
  while (start <= rest.size()) {
    std::size_t comma = rest.find(',', start);
    if (comma == std::string::npos) {
      comma = rest.size();
    }
    const std::string item = rest.substr(start, comma - start);
    const std::size_t eq = item.find('=');
    LOCALD_CHECK(eq != std::string::npos && eq > 0,
                 cat("family parameter \"", item, "\" is not of the form k=v"));
    const std::string key = item.substr(0, eq);
    const auto value = parse_int(item.substr(eq + 1));
    LOCALD_CHECK(value.has_value(),
                 cat("family parameter \"", item, "\" needs an integer value"));
    for (const auto& [existing, unused] : spec.params) {
      LOCALD_CHECK(existing != key,
                   cat("family parameter \"", key, "\" given twice"));
    }
    spec.params.emplace_back(key, *value);
    start = comma + 1;
  }
  return spec;
}

FamilyInstanceSpec::FamilyInstanceSpec(const Family* family,
                                       std::vector<std::int64_t> values)
    : family_(family), values_(std::move(values)) {
  LOCALD_ASSERT(family_ != nullptr, "resolved spec needs a family");
  LOCALD_ASSERT(values_.size() == family_->params.size(),
                "one value required per family parameter");
}

std::int64_t FamilyInstanceSpec::value(const std::string& param) const {
  const int index = family_->param_index(param);
  LOCALD_ASSERT(index >= 0,
                cat("family ", family_->name, " has no parameter ", param));
  return values_[static_cast<std::size_t>(index)];
}

std::string FamilyInstanceSpec::canonical() const {
  std::string out = family_->name;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    out += i == 0 ? ':' : ',';
    out += family_->params[i].name;
    out += '=';
    out += std::to_string(values_[i]);
  }
  return out;
}

Invariants FamilyInstanceSpec::invariants() const {
  return family_->declared_invariants(values_);
}

graph::CsrGraph FamilyInstanceSpec::build(std::uint64_t seed) const {
  return family_->build(values_, seed);
}

int Family::param_index(const std::string& param_name) const {
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i].name == param_name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

const Family* find_family(const std::string& name) {
  for (const Family& f : family_registry()) {
    if (f.name == name) {
      return &f;
    }
  }
  return nullptr;
}

FamilyInstanceSpec resolve_family(const FamilySpec& spec, std::int64_t size) {
  const Family* family = find_family(spec.family);
  LOCALD_CHECK(family != nullptr,
               cat("unknown graph family \"", spec.family,
                   "\" (see `locald list --families`)"));
  std::vector<std::int64_t> values;
  values.reserve(family->params.size());
  for (const ParamSpec& p : family->params) {
    values.push_back(p.default_value);
  }
  std::vector<bool> explicitly_set(values.size(), false);
  for (const auto& [key, value] : spec.params) {
    const int index = family->param_index(key);
    LOCALD_CHECK(index >= 0, cat("family \"", family->name,
                                 "\" has no parameter \"", key, "\""));
    values[static_cast<std::size_t>(index)] = value;
    explicitly_set[static_cast<std::size_t>(index)] = true;
  }
  if (size > 0) {
    // The mapping sees the explicit assignments and which ones are pinned
    // (a mapping that derives one parameter from a sibling — grid height
    // from a pinned width, balanced-tree depth from arity — must use the
    // values that will actually build); whatever it writes to a pinned
    // slot is discarded, so explicit parameters always win.
    std::vector<std::int64_t> sized = values;
    family->apply_size(size, sized, explicitly_set);
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (!explicitly_set[i]) {
        values[i] = sized[i];
      }
    }
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    const ParamSpec& p = family->params[i];
    LOCALD_CHECK(values[i] >= p.min_value && values[i] <= p.max_value,
                 cat("family \"", family->name, "\" parameter ", p.name, " = ",
                     values[i], " is outside [", p.min_value, ", ",
                     p.max_value, "]"));
  }
  return FamilyInstanceSpec(family, std::move(values));
}

FamilyInstanceSpec resolve_family_text(const std::string& text,
                                       std::int64_t size) {
  return resolve_family(parse_family_spec(text), size);
}

}  // namespace locald::gen
