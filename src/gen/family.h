// The workload generator's graph-family registry.
//
// The paper's claims about identifier-free decision quantify over *graph
// families*, not single topologies; gen/ turns families into first-class,
// selectable workload sources. A `Family` is a named, parameterized graph
// builder together with
//  - a parameter schema (names, defaults, valid ranges),
//  - a size mapping (how the scenario-wide `--size` knob — a target node
//    count — translates into family parameters), and
//  - declared invariants (exact node/edge counts, degree bound,
//    connectivity, bipartiteness) that tests/test_gen.cpp verifies on built
//    instances across sizes and seeds.
//
// Determinism contract: `build(seed)` is a pure function of (family,
// canonical parameters, seed). Randomized families draw exclusively from
// counter-based streams `Rng::stream(seed, stream_id, index)`
// (graph/generators.h), so instances are call-order- and
// scheduling-independent like every other randomized artifact in locald.
//
// Selector syntax, shared by `--family` and the JSON APIs:
//
//   <name>                      e.g. "cycle"
//   <name>:<k>=<v>,<k>=<v>...   e.g. "torus:width=8,height=6"
//
// `FamilySpec::canonical()` re-encodes a resolved spec with every parameter
// spelled out in schema order — the registry-wide canonical parameter
// encoding used by bench documents and cache-style keys.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.h"

namespace locald::gen {

// One named integer parameter of a family.
struct ParamSpec {
  std::string name;
  std::int64_t default_value = 0;
  std::int64_t min_value = 0;
  std::int64_t max_value = 0;
  std::string help;
};

// Invariants a family declares for one resolved parameter assignment.
// Tests and the bench workload check every declared field against built
// instances; -1 means "not declared" for the count/bound fields.
struct Invariants {
  std::int64_t node_count = -1;    // exact node count
  std::int64_t edge_count = -1;    // exact edge count
  std::int64_t degree_bound = -1;  // inclusive max degree
  bool connected = false;          // declared always-connected
  bool bipartite = false;          // declared always-bipartite
};

class Family;

// A parsed (but not yet validated) `--family` selector.
struct FamilySpec {
  std::string family;
  std::vector<std::pair<std::string, std::int64_t>> params;  // as written
};

// Parse the selector syntax above. Throws Error on malformed text
// (empty name, missing '=', non-integer value, duplicate key).
FamilySpec parse_family_spec(const std::string& text);

// A spec resolved against the registry: every schema parameter has a value.
class FamilyInstanceSpec {
 public:
  FamilyInstanceSpec(const Family* family, std::vector<std::int64_t> values);

  const Family& family() const { return *family_; }
  const std::vector<std::int64_t>& values() const { return values_; }
  std::int64_t value(const std::string& param) const;

  // Canonical encoding: "name:k=v,..." with every parameter in schema order.
  std::string canonical() const;

  Invariants invariants() const;
  graph::CsrGraph build(std::uint64_t seed) const;

 private:
  const Family* family_;
  std::vector<std::int64_t> values_;
};

// A registered, parameterized graph family.
class Family {
 public:
  using InvariantsFn =
      Invariants (*)(const std::vector<std::int64_t>& values);
  using BuildFn = graph::CsrGraph (*)(
      const std::vector<std::int64_t>& values, std::uint64_t seed);
  // `pinned[i]` marks parameters the caller set explicitly: the mapping
  // must derive the free parameters from them (a pinned grid width turns
  // the target into a height), and whatever it writes to a pinned slot is
  // discarded by the resolver.
  using SizeFn = void (*)(std::int64_t size, std::vector<std::int64_t>& values,
                          const std::vector<bool>& pinned);

  std::string name;
  std::string summary;
  std::vector<ParamSpec> params;
  // Does `seed` change the instance? (False for the deterministic
  // topologies; their build ignores the seed entirely.)
  bool randomized = false;
  // Maps the uniform size knob — a target node count — onto `values`
  // (already filled with defaults / explicit assignments; see SizeFn for
  // the pinned mask). Families with logarithmic parameters (hypercube,
  // trees, pyramid) pick the largest instance not exceeding the target.
  SizeFn apply_size = nullptr;
  InvariantsFn declared_invariants = nullptr;
  BuildFn build = nullptr;

  int param_index(const std::string& param_name) const;  // -1 when unknown
};

// The full registry, in presentation order. At least eight families; see
// gen/registry.cpp for the list.
const std::vector<Family>& family_registry();

// Lookup by name; nullptr when unknown.
const Family* find_family(const std::string& name);

// Validate `spec` against the registry and fill unset parameters with their
// defaults. When `size > 0`, the family's size mapping is applied first and
// explicit parameter assignments override it. Throws Error on unknown
// family, unknown parameter, or out-of-range value.
FamilyInstanceSpec resolve_family(const FamilySpec& spec, std::int64_t size = 0);

// parse + resolve in one step (the CLI/API entry point).
FamilyInstanceSpec resolve_family_text(const std::string& text,
                                       std::int64_t size = 0);

}  // namespace locald::gen
