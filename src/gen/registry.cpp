// The registered graph families of the workload generator.
//
// Every family builds through src/graph generators; randomized families
// draw only from counter-based `Rng::stream` planes (see generators.h), so
// `build(values, seed)` is a pure function of its arguments. Declared
// invariants are checked per family by tests/test_gen.cpp and per built
// instance by the bench workload.
#include "gen/family.h"

#include <algorithm>

#include "graph/generators.h"
#include "graph/pyramid.h"
#include "support/check.h"
#include "support/format.h"

namespace locald::gen {

namespace {

using graph::NodeId;

NodeId as_node(std::int64_t v) { return static_cast<NodeId>(v); }

// Largest s with s * s <= target (integer square root).
std::int64_t isqrt(std::int64_t target) {
  std::int64_t s = 0;
  while ((s + 1) * (s + 1) <= target) {
    ++s;
  }
  return s;
}

// The free grid/torus dimension hitting `size` nodes given the other one,
// clamped to the family's minimum side length.
std::int64_t derive_dim(std::int64_t size, std::int64_t other,
                        std::int64_t min_dim) {
  return std::max(min_dim, size / std::max<std::int64_t>(1, other));
}

// sum_{j=0..depth} arity^j — balanced-tree node count.
std::int64_t balanced_tree_nodes(std::int64_t arity, std::int64_t depth) {
  std::int64_t n = 0;
  std::int64_t level = 1;
  for (std::int64_t j = 0; j <= depth; ++j) {
    n += level;
    level *= arity;
  }
  return n;
}

// (4^{h+1} - 1) / 3 — pyramid node count.
std::int64_t pyramid_nodes(std::int64_t h) {
  std::int64_t n = 0;
  for (std::int64_t z = 0; z <= h; ++z) {
    n += (std::int64_t{1} << (h - z)) * (std::int64_t{1} << (h - z));
  }
  return n;
}

std::int64_t pyramid_edges(std::int64_t h) {
  std::int64_t edges = 0;
  for (std::int64_t z = 0; z <= h; ++z) {
    const std::int64_t s = std::int64_t{1} << (h - z);
    edges += 2 * s * (s - 1);  // grid edges of level z
    if (z < h) {
      edges += s * s;  // parent edges into level z + 1
    }
  }
  return edges;
}

std::vector<Family> build_registry() {
  std::vector<Family> families;

  families.push_back(Family{
      "path",
      "simple path on n nodes",
      {{"n", 32, 1, 1 << 24, "node count"}},
      /*randomized=*/false,
      +[](std::int64_t size, std::vector<std::int64_t>& v,
          const std::vector<bool>&) {
        v[0] = std::max<std::int64_t>(1, size);
      },
      +[](const std::vector<std::int64_t>& v) {
        Invariants inv;
        inv.node_count = v[0];
        inv.edge_count = v[0] - 1;
        inv.degree_bound = 2;
        inv.connected = true;
        inv.bipartite = true;
        return inv;
      },
      +[](const std::vector<std::int64_t>& v, std::uint64_t) {
        return graph::make_path(as_node(v[0]));
      },
  });

  families.push_back(Family{
      "cycle",
      "cycle on n nodes (the promise-problem substrate)",
      {{"n", 32, 3, 1 << 24, "node count"}},
      /*randomized=*/false,
      +[](std::int64_t size, std::vector<std::int64_t>& v,
          const std::vector<bool>&) {
        v[0] = std::max<std::int64_t>(3, size);
      },
      +[](const std::vector<std::int64_t>& v) {
        Invariants inv;
        inv.node_count = v[0];
        inv.edge_count = v[0];
        inv.degree_bound = 2;
        inv.connected = true;
        inv.bipartite = v[0] % 2 == 0;
        return inv;
      },
      +[](const std::vector<std::int64_t>& v, std::uint64_t) {
        return graph::make_cycle(as_node(v[0]));
      },
  });

  families.push_back(Family{
      "grid",
      "width x height grid (the execution-table substrate)",
      {{"width", 8, 1, 8192, "grid width"},
       {"height", 8, 1, 8192, "grid height"}},
      /*randomized=*/false,
      +[](std::int64_t size, std::vector<std::int64_t>& v,
          const std::vector<bool>& pinned) {
        // A pinned dimension turns the target into the other dimension;
        // otherwise aim for a square.
        if (pinned[0] && !pinned[1]) {
          v[1] = derive_dim(size, v[0], 1);
        } else if (pinned[1] && !pinned[0]) {
          v[0] = derive_dim(size, v[1], 1);
        } else {
          v[0] = v[1] = std::max<std::int64_t>(1, isqrt(size));
        }
      },
      +[](const std::vector<std::int64_t>& v) {
        Invariants inv;
        inv.node_count = v[0] * v[1];
        inv.edge_count = v[0] * (v[1] - 1) + v[1] * (v[0] - 1);
        inv.degree_bound = 4;
        inv.connected = true;
        inv.bipartite = true;
        return inv;
      },
      +[](const std::vector<std::int64_t>& v, std::uint64_t) {
        return graph::make_grid(as_node(v[0]), as_node(v[1]));
      },
  });

  families.push_back(Family{
      "torus",
      "width x height torus (wraparound grid)",
      {{"width", 8, 3, 8192, "torus width"},
       {"height", 8, 3, 8192, "torus height"}},
      /*randomized=*/false,
      +[](std::int64_t size, std::vector<std::int64_t>& v,
          const std::vector<bool>& pinned) {
        if (pinned[0] && !pinned[1]) {
          v[1] = derive_dim(size, v[0], 3);
        } else if (pinned[1] && !pinned[0]) {
          v[0] = derive_dim(size, v[1], 3);
        } else {
          v[0] = v[1] = std::max<std::int64_t>(3, isqrt(size));
        }
      },
      +[](const std::vector<std::int64_t>& v) {
        Invariants inv;
        inv.node_count = v[0] * v[1];
        inv.edge_count = 2 * v[0] * v[1];
        inv.degree_bound = 4;
        inv.connected = true;
        inv.bipartite = v[0] % 2 == 0 && v[1] % 2 == 0;
        return inv;
      },
      +[](const std::vector<std::int64_t>& v, std::uint64_t) {
        return graph::make_torus(as_node(v[0]), as_node(v[1]));
      },
  });

  families.push_back(Family{
      "hypercube",
      "d-dimensional hypercube (2^d nodes)",
      {{"dims", 4, 0, 22, "dimension count"}},
      /*randomized=*/false,
      +[](std::int64_t size, std::vector<std::int64_t>& v,
          const std::vector<bool>&) {
        std::int64_t dims = 0;
        while (dims < 22 && (std::int64_t{1} << (dims + 1)) <= size) {
          ++dims;
        }
        v[0] = dims;
      },
      +[](const std::vector<std::int64_t>& v) {
        Invariants inv;
        inv.node_count = std::int64_t{1} << v[0];
        inv.edge_count = v[0] * (std::int64_t{1} << v[0]) / 2;
        inv.degree_bound = v[0];
        inv.connected = true;
        inv.bipartite = true;
        return inv;
      },
      +[](const std::vector<std::int64_t>& v, std::uint64_t) {
        return graph::make_hypercube(static_cast<int>(v[0]));
      },
  });

  families.push_back(Family{
      "complete-bipartite",
      "complete bipartite graph K_{a,b}",
      {{"a", 4, 1, 1 << 23, "left part size"},
       {"b", 4, 1, 1 << 23, "right part size"}},
      /*randomized=*/false,
      +[](std::int64_t size, std::vector<std::int64_t>& v,
          const std::vector<bool>& pinned) {
        // A pinned part keeps the node total on target (a=1 gives a star,
        // the large-size bench shape); otherwise split evenly, capping each
        // part at 2048 so the quadratic edge count only explodes when the
        // caller pins a part deliberately.
        if (pinned[0] && !pinned[1]) {
          v[1] = std::max<std::int64_t>(1, size - v[0]);
        } else if (pinned[1] && !pinned[0]) {
          v[0] = std::max<std::int64_t>(1, size - v[1]);
        } else {
          v[0] = std::min<std::int64_t>(2048,
                                        std::max<std::int64_t>(1, size / 2));
          v[1] = std::min<std::int64_t>(
              2048, std::max<std::int64_t>(1, size - v[0]));
        }
      },
      +[](const std::vector<std::int64_t>& v) {
        Invariants inv;
        inv.node_count = v[0] + v[1];
        inv.edge_count = v[0] * v[1];
        inv.degree_bound = std::max(v[0], v[1]);
        inv.connected = true;
        inv.bipartite = true;
        return inv;
      },
      +[](const std::vector<std::int64_t>& v, std::uint64_t) {
        return graph::make_complete_bipartite(as_node(v[0]), as_node(v[1]));
      },
  });

  families.push_back(Family{
      "balanced-tree",
      "complete arity-ary tree of the given depth",
      {{"arity", 2, 1, 16, "children per internal node"},
       {"depth", 4, 0, 20, "levels below the root"}},
      /*randomized=*/false,
      +[](std::int64_t size, std::vector<std::int64_t>& v,
          const std::vector<bool>&) {
        // Largest depth whose node count fits the target, at fixed arity.
        std::int64_t depth = 0;
        while (depth < 20 && balanced_tree_nodes(v[0], depth + 1) <= size) {
          ++depth;
        }
        v[1] = depth;
      },
      +[](const std::vector<std::int64_t>& v) {
        Invariants inv;
        inv.node_count = balanced_tree_nodes(v[0], v[1]);
        inv.edge_count = inv.node_count - 1;
        inv.degree_bound = v[0] + 1;
        inv.connected = true;
        inv.bipartite = true;
        return inv;
      },
      +[](const std::vector<std::int64_t>& v, std::uint64_t) {
        return graph::make_balanced_tree(as_node(v[0]),
                                         static_cast<int>(v[1]));
      },
  });

  families.push_back(Family{
      "caterpillar",
      "spine path with `legs` leaves per spine node",
      {{"spine", 8, 1, 1 << 23, "spine length"},
       {"legs", 3, 0, 64, "leaves per spine node"}},
      /*randomized=*/false,
      +[](std::int64_t size, std::vector<std::int64_t>& v,
          const std::vector<bool>&) {
        v[0] = std::max<std::int64_t>(1, size / (1 + v[1]));
      },
      +[](const std::vector<std::int64_t>& v) {
        Invariants inv;
        inv.node_count = v[0] * (1 + v[1]);
        inv.edge_count = inv.node_count - 1;
        inv.degree_bound = v[1] + 2;
        inv.connected = true;
        inv.bipartite = true;
        return inv;
      },
      +[](const std::vector<std::int64_t>& v, std::uint64_t) {
        return graph::make_caterpillar(as_node(v[0]), as_node(v[1]));
      },
  });

  families.push_back(Family{
      "layered-tree",
      "the paper's Figure-1 layered tree (Section 2)",
      {{"depth", 4, 0, 21, "tree depth R"}},
      /*randomized=*/false,
      +[](std::int64_t size, std::vector<std::int64_t>& v,
          const std::vector<bool>&) {
        std::int64_t depth = 0;
        while (depth < 21 &&
               (std::int64_t{1} << (depth + 2)) - 1 <= size) {
          ++depth;
        }
        v[0] = depth;
      },
      +[](const std::vector<std::int64_t>& v) {
        Invariants inv;
        inv.node_count = (std::int64_t{1} << (v[0] + 1)) - 1;
        // n - 1 tree edges plus sum_{y=1..depth} (2^y - 1) level edges.
        inv.edge_count =
            v[0] == 0 ? 0 : (std::int64_t{1} << (v[0] + 2)) - 4 - v[0];
        inv.degree_bound = 5;  // parent + 2 children + 2 level neighbours
        inv.connected = true;
        inv.bipartite = false;  // parent/children triangles from depth >= 1
        return inv;
      },
      +[](const std::vector<std::int64_t>& v, std::uint64_t) {
        return graph::make_layered_tree(static_cast<int>(v[0]));
      },
  });

  families.push_back(Family{
      "pyramid",
      "the paper's Appendix-A quadtree pyramid (Figure 3)",
      {{"height", 3, 0, 11, "pyramid height h"}},
      /*randomized=*/false,
      +[](std::int64_t size, std::vector<std::int64_t>& v,
          const std::vector<bool>&) {
        std::int64_t h = 0;
        while (h < 11 && pyramid_nodes(h + 1) <= size) {
          ++h;
        }
        v[0] = h;
      },
      +[](const std::vector<std::int64_t>& v) {
        Invariants inv;
        inv.node_count = pyramid_nodes(v[0]);
        inv.edge_count = pyramid_edges(v[0]);
        inv.degree_bound = 9;  // 4 grid + 1 parent + 4 children
        inv.connected = true;
        inv.bipartite = false;  // parent triangles from height >= 1
        return inv;
      },
      +[](const std::vector<std::int64_t>& v, std::uint64_t) {
        return graph::make_pyramid(static_cast<int>(v[0]));
      },
  });

  families.push_back(Family{
      "random-regular",
      "random d-regular graph (deterministic pairing model)",
      {{"n", 32, 1, 1 << 21, "node count (n * d must be even)"},
       {"d", 3, 0, 5, "uniform degree (pairing-model rejection bound)"}},
      /*randomized=*/true,
      +[](std::int64_t size, std::vector<std::int64_t>& v,
          const std::vector<bool>&) {
        v[0] = std::max<std::int64_t>(v[1] + 1, size);
        if ((v[0] * v[1]) % 2 != 0) {
          ++v[0];  // pairing model needs an even stub count
        }
      },
      +[](const std::vector<std::int64_t>& v) {
        Invariants inv;
        inv.node_count = v[0];
        inv.edge_count = v[0] * v[1] / 2;
        inv.degree_bound = v[1];
        return inv;  // connectivity/bipartiteness are not guaranteed
      },
      +[](const std::vector<std::int64_t>& v, std::uint64_t seed) {
        return graph::make_random_regular(as_node(v[0]), as_node(v[1]), seed);
      },
  });

  families.push_back(Family{
      "gnp",
      "Erdős–Rényi G(n, p) with p = permille / 1000",
      {{"n", 32, 0, 1 << 15, "node count"},
       {"permille", 150, 0, 1000, "edge probability in thousandths"}},
      /*randomized=*/true,
      +[](std::int64_t size, std::vector<std::int64_t>& v,
          const std::vector<bool>&) {
        v[0] = std::max<std::int64_t>(0, size);
      },
      +[](const std::vector<std::int64_t>& v) {
        Invariants inv;
        inv.node_count = v[0];
        return inv;  // everything else is up to the coin flips
      },
      +[](const std::vector<std::int64_t>& v, std::uint64_t seed) {
        return graph::make_random_gnp(as_node(v[0]),
                                      static_cast<double>(v[1]) / 1000.0,
                                      seed);
      },
  });

  for (const Family& f : families) {
    LOCALD_ASSERT(f.apply_size != nullptr && f.declared_invariants != nullptr &&
                      f.build != nullptr,
                  cat("family ", f.name, " is missing a hook"));
  }
  return families;
}

}  // namespace

const std::vector<Family>& family_registry() {
  static const std::vector<Family> registry = build_registry();
  return registry;
}

}  // namespace locald::gen
