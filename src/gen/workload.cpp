#include "gen/workload.h"

#include <memory>

#include "graph/algorithms.h"
#include "graph/isomorphism.h"
#include "local/algorithm.h"
#include "local/ball.h"
#include "local/identifiers.h"
#include "local/labeled_graph.h"
#include "local/sync_engine.h"
#include "obs/trace.h"
#include "support/format.h"

namespace locald::gen {

namespace {

// The fixed Id-oblivious horizon-1 panel. All three are pure functions of
// the stripped ball's isomorphism class, so they are memoization-safe and
// their verdict counts are scheduling-deterministic.
const std::vector<std::unique_ptr<local::LocalAlgorithm>>& panel() {
  static const auto algorithms = [] {
    std::vector<std::unique_ptr<local::LocalAlgorithm>> p;
    p.push_back(local::make_oblivious(
        "even-degree", 1, [](const local::BallView& ball) {
          return ball.g.degree(ball.center) % 2 == 0 ? local::Verdict::yes
                                                     : local::Verdict::no;
        }));
    p.push_back(local::make_oblivious(
        "triangle-free", 1, [](const local::BallView& ball) {
          const auto& nbrs = ball.g.neighbors(ball.center);
          for (std::size_t i = 0; i < nbrs.size(); ++i) {
            for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
              if (ball.g.has_edge(nbrs[i], nbrs[j])) {
                return local::Verdict::no;
              }
            }
          }
          return local::Verdict::yes;
        }));
    p.push_back(local::make_oblivious(
        "max-degree-4", 1, [](const local::BallView& ball) {
          return ball.g.degree(ball.center) <= 4 ? local::Verdict::yes
                                                 : local::Verdict::no;
        }));
    return p;
  }();
  return algorithms;
}

void check_invariants(const Invariants& declared,
                      const graph::CsrGraph& g,
                      WorkloadResult& out) {
  auto fail = [&out](std::string why) {
    out.invariant_failures.push_back(std::move(why));
  };
  if (declared.node_count >= 0 && declared.node_count != out.nodes) {
    fail(cat("declared node_count ", declared.node_count, ", built ",
             out.nodes));
  }
  if (declared.edge_count >= 0 && declared.edge_count != out.edges) {
    fail(cat("declared edge_count ", declared.edge_count, ", built ",
             out.edges));
  }
  if (declared.degree_bound >= 0 && out.max_degree > declared.degree_bound) {
    fail(cat("declared degree bound ", declared.degree_bound,
             ", built max degree ", out.max_degree));
  }
  if (declared.connected && !graph::is_connected(g)) {
    fail("declared connected, built instance is not");
  }
  if (declared.bipartite && !graph::is_bipartite(g)) {
    fail("declared bipartite, built instance is not");
  }
  out.invariants_ok = out.invariant_failures.empty();
}

}  // namespace

const std::vector<std::string>& workload_panel_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const auto& algorithm : panel()) {
      out.push_back(algorithm->name());
    }
    return out;
  }();
  return names;
}

WorkloadResult run_family_workload(const FamilyInstanceSpec& spec,
                                   const WorkloadOptions& opts,
                                   const exec::ExecContext& exec) {
  WorkloadResult out;
  out.family = spec.canonical();
  obs::Span workload_span("family-workload", spec.canonical());
  const graph::CsrGraph g = [&] {
    obs::Span span("build-graph");
    return spec.build(opts.seed);
  }();
  out.nodes = g.node_count();
  out.edges = static_cast<std::int64_t>(g.edge_count());
  out.max_degree = g.node_count() == 0 ? 0 : g.max_degree();
  {
    obs::Span span("invariant-audit");
    check_invariants(spec.invariants(), g, out);
  }

  const local::LabeledGraph instance(g);

  // Exact ball census on the two-tier canonicalization engine: byte-
  // identical extracted balls share one canonicalization, and the orbit-
  // pruned tier-2 search keeps even pathologically symmetric balls (a star
  // with k interchangeable leaves — hypercube and complete-bipartite
  // centres) near-linear instead of k!, so every cell reports exact
  // isomorphism classes — no degree-profile fallback, on any family.
  const graph::BallCensusResult census = graph::canonical_census(
      g,
      std::vector<std::string>(static_cast<std::size_t>(g.node_count())),
      /*radius=*/1, exec.pool);
  out.ball_classes = census.distinct;

  // The panel is evaluated once per distinct class (its verdicts are pure
  // functions of the class — that is what the census memoizes), then the
  // per-class verdicts are scattered over the class members in node order:
  // byte-identical to evaluating every node, at a fraction of the cost,
  // and trivially scheduling-deterministic. The census hands over the
  // class partition (class_of / class_representative) directly.
  std::vector<std::vector<local::Verdict>> class_verdicts(
      panel().size(), std::vector<local::Verdict>(
                          census.class_representative.size(),
                          local::Verdict::yes));
  {
    obs::Span span("panel-evaluate",
                   "classes=" +
                       std::to_string(census.class_representative.size()));
    exec.for_each(census.class_representative.size(), [&](std::size_t k) {
      static thread_local local::BallScratch scratch;
      const local::BallView ball = scratch.extract(
          instance, nullptr, census.class_representative[k], 1);
      obs::Span eval_span("evaluate-class");
      for (std::size_t a = 0; a < panel().size(); ++a) {
        class_verdicts[a][k] = panel()[a]->evaluate(ball);
      }
    });
  }

  for (std::size_t a = 0; a < panel().size(); ++a) {
    PanelVerdict verdict;
    verdict.algorithm = panel()[a]->name();
    bool all_yes = true;
    for (graph::NodeId v = 0; v < g.node_count(); ++v) {
      const bool yes =
          class_verdicts[a][census.class_of[static_cast<std::size_t>(v)]] ==
          local::Verdict::yes;
      verdict.yes_nodes += yes ? 1 : 0;
      all_yes = all_yes && yes;
    }
    verdict.accepted = g.node_count() > 0 ? all_yes : true;
    out.panel.push_back(std::move(verdict));
  }
  // Serial-equivalent memoization: each algorithm decides every distinct
  // class once and hits on the rest.
  out.memo_hits = static_cast<std::int64_t>(panel().size()) *
                  (out.nodes - out.ball_classes);
  return out;
}

FaultRobustnessResult run_fault_robustness(
    const FamilyInstanceSpec& spec, const WorkloadOptions& opts,
    const local::FaultProfileInstance& profile,
    const exec::ExecContext& exec) {
  FaultRobustnessResult out;
  out.family = spec.canonical();
  out.profile = profile.canonical();
  obs::Span pass_span("fault-robustness", out.profile);
  const local::LabeledGraph instance(spec.build(opts.seed));
  out.nodes = instance.node_count();
  // Consecutive transport ids: the panel is Id-oblivious, so any
  // deterministic assignment yields the same verdicts.
  const local::IdAssignment ids =
      local::make_consecutive(instance.node_count());
  const local::FaultProfileInstance control =
      local::resolve_faults_text("none");

  out.panel.resize(panel().size());
  std::vector<local::EventStats> stats(panel().size());
  exec.for_each(panel().size(), [&](std::size_t a) {
    const local::LocalAlgorithm& alg = *panel()[a];
    obs::Span row_span("fault-panel-row", alg.name());
    FaultPanelRow row;
    row.algorithm = alg.name();
    const std::vector<local::Verdict> sync =
        local::run_via_message_passing(alg, instance, ids);
    const local::EventRunResult clean =
        local::run_via_event_engine(alg, instance, ids, control, opts.seed);
    const local::EventRunResult faulty =
        local::run_via_event_engine(alg, instance, ids, profile, opts.seed);
    row.control_identical = clean.verdicts == sync;
    for (std::size_t v = 0; v < sync.size(); ++v) {
      row.sync_yes += sync[v] == local::Verdict::yes ? 1 : 0;
      row.faulty_yes += faulty.verdicts[v] == local::Verdict::yes ? 1 : 0;
      row.agree_nodes += faulty.verdicts[v] == sync[v] ? 1 : 0;
    }
    stats[a] = faulty.stats;
    out.panel[a] = std::move(row);
  });
  // The schedule is payload-independent, so every row saw the same one.
  out.stats = stats.empty() ? local::EventStats{} : stats.front();
  return out;
}

}  // namespace locald::gen
