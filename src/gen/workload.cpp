#include "gen/workload.h"

#include <algorithm>
#include <memory>
#include <unordered_set>

#include "graph/algorithms.h"
#include "graph/isomorphism.h"
#include "local/algorithm.h"
#include "local/ball.h"
#include "local/labeled_graph.h"
#include "local/simulator.h"
#include "support/format.h"

namespace locald::gen {

namespace {

// Canonicalizing a ball is an individualization–refinement search whose
// leaf count explodes on highly symmetric balls — a star with k
// interchangeable leaves (hypercube and complete-bipartite centres) visits
// k! orderings. The census therefore gives each ball a bounded exact
// attempt and falls back to a cheaper (sound but incomplete) isomorphism
// invariant beyond the budget, so pathological families cost O(budget) per
// ball instead of O(degree!). Both paths are pure functions of the ball,
// and the "~" namespace keeps fallback keys disjoint from exact ones, so
// the census stays deterministic at every thread count.
constexpr std::size_t kCensusLeafBudget = 2000;

// Cheap pre-check for the two shapes that are guaranteed to blow the
// budget: big balls (every search leaf costs O(nodes + edges)) and k >= 7
// interchangeable degree-1 leaves hanging off one node (refinement can
// never split them, so the search visits k! >= 5040 orderings).
bool exact_affordable(const graph::Graph& g) {
  if (g.node_count() > 64) {
    return false;
  }
  std::vector<int> leaves(static_cast<std::size_t>(g.node_count()), 0);
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    if (g.degree(v) == 1 &&
        ++leaves[static_cast<std::size_t>(g.neighbors(v).front())] >= 7) {
      return false;
    }
  }
  return true;
}

// Degree-profile summary: invariant under center-preserving isomorphism,
// and discriminating enough for the symmetric balls that land here (their
// orbits are what made them expensive).
std::string summary_key(const graph::Graph& g, graph::NodeId center) {
  std::vector<int> degrees;
  degrees.reserve(static_cast<std::size_t>(g.node_count()));
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    degrees.push_back(g.degree(v));
  }
  std::sort(degrees.begin(), degrees.end());
  std::string key = cat("~n=", g.node_count(), ";m=", g.edge_count(),
                        ";c=", g.degree(center), ";d=");
  for (int d : degrees) {
    key += std::to_string(d);
    key += ',';
  }
  return key;
}

std::string census_key(const graph::Graph& g, graph::NodeId center) {
  if (!exact_affordable(g)) {
    return summary_key(g, center);
  }
  std::vector<std::string> payloads;
  payloads.reserve(static_cast<std::size_t>(g.node_count()));
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    payloads.emplace_back(v == center ? "C" : "N");
  }
  try {
    return graph::canonical_form(g, payloads, kCensusLeafBudget).encoding;
  } catch (const Error&) {
    // A symmetric shape the pre-check did not anticipate blew the leaf
    // budget; the summary is the same sound fallback.
    return summary_key(g, center);
  }
}

// The fixed Id-oblivious horizon-1 panel. All three are pure functions of
// the stripped ball's isomorphism class, so they are memoization-safe and
// their verdict counts are scheduling-deterministic.
const std::vector<std::unique_ptr<local::LocalAlgorithm>>& panel() {
  static const auto algorithms = [] {
    std::vector<std::unique_ptr<local::LocalAlgorithm>> p;
    p.push_back(local::make_oblivious(
        "even-degree", 1, [](const local::Ball& ball) {
          return ball.g.degree(ball.center) % 2 == 0 ? local::Verdict::yes
                                                     : local::Verdict::no;
        }));
    p.push_back(local::make_oblivious(
        "triangle-free", 1, [](const local::Ball& ball) {
          const auto& nbrs = ball.g.neighbors(ball.center);
          for (std::size_t i = 0; i < nbrs.size(); ++i) {
            for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
              if (ball.g.has_edge(nbrs[i], nbrs[j])) {
                return local::Verdict::no;
              }
            }
          }
          return local::Verdict::yes;
        }));
    p.push_back(local::make_oblivious(
        "max-degree-4", 1, [](const local::Ball& ball) {
          return ball.g.degree(ball.center) <= 4 ? local::Verdict::yes
                                                 : local::Verdict::no;
        }));
    return p;
  }();
  return algorithms;
}

void check_invariants(const Invariants& declared, const graph::Graph& g,
                      WorkloadResult& out) {
  auto fail = [&out](std::string why) {
    out.invariant_failures.push_back(std::move(why));
  };
  if (declared.node_count >= 0 && declared.node_count != out.nodes) {
    fail(cat("declared node_count ", declared.node_count, ", built ",
             out.nodes));
  }
  if (declared.edge_count >= 0 && declared.edge_count != out.edges) {
    fail(cat("declared edge_count ", declared.edge_count, ", built ",
             out.edges));
  }
  if (declared.degree_bound >= 0 && out.max_degree > declared.degree_bound) {
    fail(cat("declared degree bound ", declared.degree_bound,
             ", built max degree ", out.max_degree));
  }
  if (declared.connected && !graph::is_connected(g)) {
    fail("declared connected, built instance is not");
  }
  if (declared.bipartite && !graph::is_bipartite(g)) {
    fail("declared bipartite, built instance is not");
  }
  out.invariants_ok = out.invariant_failures.empty();
}

}  // namespace

const std::vector<std::string>& workload_panel_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const auto& algorithm : panel()) {
      out.push_back(algorithm->name());
    }
    return out;
  }();
  return names;
}

WorkloadResult run_family_workload(const FamilyInstanceSpec& spec,
                                   const WorkloadOptions& opts,
                                   const exec::ExecContext& exec) {
  WorkloadResult out;
  out.family = spec.canonical();
  const graph::Graph g = spec.build(opts.seed);
  out.nodes = g.node_count();
  out.edges = static_cast<std::int64_t>(g.edge_count());
  out.max_degree = g.node_count() == 0 ? 0 : g.max_degree();
  check_invariants(spec.invariants(), g, out);

  const local::LabeledGraph instance(g);

  // Ball census: keys are computed on the engine (the expensive part), the
  // distinct count in node order afterwards — scheduling-deterministic.
  std::vector<std::string> encodings(
      static_cast<std::size_t>(g.node_count()));
  exec.for_each(encodings.size(), [&](std::size_t v) {
    const local::Ball ball = local::extract_ball(
        instance, nullptr, static_cast<graph::NodeId>(v), 1);
    encodings[v] = census_key(ball.g, ball.center);
  });
  std::unordered_set<std::string> classes(encodings.begin(), encodings.end());
  out.ball_classes = static_cast<std::int64_t>(classes.size());

  // Pool only, no cache (the fig2-gmr precedent): memoization would
  // re-canonicalize every ball per algorithm, which is exactly the cost
  // the census just bounded — the panel's own evaluations are cheap.
  exec::ExecContext pool_only;
  pool_only.pool = exec.pool;
  for (const auto& algorithm : panel()) {
    const local::RunResult run = local::run_oblivious(*algorithm, instance,
                                                      pool_only);
    PanelVerdict verdict;
    verdict.algorithm = algorithm->name();
    for (const local::Verdict v : run.outputs) {
      verdict.yes_nodes += v == local::Verdict::yes ? 1 : 0;
    }
    verdict.accepted = run.accepted;
    out.panel.push_back(std::move(verdict));
  }
  // Serial-equivalent memoization: each algorithm decides every distinct
  // class once and hits on the rest.
  out.memo_hits = static_cast<std::int64_t>(panel().size()) *
                  (out.nodes - out.ball_classes);
  return out;
}

}  // namespace locald::gen
