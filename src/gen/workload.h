// The family workload: one deterministic measurement cell shared by the
// `family-workload` scenario and the `locald bench` grid runner.
//
// Given a resolved family instance, the workload
//  1. builds the graph from (canonical parameters, seed),
//  2. checks every invariant the family declares (node/edge counts, degree
//     bound, connectivity, bipartiteness) against the built instance,
//  3. censuses the radius-1 ball classes exactly on the two-tier
//     canonicalization engine (graph/isomorphism.h): centre-marked
//     canonical forms — the unit the verdict cache memoizes on — with
//     byte-identical extracted balls deduplicated before any search and
//     orbit pruning keeping even pathologically symmetric balls cheap, so
//     every family reports exact isomorphism-class counts, and
//  4. evaluates a fixed panel of Id-oblivious horizon-1 algorithms once
//     per distinct ball class on the execution engine and scatters the
//     per-class verdicts over the class members — byte-identical to
//     evaluating every node, at one evaluation per (algorithm, class).
//
// Everything in `WorkloadResult` is a pure function of (family spec, seed):
// verdict counts come from the engine's deterministic per-node outputs, and
// `memo_hits` is the *serial-equivalent* memoization hit count — panel
// evaluations minus distinct classes — rather than the scheduling-dependent
// atomic counters of a live VerdictCache (those stay behind `--timing`,
// like everywhere else in locald). This is what lets `locald bench` gate
// byte-identity between `--threads 1` and `--threads N` on real fields.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/context.h"
#include "gen/family.h"
#include "local/event_engine.h"

namespace locald::gen {

struct WorkloadOptions {
  std::uint64_t seed = 42;
};

struct PanelVerdict {
  std::string algorithm;
  std::int64_t yes_nodes = 0;  // nodes outputting yes
  bool accepted = false;       // the paper's rule: yes everywhere
};

struct WorkloadResult {
  std::string family;  // canonical parameter encoding
  std::int64_t nodes = 0;
  std::int64_t edges = 0;
  std::int64_t max_degree = 0;
  // Declared-invariant audit; failures name the violated declaration.
  bool invariants_ok = false;
  std::vector<std::string> invariant_failures;
  // Distinct stripped radius-1 ball classes, and the serial-equivalent
  // memo hit count: panel evaluations minus classes decided once.
  std::int64_t ball_classes = 0;
  std::int64_t memo_hits = 0;
  std::vector<PanelVerdict> panel;

  bool ok() const { return invariants_ok; }
};

// Names of the fixed oblivious panel, in evaluation order.
const std::vector<std::string>& workload_panel_names();

// Runs the cell. Deterministic at every `exec` thread count.
WorkloadResult run_family_workload(const FamilyInstanceSpec& spec,
                                   const WorkloadOptions& opts,
                                   const exec::ExecContext& exec);

// --- Fault robustness -------------------------------------------------------
//
// The event-engine robustness pass shared by the `fault-robustness`
// scenario and `locald bench --faults`: every panel algorithm runs over the
// built instance through the synchronous engine, through the event engine
// under the `none` control profile, and through the event engine under
// `profile`. Every field is a pure function of (family spec, profile,
// seed) — the event engine's schedule is seeded, so the whole result may
// appear in byte-gated documents.

struct FaultPanelRow {
  std::string algorithm;
  std::int64_t sync_yes = 0;       // sync-engine yes-nodes (the clean truth)
  std::int64_t faulty_yes = 0;     // event engine under `profile`
  std::int64_t agree_nodes = 0;    // nodes where faulty == sync, per node
  // The `none`-profile event run reproduced the sync engine verbatim — the
  // equivalence the engine promises; any false here is an engine bug, not a
  // property of the profile.
  bool control_identical = false;
};

struct FaultRobustnessResult {
  std::string family;   // canonical family encoding
  std::string profile;  // canonical profile encoding
  std::int64_t nodes = 0;
  std::vector<FaultPanelRow> panel;
  // The faulty schedule's deterministic statistics. The schedule depends
  // only on (graph, rounds, profile, seed) — not on payloads — and every
  // panel algorithm runs the same round count, so one stats block covers
  // all rows.
  local::EventStats stats;

  bool ok() const {
    for (const FaultPanelRow& row : panel) {
      if (!row.control_identical) return false;
    }
    return true;
  }
};

// Runs the pass. Deterministic at every `exec` thread count (algorithms
// fan out across the pool; each row is an independent pure function).
FaultRobustnessResult run_fault_robustness(
    const FamilyInstanceSpec& spec, const WorkloadOptions& opts,
    const local::FaultProfileInstance& profile, const exec::ExecContext& exec);

}  // namespace locald::gen
