#include "graph/algorithms.h"

#include <algorithm>
#include <deque>

namespace locald::graph {

std::vector<int> bfs_distances(CsrSpan g, NodeId src, int max_dist) {
  LOCALD_CHECK(src >= 0 && src < g.node_count(), "bfs source out of range");
  std::vector<int> dist(static_cast<std::size_t>(g.node_count()), kUnreached);
  std::deque<NodeId> queue;
  dist[src] = 0;
  queue.push_back(src);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    if (max_dist >= 0 && dist[u] >= max_dist) {
      continue;
    }
    for (NodeId w : g.neighbors(u)) {
      if (dist[w] == kUnreached) {
        dist[w] = dist[u] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

std::vector<NodeId> nodes_within(CsrSpan g, NodeId src, int radius) {
  LOCALD_CHECK(radius >= 0, "radius must be non-negative");
  LOCALD_CHECK(src >= 0 && src < g.node_count(), "source out of range");
  // Local BFS with a sorted-vector visited set: cost proportional to the
  // ball, not the host graph, so extracting many balls from a large graph
  // stays cheap.
  std::vector<NodeId> frontier{src};
  std::vector<NodeId> result{src};
  std::vector<NodeId> visited{src};
  auto is_visited = [&](NodeId v) {
    return std::binary_search(visited.begin(), visited.end(), v);
  };
  auto mark_visited = [&](NodeId v) {
    visited.insert(std::lower_bound(visited.begin(), visited.end(), v), v);
  };
  for (int d = 0; d < radius && !frontier.empty(); ++d) {
    std::vector<NodeId> next;
    for (NodeId u : frontier) {
      for (NodeId w : g.neighbors(u)) {
        if (!is_visited(w)) {
          mark_visited(w);
          next.push_back(w);
        }
      }
    }
    std::sort(next.begin(), next.end());
    result.insert(result.end(), next.begin(), next.end());
    frontier = std::move(next);
  }
  return result;
}

bool is_connected(CsrSpan g) {
  if (g.node_count() <= 1) {
    return true;
  }
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](int d) { return d == kUnreached; });
}

std::vector<int> connected_components(CsrSpan g, int* component_count) {
  std::vector<int> comp(static_cast<std::size_t>(g.node_count()), -1);
  int count = 0;
  for (NodeId s = 0; s < g.node_count(); ++s) {
    if (comp[s] != -1) {
      continue;
    }
    comp[s] = count;
    std::deque<NodeId> queue{s};
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (NodeId w : g.neighbors(u)) {
        if (comp[w] == -1) {
          comp[w] = count;
          queue.push_back(w);
        }
      }
    }
    ++count;
  }
  if (component_count != nullptr) {
    *component_count = count;
  }
  return comp;
}

int eccentricity(CsrSpan g, NodeId v) {
  const auto dist = bfs_distances(g, v);
  int ecc = 0;
  for (int d : dist) {
    if (d == kUnreached) {
      return kUnreached;
    }
    ecc = std::max(ecc, d);
  }
  return ecc;
}

int diameter(CsrSpan g) {
  int best = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const int e = eccentricity(g, v);
    if (e == kUnreached) {
      return kUnreached;
    }
    best = std::max(best, e);
  }
  return best;
}

bool is_bipartite(CsrSpan g) {
  std::vector<int> side(static_cast<std::size_t>(g.node_count()), -1);
  for (NodeId s = 0; s < g.node_count(); ++s) {
    if (side[s] != -1) {
      continue;
    }
    side[s] = 0;
    std::deque<NodeId> queue{s};
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (NodeId w : g.neighbors(u)) {
        if (side[w] == -1) {
          side[w] = side[u] ^ 1;
          queue.push_back(w);
        } else if (side[w] == side[u]) {
          return false;
        }
      }
    }
  }
  return true;
}

std::optional<std::vector<NodeId>> shortest_path(CsrSpan g, NodeId src,
                                                 NodeId dst) {
  LOCALD_CHECK(dst >= 0 && dst < g.node_count(), "destination out of range");
  const auto dist = bfs_distances(g, src);
  if (dist[dst] == kUnreached) {
    return std::nullopt;
  }
  std::vector<NodeId> path{dst};
  NodeId cur = dst;
  while (cur != src) {
    for (NodeId w : g.neighbors(cur)) {
      if (dist[w] == dist[cur] - 1) {
        cur = w;
        path.push_back(cur);
        break;
      }
    }
  }
  std::reverse(path.begin(), path.end());
  return path;
}

bool is_cycle_graph(CsrSpan g) {
  if (g.node_count() < 3 || !is_connected(g)) {
    return false;
  }
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (g.degree(v) != 2) {
      return false;
    }
  }
  return true;
}

bool is_path_graph(CsrSpan g) {
  if (g.node_count() == 0 || !is_connected(g)) {
    return false;
  }
  if (g.node_count() == 1) {
    return true;
  }
  int endpoints = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const NodeId d = g.degree(v);
    if (d == 1) {
      ++endpoints;
    } else if (d != 2) {
      return false;
    }
  }
  return endpoints == 2;
}

bool is_tree(CsrSpan g) {
  if (g.node_count() == 0) {
    return false;
  }
  return is_connected(g) &&
         g.edge_count() == static_cast<std::size_t>(g.node_count()) - 1;
}

}  // namespace locald::graph
