// Classic traversals and structure queries on CSR spans.
//
// These are the primitives the paper's local-model machinery is built from:
// `nodes_within` delimits the radius-t ball B(v, t) that a local algorithm
// sees (Section 1.2), the shape predicates (`is_cycle_graph`, `is_tree`,
// `is_path_graph`) back the warm-up promise problems and tree families, and
// `diameter`/`eccentricity` are used by tests to certify that constructed
// instances have the claimed locality structure. Everything here is exact
// and intended for the small graphs of the reproduction (balls, fragments,
// instances up to a few hundred thousand nodes), not for streaming scale.
#pragma once

#include <optional>
#include <vector>

#include "graph/csr.h"

namespace locald::graph {

constexpr int kUnreached = -1;

// BFS distances from src; kUnreached for nodes farther than `max_dist`
// (or unreachable). max_dist < 0 means unbounded.
std::vector<int> bfs_distances(CsrSpan g, NodeId src, int max_dist = -1);

// Nodes within distance `radius` of src, in BFS (distance, id) order.
std::vector<NodeId> nodes_within(CsrSpan g, NodeId src, int radius);

bool is_connected(CsrSpan g);

// Component id per node (0-based, in order of discovery) and the count.
std::vector<int> connected_components(CsrSpan g, int* component_count);

// Max distance from v to any node; kUnreached if g is disconnected.
int eccentricity(CsrSpan g, NodeId v);

// Exact diameter by all-sources BFS; kUnreached if disconnected.
// Intended for small graphs (balls, fragments).
int diameter(CsrSpan g);

bool is_bipartite(CsrSpan g);

// One shortest path src -> dst (inclusive); nullopt if unreachable.
std::optional<std::vector<NodeId>> shortest_path(CsrSpan g, NodeId src,
                                                 NodeId dst);

// True if the graph is a single cycle of length >= 3.
bool is_cycle_graph(CsrSpan g);

// True if the graph is a simple path (possibly a single node).
bool is_path_graph(CsrSpan g);

// True if the graph is connected and acyclic.
bool is_tree(CsrSpan g);

}  // namespace locald::graph
