#include "graph/ball_slice.h"

#include <algorithm>

namespace locald::graph {

BallSlice BallScratch::extract(const CsrSpan& host, NodeId v, int radius) {
  LOCALD_CHECK(radius >= 0, "radius must be non-negative");
  host.check_node(v);
  if (stamp_.size() < static_cast<std::size_t>(host.n)) {
    stamp_.resize(static_cast<std::size_t>(host.n), 0);
    local_of_.resize(static_cast<std::size_t>(host.n));
  }
  if (++epoch_ == 0) {  // epoch wrapped: all stamps are stale, reset once
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 1;
  }

  members_.clear();
  members_.push_back(v);
  stamp_[static_cast<std::size_t>(v)] = epoch_;
  layer_begin_.clear();
  layer_begin_.push_back(0);
  std::size_t frontier_begin = 0;
  for (int d = 0; d < radius; ++d) {
    const std::size_t frontier_end = members_.size();
    if (frontier_begin == frontier_end) {
      break;
    }
    for (std::size_t i = frontier_begin; i < frontier_end; ++i) {
      for (NodeId w : host.neighbors(members_[i])) {
        auto& s = stamp_[static_cast<std::size_t>(w)];
        if (s != epoch_) {
          s = epoch_;
          members_.push_back(w);
        }
      }
    }
    std::sort(members_.begin() + static_cast<std::ptrdiff_t>(frontier_end),
              members_.end());
    layer_begin_.push_back(static_cast<NodeId>(frontier_end));
    frontier_begin = frontier_end;
  }
  layer_begin_.push_back(static_cast<NodeId>(members_.size()));

  const NodeId b = static_cast<NodeId>(members_.size());
  for (NodeId i = 0; i < b; ++i) {
    local_of_[static_cast<std::size_t>(members_[static_cast<std::size_t>(i)])] =
        i;
  }

  // Row assembly without a per-row sort: host rows are ascending in host
  // id, and local ids are assigned in (BFS layer, host id) order, so
  // within one layer the mapped local ids arrive already ascending. A
  // member's in-ball neighbours span at most the layer below, its own,
  // and the layer above — three ascending runs occupying disjoint,
  // increasing local-id ranges. Bucketing each mapped id by layer and
  // concatenating the buckets therefore yields the sorted row in O(deg),
  // which is what keeps dense balls (complete-bipartite censuses) cheap.
  offsets_.assign(static_cast<std::size_t>(b) + 1, 0);
  adj_.clear();
  std::size_t layer = 0;  // members_[u]'s layer; u ascends, so walk forward
  for (NodeId u = 0; u < b; ++u) {
    while (layer_begin_[layer + 1] <= u) {
      ++layer;
    }
    const NodeId own_begin = layer_begin_[layer];
    const NodeId above_begin = layer_begin_[layer + 1];
    row_own_.clear();
    row_above_.clear();
    for (NodeId w : host.neighbors(members_[static_cast<std::size_t>(u)])) {
      if (stamp_[static_cast<std::size_t>(w)] != epoch_) {
        continue;
      }
      const NodeId l = local_of_[static_cast<std::size_t>(w)];
      if (l < own_begin) {
        adj_.push_back(l);  // layer below: lands first, in place
      } else if (l < above_begin) {
        row_own_.push_back(l);
      } else {
        row_above_.push_back(l);
      }
    }
    adj_.insert(adj_.end(), row_own_.begin(), row_own_.end());
    adj_.insert(adj_.end(), row_above_.begin(), row_above_.end());
    offsets_[static_cast<std::size_t>(u) + 1] =
        static_cast<EdgeIndex>(adj_.size());
  }

  return BallSlice{CsrSpan{b, offsets_.data(), adj_.data()}, members_.data(),
                   0, radius};
}

}  // namespace locald::graph
