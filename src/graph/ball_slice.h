// Zero-copy radius-t ball slices over a host CSR graph.
//
// A `BallSlice` is what a local algorithm sees at a node: the induced
// subgraph on B(v, t), renumbered to dense local ids. Instead of copying a
// graph object per ball, the slice is an index view assembled inside a
// reusable `BallScratch` arena — a stamped host→local remap (epoch counters,
// so no O(n) clear between extractions) plus row buffers that the slice's
// `CsrSpan` points into. Extracting the next ball reuses every allocation,
// which is what makes the bulk census and the node loop of the simulator
// cheap at 10^6–10^7 host nodes.
//
// Ordering contract (matches the legacy nodes_within + induced_subgraph
// pipeline byte for byte): local id 0 is the centre; each BFS layer is
// appended sorted by ascending host id; every adjacency row is sorted by
// local id.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.h"

namespace locald::graph {

struct BallSlice {
  CsrSpan local;                     // adjacency over local ids
  const NodeId* to_host = nullptr;   // local -> host, (distance, host id) order
  NodeId center = 0;                 // local id of the centre (always 0)
  int radius = 0;
};

// Reusable per-thread extraction arena. The returned slice aliases the
// scratch and is valid until the next extract() or destruction.
class BallScratch {
 public:
  BallScratch() = default;
  BallScratch(const BallScratch&) = delete;
  BallScratch& operator=(const BallScratch&) = delete;

  BallSlice extract(const CsrSpan& host, NodeId v, int radius);

 private:
  std::vector<std::uint32_t> stamp_;  // host node visited iff stamp_ == epoch_
  std::vector<NodeId> local_of_;      // host -> local, valid where stamped
  std::uint32_t epoch_ = 0;
  std::vector<NodeId> members_;       // local -> host
  std::vector<NodeId> layer_begin_;   // local id starting each BFS layer
  std::vector<NodeId> row_own_;       // same-layer bucket of the current row
  std::vector<NodeId> row_above_;     // next-layer bucket of the current row
  std::vector<EdgeIndex> offsets_;
  std::vector<NodeId> adj_;
};

}  // namespace locald::graph
