#include "graph/csr.h"

#include <algorithm>

namespace locald::graph {

bool operator==(const NeighborSpan& a, const NeighborSpan& b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

bool CsrSpan::has_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  const NodeId* first = adj + offsets[u];
  const NodeId* last = adj + offsets[u + 1];
  return std::binary_search(first, last, v);
}

NodeId CsrSpan::max_degree() const {
  NodeId best = 0;
  for (NodeId v = 0; v < n; ++v) {
    best = std::max(best, degree(v));
  }
  return best;
}

std::vector<std::pair<NodeId, NodeId>> CsrSpan::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(edge_count());
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : neighbors(u)) {
      if (u < v) {
        out.emplace_back(u, v);
      }
    }
  }
  return out;
}

CsrGraph::CsrGraph(const GraphBuilder& builder) {
  const NodeId n = builder.node_count();
  const std::size_t slots = 2 * builder.edge_count();
  LOCALD_CHECK(slots <= static_cast<std::size_t>(UINT32_MAX),
               "graph exceeds the 32-bit edge-index capacity");
  offsets_.resize(static_cast<std::size_t>(n) + 1);
  adj_.reserve(slots);
  offsets_[0] = 0;
  for (NodeId v = 0; v < n; ++v) {
    const auto& row = builder.neighbors(v);
    adj_.insert(adj_.end(), row.begin(), row.end());
    offsets_[static_cast<std::size_t>(v) + 1] =
        static_cast<EdgeIndex>(adj_.size());
  }
}

CsrGraph::CsrGraph(const CsrSpan& span)
    : offsets_(span.offsets, span.offsets + span.n + 1),
      adj_(span.adj, span.adj + (span.n == 0 ? 0 : span.offsets[span.n])) {}

CsrGraph CsrGraph::from_edges(
    NodeId n, const std::vector<std::pair<NodeId, NodeId>>& edges) {
  LOCALD_CHECK(n >= 0, "negative node count");
  const std::size_t slots = 2 * edges.size();
  LOCALD_CHECK(slots <= static_cast<std::size_t>(UINT32_MAX),
               "graph exceeds the 32-bit edge-index capacity");
  CsrGraph g;
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [u, v] : edges) {
    LOCALD_CHECK(u >= 0 && u < n && v >= 0 && v < n,
                 "edge endpoint out of range");
    LOCALD_CHECK(u != v, "self-loops are not allowed in a simple graph");
    ++g.offsets_[static_cast<std::size_t>(u) + 1];
    ++g.offsets_[static_cast<std::size_t>(v) + 1];
  }
  for (NodeId v = 0; v < n; ++v) {
    g.offsets_[static_cast<std::size_t>(v) + 1] +=
        g.offsets_[static_cast<std::size_t>(v)];
  }
  g.adj_.resize(slots);
  std::vector<EdgeIndex> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    g.adj_[cursor[static_cast<std::size_t>(u)]++] = v;
    g.adj_[cursor[static_cast<std::size_t>(v)]++] = u;
  }
  for (NodeId v = 0; v < n; ++v) {
    NodeId* first = g.adj_.data() + g.offsets_[static_cast<std::size_t>(v)];
    NodeId* last = g.adj_.data() + g.offsets_[static_cast<std::size_t>(v) + 1];
    std::sort(first, last);
    LOCALD_CHECK(std::adjacent_find(first, last) == last, "duplicate edge");
  }
  return g;
}

}  // namespace locald::graph
