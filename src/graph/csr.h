// Immutable CSR (compressed sparse row) adjacency core.
//
// `CsrGraph` is the read-only topological substrate every hot path walks:
// two contiguous arrays — `offsets` (n+1 prefix sums) and `adj` (all
// neighbour rows back to back, each sorted ascending) — replace the
// builder's vector-of-vectors. Construction happens exactly once, either
// by freezing a `GraphBuilder` or directly from an edge list
// (`from_edges`, the fast path for generators at 10^6–10^7 nodes).
//
// `CsrSpan` is the non-owning view {n, offsets, adj} shared by whole
// graphs and ball slices (graph/ball_slice.h): the canonicalization
// engine, BFS, and the deciders all consume spans, so a radius-t ball
// needs no graph copy — only a remap into scratch-owned rows.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "support/check.h"

namespace locald::graph {

// Index into the flat adjacency array. 2^32 directed edge slots cap the
// graph at ~2.1e9 undirected edges — far above the 10^7-node bench grid.
using EdgeIndex = std::uint32_t;

// One neighbour row: contiguous, sorted ascending.
class NeighborSpan {
 public:
  using value_type = NodeId;
  using const_iterator = const NodeId*;

  NeighborSpan() = default;
  NeighborSpan(const NodeId* data, std::size_t size)
      : data_(data), size_(size) {}

  const NodeId* begin() const { return data_; }
  const NodeId* end() const { return data_ + size_; }
  const NodeId* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  NodeId operator[](std::size_t i) const {
    LOCALD_CHECK(i < size_, "neighbor index out of range");
    return data_[i];
  }

  std::vector<NodeId> to_vector() const {
    return std::vector<NodeId>(begin(), end());
  }

 private:
  const NodeId* data_ = nullptr;
  std::size_t size_ = 0;
};

bool operator==(const NeighborSpan& a, const NeighborSpan& b);

// Non-owning CSR adjacency view. The single code path shared by CsrGraph
// and ball slices; aggregate so slices can be assembled in place.
struct CsrSpan {
  NodeId n = 0;
  const EdgeIndex* offsets = nullptr;  // n + 1 entries, offsets[0] == 0
  const NodeId* adj = nullptr;         // offsets[n] entries

  NodeId node_count() const { return n; }

  std::size_t edge_count() const {
    return n == 0 ? 0 : static_cast<std::size_t>(offsets[n]) / 2;
  }

  NodeId degree(NodeId v) const {
    check_node(v);
    return static_cast<NodeId>(offsets[v + 1] - offsets[v]);
  }

  // Sorted ascending.
  NeighborSpan neighbors(NodeId v) const {
    check_node(v);
    return NeighborSpan(adj + offsets[v], offsets[v + 1] - offsets[v]);
  }

  bool has_edge(NodeId u, NodeId v) const;

  NodeId max_degree() const;

  // Deterministic edge list (u < v, lexicographic).
  std::vector<std::pair<NodeId, NodeId>> edges() const;

  void check_node(NodeId v) const {
    LOCALD_CHECK(v >= 0 && v < n, "node id out of range");
  }
};

// Owning, immutable CSR graph.
class CsrGraph {
 public:
  CsrGraph() : offsets_(1, 0) {}

  // Freezes a finished builder. (GraphBuilder::build() forwards here.)
  explicit CsrGraph(const GraphBuilder& builder);

  // Deep copy of a span (used to lift a scratch-backed ball slice into an
  // owning Ball).
  explicit CsrGraph(const CsrSpan& span);

  // Builds directly from an undirected edge list (u != v, ids in [0, n));
  // duplicates are rejected. One counting pass + one scatter pass + row
  // sorts — the generator fast path.
  static CsrGraph from_edges(NodeId n,
                             const std::vector<std::pair<NodeId, NodeId>>& edges);

  NodeId node_count() const {
    return static_cast<NodeId>(offsets_.size()) - 1;
  }
  std::size_t edge_count() const { return adj_.size() / 2; }

  NodeId degree(NodeId v) const { return span().degree(v); }
  NeighborSpan neighbors(NodeId v) const { return span().neighbors(v); }
  bool has_edge(NodeId u, NodeId v) const { return span().has_edge(u, v); }
  NodeId max_degree() const { return span().max_degree(); }
  std::vector<std::pair<NodeId, NodeId>> edges() const {
    return span().edges();
  }

  CsrSpan span() const {
    return CsrSpan{node_count(), offsets_.data(), adj_.data()};
  }
  operator CsrSpan() const { return span(); }

  bool operator==(const CsrGraph& other) const {
    return offsets_ == other.offsets_ && adj_ == other.adj_;
  }

 private:
  std::vector<EdgeIndex> offsets_;  // node_count() + 1 entries
  std::vector<NodeId> adj_;
};

}  // namespace locald::graph
