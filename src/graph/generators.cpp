#include "graph/generators.h"

#include <bit>

namespace locald::graph {

Graph make_path(NodeId n) {
  LOCALD_CHECK(n >= 1, "path needs at least one node");
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) {
    g.add_edge(v, v + 1);
  }
  return g;
}

Graph make_cycle(NodeId n) {
  LOCALD_CHECK(n >= 3, "cycle needs at least three nodes");
  Graph g(n);
  for (NodeId v = 0; v < n; ++v) {
    g.add_edge(v, (v + 1) % n);
  }
  return g;
}

Graph make_complete(NodeId n) {
  LOCALD_CHECK(n >= 1, "complete graph needs at least one node");
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      g.add_edge(u, v);
    }
  }
  return g;
}

Graph make_star(NodeId leaves) {
  LOCALD_CHECK(leaves >= 0, "negative leaf count");
  Graph g(leaves + 1);
  for (NodeId v = 1; v <= leaves; ++v) {
    g.add_edge(0, v);
  }
  return g;
}

Graph make_grid(NodeId width, NodeId height) {
  LOCALD_CHECK(width >= 1 && height >= 1, "grid dimensions must be positive");
  Graph g(width * height);
  auto id = [width](NodeId x, NodeId y) { return y * width + x; };
  for (NodeId y = 0; y < height; ++y) {
    for (NodeId x = 0; x < width; ++x) {
      if (x + 1 < width) {
        g.add_edge(id(x, y), id(x + 1, y));
      }
      if (y + 1 < height) {
        g.add_edge(id(x, y), id(x, y + 1));
      }
    }
  }
  return g;
}

Graph make_torus(NodeId width, NodeId height) {
  LOCALD_CHECK(width >= 3 && height >= 3,
               "torus needs both dimensions >= 3 to stay simple");
  Graph g(width * height);
  auto id = [width](NodeId x, NodeId y) { return y * width + x; };
  for (NodeId y = 0; y < height; ++y) {
    for (NodeId x = 0; x < width; ++x) {
      g.add_edge_if_absent(id(x, y), id((x + 1) % width, y));
      g.add_edge_if_absent(id(x, y), id(x, (y + 1) % height));
    }
  }
  return g;
}

Graph make_complete_binary_tree(int depth) {
  LOCALD_CHECK(depth >= 0 && depth <= 29, "tree depth out of supported range");
  const NodeId n = static_cast<NodeId>((1LL << (depth + 1)) - 1);
  Graph g(n);
  for (NodeId v = 0; 2 * v + 2 < n; ++v) {
    g.add_edge(v, 2 * v + 1);
    g.add_edge(v, 2 * v + 2);
  }
  return g;
}

Graph make_layered_tree(int depth) {
  Graph g = make_complete_binary_tree(depth);
  // Connect consecutive nodes on each level: level y spans
  // [2^y - 1, 2^(y+1) - 2] in heap order, which is the natural left-to-right
  // order of the level.
  for (int y = 1; y <= depth; ++y) {
    const NodeId first = static_cast<NodeId>((1LL << y) - 1);
    const NodeId last = static_cast<NodeId>((1LL << (y + 1)) - 2);
    for (NodeId v = first; v < last; ++v) {
      g.add_edge(v, v + 1);
    }
  }
  return g;
}

Graph make_hypercube(int dims) {
  LOCALD_CHECK(dims >= 0 && dims <= 24, "hypercube dimension out of range");
  const NodeId n = static_cast<NodeId>(1LL << dims);
  Graph g(n);
  for (NodeId v = 0; v < n; ++v) {
    for (int b = 0; b < dims; ++b) {
      const NodeId w = v ^ (1 << b);
      if (v < w) {
        g.add_edge(v, w);
      }
    }
  }
  return g;
}

Graph make_random_gnp(NodeId n, double p, Rng& rng) {
  LOCALD_CHECK(n >= 0, "negative node count");
  LOCALD_CHECK(p >= 0.0 && p <= 1.0, "probability out of range");
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.bernoulli(p)) {
        g.add_edge(u, v);
      }
    }
  }
  return g;
}

Graph make_random_tree(NodeId n, Rng& rng) {
  LOCALD_CHECK(n >= 1, "tree needs at least one node");
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) {
    const NodeId parent = static_cast<NodeId>(rng.below(v));
    g.add_edge(parent, v);
  }
  return g;
}

Graph make_random_connected(NodeId n, NodeId extra_edges, Rng& rng) {
  Graph g = make_random_tree(n, rng);
  const std::size_t max_edges =
      static_cast<std::size_t>(n) * (n - 1) / 2;
  NodeId added = 0;
  std::size_t attempts = 0;
  while (added < extra_edges && g.edge_count() < max_edges &&
         attempts < 64 * static_cast<std::size_t>(extra_edges) + 64) {
    ++attempts;
    const NodeId u = static_cast<NodeId>(rng.below(n));
    const NodeId v = static_cast<NodeId>(rng.below(n));
    if (u != v && g.add_edge_if_absent(u, v)) {
      ++added;
    }
  }
  return g;
}

int TreeIndex::level(NodeId v) {
  LOCALD_CHECK(v >= 0, "negative heap id");
  return std::bit_width(static_cast<std::uint64_t>(v) + 1) - 1;
}

std::int64_t TreeIndex::offset(NodeId v) {
  const int y = level(v);
  return static_cast<std::int64_t>(v) - ((1LL << y) - 1);
}

NodeId TreeIndex::id(int level, std::int64_t offset) {
  LOCALD_CHECK(level >= 0 && level < 31, "level out of range");
  LOCALD_CHECK(offset >= 0 && offset < (1LL << level),
               "offset outside the level");
  return static_cast<NodeId>((1LL << level) - 1 + offset);
}

}  // namespace locald::graph
