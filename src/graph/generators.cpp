#include "graph/generators.h"

#include <bit>
#include <utility>
#include <vector>

#include "support/format.h"

namespace locald::graph {

namespace {

using EdgeList = std::vector<std::pair<NodeId, NodeId>>;

}  // namespace

CsrGraph make_path(NodeId n) {
  LOCALD_CHECK(n >= 1, "path needs at least one node");
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) - 1);
  for (NodeId v = 0; v + 1 < n; ++v) {
    edges.emplace_back(v, v + 1);
  }
  return CsrGraph::from_edges(n, edges);
}

CsrGraph make_cycle(NodeId n) {
  LOCALD_CHECK(n >= 3, "cycle needs at least three nodes");
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    edges.emplace_back(v, (v + 1) % n);
  }
  return CsrGraph::from_edges(n, edges);
}

CsrGraph make_complete(NodeId n) {
  LOCALD_CHECK(n >= 1, "complete graph needs at least one node");
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      edges.emplace_back(u, v);
    }
  }
  return CsrGraph::from_edges(n, edges);
}

CsrGraph make_star(NodeId leaves) {
  LOCALD_CHECK(leaves >= 0, "negative leaf count");
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(leaves));
  for (NodeId v = 1; v <= leaves; ++v) {
    edges.emplace_back(0, v);
  }
  return CsrGraph::from_edges(leaves + 1, edges);
}

CsrGraph make_complete_bipartite(NodeId a, NodeId b) {
  LOCALD_CHECK(a >= 1 && b >= 1, "both parts need at least one node");
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(a) * b);
  for (NodeId u = 0; u < a; ++u) {
    for (NodeId v = 0; v < b; ++v) {
      edges.emplace_back(u, a + v);
    }
  }
  return CsrGraph::from_edges(a + b, edges);
}

CsrGraph make_grid(NodeId width, NodeId height) {
  LOCALD_CHECK(width >= 1 && height >= 1, "grid dimensions must be positive");
  EdgeList edges;
  edges.reserve(2 * static_cast<std::size_t>(width) * height);
  auto id = [width](NodeId x, NodeId y) { return y * width + x; };
  for (NodeId y = 0; y < height; ++y) {
    for (NodeId x = 0; x < width; ++x) {
      if (x + 1 < width) {
        edges.emplace_back(id(x, y), id(x + 1, y));
      }
      if (y + 1 < height) {
        edges.emplace_back(id(x, y), id(x, y + 1));
      }
    }
  }
  return CsrGraph::from_edges(width * height, edges);
}

CsrGraph make_torus(NodeId width, NodeId height) {
  LOCALD_CHECK(width >= 3 && height >= 3,
               "torus needs both dimensions >= 3 to stay simple");
  // Each undirected edge is generated exactly once (as the right / down
  // neighbour of its lexicographically first endpoint); with both
  // dimensions >= 3 the wraparound never doubles an edge.
  EdgeList edges;
  edges.reserve(2 * static_cast<std::size_t>(width) * height);
  auto id = [width](NodeId x, NodeId y) { return y * width + x; };
  for (NodeId y = 0; y < height; ++y) {
    for (NodeId x = 0; x < width; ++x) {
      edges.emplace_back(id(x, y), id((x + 1) % width, y));
      edges.emplace_back(id(x, y), id(x, (y + 1) % height));
    }
  }
  return CsrGraph::from_edges(width * height, edges);
}

CsrGraph make_complete_binary_tree(int depth) {
  LOCALD_CHECK(depth >= 0 && depth <= 29, "tree depth out of supported range");
  const NodeId n = static_cast<NodeId>((1LL << (depth + 1)) - 1);
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; 2 * v + 2 < n; ++v) {
    edges.emplace_back(v, 2 * v + 1);
    edges.emplace_back(v, 2 * v + 2);
  }
  return CsrGraph::from_edges(n, edges);
}

CsrGraph make_balanced_tree(NodeId arity, int depth) {
  LOCALD_CHECK(arity >= 1, "balanced tree needs arity >= 1");
  LOCALD_CHECK(depth >= 0, "negative tree depth");
  // Node count sum_{j=0..depth} arity^j, guarded against overflow.
  std::int64_t n = 0;
  std::int64_t level = 1;
  for (int j = 0; j <= depth; ++j) {
    n += level;
    LOCALD_CHECK(n <= (1LL << 30), "balanced tree too large");
    level *= arity;
  }
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId c = 1; c <= arity; ++c) {
      const std::int64_t child = static_cast<std::int64_t>(arity) * v + c;
      if (child >= n) {
        break;
      }
      edges.emplace_back(v, static_cast<NodeId>(child));
    }
  }
  return CsrGraph::from_edges(static_cast<NodeId>(n), edges);
}

CsrGraph make_caterpillar(NodeId spine, NodeId legs) {
  LOCALD_CHECK(spine >= 1, "caterpillar needs at least one spine node");
  LOCALD_CHECK(legs >= 0, "negative leg count");
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(spine) * (legs + 1));
  for (NodeId v = 0; v + 1 < spine; ++v) {
    edges.emplace_back(v, v + 1);
  }
  for (NodeId v = 0; v < spine; ++v) {
    for (NodeId leg = 0; leg < legs; ++leg) {
      edges.emplace_back(v, spine + v * legs + leg);
    }
  }
  return CsrGraph::from_edges(spine * (legs + 1), edges);
}

CsrGraph make_layered_tree(int depth) {
  LOCALD_CHECK(depth >= 0 && depth <= 29, "tree depth out of supported range");
  const NodeId n = static_cast<NodeId>((1LL << (depth + 1)) - 1);
  EdgeList edges;
  for (NodeId v = 0; 2 * v + 2 < n; ++v) {
    edges.emplace_back(v, 2 * v + 1);
    edges.emplace_back(v, 2 * v + 2);
  }
  // Connect consecutive nodes on each level: level y spans
  // [2^y - 1, 2^(y+1) - 2] in heap order, which is the natural left-to-right
  // order of the level.
  for (int y = 1; y <= depth; ++y) {
    const NodeId first = static_cast<NodeId>((1LL << y) - 1);
    const NodeId last = static_cast<NodeId>((1LL << (y + 1)) - 2);
    for (NodeId v = first; v < last; ++v) {
      edges.emplace_back(v, v + 1);
    }
  }
  return CsrGraph::from_edges(n, edges);
}

CsrGraph make_hypercube(int dims) {
  LOCALD_CHECK(dims >= 0 && dims <= 24, "hypercube dimension out of range");
  const NodeId n = static_cast<NodeId>(1LL << dims);
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) * dims / 2);
  for (NodeId v = 0; v < n; ++v) {
    for (int b = 0; b < dims; ++b) {
      const NodeId w = v ^ (1 << b);
      if (v < w) {
        edges.emplace_back(v, w);
      }
    }
  }
  return CsrGraph::from_edges(n, edges);
}

CsrGraph make_random_gnp(NodeId n, double p, std::uint64_t seed) {
  LOCALD_CHECK(n >= 0, "negative node count");
  LOCALD_CHECK(p >= 0.0 && p <= 1.0, "probability out of range");
  EdgeList edges;
  for (NodeId u = 0; u < n; ++u) {
    Rng row = Rng::stream(seed, kStreamGnp, static_cast<std::uint64_t>(u));
    for (NodeId v = u + 1; v < n; ++v) {
      if (row.bernoulli(p)) {
        edges.emplace_back(u, v);
      }
    }
  }
  return CsrGraph::from_edges(n, edges);
}

CsrGraph make_random_tree(NodeId n, std::uint64_t seed) {
  LOCALD_CHECK(n >= 1, "tree needs at least one node");
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) - 1);
  for (NodeId v = 1; v < n; ++v) {
    Rng draw =
        Rng::stream(seed, kStreamRandomTree, static_cast<std::uint64_t>(v));
    edges.emplace_back(
        static_cast<NodeId>(draw.below(static_cast<std::uint64_t>(v))), v);
  }
  return CsrGraph::from_edges(n, edges);
}

CsrGraph make_random_connected(NodeId n, NodeId extra_edges,
                               std::uint64_t seed) {
  LOCALD_CHECK(n >= 1, "tree needs at least one node");
  // Chord insertion needs duplicate detection, so this builder goes through
  // the mutable stage; connected instances stay small (the registry caps
  // chord counts), so the per-edge sorted inserts are irrelevant here.
  GraphBuilder g(n);
  for (NodeId v = 1; v < n; ++v) {
    Rng draw =
        Rng::stream(seed, kStreamRandomTree, static_cast<std::uint64_t>(v));
    g.add_edge(static_cast<NodeId>(draw.below(static_cast<std::uint64_t>(v))),
               v);
  }
  const std::size_t max_edges = static_cast<std::size_t>(n) * (n - 1) / 2;
  NodeId added = 0;
  std::size_t attempts = 0;
  while (added < extra_edges && g.edge_count() < max_edges &&
         attempts < 64 * static_cast<std::size_t>(extra_edges) + 64) {
    Rng draw = Rng::stream(seed, kStreamRandomChords, attempts);
    ++attempts;
    const NodeId u = static_cast<NodeId>(draw.below(n));
    const NodeId v = static_cast<NodeId>(draw.below(n));
    if (u != v && g.add_edge_if_absent(u, v)) {
      ++added;
    }
  }
  return g.build();
}

CsrGraph make_random_regular(NodeId n, NodeId d, std::uint64_t seed) {
  LOCALD_CHECK(n >= 1, "regular graph needs at least one node");
  LOCALD_CHECK(d >= 0 && d < n, "degree must satisfy 0 <= d < n");
  LOCALD_CHECK((static_cast<std::int64_t>(n) * d) % 2 == 0,
               "n * d must be even for a d-regular graph");
  if (d == 0) {
    return CsrGraph::from_edges(n, {});
  }
  std::vector<NodeId> stubs(static_cast<std::size_t>(n) * d);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId k = 0; k < d; ++k) {
      stubs[static_cast<std::size_t>(v) * d + k] = v;
    }
  }
  // Rejection sampling over whole pairings keeps the accepted pairing
  // uniform over simple ones. The per-round acceptance probability is
  // ~exp(-(d*d - 1)/4) — about 0.25% at d = 5, vanishing fast beyond it
  // (d = 8 is ~1e-7, hopeless at any sane budget) — so callers wanting a
  // guaranteed build should keep d <= 5, where 20000 rounds fail with
  // probability ~e^-50; the gen/ family schema enforces that bound.
  constexpr std::uint64_t kMaxRounds = 20000;
  for (std::uint64_t round = 0; round < kMaxRounds; ++round) {
    Rng rng = Rng::stream(seed, kStreamRandomRegular, round);
    std::vector<NodeId> deck = stubs;
    rng.shuffle(deck);
    GraphBuilder g(n);
    bool simple = true;
    for (std::size_t i = 0; simple && i < deck.size(); i += 2) {
      const NodeId u = deck[i];
      const NodeId v = deck[i + 1];
      simple = u != v && g.add_edge_if_absent(u, v);
    }
    if (simple) {
      return g.build();
    }
  }
  throw Error(cat("no simple ", d, "-regular pairing found for n = ", n,
                  " within ", kMaxRounds,
                  " rounds — rejection sampling needs d <= 5 (acceptance "
                  "falls like exp(-d*d/4))"));
}

int TreeIndex::level(NodeId v) {
  LOCALD_CHECK(v >= 0, "negative heap id");
  return std::bit_width(static_cast<std::uint64_t>(v) + 1) - 1;
}

std::int64_t TreeIndex::offset(NodeId v) {
  const int y = level(v);
  return static_cast<std::int64_t>(v) - ((1LL << y) - 1);
}

NodeId TreeIndex::id(int level, std::int64_t offset) {
  LOCALD_CHECK(level >= 0 && level < 31, "level out of range");
  LOCALD_CHECK(offset >= 0 && offset < (1LL << level),
               "offset outside the level");
  return static_cast<NodeId>((1LL << level) - 1 + offset);
}

}  // namespace locald::graph
