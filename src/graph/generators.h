// Deterministic graph family generators.
//
// These back the instance families of the paper's experiments: cycles for
// the promise problems, grids for Turing-machine execution tables, complete
// binary / layered trees for the Section-2 construction, plus generic
// families used by tests, benchmarks, and the gen/ workload generator.
//
// Randomized builders come in two flavours:
//  - seed-based (`std::uint64_t seed`): every random draw is derived from a
//    counter-based stream `Rng::stream(seed, stream_id, index)`, so the
//    instance is a pure function of (seed, parameters) — independent of
//    call order, thread scheduling, and whatever else the process drew
//    before. The gen/ family registry builds exclusively through these.
//  - legacy stateful (`Rng&`): draws depend on the generator's position,
//    so two call sites sharing one Rng get correlated, order-dependent
//    instances. Kept for the older experiments and tests that sample many
//    instances from one sequential stream.
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "support/rng.h"

namespace locald::graph {

// Stream-id constants for the seed-based builders: each family draws from
// its own `Rng::stream(seed, kStream*, index)` plane, so two families built
// from the same seed never share coins.
inline constexpr std::uint64_t kStreamGnp = 0x01;
inline constexpr std::uint64_t kStreamRandomTree = 0x02;
inline constexpr std::uint64_t kStreamRandomChords = 0x03;
inline constexpr std::uint64_t kStreamRandomRegular = 0x04;

Graph make_path(NodeId n);
Graph make_cycle(NodeId n);        // n >= 3
Graph make_complete(NodeId n);
Graph make_star(NodeId leaves);    // node 0 is the hub

// K_{a,b}: parts {0..a-1} and {a..a+b-1}, every cross pair joined.
Graph make_complete_bipartite(NodeId a, NodeId b);

// width x height grid; node (x, y) has id y * width + x.
Graph make_grid(NodeId width, NodeId height);

// Same, with wraparound edges in both dimensions (requires dim >= 3).
Graph make_torus(NodeId width, NodeId height);

// Complete binary tree of `depth` levels below the root
// (2^(depth+1) - 1 nodes). Heap indexing: children of v are 2v+1, 2v+2.
Graph make_complete_binary_tree(int depth);

// Complete `arity`-ary tree of `depth` levels below the root, heap-indexed:
// children of v are arity*v + 1 .. arity*v + arity. arity = 2, depth = d is
// exactly make_complete_binary_tree(d).
Graph make_balanced_tree(NodeId arity, int depth);

// Caterpillar: a spine path of `spine` nodes (ids 0..spine-1), each spine
// node carrying `legs` leaves (appended after the spine in spine order).
Graph make_caterpillar(NodeId spine, NodeId legs);

// Complete binary tree of given depth where consecutive nodes of each level
// are additionally joined by a path — the "layered tree" of Section 2
// (Figure 1). Heap indexing as above: level y spans ids [2^y - 1, 2^(y+1) - 2].
Graph make_layered_tree(int depth);

// d-dimensional hypercube (2^d nodes).
Graph make_hypercube(int dims);

// Erdős–Rényi G(n, p). The seed-based overload draws row u's coins from
// stream (seed, kStreamGnp, u).
Graph make_random_gnp(NodeId n, double p, Rng& rng);
Graph make_random_gnp(NodeId n, double p, std::uint64_t seed);

// Uniform random labelled tree via a Prüfer-like attachment. The seed-based
// overload draws node v's parent from stream (seed, kStreamRandomTree, v).
Graph make_random_tree(NodeId n, Rng& rng);
Graph make_random_tree(NodeId n, std::uint64_t seed);

// Connected random graph: random tree plus `extra_edges` random chords.
// The seed-based overload draws chord attempt i from stream
// (seed, kStreamRandomChords, i).
Graph make_random_connected(NodeId n, NodeId extra_edges, Rng& rng);
Graph make_random_connected(NodeId n, NodeId extra_edges, std::uint64_t seed);

// Random d-regular graph via the pairing (configuration) model: n*d stubs
// are shuffled with stream (seed, kStreamRandomRegular, round) and paired
// consecutively; rounds producing a loop or a duplicate edge are discarded
// wholesale and redrawn, so the accepted pairing is uniform over simple
// pairings and a pure function of (n, d, seed). Requires 0 <= d < n and
// n * d even. Per-round acceptance is ~exp(-(d*d - 1)/4), so keep d <= 5
// (the gen/ family schema's bound) — there the retry budget fails with
// probability ~e^-50; beyond it, Error becomes the expected outcome.
Graph make_random_regular(NodeId n, NodeId d, std::uint64_t seed);

// Position helpers for heap-indexed complete binary trees.
struct TreeIndex {
  // Level (root = 0) and offset within the level of heap node id v.
  static int level(NodeId v);
  static std::int64_t offset(NodeId v);
  // Heap id of the node at (level, offset).
  static NodeId id(int level, std::int64_t offset);
};

}  // namespace locald::graph
