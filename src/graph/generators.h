// Deterministic graph family generators.
//
// These back the instance families of the paper's experiments: cycles for
// the promise problems, grids for Turing-machine execution tables, complete
// binary / layered trees for the Section-2 construction, plus generic
// families used by tests and benchmarks.
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "support/rng.h"

namespace locald::graph {

Graph make_path(NodeId n);
Graph make_cycle(NodeId n);        // n >= 3
Graph make_complete(NodeId n);
Graph make_star(NodeId leaves);    // node 0 is the hub

// width x height grid; node (x, y) has id y * width + x.
Graph make_grid(NodeId width, NodeId height);

// Same, with wraparound edges in both dimensions (requires dim >= 3).
Graph make_torus(NodeId width, NodeId height);

// Complete binary tree of `depth` levels below the root
// (2^(depth+1) - 1 nodes). Heap indexing: children of v are 2v+1, 2v+2.
Graph make_complete_binary_tree(int depth);

// Complete binary tree of given depth where consecutive nodes of each level
// are additionally joined by a path — the "layered tree" of Section 2
// (Figure 1). Heap indexing as above: level y spans ids [2^y - 1, 2^(y+1) - 2].
Graph make_layered_tree(int depth);

// d-dimensional hypercube (2^d nodes).
Graph make_hypercube(int dims);

// Erdős–Rényi G(n, p).
Graph make_random_gnp(NodeId n, double p, Rng& rng);

// Uniform random labelled tree via a Prüfer-like attachment.
Graph make_random_tree(NodeId n, Rng& rng);

// Connected random graph: random tree plus `extra_edges` random chords.
Graph make_random_connected(NodeId n, NodeId extra_edges, Rng& rng);

// Position helpers for heap-indexed complete binary trees.
struct TreeIndex {
  // Level (root = 0) and offset within the level of heap node id v.
  static int level(NodeId v);
  static std::int64_t offset(NodeId v);
  // Heap id of the node at (level, offset).
  static NodeId id(int level, std::int64_t offset);
};

}  // namespace locald::graph
