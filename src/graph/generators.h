// Deterministic graph family generators.
//
// These back the instance families of the paper's experiments: cycles for
// the promise problems, grids for Turing-machine execution tables, complete
// binary / layered trees for the Section-2 construction, plus generic
// families used by tests, benchmarks, and the gen/ workload generator.
//
// Every builder returns an immutable `CsrGraph`, assembled through the
// edge-list fast path (`CsrGraph::from_edges`) — one counting pass and one
// scatter pass instead of per-edge sorted inserts, which is what makes the
// 10^6–10^7-node bench cells build in milliseconds.
//
// Randomized builders are seed-based (`std::uint64_t seed`): every random
// draw is derived from a counter-based stream
// `Rng::stream(seed, stream_id, index)`, so the instance is a pure function
// of (seed, parameters) — independent of call order, thread scheduling, and
// whatever else the process drew before. (The legacy stateful `Rng&`
// overloads, which produced order-dependent instances from a shared
// sequential generator, are gone; derive a fresh seed per instance
// instead.)
#pragma once

#include <cstdint>

#include "graph/csr.h"
#include "support/rng.h"

namespace locald::graph {

// Stream-id constants for the seed-based builders: each family draws from
// its own `Rng::stream(seed, kStream*, index)` plane, so two families built
// from the same seed never share coins.
inline constexpr std::uint64_t kStreamGnp = 0x01;
inline constexpr std::uint64_t kStreamRandomTree = 0x02;
inline constexpr std::uint64_t kStreamRandomChords = 0x03;
inline constexpr std::uint64_t kStreamRandomRegular = 0x04;

CsrGraph make_path(NodeId n);
CsrGraph make_cycle(NodeId n);        // n >= 3
CsrGraph make_complete(NodeId n);
CsrGraph make_star(NodeId leaves);    // node 0 is the hub

// K_{a,b}: parts {0..a-1} and {a..a+b-1}, every cross pair joined.
CsrGraph make_complete_bipartite(NodeId a, NodeId b);

// width x height grid; node (x, y) has id y * width + x.
CsrGraph make_grid(NodeId width, NodeId height);

// Same, with wraparound edges in both dimensions (requires dim >= 3).
CsrGraph make_torus(NodeId width, NodeId height);

// Complete binary tree of `depth` levels below the root
// (2^(depth+1) - 1 nodes). Heap indexing: children of v are 2v+1, 2v+2.
CsrGraph make_complete_binary_tree(int depth);

// Complete `arity`-ary tree of `depth` levels below the root, heap-indexed:
// children of v are arity*v + 1 .. arity*v + arity. arity = 2, depth = d is
// exactly make_complete_binary_tree(d).
CsrGraph make_balanced_tree(NodeId arity, int depth);

// Caterpillar: a spine path of `spine` nodes (ids 0..spine-1), each spine
// node carrying `legs` leaves (appended after the spine in spine order).
CsrGraph make_caterpillar(NodeId spine, NodeId legs);

// Complete binary tree of given depth where consecutive nodes of each level
// are additionally joined by a path — the "layered tree" of Section 2
// (Figure 1). Heap indexing as above: level y spans ids [2^y - 1, 2^(y+1) - 2].
CsrGraph make_layered_tree(int depth);

// d-dimensional hypercube (2^d nodes).
CsrGraph make_hypercube(int dims);

// Erdős–Rényi G(n, p); row u's coins come from stream (seed, kStreamGnp, u).
CsrGraph make_random_gnp(NodeId n, double p, std::uint64_t seed);

// Uniform random labelled tree via a Prüfer-like attachment; node v's
// parent comes from stream (seed, kStreamRandomTree, v).
CsrGraph make_random_tree(NodeId n, std::uint64_t seed);

// Connected random graph: random tree plus `extra_edges` random chords,
// chord attempt i drawn from stream (seed, kStreamRandomChords, i).
CsrGraph make_random_connected(NodeId n, NodeId extra_edges,
                               std::uint64_t seed);

// Random d-regular graph via the pairing (configuration) model: n*d stubs
// are shuffled with stream (seed, kStreamRandomRegular, round) and paired
// consecutively; rounds producing a loop or a duplicate edge are discarded
// wholesale and redrawn, so the accepted pairing is uniform over simple
// pairings and a pure function of (n, d, seed). Requires 0 <= d < n and
// n * d even. Per-round acceptance is ~exp(-(d*d - 1)/4), so keep d <= 5
// (the gen/ family schema's bound) — there the retry budget fails with
// probability ~e^-50; beyond it, Error becomes the expected outcome.
CsrGraph make_random_regular(NodeId n, NodeId d, std::uint64_t seed);

// Position helpers for heap-indexed complete binary trees.
struct TreeIndex {
  // Level (root = 0) and offset within the level of heap node id v.
  static int level(NodeId v);
  static std::int64_t offset(NodeId v);
  // Heap id of the node at (level, offset).
  static NodeId id(int level, std::int64_t offset);
};

}  // namespace locald::graph
