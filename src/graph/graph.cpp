#include "graph/graph.h"

#include <algorithm>

#include "graph/csr.h"

namespace locald::graph {

NodeId GraphBuilder::add_node() {
  adj_.emplace_back();
  return static_cast<NodeId>(adj_.size()) - 1;
}

void GraphBuilder::resize(NodeId n) {
  LOCALD_CHECK(n >= node_count(), "GraphBuilder::resize never shrinks");
  adj_.resize(static_cast<std::size_t>(n));
}

void GraphBuilder::add_edge(NodeId u, NodeId v) {
  const bool inserted = add_edge_if_absent(u, v);
  LOCALD_CHECK(inserted, "duplicate edge");
}

bool GraphBuilder::add_edge_if_absent(NodeId u, NodeId v) {
  check_node(u);
  check_node(v);
  LOCALD_CHECK(u != v, "self-loops are not allowed in a simple graph");
  auto& au = adj_[u];
  auto it = std::lower_bound(au.begin(), au.end(), v);
  if (it != au.end() && *it == v) {
    return false;
  }
  au.insert(it, v);
  auto& av = adj_[v];
  av.insert(std::lower_bound(av.begin(), av.end(), u), u);
  ++edge_count_;
  return true;
}

bool GraphBuilder::has_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  const auto& au = adj_[u];
  return std::binary_search(au.begin(), au.end(), v);
}

NodeId GraphBuilder::max_degree() const {
  NodeId best = 0;
  for (const auto& a : adj_) {
    best = std::max(best, static_cast<NodeId>(a.size()));
  }
  return best;
}

std::vector<std::pair<NodeId, NodeId>> GraphBuilder::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(edge_count_);
  for (NodeId u = 0; u < node_count(); ++u) {
    for (NodeId v : adj_[u]) {
      if (u < v) {
        out.emplace_back(u, v);
      }
    }
  }
  return out;
}

CsrGraph GraphBuilder::build() const { return CsrGraph(*this); }

}  // namespace locald::graph
