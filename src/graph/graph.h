// Mutable graph builder with validated construction.
//
// `GraphBuilder` is the construction-stage type for every topology in
// locald: networks in the LOCAL model, Turing-machine execution tables,
// quadtree pyramids. Nodes are dense integers [0, node_count()); adjacency
// lists are kept sorted so incremental edge insertion stays deterministic.
// Once a topology is complete, `build()` freezes it into the immutable
// `CsrGraph` (graph/csr.h) that every read path consumes — the builder
// itself never reaches a hot loop.
#pragma once

#include <cstdint>
#include <vector>

#include "support/check.h"

namespace locald::graph {

using NodeId = std::int32_t;

class CsrGraph;

class GraphBuilder {
 public:
  GraphBuilder() = default;
  explicit GraphBuilder(NodeId n) { resize(n); }

  NodeId node_count() const { return static_cast<NodeId>(adj_.size()); }
  std::size_t edge_count() const { return edge_count_; }

  // Appends an isolated node and returns its id.
  NodeId add_node();

  // Grows the graph to n nodes (never shrinks).
  void resize(NodeId n);

  // Inserts the undirected edge {u, v}. Rejects loops and duplicates.
  void add_edge(NodeId u, NodeId v);

  // Inserts {u, v} unless it is already present. Returns true if inserted.
  bool add_edge_if_absent(NodeId u, NodeId v);

  bool has_edge(NodeId u, NodeId v) const;

  NodeId degree(NodeId v) const {
    check_node(v);
    return static_cast<NodeId>(adj_[v].size());
  }

  // Sorted ascending.
  const std::vector<NodeId>& neighbors(NodeId v) const {
    check_node(v);
    return adj_[v];
  }

  NodeId max_degree() const;

  // Deterministic edge list (u < v, lexicographic).
  std::vector<std::pair<NodeId, NodeId>> edges() const;

  // Freezes into the immutable CSR form (graph/csr.h).
  CsrGraph build() const;

  bool operator==(const GraphBuilder& other) const {
    return adj_ == other.adj_;
  }

 private:
  void check_node(NodeId v) const {
    LOCALD_CHECK(v >= 0 && v < node_count(), "node id out of range");
  }

  friend class CsrGraph;

  std::vector<std::vector<NodeId>> adj_;
  std::size_t edge_count_ = 0;
};

}  // namespace locald::graph
