#include "graph/induced.h"

namespace locald::graph {

InducedSubgraph induced_subgraph(CsrSpan g, const std::vector<NodeId>& nodes) {
  InducedSubgraph out;
  out.to_parent = nodes;
  out.from_parent.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const NodeId host = nodes[i];
    LOCALD_CHECK(host >= 0 && host < g.node_count(),
                 "induced node outside the host graph");
    const bool fresh =
        out.from_parent.emplace(host, static_cast<NodeId>(i)).second;
    LOCALD_CHECK(fresh, "induced node list contains a duplicate");
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (NodeId w : g.neighbors(nodes[i])) {
      auto it = out.from_parent.find(w);
      if (it != out.from_parent.end() && static_cast<NodeId>(i) < it->second) {
        edges.emplace_back(static_cast<NodeId>(i), it->second);
      }
    }
  }
  out.graph = CsrGraph::from_edges(static_cast<NodeId>(nodes.size()), edges);
  return out;
}

}  // namespace locald::graph
