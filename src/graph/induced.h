// Induced subgraphs with bidirectional node maps.
//
// The Section-2/3 instance builders cut induced subgraphs out of a host
// graph and need to translate node ids in both directions. (Hot-path ball
// extraction no longer routes through here — see graph/ball_slice.h for the
// zero-copy slice arena; this is the owning, general-subset variant.)
#pragma once

#include <unordered_map>
#include <vector>

#include "graph/csr.h"

namespace locald::graph {

struct InducedSubgraph {
  CsrGraph graph;
  // to_parent[i] = host id of subgraph node i.
  std::vector<NodeId> to_parent;
  // host id -> subgraph id (only nodes that were kept).
  std::unordered_map<NodeId, NodeId> from_parent;
};

// Induced subgraph on `nodes` (must be distinct). Subgraph node i corresponds
// to nodes[i], preserving the caller's ordering.
InducedSubgraph induced_subgraph(CsrSpan g, const std::vector<NodeId>& nodes);

}  // namespace locald::graph
