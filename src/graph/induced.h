// Induced subgraphs with bidirectional node maps.
//
// Ball extraction (local/ball.h) and the Section-2/3 instance builders all
// cut induced subgraphs out of a host graph and need to translate node ids
// in both directions.
#pragma once

#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace locald::graph {

struct InducedSubgraph {
  Graph graph;
  // to_parent[i] = host id of subgraph node i.
  std::vector<NodeId> to_parent;
  // host id -> subgraph id (only nodes that were kept).
  std::unordered_map<NodeId, NodeId> from_parent;
};

// Induced subgraph on `nodes` (must be distinct). Subgraph node i corresponds
// to nodes[i], preserving the caller's ordering.
InducedSubgraph induced_subgraph(const Graph& g,
                                 const std::vector<NodeId>& nodes);

}  // namespace locald::graph
