#include "graph/io.h"

#include <algorithm>
#include <sstream>

namespace locald::graph {

std::string to_dot(const CsrGraph& g, const std::vector<std::string>& node_labels,
                   const std::string& name) {
  LOCALD_CHECK(node_labels.empty() ||
                   node_labels.size() ==
                       static_cast<std::size_t>(g.node_count()),
               "label count must match node count");
  std::ostringstream os;
  os << "graph " << name << " {\n";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    os << "  n" << v;
    if (!node_labels.empty()) {
      os << " [label=\"" << node_labels[static_cast<std::size_t>(v)] << "\"]";
    }
    os << ";\n";
  }
  for (const auto& [u, v] : g.edges()) {
    os << "  n" << u << " -- n" << v << ";\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_dot(const CsrGraph& g, const std::string& name) {
  return to_dot(g, {}, name);
}

std::string to_edge_list(const CsrGraph& g) {
  std::ostringstream os;
  for (const auto& [u, v] : g.edges()) {
    os << u << " " << v << "\n";
  }
  return os.str();
}

CsrGraph from_edge_list(const std::string& text, NodeId min_nodes) {
  std::istringstream is(text);
  std::vector<std::pair<NodeId, NodeId>> edges;
  NodeId max_id = min_nodes - 1;
  NodeId u = 0;
  NodeId v = 0;
  while (is >> u >> v) {
    LOCALD_CHECK(u >= 0 && v >= 0, "edge list ids must be non-negative");
    edges.emplace_back(u, v);
    max_id = std::max({max_id, u, v});
  }
  GraphBuilder g(max_id + 1);
  for (const auto& [a, b] : edges) {
    g.add_edge_if_absent(a, b);
  }
  return g.build();
}

}  // namespace locald::graph
