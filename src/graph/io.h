// Graph serialization: Graphviz DOT for inspection, edge lists for tests.
//
// DOT output exists to eyeball the paper's constructions (layered trees,
// G(M, r) grids, pyramids) in a viewer; the edge-list round-trip
// (`to_edge_list`/`from_edge_list`) gives tests a canonical, diffable text
// form — lines are "u v" with u < v, sorted — so golden files and equality
// assertions do not depend on adjacency-list ordering.
#pragma once

#include <string>
#include <vector>

#include "graph/csr.h"

namespace locald::graph {

// DOT output; `node_labels` (optional, may be empty) annotates nodes.
std::string to_dot(const CsrGraph& g, const std::vector<std::string>& node_labels,
                   const std::string& name = "G");

std::string to_dot(const CsrGraph& g, const std::string& name = "G");

// "u v" pairs, one per line, u < v, sorted.
std::string to_edge_list(const CsrGraph& g);

// Inverse of to_edge_list; node count inferred as max id + 1 unless
// `min_nodes` asks for more.
CsrGraph from_edge_list(const std::string& text, NodeId min_nodes = 0);

}  // namespace locald::graph
