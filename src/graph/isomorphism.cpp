#include "graph/isomorphism.h"

#include <algorithm>
#include <map>

#include "support/hash.h"

namespace locald::graph {

namespace {

// Colours are dense ranks; a partition is stable ("equitable") when no two
// equally coloured nodes see different multisets of neighbour colours.
using Coloring = std::vector<int>;

// Refine until stable. Rank order of the new colours is derived from
// (old colour, sorted neighbour colours), which is isomorphism-invariant.
void refine(const Graph& g, Coloring& color) {
  const std::size_t n = color.size();
  if (n == 0) {
    return;
  }
  for (;;) {
    using Key = std::pair<int, std::vector<int>>;
    std::vector<Key> keys(n);
    for (std::size_t v = 0; v < n; ++v) {
      std::vector<int> around;
      around.reserve(g.neighbors(static_cast<NodeId>(v)).size());
      for (NodeId w : g.neighbors(static_cast<NodeId>(v))) {
        around.push_back(color[static_cast<std::size_t>(w)]);
      }
      std::sort(around.begin(), around.end());
      keys[v] = {color[v], std::move(around)};
    }
    std::map<Key, int> rank;
    for (const Key& k : keys) {
      rank.emplace(k, 0);
    }
    int next = 0;
    for (auto& [k, r] : rank) {
      r = next++;
    }
    bool changed = false;
    for (std::size_t v = 0; v < n; ++v) {
      const int c = rank[keys[v]];
      if (c != color[v]) {
        changed = true;
      }
      color[v] = c;
    }
    if (!changed) {
      return;
    }
  }
}

// First colour class with more than one member, as a sorted node list;
// empty when the colouring is discrete.
std::vector<NodeId> first_non_singleton_class(const Coloring& color) {
  std::map<int, std::vector<NodeId>> classes;
  for (std::size_t v = 0; v < color.size(); ++v) {
    classes[color[v]].push_back(static_cast<NodeId>(v));
  }
  for (const auto& [c, members] : classes) {
    if (members.size() > 1) {
      return members;
    }
  }
  return {};
}

std::string encode_discrete(const Graph& g,
                            const std::vector<std::string>& payloads,
                            const Coloring& color,
                            std::vector<NodeId>* order_out) {
  const std::size_t n = color.size();
  std::vector<NodeId> order(n);
  for (std::size_t v = 0; v < n; ++v) {
    order[static_cast<std::size_t>(color[v])] = static_cast<NodeId>(v);
  }
  std::vector<int> position(n);
  for (std::size_t i = 0; i < n; ++i) {
    position[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  std::string enc;
  enc += "n=";
  enc += std::to_string(n);
  enc += ";";
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId v = order[i];
    const std::string& p = payloads[static_cast<std::size_t>(v)];
    enc += "L";
    enc += std::to_string(p.size());
    enc += ":";
    enc += p;
    enc += "|A";
    std::vector<int> around;
    for (NodeId w : g.neighbors(v)) {
      const int pw = position[static_cast<std::size_t>(w)];
      if (pw < static_cast<int>(i)) {  // each edge recorded once
        around.push_back(pw);
      }
    }
    std::sort(around.begin(), around.end());
    for (int a : around) {
      enc += std::to_string(a);
      enc += ",";
    }
    enc += ";";
  }
  if (order_out != nullptr) {
    *order_out = std::move(order);
  }
  return enc;
}

struct SearchState {
  const Graph* g = nullptr;
  const std::vector<std::string>* payloads = nullptr;
  std::size_t max_leaves = 0;
  std::size_t leaves = 0;
  std::string best;
  std::vector<NodeId> best_order;
  bool has_best = false;
};

// Individualization–refinement over the first non-singleton class. Taking the
// minimum over *all* branches keeps the result isomorphism-invariant.
void search(SearchState& st, Coloring color) {
  refine(*st.g, color);
  const std::vector<NodeId> cell = first_non_singleton_class(color);
  if (cell.empty()) {
    LOCALD_CHECK(++st.leaves <= st.max_leaves,
                 "canonical_form: too many automorphism branches");
    std::vector<NodeId> order;
    std::string enc = encode_discrete(*st.g, *st.payloads, color, &order);
    if (!st.has_best || enc < st.best) {
      st.best = std::move(enc);
      st.best_order = std::move(order);
      st.has_best = true;
    }
    return;
  }
  for (NodeId v : cell) {
    // Split {v} out of its class below the rest: double every colour, then
    // lower v's. Refinement re-normalizes the ranks.
    Coloring child = color;
    for (int& c : child) {
      c *= 2;
    }
    child[static_cast<std::size_t>(v)] -= 1;
    search(st, std::move(child));
  }
}

}  // namespace

CanonicalForm canonical_form(const Graph& g,
                             const std::vector<std::string>& payloads,
                             std::size_t max_leaves) {
  LOCALD_CHECK(payloads.size() == static_cast<std::size_t>(g.node_count()),
               "one payload required per node");
  // Initial colouring groups nodes by payload.
  std::map<std::string, int> payload_rank;
  for (const auto& p : payloads) {
    payload_rank.emplace(p, 0);
  }
  int next = 0;
  for (auto& [p, r] : payload_rank) {
    r = next++;
  }
  Coloring color(payloads.size());
  for (std::size_t v = 0; v < payloads.size(); ++v) {
    color[v] = payload_rank[payloads[v]];
  }

  SearchState st;
  st.g = &g;
  st.payloads = &payloads;
  st.max_leaves = max_leaves;
  search(st, std::move(color));
  LOCALD_ASSERT(st.has_best || g.node_count() == 0,
                "canonical search produced no leaf");
  if (g.node_count() == 0) {
    st.best = "n=0;";
  }

  CanonicalForm out;
  out.order = std::move(st.best_order);
  out.encoding = std::move(st.best);
  out.fingerprint = hash_string(out.encoding);
  return out;
}

CanonicalForm canonical_form(const Graph& g, std::size_t max_leaves) {
  return canonical_form(
      g, std::vector<std::string>(static_cast<std::size_t>(g.node_count())),
      max_leaves);
}

bool isomorphic(const Graph& a, const std::vector<std::string>& payload_a,
                const Graph& b, const std::vector<std::string>& payload_b) {
  if (a.node_count() != b.node_count() || a.edge_count() != b.edge_count()) {
    return false;
  }
  return canonical_form(a, payload_a).encoding ==
         canonical_form(b, payload_b).encoding;
}

bool isomorphic(const Graph& a, const Graph& b) {
  return isomorphic(
      a, std::vector<std::string>(static_cast<std::size_t>(a.node_count())),
      b, std::vector<std::string>(static_cast<std::size_t>(b.node_count())));
}

}  // namespace locald::graph
