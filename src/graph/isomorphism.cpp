#include "graph/isomorphism.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <numeric>
#include <optional>
#include <string_view>
#include <unordered_map>

#include "exec/thread_pool.h"
#include "graph/ball_slice.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/hash.h"

namespace locald::graph {

namespace {

// Colours are dense ranks; a partition is stable ("equitable") when no two
// equally coloured nodes see different multisets of neighbour colours.
using Coloring = std::vector<int>;

std::atomic<std::uint64_t> g_forms{0};
std::atomic<std::uint64_t> g_census_balls{0};
std::atomic<std::uint64_t> g_census_raw_hits{0};

// Bridge the process-wide canonicalization counters into the metrics
// registry, once, on first census/counter use. Handles are deliberately
// leaked: these counters live for the whole process.
void ensure_canon_metrics_registered() {
  static const bool once = [] {
    obs::Registry& reg = obs::registry();
    static std::vector<obs::MetricHandle> handles;
    handles.push_back(reg.counter_fn(
        "locald_canon_forms_total",
        "Tier-2 canonical form computations (one per unique structure)",
        [] { return g_forms.load(std::memory_order_relaxed); }));
    handles.push_back(reg.counter_fn(
        "locald_canon_census_balls_total",
        "Balls passed through the bulk canonical census",
        [] { return g_census_balls.load(std::memory_order_relaxed); }));
    handles.push_back(reg.counter_fn(
        "locald_canon_census_raw_hits_total",
        "Census balls deduplicated before tier-2 canonicalization",
        [] { return g_census_raw_hits.load(std::memory_order_relaxed); }));
    return true;
  }();
  (void)once;
}

// Discovered-generator cap: enough to collapse every orbit the experiments
// meet; a bound so adversarial inputs cannot grow the list without limit.
constexpr std::size_t kMaxAutomorphisms = 256;

// Partition-refinement engine with scratch shared across a whole search:
// one flat signature arena (neighbour colours per node) re-sorted per round
// — no per-round map or vector-of-vector rebuilds. The host CSR's own
// offsets index the arena. Rank order of the new colours is derived from
// (old colour, degree, sorted neighbour colours), which is
// isomorphism-invariant, so equal inputs refine identically.
class Refiner {
 public:
  explicit Refiner(CsrSpan g) : g_(g) {
    const std::size_t n = static_cast<std::size_t>(g.n);
    arena_.resize(n == 0 ? 0 : g.offsets[n]);
    order_.resize(n);
    next_color_.resize(n);
  }

  // Refines `color` in place to the coarsest stable partition at or below
  // it, re-normalizing to dense ranks. Returns the number of colours.
  int refine(Coloring& color, CanonicalStats* stats) {
    const std::size_t n = color.size();
    if (n == 0) {
      return 0;
    }
    int classes_in = distinct_count(color);
    for (;;) {
      if (stats != nullptr) {
        ++stats->refinement_rounds;
      }
      for (std::size_t v = 0; v < n; ++v) {
        std::size_t at = g_.offsets[v];
        for (NodeId w : g_.neighbors(static_cast<NodeId>(v))) {
          arena_[at++] = color[static_cast<std::size_t>(w)];
        }
        std::sort(arena_.begin() + static_cast<std::ptrdiff_t>(g_.offsets[v]),
                  arena_.begin() + static_cast<std::ptrdiff_t>(at));
      }
      std::iota(order_.begin(), order_.end(), 0);
      std::sort(order_.begin(), order_.end(), [&](std::size_t a, std::size_t b) {
        if (color[a] != color[b]) {
          return color[a] < color[b];
        }
        const std::size_t da = g_.offsets[a + 1] - g_.offsets[a];
        const std::size_t db = g_.offsets[b + 1] - g_.offsets[b];
        if (da != db) {
          return da < db;
        }
        return std::lexicographical_compare(
            arena_.begin() + static_cast<std::ptrdiff_t>(g_.offsets[a]),
            arena_.begin() + static_cast<std::ptrdiff_t>(g_.offsets[a + 1]),
            arena_.begin() + static_cast<std::ptrdiff_t>(g_.offsets[b]),
            arena_.begin() + static_cast<std::ptrdiff_t>(g_.offsets[b + 1]));
      });
      int next = 0;
      next_color_[order_[0]] = 0;
      for (std::size_t i = 1; i < n; ++i) {
        const std::size_t prev = order_[i - 1];
        const std::size_t cur = order_[i];
        if (color[prev] != color[cur] ||
            !std::equal(
                arena_.begin() + static_cast<std::ptrdiff_t>(g_.offsets[prev]),
                arena_.begin() +
                    static_cast<std::ptrdiff_t>(g_.offsets[prev + 1]),
                arena_.begin() + static_cast<std::ptrdiff_t>(g_.offsets[cur]),
                arena_.begin() +
                    static_cast<std::ptrdiff_t>(g_.offsets[cur + 1]))) {
          ++next;
        }
        next_color_[cur] = next;
      }
      for (std::size_t v = 0; v < n; ++v) {
        color[v] = next_color_[v];
      }
      const int classes_out = next + 1;
      if (classes_out == classes_in) {
        return classes_out;
      }
      classes_in = classes_out;
    }
  }

 private:
  static int distinct_count(const Coloring& color) {
    std::vector<int> sorted(color);
    std::sort(sorted.begin(), sorted.end());
    return static_cast<int>(
        std::unique(sorted.begin(), sorted.end()) - sorted.begin());
  }

  CsrSpan g_;
  std::vector<int> arena_;
  std::vector<std::size_t> order_;
  std::vector<int> next_color_;
};

// Initial colouring groups nodes by payload (rank = sorted payload order,
// an isomorphism-invariant assignment).
Coloring payload_coloring(const std::vector<std::string>& payloads) {
  const std::size_t n = payloads.size();
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return payloads[a] < payloads[b];
  });
  Coloring color(n, 0);
  int next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && payloads[idx[i]] != payloads[idx[i - 1]]) {
      ++next;
    }
    color[idx[i]] = next;
  }
  return color;
}

// The target cell: the first smallest non-singleton colour class (minimal
// size, then minimal colour rank), members in ascending node order. Empty
// when the colouring is discrete. The choice rule is isomorphism-invariant;
// member iteration order need not be, because the search minimizes over
// every non-pruned branch.
std::vector<NodeId> target_cell(const Coloring& color, int classes) {
  std::vector<int> size(static_cast<std::size_t>(classes), 0);
  for (int c : color) {
    ++size[static_cast<std::size_t>(c)];
  }
  int pick = -1;
  for (int c = 0; c < classes; ++c) {
    if (size[static_cast<std::size_t>(c)] > 1 &&
        (pick < 0 || size[static_cast<std::size_t>(c)] <
                         size[static_cast<std::size_t>(pick)])) {
      pick = c;
    }
  }
  std::vector<NodeId> cell;
  if (pick < 0) {
    return cell;
  }
  for (std::size_t v = 0; v < color.size(); ++v) {
    if (color[v] == pick) {
      cell.push_back(static_cast<NodeId>(v));
    }
  }
  return cell;
}

std::string encode_discrete(CsrSpan g,
                            const std::vector<std::string>& payloads,
                            const Coloring& color,
                            std::vector<NodeId>* order_out) {
  const std::size_t n = color.size();
  std::vector<NodeId> order(n);
  for (std::size_t v = 0; v < n; ++v) {
    order[static_cast<std::size_t>(color[v])] = static_cast<NodeId>(v);
  }
  std::vector<int> position(n);
  for (std::size_t i = 0; i < n; ++i) {
    position[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  std::string enc;
  enc += "n=";
  enc += std::to_string(n);
  enc += ";";
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId v = order[i];
    const std::string& p = payloads[static_cast<std::size_t>(v)];
    enc += "L";
    enc += std::to_string(p.size());
    enc += ":";
    enc += p;
    enc += "|A";
    std::vector<int> around;
    for (NodeId w : g.neighbors(v)) {
      const int pw = position[static_cast<std::size_t>(w)];
      if (pw < static_cast<int>(i)) {  // each edge recorded once
        around.push_back(pw);
      }
    }
    std::sort(around.begin(), around.end());
    for (int a : around) {
      enc += std::to_string(a);
      enc += ",";
    }
    enc += ";";
  }
  if (order_out != nullptr) {
    *order_out = std::move(order);
  }
  return enc;
}

// Union-find over ball nodes; orbit checks live on this.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) { reset(); }
  void reset() { std::iota(parent_.begin(), parent_.end(), 0); }
  std::size_t find(std::size_t v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }
  void merge(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

bool span_less(const NeighborSpan& a, const NeighborSpan& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

// Individualization–refinement with automorphism discovery and orbit
// pruning (see the header for the strategy).
class Canonicalizer {
 public:
  Canonicalizer(CsrSpan g, const std::vector<std::string>& payloads,
                std::size_t max_leaves, CanonicalStats* stats)
      : g_(g),
        payloads_(payloads),
        max_leaves_(max_leaves),
        stats_(stats),
        refiner_(g),
        uf_(static_cast<std::size_t>(g.n)) {}

  CanonicalForm run() {
    Coloring color = payload_coloring(payloads_);
    search(std::move(color), 0);
    LOCALD_ASSERT(has_best_ || g_.n == 0,
                  "canonical search produced no leaf");
    CanonicalForm out;
    if (g_.n == 0) {
      out.encoding = "n=0;";
    } else {
      out.order = std::move(best_order_);
      out.encoding = std::move(best_);
    }
    out.fingerprint = hash_string(out.encoding);
    return out;
  }

 private:
  void bump(std::size_t CanonicalStats::* field) {
    if (stats_ != nullptr) {
      ++(stats_->*field);
    }
  }

  // Merges cell members that are interchangeable by a transposition fixing
  // everything else: equal open neighbourhoods (non-adjacent twins) or
  // equal closed neighbourhoods (adjacent twins). Such a transposition is
  // an automorphism that fixes any prefix (prefix nodes are singletons,
  // never cell members), so one branch per twin class covers them all.
  void merge_twins(const std::vector<NodeId>& cell, UnionFind& uf) {
    const std::size_t m = cell.size();
    std::vector<std::size_t> idx(m);
    // Non-adjacent twins: identical sorted neighbour lists.
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return span_less(g_.neighbors(cell[a]), g_.neighbors(cell[b]));
    });
    for (std::size_t i = 1; i < m; ++i) {
      if (g_.neighbors(cell[idx[i]]) == g_.neighbors(cell[idx[i - 1]])) {
        uf.merge(static_cast<std::size_t>(cell[idx[i]]),
                 static_cast<std::size_t>(cell[idx[i - 1]]));
      }
    }
    // Adjacent twins: identical closed neighbourhoods.
    std::vector<std::vector<NodeId>> closed(m);
    for (std::size_t i = 0; i < m; ++i) {
      closed[i] = g_.neighbors(cell[i]).to_vector();
      closed[i].insert(
          std::lower_bound(closed[i].begin(), closed[i].end(), cell[i]),
          cell[i]);
    }
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return closed[a] < closed[b];
    });
    for (std::size_t i = 1; i < m; ++i) {
      if (closed[idx[i]] == closed[idx[i - 1]]) {
        uf.merge(static_cast<std::size_t>(cell[idx[i]]),
                 static_cast<std::size_t>(cell[idx[i - 1]]));
      }
    }
  }

  // Rebuilds the orbit structure for a node at `depth`: twin merges plus
  // every discovered generator that fixes the current prefix pointwise.
  void rebuild_orbits(const std::vector<NodeId>& cell, std::size_t depth) {
    uf_.reset();
    merge_twins(cell, uf_);
    for (const std::vector<NodeId>& a : autos_) {
      bool fixes_prefix = true;
      for (std::size_t i = 0; i < depth; ++i) {
        if (a[static_cast<std::size_t>(path_[i])] != path_[i]) {
          fixes_prefix = false;
          break;
        }
      }
      if (!fixes_prefix) {
        continue;
      }
      for (std::size_t v = 0; v < a.size(); ++v) {
        uf_.merge(v, static_cast<std::size_t>(a[v]));
      }
    }
  }

  void handle_leaf(const Coloring& color) {
    ++leaves_;
    bump(&CanonicalStats::leaves);
    LOCALD_CHECK(leaves_ <= max_leaves_,
                 "canonical_form: too many automorphism branches");
    std::vector<NodeId> order;
    std::string enc = encode_discrete(g_, payloads_, color, &order);
    if (!has_best_ || enc < best_) {
      best_ = std::move(enc);
      best_order_ = std::move(order);
      best_path_ = path_;
      has_best_ = true;
      return;
    }
    if (enc != best_) {
      return;
    }
    // Equal leaves certify the automorphism g(order[i]) = best_order[i].
    const std::size_t n = order.size();
    std::vector<NodeId> a(n);
    bool identity = true;
    for (std::size_t i = 0; i < n; ++i) {
      a[static_cast<std::size_t>(order[i])] = best_order_[i];
      identity = identity && order[i] == best_order_[i];
    }
    if (identity) {
      return;
    }
    if (autos_.size() < kMaxAutomorphisms) {
      autos_.push_back(a);
      bump(&CanonicalStats::automorphisms);
    }
    // Divergence unwind: if g fixes the shared prefix and maps this leaf's
    // divergent branch onto the (already fully explored) branch the best
    // leaf took, the rest of the current subtree is an isomorphic copy.
    std::size_t d = 0;
    while (d < path_.size() && d < best_path_.size() &&
           path_[d] == best_path_[d]) {
      ++d;
    }
    if (d >= path_.size() || d >= best_path_.size()) {
      return;
    }
    for (std::size_t i = 0; i < d; ++i) {
      if (a[static_cast<std::size_t>(path_[i])] != path_[i]) {
        return;
      }
    }
    if (a[static_cast<std::size_t>(path_[d])] == best_path_[d]) {
      unwind_to_ = static_cast<int>(d);
    }
  }

  void search(Coloring color, std::size_t depth) {
    bump(&CanonicalStats::nodes);
    const int classes = refiner_.refine(color, stats_);
    const std::vector<NodeId> cell = target_cell(color, classes);
    if (cell.empty()) {
      handle_leaf(color);
      return;
    }
    // `uf_` is shared scratch: any child recursion rebuilds it for its own
    // cell, so it must be repopulated for this node after every descent.
    bool orbits_valid = false;
    std::vector<NodeId> processed;
    for (NodeId v : cell) {
      if (!orbits_valid) {
        rebuild_orbits(cell, depth);
        orbits_valid = true;
      }
      bool duplicate = false;
      for (NodeId w : processed) {
        if (uf_.find(static_cast<std::size_t>(v)) ==
            uf_.find(static_cast<std::size_t>(w))) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) {
        // Same orbit as an explored sibling: its subtree encodings are a
        // permuted copy — nothing new can beat the running best.
        bump(autos_.empty() ? &CanonicalStats::twin_prunes
                            : &CanonicalStats::orbit_prunes);
        continue;
      }
      // Split {v} out of its class below the rest: double every colour,
      // then lower v's. Refinement re-normalizes the ranks.
      Coloring child = color;
      for (int& c : child) {
        c *= 2;
      }
      child[static_cast<std::size_t>(v)] -= 1;
      path_.push_back(v);
      search(std::move(child), depth + 1);
      path_.pop_back();
      processed.push_back(v);
      orbits_valid = false;  // the descent clobbered uf_ (and may add autos)
      if (unwind_to_ >= 0) {
        if (static_cast<std::size_t>(unwind_to_) < depth) {
          return;  // an ancestor owns the divergence level
        }
        unwind_to_ = -1;  // this level: skip deeper, continue with siblings
      }
    }
  }

  CsrSpan g_;
  const std::vector<std::string>& payloads_;
  const std::size_t max_leaves_;
  CanonicalStats* stats_;
  Refiner refiner_;
  UnionFind uf_;

  std::size_t leaves_ = 0;
  std::string best_;
  std::vector<NodeId> best_order_;
  std::vector<NodeId> best_path_;
  bool has_best_ = false;
  std::vector<NodeId> path_;
  std::vector<std::vector<NodeId>> autos_;
  int unwind_to_ = -1;
};

void run_indexed(exec::ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (pool != nullptr) {
    pool->parallel_for(n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
    }
  }
}

// ---- census internals ------------------------------------------------------

// Centre-marked payloads of a ball slice, in local-id order (matching
// local::Ball's stripped-ball payload scheme).
std::vector<std::string> slice_payloads(
    const BallSlice& s, const std::vector<std::string>& host_payloads) {
  std::vector<std::string> out;
  out.reserve(static_cast<std::size_t>(s.local.n));
  for (NodeId v = 0; v < s.local.n; ++v) {
    std::string p = (v == s.center) ? "C" : "N";
    p += host_payloads[static_cast<std::size_t>(s.to_host[v])];
    out.push_back(std::move(p));
  }
  return out;
}

// Streaming FNV-1a over the exact extracted structure (local adjacency,
// centre position, payload bytes). Equal slices always hash equal; a
// collision between distinct slices is caught by the verification pass.
class Fnv {
 public:
  void bytes(const char* data, std::size_t size) {
    for (std::size_t i = 0; i < size; ++i) {
      h_ ^= static_cast<unsigned char>(data[i]);
      h_ *= 1099511628211ULL;
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 1099511628211ULL;
    }
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 14695981039346656037ULL;
};

std::uint64_t slice_hash(const BallSlice& s,
                         const std::vector<std::string>& host_payloads) {
  Fnv fnv;
  fnv.u64(static_cast<std::uint64_t>(s.local.n));
  fnv.u64(static_cast<std::uint64_t>(s.center));
  for (NodeId v = 0; v < s.local.n; ++v) {
    const std::string& p =
        host_payloads[static_cast<std::size_t>(s.to_host[v])];
    fnv.u64(p.size());
    fnv.bytes(p.data(), p.size());
  }
  if (s.local.n > 0) {
    for (NodeId v = 0; v <= s.local.n; ++v) {
      fnv.u64(s.local.offsets[v]);
    }
    for (EdgeIndex e = 0; e < s.local.offsets[s.local.n]; ++e) {
      fnv.u64(static_cast<std::uint64_t>(s.local.adj[e]));
    }
  }
  return fnv.value();
}

// Exact structural equality of two extracted slices (same local adjacency
// bytes, same centre, same payload bytes node for node).
bool slices_equal(const BallSlice& a, const BallSlice& b,
                  const std::vector<std::string>& host_payloads) {
  if (a.local.n != b.local.n || a.center != b.center) {
    return false;
  }
  const NodeId n = a.local.n;
  if (n == 0) {
    return true;
  }
  if (!std::equal(a.local.offsets, a.local.offsets + n + 1, b.local.offsets)) {
    return false;
  }
  if (!std::equal(a.local.adj, a.local.adj + a.local.offsets[n],
                  b.local.adj)) {
    return false;
  }
  for (NodeId v = 0; v < n; ++v) {
    if (host_payloads[static_cast<std::size_t>(a.to_host[v])] !=
        host_payloads[static_cast<std::size_t>(b.to_host[v])]) {
      return false;
    }
  }
  return true;
}

}  // namespace

CanonicalForm canonical_form(CsrSpan g,
                             const std::vector<std::string>& payloads,
                             std::size_t max_leaves, CanonicalStats* stats) {
  LOCALD_CHECK(payloads.size() == static_cast<std::size_t>(g.n),
               "one payload required per node");
  g_forms.fetch_add(1, std::memory_order_relaxed);
  Canonicalizer canonicalizer(g, payloads, max_leaves, stats);
  return canonicalizer.run();
}

CanonicalForm canonical_form(CsrSpan g, std::size_t max_leaves) {
  return canonical_form(
      g, std::vector<std::string>(static_cast<std::size_t>(g.n)), max_leaves);
}

std::string wl_certificate(CsrSpan g,
                           const std::vector<std::string>& payloads) {
  LOCALD_CHECK(payloads.size() == static_cast<std::size_t>(g.n),
               "one payload required per node");
  const std::size_t n = payloads.size();
  if (n == 0) {
    return "wl:n=0;";
  }
  Coloring color = payload_coloring(payloads);
  Refiner refiner(g);
  const int classes = refiner.refine(color, nullptr);
  // One class description per colour, in rank order: size, the payload the
  // class shares, and the sorted neighbour-colour multiset every member
  // sees — all isomorphism-invariant at stability.
  std::vector<std::string> lines(static_cast<std::size_t>(classes));
  std::vector<int> size(static_cast<std::size_t>(classes), 0);
  for (int c : color) {
    ++size[static_cast<std::size_t>(c)];
  }
  for (std::size_t v = 0; v < n; ++v) {
    const auto c = static_cast<std::size_t>(color[v]);
    if (!lines[c].empty()) {
      continue;
    }
    std::vector<int> around;
    for (NodeId w : g.neighbors(static_cast<NodeId>(v))) {
      around.push_back(color[static_cast<std::size_t>(w)]);
    }
    std::sort(around.begin(), around.end());
    std::string line;
    line += "C";
    line += std::to_string(c);
    line += "|n=";
    line += std::to_string(size[c]);
    line += "|L";
    line += std::to_string(payloads[v].size());
    line += ":";
    line += payloads[v];
    line += "|A";
    for (int a : around) {
      line += std::to_string(a);
      line += ",";
    }
    line += ";";
    lines[c] = std::move(line);
  }
  std::string cert = "wl:n=" + std::to_string(n) + ";";
  for (const std::string& line : lines) {
    cert += line;
  }
  return cert;
}

BallCensusResult canonical_census(const CsrGraph& host,
                                  const std::vector<std::string>& payloads,
                                  int radius, exec::ThreadPool* pool,
                                  std::size_t max_leaves) {
  LOCALD_CHECK(payloads.size() == static_cast<std::size_t>(host.node_count()),
               "one payload required per host node");
  LOCALD_CHECK(radius >= 0, "radius must be non-negative");
  const std::size_t n = static_cast<std::size_t>(host.node_count());
  const CsrSpan hs = host.span();
  BallCensusResult result;
  ensure_canon_metrics_registered();
  g_census_balls.fetch_add(n, std::memory_order_relaxed);
  if (n == 0) {
    return result;
  }
  obs::Span census_span("ball-census", "balls=" + std::to_string(n));

  // Stage 1 (parallel): stream every ball through a structural hash. The
  // slice lives in a per-thread arena; nothing per-node is materialized
  // beyond the 8-byte hash.
  std::vector<std::uint64_t> hash(n);
  {
    obs::Span span("census-extract-hash");
    run_indexed(pool, n, [&](std::size_t i) {
      thread_local BallScratch scratch;
      hash[i] = slice_hash(
          scratch.extract(hs, static_cast<NodeId>(i), radius), payloads);
    });
  }

  // Tentative dedup in node order (scheduling-independent): group by hash.
  std::vector<NodeId> representative;
  std::vector<std::size_t> slot(n);
  {
    std::unordered_map<std::uint64_t, std::size_t> slot_of_hash;
    slot_of_hash.reserve(n / 4 + 16);
    for (std::size_t i = 0; i < n; ++i) {
      const auto [it, inserted] =
          slot_of_hash.emplace(hash[i], representative.size());
      if (inserted) {
        representative.push_back(static_cast<NodeId>(i));
      }
      slot[i] = it->second;
    }
  }

  // Verification (parallel): every non-representative must be structurally
  // identical to its slot's representative — a failed check means two
  // distinct structures collided in the 64-bit hash. Representatives of
  // multi-member slots are materialized once up front (owned copies of
  // the slice arrays), so each duplicate costs ONE extraction instead of
  // re-extracting its representative alongside — on dedup-heavy censuses
  // (symmetric families, where every ball is the whole graph) that is a
  // third of all extraction work. Single-member slots verify nothing and
  // materialize nothing.
  struct RepSlice {
    std::vector<EdgeIndex> offsets;
    std::vector<NodeId> adj;
    std::vector<NodeId> to_host;
    NodeId n = 0;
    NodeId center = 0;
  };
  // One stage span at a time, re-aimed as the census advances; emplace/reset
  // keeps sibling stages from nesting into each other.
  std::optional<obs::Span> stage_span;
  stage_span.emplace("census-dedup-verify");
  std::vector<std::uint32_t> slot_members(representative.size(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    ++slot_members[slot[i]];
  }
  std::vector<RepSlice> rep_slice(representative.size());
  run_indexed(pool, representative.size(), [&](std::size_t k) {
    if (slot_members[k] < 2) {
      return;
    }
    thread_local BallScratch scratch;
    const BallSlice s = scratch.extract(hs, representative[k], radius);
    RepSlice& out = rep_slice[k];
    out.n = s.local.n;
    out.center = s.center;
    out.offsets.assign(s.local.offsets, s.local.offsets + s.local.n + 1);
    out.adj.assign(s.local.adj, s.local.adj + s.local.offsets[s.local.n]);
    out.to_host.assign(s.to_host, s.to_host + s.local.n);
  });
  std::atomic<bool> collision{false};
  run_indexed(pool, n, [&](std::size_t i) {
    const NodeId rep = representative[slot[i]];
    if (rep == static_cast<NodeId>(i) ||
        collision.load(std::memory_order_relaxed)) {
      return;
    }
    thread_local BallScratch mine;
    const BallSlice a = mine.extract(hs, static_cast<NodeId>(i), radius);
    const RepSlice& r = rep_slice[slot[i]];
    const BallSlice b{CsrSpan{r.n, r.offsets.data(), r.adj.data()},
                      r.to_host.data(), r.center, radius};
    if (!slices_equal(a, b, payloads)) {
      collision.store(true, std::memory_order_relaxed);
    }
  });
  if (collision.load()) {
    // Vanishingly rare (two distinct structures sharing a 64-bit hash).
    // Fall back to grouping the whole census by exact serialized keys —
    // deterministic, just memory-heavier.
    std::vector<std::string> raw(n);
    run_indexed(pool, n, [&](std::size_t i) {
      thread_local BallScratch scratch;
      const BallSlice s =
          scratch.extract(hs, static_cast<NodeId>(i), radius);
      std::string key;
      key += std::to_string(s.local.n);
      key += "|";
      key += std::to_string(s.center);
      key += "|";
      for (NodeId v = 0; v < s.local.n; ++v) {
        const std::string& p =
            payloads[static_cast<std::size_t>(s.to_host[v])];
        key += std::to_string(p.size());
        key += ":";
        key += p;
        key += ";";
      }
      key += "|";
      for (NodeId v = 0; v < s.local.n; ++v) {
        for (NodeId w : s.local.neighbors(v)) {
          if (w > v) {
            key += std::to_string(v);
            key += ",";
            key += std::to_string(w);
            key += ";";
          }
        }
      }
      raw[i] = std::move(key);
    });
    representative.clear();
    std::unordered_map<std::string_view, std::size_t> slot_of_key;
    for (std::size_t i = 0; i < n; ++i) {
      const auto [it, inserted] =
          slot_of_key.emplace(raw[i], representative.size());
      if (inserted) {
        representative.push_back(static_cast<NodeId>(i));
      }
      slot[i] = it->second;
    }
  }
  result.unique_structures = representative.size();
  result.raw_duplicates = n - representative.size();
  g_census_raw_hits.fetch_add(result.raw_duplicates,
                              std::memory_order_relaxed);

  // Stage 2 (parallel): one tier-2 search per unique structure.
  stage_span.reset();
  stage_span.emplace("census-canonicalize",
                     "unique=" + std::to_string(representative.size()));
  std::vector<std::string> encodings(representative.size());
  run_indexed(pool, representative.size(), [&](std::size_t k) {
    thread_local BallScratch scratch;
    const BallSlice s = scratch.extract(hs, representative[k], radius);
    encodings[k] =
        canonical_form(s.local, slice_payloads(s, payloads), max_leaves)
            .encoding;
  });
  stage_span.reset();

  // Stage 3: fold unique structures into classes (distinct structures can
  // share a canonical form) and scatter in node order. Slots are ordered
  // by first-occurrence node, so the first slot of a class names the
  // class's first host node as its representative.
  std::vector<std::size_t> class_of_slot(representative.size());
  {
    std::unordered_map<std::string_view, std::size_t> class_ids;
    for (std::size_t k = 0; k < representative.size(); ++k) {
      const auto [it, inserted] =
          class_ids.emplace(encodings[k], class_ids.size());
      if (inserted) {
        result.class_representative.push_back(representative[k]);
        result.class_encoding.push_back(encodings[k]);
      }
      class_of_slot[k] = it->second;
    }
    result.distinct = static_cast<std::int64_t>(class_ids.size());
  }
  result.class_of.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.class_of[i] = class_of_slot[slot[i]];
  }
  return result;
}

CanonicalizationCounters canonicalization_counters() {
  ensure_canon_metrics_registered();
  CanonicalizationCounters out;
  out.forms = g_forms.load(std::memory_order_relaxed);
  out.census_balls = g_census_balls.load(std::memory_order_relaxed);
  out.census_raw_hits = g_census_raw_hits.load(std::memory_order_relaxed);
  return out;
}

bool isomorphic(CsrSpan a, const std::vector<std::string>& payload_a,
                CsrSpan b, const std::vector<std::string>& payload_b) {
  if (a.node_count() != b.node_count() || a.edge_count() != b.edge_count()) {
    return false;
  }
  return canonical_form(a, payload_a).encoding ==
         canonical_form(b, payload_b).encoding;
}

bool isomorphic(CsrSpan a, CsrSpan b) {
  return isomorphic(
      a, std::vector<std::string>(static_cast<std::size_t>(a.n)), b,
      std::vector<std::string>(static_cast<std::size_t>(b.n)));
}

}  // namespace locald::graph
