// Canonical forms for vertex-labelled graphs — the two-tier
// canonicalization engine behind every cache-keyed path in locald.
//
// The indistinguishability arguments of the paper compare radius-t balls up
// to label-preserving isomorphism: an Id-oblivious algorithm is exactly a
// function of the ball's isomorphism class. `canonical_form` computes a
// complete invariant — two labelled graphs have equal encodings if and only
// if they are isomorphic by a label-preserving bijection.
//
// Everything here consumes `CsrSpan` (graph/csr.h): whole graphs and
// scratch-backed ball slices run through the same engine with no copies.
//
// Tier 1 is fast colour refinement (1-WL) on partition-refinement data
// structures: per-round rank assignment over flat signature arenas instead
// of per-round `std::map` rebuilds, with all scratch shared across the
// whole search. The stable partition doubles as a cheap certificate
// (`wl_certificate`): equal certificates are necessary (never sufficient)
// for isomorphism, so certificate buckets bound which graphs can collide.
//
// Tier 2 is individualization–refinement over the first smallest
// non-singleton colour class, taking the lexicographically least leaf
// encoding — upgraded with automorphism discovery and orbit pruning:
//  - twin pruning: cell members with identical open or closed
//    neighbourhoods are interchangeable by a transposition that fixes
//    everything else, so only one per twin class is branched on (a star's
//    k interchangeable leaves cost one branch instead of k! orderings);
//  - leaf automorphisms: two leaves with equal encodings certify an
//    automorphism; discovered generators merge branch targets into orbits
//    (same orbit ⇒ same subtree encodings ⇒ skip), and the search unwinds
//    to the divergence level whose subtree the automorphism maps onto an
//    already-explored sibling.
// Symmetric inputs therefore cost near-linear in the orbit structure of
// the automorphism group instead of factorial in cell sizes.
//
// `canonical_census` is the bulk API: one call canonicalizes the radius-t
// ball of every host node. Balls are extracted as zero-copy slices from
// per-thread `BallScratch` arenas, deduplicated by a streamed structural
// hash (no per-node key strings — the census holds O(classes) encodings,
// not O(n), which is what lets it run at 10^6–10^7 host nodes), and each
// distinct structure is canonicalized exactly once — parallelized over the
// exec `ThreadPool` with byte-identical output at any thread count. Census
// encodings agree byte-for-byte with per-ball `canonical_form` on
// centre-marked payloads.
//
// The tier-2 search is intended for the small graphs this project compares
// (balls, fragments); the census host graph can be millions of nodes.
// Labels carried as opaque byte payloads are embedded verbatim in the
// encoding, so no hash collisions can merge distinct labels.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.h"

namespace locald::exec {
class ThreadPool;
}  // namespace locald::exec

namespace locald::graph {

struct CanonicalForm {
  // order[i] = original node placed at canonical position i.
  std::vector<NodeId> order;
  // Complete invariant: equal encoding <=> label-preserving isomorphic.
  std::string encoding;
  // FNV-1a of `encoding`; convenient hash-map key.
  std::uint64_t fingerprint = 0;
};

// Search effort counters of one `canonical_form` call (exposed so tests can
// pin the orbit pruning down: a symmetric input whose naive search visits
// k! leaves must stay under a tight budget).
struct CanonicalStats {
  std::size_t leaves = 0;             // discrete colourings encoded
  std::size_t nodes = 0;              // search-tree nodes visited
  std::size_t automorphisms = 0;      // generators discovered at leaves
  std::size_t orbit_prunes = 0;       // branches skipped as orbit duplicates
  std::size_t twin_prunes = 0;        // branches skipped as cell twins
  std::size_t refinement_rounds = 0;  // colour-refinement rounds run
};

// `payloads[v]` is the label of node v as opaque bytes (may be empty).
// Throws locald::Error if the search would exceed `max_leaves` discrete
// orderings (pathologically symmetric inputs beyond what the orbit pruning
// can collapse). `stats`, when non-null, receives the search counters.
CanonicalForm canonical_form(CsrSpan g,
                             const std::vector<std::string>& payloads,
                             std::size_t max_leaves = 1 << 20,
                             CanonicalStats* stats = nullptr);

// Convenience: all payloads empty (pure topology).
CanonicalForm canonical_form(CsrSpan g, std::size_t max_leaves = 1 << 20);

// Tier-1 certificate: the stable 1-WL colouring as an isomorphism-invariant
// string. Equal on isomorphic inputs; cheap (no search); NOT complete —
// non-isomorphic graphs may share a certificate, which is exactly when the
// tier-2 search earns its keep. canonical_form-equal graphs always share a
// certificate.
std::string wl_certificate(CsrSpan g,
                           const std::vector<std::string>& payloads);

// Bulk ball census over a host graph: the canonical class of B(v, radius)
// for every host node v, centre-marked ("C"/"N" payload prefixes, matching
// local::Ball's stripped-ball payload scheme) so the centre is
// distinguished. `payloads[v]` contributes the host node's label bytes to
// every ball containing v (pass empty strings for pure topology).
struct BallCensusResult {
  // class_of[v] = dense class id of node v's ball, numbered by first
  // occurrence in node order; class_representative[c] = the first host
  // node (in node order) whose ball is in class c. Consumers decide once
  // per class and scatter over members.
  std::vector<std::size_t> class_of;
  std::vector<NodeId> class_representative;
  // class_encoding[c] = canonical encoding of class c's ball;
  // byte-identical to canonical_form on the extracted ball. Kept per
  // class, not per node: at census scale the per-node copy was the
  // dominant memory cost.
  std::vector<std::string> class_encoding;
  // Number of distinct encodings (= isomorphism classes of balls).
  std::int64_t distinct = 0;
  // Balls that were byte-identical as extracted and skipped the search.
  std::size_t raw_duplicates = 0;
  // Distinct extracted structures actually canonicalized.
  std::size_t unique_structures = 0;

  const std::string& encoding_of(NodeId v) const {
    return class_encoding[class_of[static_cast<std::size_t>(v)]];
  }
};

// Deterministic at every thread count: the ball population, the dedup, and
// each structure's canonical form are pure functions of (host, payloads,
// radius), and `pool` only changes who computes what. Null pool = serial.
BallCensusResult canonical_census(const CsrGraph& host,
                                  const std::vector<std::string>& payloads,
                                  int radius, exec::ThreadPool* pool = nullptr,
                                  std::size_t max_leaves = 1 << 20);

// Monotonic process-wide canonicalization counters (surfaced by the
// server's /v1/metrics). Counts work done, not work saved: a census ball
// answered by raw dedup increments census_raw_hits instead of forms.
struct CanonicalizationCounters {
  std::uint64_t forms = 0;            // canonical_form searches run
  std::uint64_t census_balls = 0;     // balls passed through canonical_census
  std::uint64_t census_raw_hits = 0;  // census balls answered by raw dedup
};
CanonicalizationCounters canonicalization_counters();

bool isomorphic(CsrSpan a, const std::vector<std::string>& payload_a,
                CsrSpan b, const std::vector<std::string>& payload_b);

bool isomorphic(CsrSpan a, CsrSpan b);

}  // namespace locald::graph
