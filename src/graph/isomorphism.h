// Canonical forms for vertex-labelled graphs.
//
// The indistinguishability arguments of the paper compare radius-t balls up
// to label-preserving isomorphism: an Id-oblivious algorithm is exactly a
// function of the ball's isomorphism class. `canonical_form` computes a
// complete invariant — two labelled graphs have equal encodings if and only
// if they are isomorphic by a label-preserving bijection — via colour
// refinement (1-WL) plus individualization–refinement search over the first
// non-singleton colour class, taking the lexicographically least leaf
// encoding.
//
// Intended for the small graphs this project compares (balls, fragments,
// instances up to a few thousand nodes). Labels carried as opaque byte
// payloads are embedded verbatim in the encoding, so no hash collisions can
// merge distinct labels.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace locald::graph {

struct CanonicalForm {
  // order[i] = original node placed at canonical position i.
  std::vector<NodeId> order;
  // Complete invariant: equal encoding <=> label-preserving isomorphic.
  std::string encoding;
  // FNV-1a of `encoding`; convenient hash-map key.
  std::uint64_t fingerprint = 0;
};

// `payloads[v]` is the label of node v as opaque bytes (may be empty).
// Throws locald::Error if the search would exceed `max_leaves` discrete
// orderings (pathologically symmetric inputs).
CanonicalForm canonical_form(const Graph& g,
                             const std::vector<std::string>& payloads,
                             std::size_t max_leaves = 1 << 20);

// Convenience: all payloads empty (pure topology).
CanonicalForm canonical_form(const Graph& g, std::size_t max_leaves = 1 << 20);

bool isomorphic(const Graph& a, const std::vector<std::string>& payload_a,
                const Graph& b, const std::vector<std::string>& payload_b);

bool isomorphic(const Graph& a, const Graph& b);

}  // namespace locald::graph
