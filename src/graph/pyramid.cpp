#include "graph/pyramid.h"

#include <functional>

#include "graph/isomorphism.h"

namespace locald::graph {

PyramidIndexer::PyramidIndexer(int h) : h_(h) {
  LOCALD_CHECK(h >= 0 && h <= 12, "pyramid height out of supported range");
  level_offset_.resize(static_cast<std::size_t>(h_) + 1);
  NodeId offset = 0;
  for (int z = 0; z <= h_; ++z) {
    level_offset_[static_cast<std::size_t>(z)] = offset;
    const NodeId s = static_cast<NodeId>(side(z));
    offset += s * s;
  }
  total_ = offset;
}

NodeId PyramidIndexer::id(int x, int y, int z) const {
  const int s = side(z);
  LOCALD_CHECK(x >= 0 && x < s && y >= 0 && y < s,
               "pyramid coordinate out of range");
  return level_offset_[static_cast<std::size_t>(z)] +
         static_cast<NodeId>(y) * s + x;
}

PyramidIndexer::Position PyramidIndexer::position(NodeId v) const {
  LOCALD_CHECK(v >= 0 && v < total_, "pyramid node out of range");
  int z = h_;
  while (level_offset_[static_cast<std::size_t>(z)] > v) {
    --z;
  }
  const NodeId rel = v - level_offset_[static_cast<std::size_t>(z)];
  const int s = side(z);
  return Position{static_cast<int>(rel) % s, static_cast<int>(rel) / s, z};
}

CsrGraph build_pyramid(const PyramidIndexer& indexer) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(3 * static_cast<std::size_t>(indexer.node_count()));
  for (int z = 0; z <= indexer.height(); ++z) {
    const int s = indexer.side(z);
    for (int y = 0; y < s; ++y) {
      for (int x = 0; x < s; ++x) {
        const NodeId v = indexer.id(x, y, z);
        if (x + 1 < s) {
          edges.emplace_back(v, indexer.id(x + 1, y, z));
        }
        if (y + 1 < s) {
          edges.emplace_back(v, indexer.id(x, y + 1, z));
        }
        if (z < indexer.height()) {
          edges.emplace_back(v, indexer.id(x / 2, y / 2, z + 1));
        }
      }
    }
  }
  return CsrGraph::from_edges(indexer.node_count(), edges);
}

CsrGraph make_pyramid(int h) { return build_pyramid(PyramidIndexer(h)); }

NodeId attach_pyramid(GraphBuilder& g, const PyramidIndexer& indexer,
                      const std::function<NodeId(int, int)>& base) {
  const NodeId first = g.node_count();
  // Ids of upper-level nodes, allocated level by level.
  std::vector<std::vector<NodeId>> level_ids(
      static_cast<std::size_t>(indexer.height()) + 1);
  for (int z = 1; z <= indexer.height(); ++z) {
    const int s = indexer.side(z);
    auto& ids = level_ids[static_cast<std::size_t>(z)];
    ids.resize(static_cast<std::size_t>(s) * s);
    for (int y = 0; y < s; ++y) {
      for (int x = 0; x < s; ++x) {
        ids[static_cast<std::size_t>(y) * s + x] = g.add_node();
      }
    }
  }
  auto node_at = [&](int x, int y, int z) {
    if (z == 0) {
      return base(x, y);
    }
    const int s = indexer.side(z);
    return level_ids[static_cast<std::size_t>(z)]
                    [static_cast<std::size_t>(y) * s + x];
  };
  for (int z = 1; z <= indexer.height(); ++z) {
    const int s = indexer.side(z);
    for (int y = 0; y < s; ++y) {
      for (int x = 0; x < s; ++x) {
        const NodeId v = node_at(x, y, z);
        if (x + 1 < s) {
          g.add_edge(v, node_at(x + 1, y, z));
        }
        if (y + 1 < s) {
          g.add_edge(v, node_at(x, y + 1, z));
        }
      }
    }
  }
  // Parent edges for every level including 0.
  for (int z = 0; z < indexer.height(); ++z) {
    const int s = indexer.side(z);
    for (int y = 0; y < s; ++y) {
      for (int x = 0; x < s; ++x) {
        g.add_edge(node_at(x, y, z), node_at(x / 2, y / 2, z + 1));
      }
    }
  }
  return first;
}

bool is_pyramid(const CsrGraph& g, int h) {
  const PyramidIndexer indexer(h);
  if (g.node_count() != indexer.node_count()) {
    return false;
  }
  return isomorphic(g, build_pyramid(indexer));
}

}  // namespace locald::graph
