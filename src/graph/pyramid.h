// Quadtree pyramids (Appendix A, Figure 3 of the paper).
//
// A pyramid over a 2^h x 2^h grid has levels z = 0..h; level z is a
// 2^{h-z} x 2^{h-z} grid graph, and each node (x, y, z) with z < h is
// additionally connected to its quadtree parent (x/2, y/2, z+1). Attaching
// the pyramid to an execution table makes the table's global structure
// locally checkable: every pyramid has a unique apex which fixes the
// geometry (the paper's step 2).
//
// The builders live here — in the graph layer — so the halting subsystem's
// pyramidal G(M, r) assembly and the gen/ workload-generator's `pyramid`
// family share one implementation.
#pragma once

#include <cstdint>
#include <functional>

#include "graph/csr.h"

namespace locald::graph {

class PyramidIndexer {
 public:
  explicit PyramidIndexer(int h);

  int height() const { return h_; }
  int side(int z) const {
    LOCALD_CHECK(z >= 0 && z <= h_, "level out of range");
    return 1 << (h_ - z);
  }

  NodeId node_count() const { return total_; }
  NodeId id(int x, int y, int z) const;
  NodeId apex() const { return id(0, 0, h_); }

  struct Position {
    int x = 0;
    int y = 0;
    int z = 0;
  };
  Position position(NodeId v) const;

 private:
  int h_;
  std::vector<NodeId> level_offset_;
  NodeId total_ = 0;
};

// The full pyramid graph (levels 0..h with grid + parent edges).
CsrGraph build_pyramid(const PyramidIndexer& indexer);

// Convenience: the height-h pyramid under the canonical indexing.
CsrGraph make_pyramid(int h);

// Adds pyramid levels 1..h on top of an existing 2^h x 2^h level-0 grid
// already present in `g` (node (x, y) at id base(x, y)). Returns the id of
// the first added node.
NodeId attach_pyramid(GraphBuilder& g, const PyramidIndexer& indexer,
                      const std::function<NodeId(int, int)>& base);

// Exact structural oracle: is `g` the pyramid over a 2^h x 2^h grid?
bool is_pyramid(const CsrGraph& g, int h);

}  // namespace locald::graph
