#include "halting/analysis.h"

#include <bit>
#include <cmath>

#include "support/format.h"
#include "tm/run.h"

namespace locald::halting {

namespace {

using local::BallView;
using local::Verdict;

// Decodes the machine named in the centre's label; nullopt on garbage.
std::optional<tm::TuringMachine> machine_of(const BallView& ball) {
  const auto decoded = decode_label(ball.center_label());
  if (!decoded.has_value()) {
    return std::nullopt;
  }
  try {
    return tm::TuringMachine::decode(decoded->machine_encoding);
  } catch (const Error&) {
    return std::nullopt;
  }
}

}  // namespace

std::unique_ptr<local::LocalAlgorithm> make_gmr_decider(
    int fragment_size, tm::FragmentPolicy policy, bool pyramidal,
    long long step_budget, long long sim_cap) {
  auto verifier = std::make_shared<std::unique_ptr<local::LocalAlgorithm>>(
      make_gmr_verifier(fragment_size, policy, pyramidal, step_budget));
  return local::make_id_aware(
      cat("decide-G(M,r)(k=", fragment_size, ")"), 2,
      [verifier, sim_cap](const BallView& ball) {
        if ((*verifier)->evaluate(ball.without_ids()) == Verdict::no) {
          return Verdict::no;
        }
        const auto m = machine_of(ball);
        if (!m.has_value()) {
          return Verdict::no;
        }
        const long long budget = static_cast<long long>(
            std::min<local::Id>(ball.center_id(),
                                static_cast<local::Id>(sim_cap)));
        const tm::RunOutcome run = tm::run_machine(*m, budget);
        if (run.halted && run.output != 0) {
          return Verdict::no;
        }
        return Verdict::yes;
      });
}

GeneratedBalls neighborhood_generator(const GmrParams& params, int radius) {
  LOCALD_CHECK(radius >= 0, "radius must be non-negative");
  GeneratedBalls out;
  const tm::RunOutcome run =
      tm::run_machine(params.machine, params.step_budget);
  if (run.halted) {
    GmrInstance instance = build_gmr(params);
    out.exact = true;
    out.host = std::move(instance.graph);
    for (graph::NodeId v = 0; v < out.host.node_count(); ++v) {
      out.centers.push_back(v);
    }
    return out;
  }
  // Prefix construction: 4r-style rows, enough to out-span the radius.
  const int min_rows = std::max({4 * (params.r + 1), 4 * (radius + 1),
                                 params.fragment_size});
  const int side =
      static_cast<int>(std::bit_ceil(static_cast<unsigned>(min_rows)));
  const tm::ExecutionTable prefix =
      tm::ExecutionTable::build(params.machine, side, side);
  const tm::FragmentCollection collection = tm::build_fragment_collection(
      params.machine, params.fragment_size, params.policy, {&prefix});
  GmrInstance instance = assemble_gmr(params.machine, params.r, prefix,
                                      collection, params.pyramidal);
  out.exact = false;
  out.host = std::move(instance.graph);
  // Exclude balls touching the prefix's synthetic bottom rows: table cell
  // ids are y * side + x for y < side.
  const graph::NodeId table_nodes =
      static_cast<graph::NodeId>(side) * static_cast<graph::NodeId>(side);
  for (graph::NodeId v = 0; v < out.host.node_count(); ++v) {
    if (v < table_nodes) {
      const int y = static_cast<int>(v) / side;
      if (y + radius >= side) {
        continue;
      }
    }
    out.centers.push_back(v);
  }
  return out;
}

bool separation_accepts(const local::LocalAlgorithm& oblivious_candidate,
                        const GmrParams& params) {
  LOCALD_CHECK(oblivious_candidate.id_oblivious(),
               "the separation algorithm runs Id-oblivious candidates");
  const GeneratedBalls gen =
      neighborhood_generator(params, oblivious_candidate.horizon());
  for (graph::NodeId v : gen.centers) {
    const local::Ball ball =
        extract_ball(gen.host, nullptr, v, oblivious_candidate.horizon());
    if (oblivious_candidate.evaluate(ball) == Verdict::no) {
      return false;
    }
  }
  return true;
}

std::unique_ptr<local::LocalAlgorithm> candidate_always_yes() {
  return local::make_oblivious("candidate-always-yes", 2,
                               [](const BallView&) { return Verdict::yes; });
}

std::unique_ptr<local::LocalAlgorithm> candidate_structure_only(
    int fragment_size, tm::FragmentPolicy policy, bool pyramidal,
    long long step_budget) {
  auto verifier = std::make_shared<std::unique_ptr<local::LocalAlgorithm>>(
      make_gmr_verifier(fragment_size, policy, pyramidal, step_budget));
  return local::make_oblivious(
      "candidate-structure-only", 2,
      [verifier](const BallView& ball) { return (*verifier)->evaluate(ball); });
}

std::unique_ptr<local::LocalAlgorithm> candidate_bounded_simulation(
    int fragment_size, tm::FragmentPolicy policy, bool pyramidal,
    long long step_budget, long long sim_budget) {
  auto verifier = std::make_shared<std::unique_ptr<local::LocalAlgorithm>>(
      make_gmr_verifier(fragment_size, policy, pyramidal, step_budget));
  return local::make_oblivious(
      cat("candidate-simulate-", sim_budget), 2,
      [verifier, sim_budget](const BallView& ball) {
        if ((*verifier)->evaluate(ball) == Verdict::no) {
          return Verdict::no;
        }
        const auto m = machine_of(ball);
        if (!m.has_value()) {
          return Verdict::no;
        }
        const tm::RunOutcome run = tm::run_machine(*m, sim_budget);
        if (run.halted && run.output != 0) {
          return Verdict::no;
        }
        return Verdict::yes;
      });
}

std::vector<SeparationRow> run_separation_experiment(
    const std::vector<std::pair<std::string,
                                std::unique_ptr<local::LocalAlgorithm>>>&
        candidates,
    const std::vector<tm::TuringMachine>& machines, int r, int fragment_size,
    tm::FragmentPolicy policy, bool pyramidal, long long step_budget) {
  std::vector<SeparationRow> rows;
  for (const auto& [name, candidate] : candidates) {
    for (const tm::TuringMachine& machine : machines) {
      GmrParams params{machine, r, fragment_size, policy, pyramidal,
                       step_budget};
      SeparationRow row;
      row.candidate = name;
      row.machine = machine.name();
      const tm::RunOutcome truth = tm::run_machine(machine, step_budget);
      row.halts = truth.halted;
      row.output = truth.output;
      row.r_accepts = separation_accepts(*candidate, params);
      // A separator must accept L0 members and reject L1 members; machines
      // that do not halt (within the budget) carry no requirement.
      row.misclassified =
          row.halts && (row.r_accepts != (row.output == 0));
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

namespace {

class RandomizedGmrDecider final : public local::RandomizedLocalAlgorithm {
 public:
  RandomizedGmrDecider(int fragment_size, tm::FragmentPolicy policy,
                       bool pyramidal, long long step_budget,
                       long long sim_cap)
      : verifier_(make_gmr_verifier(fragment_size, policy, pyramidal,
                                    step_budget)),
        sim_cap_(sim_cap) {}

  std::string name() const override { return "randomized-oblivious-gmr"; }
  int horizon() const override { return 2; }
  bool id_oblivious() const override { return true; }

  Verdict evaluate(const BallView& ball, Rng& coin) const override {
    if (verifier_->evaluate(ball) == Verdict::no) {
      return Verdict::no;
    }
    const auto m = machine_of(ball);
    if (!m.has_value()) {
      return Verdict::no;
    }
    // n_v = 4^{tosses until first head} (Section 3.3), capped to keep the
    // simulation finite in practice.
    const int tosses = std::min(coin.coin_tosses_until_head(), 30);
    long long budget = 1;
    for (int i = 0; i < tosses; ++i) {
      budget *= 4;
      if (budget >= sim_cap_) {
        budget = sim_cap_;
        break;
      }
    }
    const tm::RunOutcome run = tm::run_machine(*m, budget);
    if (run.halted && run.output != 0) {
      return Verdict::no;
    }
    return Verdict::yes;
  }

 private:
  std::unique_ptr<local::LocalAlgorithm> verifier_;
  long long sim_cap_;
};

}  // namespace

std::unique_ptr<local::RandomizedLocalAlgorithm>
make_randomized_gmr_decider(int fragment_size, tm::FragmentPolicy policy,
                            bool pyramidal, long long step_budget,
                            long long sim_cap) {
  return std::make_unique<RandomizedGmrDecider>(fragment_size, policy,
                                                pyramidal, step_budget,
                                                sim_cap);
}

double corollary1_failure_bound(double n) {
  return std::pow(1.0 - 1.0 / std::sqrt(n), n);
}

}  // namespace locald::halting
