// The decision-theoretic side of Section 3: the LD decider, the
// neighbourhood generator B(N, r) (property P3), the separation algorithm R
// from the proof of Theorem 2, the candidate suite of computable
// Id-oblivious deciders it is run against, and the Corollary-1 randomized
// Id-oblivious decider.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "halting/gmr.h"
#include "halting/verifier.h"
#include "local/simulator.h"

namespace locald::halting {

// ---- LD side ---------------------------------------------------------------

// Id-aware decider for P = { G(M, r) : M outputs 0 } (Theorem 2, first
// half): verify the structure Id-obliviously, then simulate the machine
// decoded from the labels for Id(v) steps (capped at sim_cap; ids in our
// instances are far below the cap). Some node's id reaches M's runtime
// because G(M, r) has more nodes than M has steps.
std::unique_ptr<local::LocalAlgorithm> make_gmr_decider(
    int fragment_size, tm::FragmentPolicy policy, bool pyramidal,
    long long step_budget, long long sim_cap = 1'000'000);

// ---- neighbourhood generator B (property P3) --------------------------------

// Output of B(N, radius): a host graph whose eligible stripped balls are
// exactly what the separation algorithm feeds to a candidate decider.
// Total for EVERY machine N:
//  - if N halts within the step budget, the host is the genuine G(N, r)
//    and every node is eligible (exact = true);
//  - otherwise the host glues C(N, r) to a table prefix and the balls
//    touching the prefix's bottom rows are excluded (the paper's
//    "neighbourhoods that do not contain nodes from the bottom row").
struct GeneratedBalls {
  bool exact = false;
  local::LabeledGraph host;
  std::vector<graph::NodeId> centers;
};

GeneratedBalls neighborhood_generator(const GmrParams& params, int radius);

// ---- separation algorithm R (proof of Theorem 2) ----------------------------

// R(A*, N): accept iff A* accepts every ball of B(N, A*.horizon()).
// A correct Id-oblivious decider for P would make R a computable separator
// of L0/L1, contradicting Lemma 1 — so every computable candidate must
// misclassify some machine.
bool separation_accepts(const local::LocalAlgorithm& oblivious_candidate,
                        const GmrParams& params);

// ---- candidate suite ---------------------------------------------------------

std::unique_ptr<local::LocalAlgorithm> candidate_always_yes();

// The structure verifier alone (ignores M's output entirely).
std::unique_ptr<local::LocalAlgorithm> candidate_structure_only(
    int fragment_size, tm::FragmentPolicy policy, bool pyramidal,
    long long step_budget);

// Structure verifier plus a bounded simulation of the decoded machine for
// `sim_budget` steps; rejects on a non-0 halt within the budget. Fooled by
// any machine that outlasts the budget — the diagonalization harness
// constructs exactly those.
std::unique_ptr<local::LocalAlgorithm> candidate_bounded_simulation(
    int fragment_size, tm::FragmentPolicy policy, bool pyramidal,
    long long step_budget, long long sim_budget);

// ---- diagonalization harness -------------------------------------------------

struct SeparationRow {
  std::string candidate;
  std::string machine;
  bool halts = false;
  int output = -1;        // when halts
  bool r_accepts = false; // verdict of the separator R built from candidate
  // R should accept exactly the L0 members among halting machines; a
  // mismatch on a halting machine is the predicted failure.
  bool misclassified = false;
};

// Runs R(candidate, N) for each machine against each candidate.
std::vector<SeparationRow> run_separation_experiment(
    const std::vector<std::pair<std::string,
                                std::unique_ptr<local::LocalAlgorithm>>>&
        candidates,
    const std::vector<tm::TuringMachine>& machines, int r, int fragment_size,
    tm::FragmentPolicy policy, bool pyramidal, long long step_budget);

// ---- Corollary 1: randomness replaces identifiers ---------------------------

// Id-oblivious randomized decider: each node draws n_v = 4^{tosses until
// heads} and simulates the decoded machine for n_v steps (capped). A
// (1, 1 - o(1))-decider for P.
std::unique_ptr<local::RandomizedLocalAlgorithm>
make_randomized_gmr_decider(int fragment_size, tm::FragmentPolicy policy,
                            bool pyramidal, long long step_budget,
                            long long sim_cap = 1'000'000);

// The paper's analytic failure bound: (1 - 1/sqrt(n))^n.
double corollary1_failure_bound(double n);

}  // namespace locald::halting
