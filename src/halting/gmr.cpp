#include "halting/gmr.h"

#include <algorithm>
#include <map>

#include "graph/pyramid.h"
#include "support/format.h"
#include "tm/run.h"

namespace locald::halting {

using graph::PyramidIndexer;
using graph::attach_pyramid;

local::Label cell_label(const tm::TuringMachine& m, int r, int x, int y,
                        int code, std::int64_t role) {
  std::vector<std::int64_t> fields{kGmrTag, r, role, x % 3, y % 3, code};
  const auto enc = m.encode();
  fields.insert(fields.end(), enc.begin(), enc.end());
  return local::Label(std::move(fields));
}

local::Label pyramid_label(const tm::TuringMachine& m, int r) {
  std::vector<std::int64_t> fields{kGmrTag, r, kRolePyramid, 0, 0, 0};
  const auto enc = m.encode();
  fields.insert(fields.end(), enc.begin(), enc.end());
  return local::Label(std::move(fields));
}

std::optional<DecodedLabel> decode_label(const local::Label& l) {
  if (l.size() < 8 || l.at(0) != kGmrTag) {
    return std::nullopt;
  }
  DecodedLabel out;
  out.r = static_cast<int>(l.at(1));
  out.role = l.at(2);
  out.xm3 = static_cast<int>(l.at(3));
  out.ym3 = static_cast<int>(l.at(4));
  out.code = static_cast<int>(l.at(5));
  if (out.r < 0 ||
      (out.role != kRoleTableCell && out.role != kRolePyramid &&
       out.role != kRoleFragmentCell) ||
      out.xm3 < 0 || out.xm3 > 2 || out.ym3 < 0 || out.ym3 > 2) {
    return std::nullopt;
  }
  out.machine_encoding.assign(l.fields().begin() + 6, l.fields().end());
  return out;
}

GmrInstance build_gmr(const GmrParams& params) {
  const tm::TuringMachine& m = params.machine;
  LOCALD_CHECK(params.fragment_size >= 3, "fragment size must be >= 3");
  if (params.pyramidal) {
    LOCALD_CHECK((params.fragment_size & (params.fragment_size - 1)) == 0,
                 "pyramidal fragments need a power-of-two size");
  }
  const tm::ExecutionTable table = tm::ExecutionTable::build_padded_pow2(
      m, params.step_budget, std::max(4, params.fragment_size));
  const tm::FragmentCollection collection = tm::build_fragment_collection(
      m, params.fragment_size, params.policy, {&table});
  return assemble_gmr(m, params.r, table, collection, params.pyramidal);
}

GmrInstance assemble_gmr(const tm::TuringMachine& m, int r,
                         const tm::ExecutionTable& table,
                         const tm::FragmentCollection& collection,
                         bool pyramidal) {
  GmrInstance out;
  out.table_side = table.width();
  out.halting_step = table.halting_step().value_or(-1);
  out.fragment_count = collection.fragments.size();
  out.exact_fragment_count = collection.exact_count;
  out.fragments_exhaustive = collection.exhaustive;

  graph::GraphBuilder g;
  std::vector<local::Label> labels;
  // Table cells: id = y * side + x.
  const int side = table.width();
  for (int y = 0; y < side; ++y) {
    for (int x = 0; x < side; ++x) {
      g.add_node();
      labels.push_back(cell_label(m, r, x, y, table.cell(x, y)));
    }
  }
  auto table_id = [side](int x, int y) {
    return static_cast<graph::NodeId>(y * side + x);
  };
  for (int y = 0; y < side; ++y) {
    for (int x = 0; x < side; ++x) {
      if (x + 1 < side) {
        g.add_edge(table_id(x, y), table_id(x + 1, y));
      }
      if (y + 1 < side) {
        g.add_edge(table_id(x, y), table_id(x, y + 1));
      }
    }
  }
  out.pivot = table_id(0, 0);

  if (pyramidal) {
    int h = 0;
    while ((1 << h) < side) ++h;
    const PyramidIndexer indexer(h);
    const graph::NodeId first =
        attach_pyramid(g, indexer, [&](int x, int y) { return table_id(x, y); });
    for (graph::NodeId v = first; v < g.node_count(); ++v) {
      labels.push_back(pyramid_label(m, r));
    }
  }

  // Fragments: k x k grids, glued borders wired to the pivot.
  const int k = collection.size;
  for (const tm::Fragment& f : collection.fragments) {
    const graph::NodeId base = g.node_count();
    for (int y = 0; y < k; ++y) {
      for (int x = 0; x < k; ++x) {
        g.add_node();
        labels.push_back(
            cell_label(m, r, x, y, f.cell(x, y), kRoleFragmentCell));
      }
    }
    auto frag_id = [base, k](int x, int y) {
      return base + static_cast<graph::NodeId>(y * k + x);
    };
    for (int y = 0; y < k; ++y) {
      for (int x = 0; x < k; ++x) {
        if (x + 1 < k) {
          g.add_edge(frag_id(x, y), frag_id(x + 1, y));
        }
        if (y + 1 < k) {
          g.add_edge(frag_id(x, y), frag_id(x, y + 1));
        }
      }
    }
    if (pyramidal) {
      int fh = 0;
      while ((1 << fh) < k) ++fh;
      const PyramidIndexer indexer(fh);
      const graph::NodeId first = attach_pyramid(
          g, indexer, [&](int x, int y) { return frag_id(x, y); });
      for (graph::NodeId v = first; v < g.node_count(); ++v) {
        labels.push_back(pyramid_label(m, r));
      }
    }
    for (const auto& [x, y] : f.glued_border_cells()) {
      g.add_edge(out.pivot, frag_id(x, y));
    }
  }

  out.graph = local::LabeledGraph(g.build(), std::move(labels));
  return out;
}

std::unique_ptr<local::Property> property_gmr_outputs0(
    int fragment_size, tm::FragmentPolicy policy, bool pyramidal,
    long long step_budget) {
  return std::make_unique<local::LambdaProperty>(
      cat("sec3-P(k=", fragment_size, pyramidal ? ",pyramidal" : "", ")"),
      [fragment_size, policy, pyramidal,
       step_budget](const local::LabeledGraph& g) {
        if (g.node_count() == 0) {
          return false;
        }
        const auto decoded = decode_label(g.label(0));
        if (!decoded.has_value()) {
          return false;
        }
        GmrInstance expected;
        try {
          tm::TuringMachine m =
              tm::TuringMachine::decode(decoded->machine_encoding);
          const tm::RunOutcome run = tm::run_machine(m, step_budget);
          if (!run.halted || run.output != 0) {
            return false;
          }
          GmrParams params{std::move(m), decoded->r, fragment_size, policy,
                           pyramidal, step_budget};
          expected = build_gmr(params);
        } catch (const Error&) {
          return false;
        }
        if (expected.graph.node_count() != g.node_count() ||
            expected.graph.graph().edge_count() != g.graph().edge_count()) {
          return false;
        }
        auto payload_sorted = [](const local::LabeledGraph& lg) {
          auto p = lg.label_payloads();
          std::sort(p.begin(), p.end());
          return p;
        };
        if (payload_sorted(expected.graph) != payload_sorted(g)) {
          return false;
        }
        // Degree multiset as an additional structural invariant.
        auto degrees = [](const local::LabeledGraph& lg) {
          std::vector<graph::NodeId> d;
          for (graph::NodeId v = 0; v < lg.node_count(); ++v) {
            d.push_back(lg.graph().degree(v));
          }
          std::sort(d.begin(), d.end());
          return d;
        };
        return degrees(expected.graph) == degrees(g);
      });
}

}  // namespace locald::halting
