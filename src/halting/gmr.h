// Assembly of G(M, r) (Section 3.2, Figure 2).
//
// The instance contains the padded execution table T of M and the fragment
// collection C(M, r); every node of a non-natural fragment border is glued
// to the pivot — the table's top-left start cell. Each node carries
// (M, r) in its label (the machine description is embedded verbatim), plus
// its role: a table/fragment cell with (x mod 3, y mod 3) orientation and
// cell code, or a pyramid node (Appendix A mode).
//
// Two documented deviations from the paper, chosen for tractability and
// recorded in docs/ARCHITECTURE.md:
//  - fragments are glued with orientation offset (0, 0) instead of all nine
//    (mod 3) offset variants; the offsets carry no information about M's
//    execution, and builder, verifier and neighbourhood generator share the
//    convention;
//  - the quadtree pyramids of Appendix A are available as an option whose
//    structure is validated by the global oracle and degree checks; the
//    fully label-free local quadtree verifier the paper asserts "by design"
//    is out of scope (the plain-grid mode documents the grid/torus caveat).
#pragma once

#include <optional>

#include "local/labeled_graph.h"
#include "local/property.h"
#include "tm/fragments.h"

namespace locald::halting {

inline constexpr std::int64_t kGmrTag = 10;
// Roles distinguish the execution table's grid from fragment grids, which
// makes the pivot's glue edges locally recognizable (the paper's
// "inter-grid edges"): an edge is a glue edge iff its endpoints' grids
// differ. The role carries no information about M's execution.
inline constexpr std::int64_t kRoleTableCell = 0;
inline constexpr std::int64_t kRolePyramid = 1;
inline constexpr std::int64_t kRoleFragmentCell = 2;

struct GmrParams {
  tm::TuringMachine machine;
  int r = 1;
  int fragment_size = 3;  // k >= 3; must be 2^h in pyramidal mode
  tm::FragmentPolicy policy;
  bool pyramidal = false;
  long long step_budget = 4096;  // build-time halting budget
};

// Cell label: [kGmrTag, r, role, x%3, y%3, code, M-encoding...].
local::Label cell_label(const tm::TuringMachine& m, int r, int x, int y,
                        int code, std::int64_t role = kRoleTableCell);
local::Label pyramid_label(const tm::TuringMachine& m, int r);

// Decoded label contents.
struct DecodedLabel {
  int r = 0;
  std::int64_t role = kRoleTableCell;
  bool is_cell() const { return role != kRolePyramid; }
  int xm3 = 0;
  int ym3 = 0;
  int code = 0;
  std::vector<std::int64_t> machine_encoding;
};
std::optional<DecodedLabel> decode_label(const local::Label& l);

struct GmrInstance {
  local::LabeledGraph graph;
  graph::NodeId pivot = 0;   // the table's start cell (0, 0)
  int table_side = 0;        // padded table is table_side x table_side
  long long halting_step = 0;
  std::size_t fragment_count = 0;
  unsigned long long exact_fragment_count = 0;  // DP count (pre-cap)
  bool fragments_exhaustive = false;
};

// Builds G(M, r). The machine must halt within params.step_budget.
GmrInstance build_gmr(const GmrParams& params);

// Low-level assembly from an explicit table and fragment collection; used
// by build_gmr and by the neighbourhood generator's prefix construction
// (which glues C to a table prefix of a possibly non-halting machine).
GmrInstance assemble_gmr(const tm::TuringMachine& m, int r,
                         const tm::ExecutionTable& table,
                         const tm::FragmentCollection& collection,
                         bool pyramidal);

// Property P = { G(M, r) : M outputs 0 } for instances built with the given
// structural parameters (k, policy, pyramidal). The oracle decodes M from
// the labels, rebuilds the expected instance, and compares size, label
// multiset, edge count — a reconstruction oracle adequate for the
// controlled experiment families (documented in docs/ARCHITECTURE.md).
std::unique_ptr<local::Property> property_gmr_outputs0(
    int fragment_size, tm::FragmentPolicy policy, bool pyramidal,
    long long step_budget);

}  // namespace locald::halting
