#include "halting/promise_halting.h"

#include <algorithm>

#include "graph/generators.h"
#include "support/format.h"
#include "tm/run.h"

namespace locald::halting {

namespace {

using local::BallView;
using local::Verdict;

std::optional<tm::TuringMachine> decode_cycle_label(const local::Label& l) {
  if (l.size() < 3 || l.at(0) != kPromiseHaltTag) {
    return std::nullopt;
  }
  try {
    return tm::TuringMachine::decode(
        std::vector<std::int64_t>(l.fields().begin() + 1, l.fields().end()));
  } catch (const Error&) {
    return std::nullopt;
  }
}

}  // namespace

local::LabeledGraph build_promise_halting_instance(
    const tm::TuringMachine& machine, graph::NodeId cycle_length) {
  std::vector<std::int64_t> fields{kPromiseHaltTag};
  const auto enc = machine.encode();
  fields.insert(fields.end(), enc.begin(), enc.end());
  return local::LabeledGraph::uniform(graph::make_cycle(cycle_length),
                                      local::Label(std::move(fields)));
}

std::unique_ptr<local::Property> promise_halting_property(
    long long oracle_budget) {
  return std::make_unique<local::LambdaProperty>(
      cat("promise-halting(budget=", oracle_budget, ")"),
      [oracle_budget](const local::LabeledGraph& g) {
        if (g.node_count() == 0) {
          return false;
        }
        const auto m = decode_cycle_label(g.label(0));
        if (!m.has_value()) {
          return false;
        }
        return !tm::run_machine(*m, oracle_budget).halted;
      });
}

std::unique_ptr<local::LocalAlgorithm> make_promise_halting_decider(
    long long sim_cap) {
  return local::make_id_aware(
      "decide-promise-halting", 0, [sim_cap](const BallView& ball) {
        const auto m = decode_cycle_label(ball.center_label());
        if (!m.has_value()) {
          return Verdict::no;
        }
        const long long budget = static_cast<long long>(std::min<local::Id>(
            ball.center_id() + 1, static_cast<local::Id>(sim_cap)));
        return tm::run_machine(*m, budget).halted ? Verdict::no
                                                  : Verdict::yes;
      });
}

std::unique_ptr<local::LocalAlgorithm> promise_halting_candidate(
    long long sim_budget) {
  return local::make_oblivious(
      cat("promise-candidate-", sim_budget), 0,
      [sim_budget](const BallView& ball) {
        const auto m = decode_cycle_label(ball.center_label());
        if (!m.has_value()) {
          return Verdict::no;
        }
        return tm::run_machine(*m, sim_budget).halted ? Verdict::no
                                                      : Verdict::yes;
      });
}

}  // namespace locald::halting
