// The Section-3 warm-up promise problem R on machine-labelled cycles.
//
// Instances are cycles whose constant label encodes a machine M; the
// promise guarantees n >= s whenever M halts in s steps. Yes iff M runs
// forever. With identifiers: a node simulates M for Id(v) + 1 steps; since
// ids are one-to-one, some node simulates at least n >= s steps and catches
// the halt. Without identifiers a decider would solve the halting problem;
// the bounded-budget candidates below are fooled by machines outlasting
// their budget.
#pragma once

#include <memory>

#include "local/algorithm.h"
#include "local/labeled_graph.h"
#include "local/property.h"
#include "tm/machine.h"

namespace locald::halting {

inline constexpr std::int64_t kPromiseHaltTag = 11;

// Cycle of the given length with every node labelled
// [kPromiseHaltTag, M-encoding...].
local::LabeledGraph build_promise_halting_instance(
    const tm::TuringMachine& machine, graph::NodeId cycle_length);

// yes iff the decoded machine does NOT halt within `oracle_budget` steps —
// the computable stand-in for "runs forever" (documented substitution; the
// experiment machines' ground truths are known).
std::unique_ptr<local::Property> promise_halting_property(
    long long oracle_budget);

// Id-aware horizon-0 decider: simulate for Id(v) + 1 steps (capped).
std::unique_ptr<local::LocalAlgorithm> make_promise_halting_decider(
    long long sim_cap = 1'000'000);

// Id-oblivious candidate with a fixed simulation budget.
std::unique_ptr<local::LocalAlgorithm> promise_halting_candidate(
    long long sim_budget);

}  // namespace locald::halting
