// Quadtree pyramids (Appendix A, Figure 3).
//
// The pyramid builders moved to graph/pyramid.h so the workload generator's
// `pyramid` family and the pyramidal G(M, r) assembly share one
// implementation; this header re-exports them under locald::halting for the
// Section-3 call sites that think of pyramids as part of the halting
// construction.
#pragma once

#include "graph/pyramid.h"

namespace locald::halting {

using graph::PyramidIndexer;

using graph::attach_pyramid;
using graph::build_pyramid;
using graph::is_pyramid;

}  // namespace locald::halting
