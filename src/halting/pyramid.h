// Quadtree pyramids (Appendix A, Figure 3).
//
// A pyramid over a 2^h x 2^h grid has levels z = 0..h; level z is a
// 2^{h-z} x 2^{h-z} grid graph, and each node (x, y, z) with z < h is
// additionally connected to its quadtree parent (x/2, y/2, z+1). Attaching
// the pyramid to an execution table makes the table's global structure
// locally checkable: every pyramid has a unique apex which fixes the
// geometry (the paper's step 2).
#pragma once

#include <cstdint>
#include <functional>

#include "graph/graph.h"

namespace locald::halting {

class PyramidIndexer {
 public:
  explicit PyramidIndexer(int h);

  int height() const { return h_; }
  int side(int z) const {
    LOCALD_CHECK(z >= 0 && z <= h_, "level out of range");
    return 1 << (h_ - z);
  }

  graph::NodeId node_count() const { return total_; }
  graph::NodeId id(int x, int y, int z) const;
  graph::NodeId apex() const { return id(0, 0, h_); }

  struct Position {
    int x = 0;
    int y = 0;
    int z = 0;
  };
  Position position(graph::NodeId v) const;

 private:
  int h_;
  std::vector<graph::NodeId> level_offset_;
  graph::NodeId total_ = 0;
};

// The full pyramid graph (levels 0..h with grid + parent edges).
graph::Graph build_pyramid(const PyramidIndexer& indexer);

// Adds pyramid levels 1..h on top of an existing 2^h x 2^h level-0 grid
// already present in `g` (node (x, y) at id base(x, y)). Returns the id of
// the first added node.
graph::NodeId attach_pyramid(graph::Graph& g, const PyramidIndexer& indexer,
                             const std::function<graph::NodeId(int, int)>& base);

// Exact structural oracle: is `g` the pyramid over a 2^h x 2^h grid?
bool is_pyramid(const graph::Graph& g, int h);

}  // namespace locald::halting
