#include "halting/verifier.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "support/format.h"
#include "tm/run.h"

namespace locald::halting {

namespace {

using local::BallView;
using local::Verdict;

enum class Relation { east, west, south, north, glue, invalid };

// Relation of the edge a->b. Edges between different grids (table vs
// fragment) are glue edges; edges within one grid must match a (mod 3)
// orientation pattern, otherwise the instance is malformed.
Relation classify(const DecodedLabel& a, const DecodedLabel& b) {
  if (a.role != b.role) {
    return Relation::glue;
  }
  if (a.ym3 == b.ym3) {
    if ((a.xm3 + 1) % 3 == b.xm3) return Relation::east;
    if ((b.xm3 + 1) % 3 == a.xm3) return Relation::west;
  }
  if (a.xm3 == b.xm3) {
    if ((a.ym3 + 1) % 3 == b.ym3) return Relation::south;
    if ((b.ym3 + 1) % 3 == a.ym3) return Relation::north;
  }
  return Relation::invalid;
}

struct ParsedBall {
  std::vector<std::optional<DecodedLabel>> labels;
  // position[v] = (dx, dy) relative to the centre within its grid component
  // (only nodes reachable from the centre via grid edges).
  std::map<graph::NodeId, std::pair<int, int>> position;
  std::map<std::pair<int, int>, graph::NodeId> at;
  std::vector<graph::NodeId> glue_partners_of_center;
  bool ok = false;
};

struct MachineCtx {
  tm::TuringMachine machine;
  std::unique_ptr<tm::LocalRules> rules;
  std::set<std::string> fragment_keys;
  int start_code = 0;
  bool valid = false;

  explicit MachineCtx(tm::TuringMachine m) : machine(std::move(m)) {}
};

bool is_pivot_like(const MachineCtx& ctx, const DecodedLabel& l) {
  return l.role == kRoleTableCell && l.code == ctx.start_code &&
         l.xm3 == 0 && l.ym3 == 0;
}

// Glue degree of `v` within the ball (edges with no valid grid relation).
int glue_degree(const BallView& ball, const ParsedBall& parsed, graph::NodeId v) {
  int count = 0;
  for (graph::NodeId w : ball.g.neighbors(v)) {
    const auto& lv = parsed.labels[static_cast<std::size_t>(v)];
    const auto& lw = parsed.labels[static_cast<std::size_t>(w)];
    if (!lv->is_cell() || !lw->is_cell()) {
      continue;
    }
    if (classify(*lv, *lw) == Relation::glue) {
      ++count;
    }
  }
  return count;
}

// BFS position assignment over grid edges starting from `origin`.
// Returns false on geometric inconsistency.
bool assign_positions(const BallView& ball, ParsedBall& parsed,
                      graph::NodeId origin) {
  parsed.position.clear();
  parsed.at.clear();
  std::vector<graph::NodeId> queue{origin};
  parsed.position[origin] = {0, 0};
  parsed.at[{0, 0}] = origin;
  std::size_t head = 0;
  while (head < queue.size()) {
    const graph::NodeId u = queue[head++];
    const auto [ux, uy] = parsed.position.at(u);
    const auto& lu = parsed.labels[static_cast<std::size_t>(u)];
    for (graph::NodeId w : ball.g.neighbors(u)) {
      const auto& lw = parsed.labels[static_cast<std::size_t>(w)];
      if (!lu->is_cell() || !lw->is_cell()) {
        continue;
      }
      const Relation rel = classify(*lu, *lw);
      if (rel == Relation::invalid) {
        return false;
      }
      if (rel == Relation::glue) {
        continue;
      }
      int wx = ux;
      int wy = uy;
      switch (rel) {
        case Relation::east: ++wx; break;
        case Relation::west: --wx; break;
        case Relation::south: ++wy; break;
        case Relation::north: --wy; break;
        case Relation::glue:
        case Relation::invalid: break;
      }
      const auto it = parsed.position.find(w);
      if (it != parsed.position.end()) {
        if (it->second != std::pair{wx, wy}) {
          return false;  // inconsistent geometry
        }
        continue;
      }
      const auto [slot, fresh] = parsed.at.emplace(std::pair{wx, wy}, w);
      if (!fresh) {
        return false;  // two cells at one position
      }
      parsed.position[w] = {wx, wy};
      queue.push_back(w);
    }
  }
  return true;
}

class GmrVerifier final : public local::LocalAlgorithm {
 public:
  GmrVerifier(int k, tm::FragmentPolicy policy, bool pyramidal,
              long long step_budget)
      : k_(k),
        policy_(policy),
        pyramidal_(pyramidal),
        step_budget_(step_budget) {
    LOCALD_CHECK(k_ >= 3, "fragment size must be >= 3");
  }

  std::string name() const override {
    return cat("verify-G(M,r)(k=", k_, pyramidal_ ? ",pyr" : "", ")");
  }
  int horizon() const override { return 2; }
  bool id_oblivious() const override { return true; }

  Verdict evaluate(const BallView& ball) const override {
    ParsedBall parsed;
    parsed.labels.resize(static_cast<std::size_t>(ball.node_count()));
    std::optional<std::vector<std::int64_t>> enc;
    int r = -1;
    for (graph::NodeId v = 0; v < ball.node_count(); ++v) {
      auto d = decode_label(ball.label(v));
      if (!d.has_value()) {
        return Verdict::no;
      }
      if (enc.has_value()) {
        if (d->machine_encoding != *enc || d->r != r) {
          return Verdict::no;  // step 1: everyone shares (M, r)
        }
      } else {
        enc = d->machine_encoding;
        r = d->r;
      }
      parsed.labels[static_cast<std::size_t>(v)] = std::move(d);
    }
    MachineCtx* ctx = context(*enc);
    if (ctx == nullptr || !ctx->valid) {
      return Verdict::no;
    }
    const auto& center_label =
        *parsed.labels[static_cast<std::size_t>(ball.center)];
    if (center_label.role == kRolePyramid) {
      // Appendix-A mode: pyramid structure is validated by the global
      // oracle; locally only the mode gate applies.
      return pyramidal_ ? Verdict::yes : Verdict::no;
    }
    if (!pyramidal_) {
      for (const auto& l : parsed.labels) {
        if (l->role == kRolePyramid) {
          return Verdict::no;
        }
      }
    }
    if (!assign_positions(ball, parsed, ball.center)) {
      return Verdict::no;
    }
    for (graph::NodeId w : ball.g.neighbors(ball.center)) {
      const auto& lw = parsed.labels[static_cast<std::size_t>(w)];
      if (center_label.is_cell() && lw->is_cell() &&
          classify(center_label, *lw) == Relation::glue) {
        parsed.glue_partners_of_center.push_back(w);
      }
    }
    const bool no_north = !parsed.at.contains({0, -1});
    const bool no_west = !parsed.at.contains({-1, 0});
    if (no_north && no_west && is_pivot_like(*ctx, center_label) &&
        parsed.glue_partners_of_center.size() >= 2) {
      return check_pivot(*ctx, ball, parsed);
    }
    return check_cell(*ctx, ball, parsed, center_label);
  }

 private:
  std::optional<int> code_at(const ParsedBall& parsed, int dx, int dy) const {
    const auto it = parsed.at.find({dx, dy});
    if (it == parsed.at.end()) {
      return std::nullopt;
    }
    return parsed.labels[static_cast<std::size_t>(it->second)]->code;
  }

  Verdict check_cell(const MachineCtx& ctx, const BallView& ball,
                     const ParsedBall& parsed,
                     const DecodedLabel& center) const {
    const tm::LocalRules& rules = *ctx.rules;
    const tm::TuringMachine& m = ctx.machine;
    const auto& glue = parsed.glue_partners_of_center;
    if (glue.size() > 1) {
      return Verdict::no;  // a border cell is glued to exactly one pivot
    }
    if (glue.size() == 1) {
      if (center.role != kRoleFragmentCell) {
        return Verdict::no;  // only fragment borders glue to the pivot
      }
      const auto& partner =
          *parsed.labels[static_cast<std::size_t>(glue[0])];
      if (!is_pivot_like(ctx, partner) ||
          glue_degree(ball, parsed, glue[0]) < 2) {
        return Verdict::no;
      }
    }
    const bool glued = !glue.empty();
    const auto n = code_at(parsed, 0, -1);
    const auto nw = code_at(parsed, -1, -1);
    const auto ne = code_at(parsed, 1, -1);
    const auto w = code_at(parsed, -1, 0);
    const auto e = code_at(parsed, 1, 0);
    // Rectangularity: a missing upper corner forces the matching side off.
    if (n.has_value()) {
      if (!nw.has_value() && w.has_value()) return Verdict::no;
      if (!ne.has_value() && e.has_value()) return Verdict::no;
      if (!nw.has_value() && !ne.has_value()) return Verdict::no;  // k >= 3
      if (nw.has_value() && ne.has_value()) {
        const auto expect = rules.next_cell(*nw, *n, *ne);
        if (!expect.has_value() || *expect != center.code) {
          return Verdict::no;
        }
      } else if (!nw.has_value()) {
        if (glued) {
          const auto allowed = rules.allowed_left_boundary(*n, *ne);
          if (!std::binary_search(allowed.begin(), allowed.end(),
                                  center.code)) {
            return Verdict::no;
          }
        } else {
          const auto expect = rules.next_cell_at_wall(*n, *ne);
          if (!expect.has_value() || *expect != center.code) {
            return Verdict::no;
          }
        }
      } else {  // ne missing
        if (glued) {
          const auto allowed = rules.allowed_right_boundary(*nw, *n);
          if (!std::binary_search(allowed.begin(), allowed.end(),
                                  center.code)) {
            return Verdict::no;
          }
        } else {
          const auto expect = rules.next_cell_natural_right(*nw, *n);
          if (!expect.has_value() || *expect != center.code) {
            return Verdict::no;
          }
        }
      }
    } else {
      // No row above: fragment top row (glued) or table row 0.
      if (!glued) {
        if (center.role != kRoleTableCell || center.ym3 != 0) {
          return Verdict::no;
        }
        const bool is_start = center.code == ctx.start_code &&
                              center.xm3 == 0 && !w.has_value();
        if (!is_start && center.code != m.plain_cell(0)) {
          return Verdict::no;
        }
      }
    }
    // No row below: natural bottom / frozen table bottom must be head-free
    // (halting heads allowed) unless the cell is glued.
    if (!parsed.at.contains({0, 1}) && !glued) {
      if (m.cell_has_head(center.code) &&
          !m.is_halting(m.cell_state(center.code))) {
        return Verdict::no;
      }
    }
    return Verdict::yes;
  }

  Verdict check_pivot(const MachineCtx& ctx, const BallView& ball,
                      const ParsedBall& parsed) const {
    const auto& glue = parsed.glue_partners_of_center;
    const std::set<graph::NodeId> glue_set(glue.begin(), glue.end());
    // Components of glued border cells, connected via grid edges among
    // themselves.
    std::map<graph::NodeId, int> component;
    int comp_count = 0;
    for (graph::NodeId s : glue) {
      if (component.contains(s)) {
        continue;
      }
      const int c = comp_count++;
      std::vector<graph::NodeId> queue{s};
      component[s] = c;
      std::size_t head = 0;
      while (head < queue.size()) {
        const graph::NodeId u = queue[head++];
        const auto& lu = parsed.labels[static_cast<std::size_t>(u)];
        for (graph::NodeId x : ball.g.neighbors(u)) {
          if (!glue_set.contains(x) || component.contains(x)) {
            continue;
          }
          const auto& lx = parsed.labels[static_cast<std::size_t>(x)];
          if (classify(*lu, *lx) == Relation::glue) {
            continue;
          }
          component[x] = c;
          queue.push_back(x);
        }
      }
    }
    std::set<std::string> seen;
    for (int c = 0; c < comp_count; ++c) {
      std::vector<graph::NodeId> members;
      for (const auto& [v, cc] : component) {
        if (cc == c) {
          members.push_back(v);
        }
      }
      const auto key = reconstruct_component(ctx, ball, parsed, members);
      if (!key.has_value()) {
        return Verdict::no;
      }
      seen.insert(*key);
    }
    // Lemma-2 comparison: the pivot must see exactly C(M, r).
    return seen == ctx.fragment_keys ? Verdict::yes : Verdict::no;
  }

  // Rebuilds one fragment from its glued border component; returns its key.
  std::optional<std::string> reconstruct_component(
      const MachineCtx& ctx, const BallView& ball, const ParsedBall& parsed,
      const std::vector<graph::NodeId>& members) const {
    // Positions relative to the component's own origin.
    ParsedBall sub;
    sub.labels = parsed.labels;
    if (!assign_positions(ball, sub, members[0])) {
      return std::nullopt;
    }
    // Restrict to the component members and normalize.
    std::map<std::pair<int, int>, int> codes;
    int min_x = 1 << 20;
    int min_y = 1 << 20;
    for (graph::NodeId v : members) {
      const auto it = sub.position.find(v);
      if (it == sub.position.end()) {
        return std::nullopt;  // members must be grid-connected
      }
      min_x = std::min(min_x, it->second.first);
      min_y = std::min(min_y, it->second.second);
    }
    for (graph::NodeId v : members) {
      const auto [x, y] = sub.position.at(v);
      codes[{x - min_x, y - min_y}] =
          parsed.labels[static_cast<std::size_t>(v)]->code;
    }
    // Shape: full top row, optional full side columns, optional bottom row.
    const int k = k_;
    std::vector<int> top(static_cast<std::size_t>(k));
    for (int x = 0; x < k; ++x) {
      const auto it = codes.find({x, 0});
      if (it == codes.end()) {
        return std::nullopt;
      }
      top[static_cast<std::size_t>(x)] = it->second;
    }
    const bool left = codes.contains({0, 1});
    const bool right = codes.contains({k - 1, 1});
    bool bottom = false;
    for (int x = 1; x + 1 < k; ++x) {
      bottom |= codes.contains({x, k - 1});
    }
    std::optional<std::vector<int>> left_col;
    std::optional<std::vector<int>> right_col;
    std::optional<std::vector<int>> bottom_row;
    std::size_t expected = static_cast<std::size_t>(k);
    if (left) {
      left_col.emplace();
      for (int y = 0; y < k; ++y) {
        const auto it = codes.find({0, y});
        if (it == codes.end()) {
          return std::nullopt;
        }
        left_col->push_back(it->second);
      }
      expected += static_cast<std::size_t>(k - 1);
    }
    if (right) {
      right_col.emplace();
      for (int y = 0; y < k; ++y) {
        const auto it = codes.find({k - 1, y});
        if (it == codes.end()) {
          return std::nullopt;
        }
        right_col->push_back(it->second);
      }
      expected += static_cast<std::size_t>(k - 1);
    }
    if (bottom) {
      if (!left && !right) {
        return std::nullopt;  // connectivity fix guarantees a side
      }
      bottom_row.emplace();
      for (int x = 0; x < k; ++x) {
        const auto it = codes.find({x, k - 1});
        if (it == codes.end()) {
          return std::nullopt;
        }
        bottom_row->push_back(it->second);
      }
      // Bottom adds its k cells minus the corners already counted in the
      // side columns.
      expected += static_cast<std::size_t>(k) - (left ? 1 : 0) -
                  (right ? 1 : 0);
    }
    if (codes.size() != expected) {
      return std::nullopt;  // stray cells outside the border shape
    }
    const auto fragment = tm::reconstruct_fragment(
        *ctx.rules, k, k, top, left_col, right_col, bottom_row);
    if (!fragment.has_value()) {
      return std::nullopt;
    }
    return fragment->key();
  }

  MachineCtx* context(const std::vector<std::int64_t>& enc) const {
    auto it = cache_.find(enc);
    if (it != cache_.end()) {
      return it->second.get();
    }
    std::unique_ptr<MachineCtx> ctx;
    try {
      tm::TuringMachine m = tm::TuringMachine::decode(enc);
      ctx = std::make_unique<MachineCtx>(std::move(m));
      ctx->rules = std::make_unique<tm::LocalRules>(ctx->machine);
      ctx->start_code =
          ctx->machine.head_cell(tm::TuringMachine::kStartState, 0);
      const tm::RunOutcome run =
          tm::run_machine(ctx->machine, step_budget_);
      if (run.halted) {
        const tm::ExecutionTable table = tm::ExecutionTable::build_padded_pow2(
            ctx->machine, step_budget_, std::max(4, k_));
        const tm::FragmentCollection col = tm::build_fragment_collection(
            ctx->machine, k_, policy_, {&table});
        for (const tm::Fragment& f : col.fragments) {
          ctx->fragment_keys.insert(f.key());
        }
        ctx->valid = true;
      }
    } catch (const Error&) {
      ctx = nullptr;
    }
    return cache_.emplace(enc, std::move(ctx)).first->second.get();
  }

  int k_;
  tm::FragmentPolicy policy_;
  bool pyramidal_;
  long long step_budget_;
  mutable std::map<std::vector<std::int64_t>, std::unique_ptr<MachineCtx>>
      cache_;
};

}  // namespace

std::unique_ptr<local::LocalAlgorithm> make_gmr_verifier(
    int fragment_size, tm::FragmentPolicy policy, bool pyramidal,
    long long step_budget) {
  return std::make_unique<GmrVerifier>(fragment_size, policy, pyramidal,
                                       step_budget);
}

}  // namespace locald::halting
