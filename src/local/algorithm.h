// Local algorithms and verdicts (Section 1.2 of the paper).
//
// A local algorithm with horizon t maps the ball (G, x, Id) |` B(v, t) to a
// verdict. `id_oblivious()` declares that the output must not depend on the
// identifier assignment; the simulator enforces the declaration by stripping
// identifiers from the ball before evaluation, so an "oblivious" algorithm
// cannot cheat even by accident.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "local/ball.h"
#include "support/rng.h"

namespace locald::local {

enum class Verdict { yes, no };

inline const char* to_string(Verdict v) {
  return v == Verdict::yes ? "yes" : "no";
}

class LocalAlgorithm {
 public:
  virtual ~LocalAlgorithm() = default;

  virtual std::string name() const = 0;
  virtual int horizon() const = 0;
  virtual bool id_oblivious() const = 0;

  // May the execution engine memoize this algorithm's verdicts per
  // canonical ball class (exec/verdict_cache.h)? True requires the verdict
  // to be a pure function of the ball's canonical encoding — deterministic
  // and invariant under ball-node renumbering. Algorithms whose answer can
  // depend on the concrete node numbering (e.g. the sampled Id-oblivious
  // simulation, which applies candidate id lists by node index) must
  // override this to false; the simulator then bypasses the cache.
  virtual bool memoization_safe() const { return true; }

  // `ball` has ids stripped iff id_oblivious().
  virtual Verdict evaluate(const BallView& ball) const = 0;
};

// Adapter for lambda-defined algorithms.
class LambdaAlgorithm final : public LocalAlgorithm {
 public:
  using Fn = std::function<Verdict(const BallView&)>;

  LambdaAlgorithm(std::string name, int horizon, bool oblivious, Fn fn)
      : name_(std::move(name)),
        horizon_(horizon),
        oblivious_(oblivious),
        fn_(std::move(fn)) {
    LOCALD_CHECK(horizon_ >= 0, "horizon must be non-negative");
    LOCALD_CHECK(static_cast<bool>(fn_), "algorithm function must be set");
  }

  std::string name() const override { return name_; }
  int horizon() const override { return horizon_; }
  bool id_oblivious() const override { return oblivious_; }
  Verdict evaluate(const BallView& ball) const override { return fn_(ball); }

 private:
  std::string name_;
  int horizon_;
  bool oblivious_;
  Fn fn_;
};

inline std::unique_ptr<LocalAlgorithm> make_oblivious(
    std::string name, int horizon, LambdaAlgorithm::Fn fn) {
  return std::make_unique<LambdaAlgorithm>(std::move(name), horizon, true,
                                           std::move(fn));
}

inline std::unique_ptr<LocalAlgorithm> make_id_aware(
    std::string name, int horizon, LambdaAlgorithm::Fn fn) {
  return std::make_unique<LambdaAlgorithm>(std::move(name), horizon, false,
                                           std::move(fn));
}

// Randomized local algorithm (Section 3.3): an unbounded random string per
// node, modelled as a per-node RNG stream.
class RandomizedLocalAlgorithm {
 public:
  virtual ~RandomizedLocalAlgorithm() = default;

  virtual std::string name() const = 0;
  virtual int horizon() const = 0;
  virtual bool id_oblivious() const = 0;

  virtual Verdict evaluate(const BallView& ball, Rng& coin) const = 0;
};

}  // namespace locald::local
