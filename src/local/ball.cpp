#include "local/ball.h"

#include <unordered_set>

#include "graph/algorithms.h"
#include "graph/induced.h"
#include "graph/isomorphism.h"
#include "support/hash.h"

namespace locald::local {

namespace {

void check_one_to_one(const std::vector<Id>& ids) {
  std::unordered_set<Id> seen;
  seen.reserve(ids.size());
  for (Id id : ids) {
    LOCALD_CHECK(seen.insert(id).second, "ball ids must be one-to-one");
  }
}

}  // namespace

BallView BallView::with_ids(const std::vector<Id>& new_ids) const {
  LOCALD_CHECK(new_ids.size() == static_cast<std::size_t>(g.node_count()),
               "one id per ball node");
  check_one_to_one(new_ids);
  BallView out = *this;
  out.ids = new_ids.data();
  return out;
}

std::string BallView::canonical_encoding() const {
  std::vector<std::string> payloads;
  payloads.reserve(static_cast<std::size_t>(g.node_count()));
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    std::string p = (v == center) ? "C" : "N";
    p += label(v).payload();
    if (ids != nullptr) {
      p += "#";
      p += std::to_string(ids[static_cast<std::size_t>(v)]);
    }
    payloads.push_back(std::move(p));
  }
  std::string enc = "r=" + std::to_string(radius) + ";";
  enc += graph::canonical_form(g, payloads).encoding;
  return enc;
}

std::uint64_t BallView::canonical_fingerprint() const {
  return hash_string(canonical_encoding());
}

Ball Ball::without_ids() const {
  Ball out = *this;
  out.ids.reset();
  return out;
}

Ball Ball::with_ids(std::vector<Id> new_ids) const {
  LOCALD_CHECK(new_ids.size() == static_cast<std::size_t>(g.node_count()),
               "one id per ball node");
  check_one_to_one(new_ids);
  Ball out = *this;
  out.ids = std::move(new_ids);
  return out;
}

Ball extract_ball(const LabeledGraph& g, const IdAssignment* ids,
                  graph::NodeId v, int radius) {
  if (ids != nullptr) {
    LOCALD_CHECK(ids->node_count() == g.node_count(),
                 "identifier assignment size mismatch");
  }
  const auto members = graph::nodes_within(g.graph(), v, radius);
  auto sub = graph::induced_subgraph(g.graph(), members);
  Ball ball;
  ball.g = std::move(sub.graph);
  ball.to_host = std::move(sub.to_parent);
  ball.center = sub.from_parent.at(v);
  ball.radius = radius;
  ball.labels.reserve(members.size());
  for (graph::NodeId host : ball.to_host) {
    ball.labels.push_back(g.label(host));
  }
  if (ids != nullptr) {
    std::vector<Id> ball_ids;
    ball_ids.reserve(members.size());
    for (graph::NodeId host : ball.to_host) {
      ball_ids.push_back(ids->of(host));
    }
    ball.ids = std::move(ball_ids);
  }
  return ball;
}

BallView BallScratch::extract(const LabeledGraph& g, const IdAssignment* ids,
                              graph::NodeId v, int radius) {
  if (ids != nullptr) {
    LOCALD_CHECK(ids->node_count() == g.node_count(),
                 "identifier assignment size mismatch");
  }
  const graph::BallSlice slice = scratch_.extract(g.graph().span(), v, radius);
  BallView out;
  out.g = slice.local;
  out.center = slice.center;
  out.radius = slice.radius;
  out.to_host = slice.to_host;
  out.host_labels = g.labels().data();
  if (ids != nullptr) {
    ids_.resize(static_cast<std::size_t>(slice.local.node_count()));
    for (graph::NodeId l = 0; l < slice.local.node_count(); ++l) {
      ids_[static_cast<std::size_t>(l)] =
          ids->of(slice.to_host[static_cast<std::size_t>(l)]);
    }
    out.ids = ids_.data();
  }
  return out;
}

}  // namespace locald::local
