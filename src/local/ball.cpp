#include "local/ball.h"

#include <unordered_set>

#include "graph/algorithms.h"
#include "graph/induced.h"
#include "graph/isomorphism.h"
#include "support/hash.h"

namespace locald::local {

Ball Ball::without_ids() const {
  Ball out = *this;
  out.ids.reset();
  return out;
}

Ball Ball::with_ids(std::vector<Id> new_ids) const {
  LOCALD_CHECK(new_ids.size() == static_cast<std::size_t>(g.node_count()),
               "one id per ball node");
  std::unordered_set<Id> seen;
  for (Id id : new_ids) {
    LOCALD_CHECK(seen.insert(id).second, "ball ids must be one-to-one");
  }
  Ball out = *this;
  out.ids = std::move(new_ids);
  return out;
}

std::string Ball::canonical_encoding() const {
  std::vector<std::string> payloads;
  payloads.reserve(static_cast<std::size_t>(g.node_count()));
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    std::string p = (v == center) ? "C" : "N";
    p += labels[static_cast<std::size_t>(v)].payload();
    if (ids.has_value()) {
      p += "#";
      p += std::to_string((*ids)[static_cast<std::size_t>(v)]);
    }
    payloads.push_back(std::move(p));
  }
  std::string enc = "r=" + std::to_string(radius) + ";";
  enc += graph::canonical_form(g, payloads).encoding;
  return enc;
}

std::uint64_t Ball::canonical_fingerprint() const {
  return hash_string(canonical_encoding());
}

Ball extract_ball(const LabeledGraph& g, const IdAssignment* ids,
                  graph::NodeId v, int radius) {
  if (ids != nullptr) {
    LOCALD_CHECK(ids->node_count() == g.node_count(),
                 "identifier assignment size mismatch");
  }
  const auto members = graph::nodes_within(g.graph(), v, radius);
  auto sub = graph::induced_subgraph(g.graph(), members);
  Ball ball;
  ball.g = std::move(sub.graph);
  ball.to_host = std::move(sub.to_parent);
  ball.center = sub.from_parent.at(v);
  ball.radius = radius;
  ball.labels.reserve(members.size());
  for (graph::NodeId host : ball.to_host) {
    ball.labels.push_back(g.label(host));
  }
  if (ids != nullptr) {
    std::vector<Id> ball_ids;
    ball_ids.reserve(members.size());
    for (graph::NodeId host : ball.to_host) {
      ball_ids.push_back(ids->of(host));
    }
    ball.ids = std::move(ball_ids);
  }
  return ball;
}

}  // namespace locald::local
