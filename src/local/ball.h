// Radius-t balls (G, x, Id) |` B(v, t) — the entire input of a local
// algorithm.
//
// A ball is the induced substructure on the nodes within distance t of the
// centre, carrying labels and (optionally) identifiers. Everything a local
// algorithm may legally depend on is in here; the simulator passes nothing
// else. An Id-oblivious algorithm receives a ball with the identifiers
// stripped, which makes obliviousness a property enforced by the framework
// rather than a promise of the algorithm author.
//
// Two representations share one read API:
//  - `BallView` is the type algorithms consume: a non-owning index slice —
//    a `CsrSpan` over scratch- or Ball-owned adjacency rows, a local->host
//    map, and borrowed label/id arrays. Views are a few words, copied
//    freely, and valid only while their backing storage (a
//    `local::BallScratch`, an owning `Ball`, or the id vector passed to
//    `with_ids`) is alive.
//  - `Ball` owns its storage (a `CsrGraph` plus label/id vectors); it is
//    what `extract_ball` returns when the caller needs the ball to outlive
//    the extraction (audits that hold two balls at once, the sync engine's
//    knowledge reconstruction, pre-extracted sampling loops). It converts
//    implicitly to `BallView`.
//
// `canonical_encoding` is a complete isomorphism invariant of the ball
// (centre distinguished, labels exact, ids exact when present): two balls
// get equal encodings iff a centre-, label- and id-preserving isomorphism
// exists. Id-oblivious indistinguishability arguments compare encodings of
// stripped balls.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "graph/ball_slice.h"
#include "graph/csr.h"
#include "local/identifiers.h"
#include "local/label.h"
#include "local/labeled_graph.h"

namespace locald::local {

struct BallView {
  graph::CsrSpan g;
  graph::NodeId center = 0;
  int radius = 0;
  // Host node behind each ball node (diagnostics; not visible to algorithms
  // through the canonical encoding). Null for balls reconstructed from
  // message-passing knowledge, which have no single host graph.
  const graph::NodeId* to_host = nullptr;
  // Exactly one of these is non-null: labels indexed by host id (zero-copy
  // views borrow the host graph's label array through `to_host`) or by
  // ball-local id (owning Balls).
  const Label* host_labels = nullptr;
  const Label* local_labels = nullptr;
  // Ball-local identifier array; null iff the ball is stripped.
  const Id* ids = nullptr;

  graph::NodeId node_count() const { return g.node_count(); }
  bool has_ids() const { return ids != nullptr; }

  const Label& label(graph::NodeId v) const {
    LOCALD_CHECK(v >= 0 && v < g.node_count(), "ball node out of range");
    return local_labels != nullptr
               ? local_labels[static_cast<std::size_t>(v)]
               : host_labels[static_cast<std::size_t>(
                     to_host[static_cast<std::size_t>(v)])];
  }

  Id id_of(graph::NodeId v) const {
    LOCALD_CHECK(has_ids(), "ball carries no identifiers");
    LOCALD_CHECK(v >= 0 && v < g.node_count(), "ball node out of range");
    return ids[static_cast<std::size_t>(v)];
  }

  Id center_id() const { return id_of(center); }
  const Label& center_label() const { return label(center); }

  graph::NodeId host_of(graph::NodeId v) const {
    LOCALD_CHECK(to_host != nullptr, "ball carries no host map");
    LOCALD_CHECK(v >= 0 && v < g.node_count(), "ball node out of range");
    return to_host[static_cast<std::size_t>(v)];
  }

  // Same ball with identifiers removed (a shallow view copy).
  BallView without_ids() const {
    BallView out = *this;
    out.ids = nullptr;
    return out;
  }

  // Same ball with identifiers replaced (used by the Id-oblivious
  // simulation A* to test alternative assignments). Sizes must match;
  // values must be one-to-one. The returned view BORROWS `new_ids`; the
  // caller keeps the vector alive (and unmoved) for the view's lifetime.
  BallView with_ids(const std::vector<Id>& new_ids) const;

  // Complete invariant; see file comment.
  std::string canonical_encoding() const;
  std::uint64_t canonical_fingerprint() const;
};

// Owning ball. Public members mirror the legacy struct so direct
// construction sites (sync engine, tests) carry over.
struct Ball {
  graph::CsrGraph g;
  std::vector<Label> labels;
  // Present iff the receiving algorithm may read identifiers.
  std::optional<std::vector<Id>> ids;
  graph::NodeId center = 0;
  int radius = 0;
  // Host node behind each ball node; empty when there is no host graph.
  std::vector<graph::NodeId> to_host;

  BallView view() const {
    BallView out;
    out.g = g.span();
    out.center = center;
    out.radius = radius;
    out.to_host = to_host.empty() ? nullptr : to_host.data();
    out.local_labels = labels.data();
    out.ids = ids.has_value() ? ids->data() : nullptr;
    return out;
  }
  operator BallView() const { return view(); }

  graph::NodeId node_count() const { return g.node_count(); }
  bool has_ids() const { return ids.has_value(); }

  const Label& label(graph::NodeId v) const {
    LOCALD_CHECK(v >= 0 && v < g.node_count(), "ball node out of range");
    return labels[static_cast<std::size_t>(v)];
  }

  Id id_of(graph::NodeId v) const {
    LOCALD_CHECK(has_ids(), "ball carries no identifiers");
    LOCALD_CHECK(v >= 0 && v < g.node_count(), "ball node out of range");
    return (*ids)[static_cast<std::size_t>(v)];
  }

  Id center_id() const { return id_of(center); }
  const Label& center_label() const { return label(center); }

  // Same ball with identifiers removed (owning copy).
  Ball without_ids() const;

  // Same ball with identifiers replaced (owning copy; validated).
  Ball with_ids(std::vector<Id> new_ids) const;

  std::string canonical_encoding() const { return view().canonical_encoding(); }
  std::uint64_t canonical_fingerprint() const {
    return view().canonical_fingerprint();
  }
};

// Extract (G, x) |` B(v, radius) as an owning ball; pass `ids` to include
// identifiers. Allocates per call — hot paths use a `BallScratch` instead.
Ball extract_ball(const LabeledGraph& g, const IdAssignment* ids,
                  graph::NodeId v, int radius);

// Reusable zero-copy extraction arena: a graph::BallScratch plus an id
// gather buffer. The returned view aliases this scratch and the host
// graph's label array, and is valid until the next extract() (or the
// scratch's destruction). One BallScratch per thread.
class BallScratch {
 public:
  BallView extract(const LabeledGraph& g, const IdAssignment* ids,
                   graph::NodeId v, int radius);

 private:
  graph::BallScratch scratch_;
  std::vector<Id> ids_;
};

}  // namespace locald::local
