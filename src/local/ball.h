// Radius-t balls (G, x, Id) |` B(v, t) — the entire input of a local
// algorithm.
//
// A `Ball` is the induced substructure on the nodes within distance t of the
// centre, carrying labels and (optionally) identifiers. Everything a local
// algorithm may legally depend on is in here; the simulator passes nothing
// else. An Id-oblivious algorithm receives a ball with the identifiers
// stripped, which makes obliviousness a property enforced by the framework
// rather than a promise of the algorithm author.
//
// `canonical_encoding` is a complete isomorphism invariant of the ball
// (centre distinguished, labels exact, ids exact when present): two balls
// get equal encodings iff a centre-, label- and id-preserving isomorphism
// exists. Id-oblivious indistinguishability arguments compare encodings of
// stripped balls.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "local/identifiers.h"
#include "local/label.h"
#include "local/labeled_graph.h"

namespace locald::local {

struct Ball {
  graph::Graph g;
  std::vector<Label> labels;
  // Present iff the receiving algorithm may read identifiers.
  std::optional<std::vector<Id>> ids;
  graph::NodeId center = 0;
  int radius = 0;
  // Host node behind each ball node (diagnostics; not visible to algorithms
  // through the canonical encoding).
  std::vector<graph::NodeId> to_host;

  graph::NodeId node_count() const { return g.node_count(); }
  bool has_ids() const { return ids.has_value(); }

  const Label& label(graph::NodeId v) const {
    LOCALD_CHECK(v >= 0 && v < g.node_count(), "ball node out of range");
    return labels[static_cast<std::size_t>(v)];
  }

  Id id_of(graph::NodeId v) const {
    LOCALD_CHECK(has_ids(), "ball carries no identifiers");
    LOCALD_CHECK(v >= 0 && v < g.node_count(), "ball node out of range");
    return (*ids)[static_cast<std::size_t>(v)];
  }

  Id center_id() const { return id_of(center); }
  const Label& center_label() const { return label(center); }

  // Same ball with identifiers removed.
  Ball without_ids() const;

  // Replace identifiers (used by the Id-oblivious simulation A* to test
  // alternative assignments). Sizes must match; values must be one-to-one.
  Ball with_ids(std::vector<Id> new_ids) const;

  // Complete invariant; see file comment.
  std::string canonical_encoding() const;
  std::uint64_t canonical_fingerprint() const;
};

// Extract (G, x) |` B(v, radius); pass `ids` to include identifiers.
Ball extract_ball(const LabeledGraph& g, const IdAssignment* ids,
                  graph::NodeId v, int radius);

}  // namespace locald::local
