#include "local/event_engine.h"

#include <algorithm>
#include <atomic>
#include <queue>
#include <tuple>

#include "graph/graph.h"
#include "obs/metrics.h"
#include "support/check.h"

namespace locald::local {

namespace {

// Process-wide counters bridged into the metrics registry on first use —
// the graph::canonicalization_counters() pattern. Handles are deliberately
// leaked: the counters live for the whole process.
std::atomic<std::uint64_t> g_events_dispatched{0};
std::atomic<std::uint64_t> g_messages_dropped{0};
std::atomic<std::uint64_t> g_messages_fragmented{0};
std::atomic<std::uint64_t> g_messages_delayed{0};
std::atomic<std::uint64_t> g_max_queue_depth{0};

void raise_max(std::atomic<std::uint64_t>& target, std::uint64_t candidate) {
  std::uint64_t seen = target.load(std::memory_order_relaxed);
  while (candidate > seen &&
         !target.compare_exchange_weak(seen, candidate,
                                       std::memory_order_relaxed)) {
  }
}

void ensure_event_metrics_registered() {
  static const bool once = [] {
    obs::Registry& reg = obs::registry();
    static std::vector<obs::MetricHandle> handles;
    handles.push_back(reg.counter_fn(
        "locald_event_engine_events_total",
        "Events dispatched by the event-driven message-passing runtime",
        [] { return g_events_dispatched.load(std::memory_order_relaxed); }));
    handles.push_back(reg.counter_fn(
        "locald_event_engine_dropped_total",
        "Messages lost after exhausting every transmission attempt",
        [] { return g_messages_dropped.load(std::memory_order_relaxed); }));
    handles.push_back(reg.counter_fn(
        "locald_event_engine_fragments_total",
        "Fragments sent for payloads split across events",
        [] { return g_messages_fragmented.load(std::memory_order_relaxed); }));
    handles.push_back(reg.counter_fn(
        "locald_event_engine_delayed_total",
        "Messages delivered after their synchronous-round slot",
        [] { return g_messages_delayed.load(std::memory_order_relaxed); }));
    handles.push_back(reg.gauge_fn(
        "locald_event_engine_max_queue_depth",
        "High-water mark of pending events across all runs",
        [] {
          return static_cast<double>(
              g_max_queue_depth.load(std::memory_order_relaxed));
        }));
    return true;
  }();
  (void)once;
}

// Stream-plane salts: distinct logical randomness planes under one seed.
// Each decision is keyed by (salted seed, directed arc, round/attempt/
// fragment index), never by engine state, so the draw a message gets is
// independent of delivery order.
constexpr std::uint64_t kDropPlane = 0xD20Full;
constexpr std::uint64_t kDelayPlane = 0xDE1A7ull;
constexpr std::uint64_t kFragPlane = 0xF2A6ull;

std::uint64_t attempt_index(int round, std::int64_t attempt) {
  return (static_cast<std::uint64_t>(round) << 8) |
         static_cast<std::uint64_t>(attempt);
}

std::uint64_t fragment_index(int round, std::int64_t attempt, std::int64_t i) {
  return (static_cast<std::uint64_t>(round) << 16) |
         (static_cast<std::uint64_t>(attempt) << 8) |
         static_cast<std::uint64_t>(i);
}

// A delivery fragment or (frag_total == 0) a definitive-loss notification
// resolving one inbox slot.
struct Event {
  std::uint64_t time = 0;
  std::uint64_t seq = 0;  // push order; breaks time ties deterministically
  graph::NodeId dst = 0;
  int port = 0;
  int round = 0;
  int frag_idx = 0;
  int frag_total = 0;
  std::string piece;
};

struct LaterFirst {
  bool operator()(const Event& a, const Event& b) const {
    return std::tie(a.time, a.seq) > std::tie(b.time, b.seq);
  }
};

// One inbox slot: (node, round, port). Resolves exactly once — with the
// reassembled payload, or empty on loss.
struct Slot {
  bool resolved = false;
  int pieces_received = 0;
  std::vector<std::string> pieces;  // engaged while reassembling
  std::string payload;
};

class Engine {
 public:
  Engine(const MessagePassingAlgorithm& alg, const LabeledGraph& g,
         const IdAssignment* ids, const FaultKnobs& knobs, std::uint64_t seed)
      : alg_(alg), g_(g), ids_(ids), knobs_(knobs), seed_(seed) {}

  EventRunResult run();

 private:
  const graph::CsrGraph& graph() const { return g_.graph(); }

  Slot& slot(graph::NodeId v, int round, int port) {
    const std::size_t deg = graph().neighbors(v).size();
    return slots_[static_cast<std::size_t>(v)]
                 [static_cast<std::size_t>(round) * deg +
                  static_cast<std::size_t>(port)];
  }

  // Port of node `u` in `v`'s inbox: the rank of `u` in v's (ascending)
  // neighbour list — the same ordering the sync engine's inbox uses.
  int port_of(graph::NodeId v, graph::NodeId u) const {
    const auto nbrs = graph().neighbors(v);
    const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), u);
    LOCALD_ASSERT(it != nbrs.end() && *it == u, "arc endpoints must be adjacent");
    return static_cast<int>(it - nbrs.begin());
  }

  void push(Event e) {
    e.seq = next_seq_++;
    queue_.push(std::move(e));
    stats_.max_queue_depth =
        std::max(stats_.max_queue_depth,
                 static_cast<std::uint64_t>(queue_.size()));
  }

  void send_round(graph::NodeId v, int round, std::uint64_t now);
  void advance(graph::NodeId v, std::uint64_t now);

  const MessagePassingAlgorithm& alg_;
  const LabeledGraph& g_;
  const IdAssignment* ids_;
  FaultKnobs knobs_;
  std::uint64_t seed_;

  std::vector<std::string> state_;
  std::vector<int> round_of_;
  std::vector<std::vector<Slot>> slots_;
  // Max resolution time seen per (node, round): a node that buffered
  // early-arriving future-round messages must not advance its clock into
  // the past when it finally reaches that round.
  std::vector<std::vector<std::uint64_t>> round_time_;
  std::priority_queue<Event, std::vector<Event>, LaterFirst> queue_;
  std::uint64_t next_seq_ = 0;
  EventStats stats_;
};

void Engine::send_round(graph::NodeId v, int round, std::uint64_t now) {
  const std::string msg =
      alg_.message(state_[static_cast<std::size_t>(v)], round);
  const std::uint64_t n = static_cast<std::uint64_t>(g_.node_count());
  for (graph::NodeId w : graph().neighbors(v)) {
    const std::uint64_t arc = static_cast<std::uint64_t>(v) * n +
                              static_cast<std::uint64_t>(w);
    const int port = port_of(w, v);
    ++stats_.messages_sent;

    // Transmission attempts: the first non-dropped attempt delivers.
    std::int64_t attempt = 0;
    bool delivered = false;
    for (; attempt < knobs_.attempts; ++attempt) {
      const bool drop =
          knobs_.loss_per_mille > 0 &&
          static_cast<std::int64_t>(
              Rng::stream(seed_ ^ kDropPlane, arc,
                          attempt_index(round, attempt))
                  .below(1000)) < knobs_.loss_per_mille;
      if (!drop) {
        delivered = true;
        break;
      }
    }
    stats_.retransmissions += static_cast<std::uint64_t>(
        delivered ? attempt : knobs_.attempts - 1);

    if (!delivered) {
      // The engine is omniscient: it knows after the last attempt's slot
      // that nothing will arrive, and resolves the slot as lost then.
      ++stats_.messages_dropped;
      Event e;
      e.time = now + static_cast<std::uint64_t>(knobs_.attempts);
      e.dst = w;
      e.port = port;
      e.round = round;
      e.frag_total = 0;  // loss notification
      push(std::move(e));
      continue;
    }

    const std::uint64_t delay =
        knobs_.delay_max > 0
            ? Rng::stream(seed_ ^ kDelayPlane, arc,
                          attempt_index(round, attempt))
                  .below(static_cast<std::uint64_t>(knobs_.delay_max) + 1)
            : 0;
    const std::uint64_t base =
        now + 1 + static_cast<std::uint64_t>(attempt) + delay;

    const int frags = static_cast<int>(std::max<std::int64_t>(
        1, knobs_.fragments));
    std::uint64_t completion = base;
    if (frags == 1) {
      Event e;
      e.time = base;
      e.dst = w;
      e.port = port;
      e.round = round;
      e.frag_total = 1;
      e.piece = msg;
      push(std::move(e));
    } else {
      // Balanced contiguous split; fragment 0 rides the base delay, later
      // fragments add their own jitter so reassembly completes at the max.
      const std::size_t len = msg.size();
      std::size_t offset = 0;
      for (int i = 0; i < frags; ++i) {
        const std::size_t piece_len =
            len / static_cast<std::size_t>(frags) +
            (static_cast<std::size_t>(i) <
                     len % static_cast<std::size_t>(frags)
                 ? 1
                 : 0);
        const std::uint64_t jitter =
            (i > 0 && knobs_.delay_max > 0)
                ? Rng::stream(seed_ ^ kFragPlane, arc,
                              fragment_index(round, attempt, i))
                      .below(static_cast<std::uint64_t>(knobs_.delay_max) + 1)
                : 0;
        Event e;
        e.time = base + jitter;
        e.dst = w;
        e.port = port;
        e.round = round;
        e.frag_idx = i;
        e.frag_total = frags;
        e.piece = msg.substr(offset, piece_len);
        completion = std::max(completion, e.time);
        push(std::move(e));
        offset += piece_len;
      }
      stats_.fragments_sent += static_cast<std::uint64_t>(frags);
    }
    ++stats_.messages_delivered;
    if (completion > now + 1) {
      ++stats_.messages_delayed;
    }
  }
}

void Engine::advance(graph::NodeId v, std::uint64_t now) {
  const std::size_t vi = static_cast<std::size_t>(v);
  const std::size_t deg = graph().neighbors(v).size();
  std::uint64_t t = now;
  while (round_of_[vi] < alg_.rounds()) {
    const int round = round_of_[vi];
    bool complete = true;
    for (std::size_t p = 0; p < deg && complete; ++p) {
      complete = slot(v, round, static_cast<int>(p)).resolved;
    }
    if (!complete) {
      return;
    }
    t = std::max(t, round_time_[vi][static_cast<std::size_t>(round)]);
    std::vector<std::string> inbox;
    inbox.reserve(deg);
    for (std::size_t p = 0; p < deg; ++p) {
      inbox.push_back(slot(v, round, static_cast<int>(p)).payload);
    }
    state_[vi] = alg_.update(state_[vi], inbox, round);
    ++round_of_[vi];
    if (round_of_[vi] < alg_.rounds()) {
      send_round(v, round_of_[vi], t);
    }
  }
}

EventRunResult Engine::run() {
  if (ids_ != nullptr) {
    LOCALD_CHECK(ids_->node_count() == g_.node_count(),
                 "identifier assignment size mismatch");
  }
  const graph::NodeId n = g_.node_count();
  const int rounds = alg_.rounds();
  state_.resize(static_cast<std::size_t>(n));
  round_of_.assign(static_cast<std::size_t>(n), 0);
  slots_.resize(static_cast<std::size_t>(n));
  round_time_.resize(static_cast<std::size_t>(n));
  for (graph::NodeId v = 0; v < n; ++v) {
    NodeView view;
    view.label = g_.label(v);
    if (ids_ != nullptr) {
      view.id = ids_->of(v);
    }
    view.degree = graph().degree(v);
    state_[static_cast<std::size_t>(v)] = alg_.init(view);
    const std::size_t deg = graph().neighbors(v).size();
    slots_[static_cast<std::size_t>(v)].resize(
        static_cast<std::size_t>(rounds) * deg);
    round_time_[static_cast<std::size_t>(v)].assign(
        static_cast<std::size_t>(rounds), 0);
  }

  // Round-0 sends happen at virtual time 0 in node-index order (the
  // deterministic analogue of "everyone starts at once").
  for (graph::NodeId v = 0; v < n && rounds > 0; ++v) {
    send_round(v, 0, 0);
  }
  // Isolated nodes have no inbox slots to wait for and run to completion.
  for (graph::NodeId v = 0; v < n; ++v) {
    advance(v, 0);
  }

  while (!queue_.empty()) {
    // The queue's top is const; moving the payload out requires the pop
    // dance. const_cast is safe: the element is removed immediately after.
    Event e = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    ++stats_.events_dispatched;
    Slot& s = slot(e.dst, e.round, e.port);
    LOCALD_ASSERT(!s.resolved, "inbox slot resolved twice");
    if (e.frag_total == 0) {
      s.resolved = true;  // lost: payload stays empty
    } else {
      if (s.pieces.empty()) {
        s.pieces.resize(static_cast<std::size_t>(e.frag_total));
      }
      s.pieces[static_cast<std::size_t>(e.frag_idx)] = std::move(e.piece);
      ++s.pieces_received;
      if (s.pieces_received == e.frag_total) {
        for (std::string& piece : s.pieces) {
          s.payload += piece;
        }
        s.pieces.clear();
        s.resolved = true;
      }
    }
    if (s.resolved) {
      auto& rt = round_time_[static_cast<std::size_t>(e.dst)];
      rt[static_cast<std::size_t>(e.round)] =
          std::max(rt[static_cast<std::size_t>(e.round)], e.time);
      if (e.round == round_of_[static_cast<std::size_t>(e.dst)]) {
        advance(e.dst, e.time);
      }
    }
  }

  for (graph::NodeId v = 0; v < n; ++v) {
    LOCALD_ASSERT(round_of_[static_cast<std::size_t>(v)] == rounds,
                  "event queue drained before every node finished");
  }

  EventRunResult result;
  result.verdicts.reserve(static_cast<std::size_t>(n));
  for (graph::NodeId v = 0; v < n; ++v) {
    result.verdicts.push_back(
        alg_.output(state_[static_cast<std::size_t>(v)]));
  }
  result.stats = stats_;

  // Feed the volatile process-wide surface; never read back into results.
  ensure_event_metrics_registered();
  g_events_dispatched.fetch_add(stats_.events_dispatched,
                                std::memory_order_relaxed);
  g_messages_dropped.fetch_add(stats_.messages_dropped,
                               std::memory_order_relaxed);
  g_messages_fragmented.fetch_add(stats_.fragments_sent,
                                  std::memory_order_relaxed);
  g_messages_delayed.fetch_add(stats_.messages_delayed,
                               std::memory_order_relaxed);
  raise_max(g_max_queue_depth, stats_.max_queue_depth);
  return result;
}

}  // namespace

EventRunResult run_event_driven(const MessagePassingAlgorithm& alg,
                                const LabeledGraph& g, const IdAssignment* ids,
                                const FaultProfileInstance& profile,
                                std::uint64_t seed) {
  Engine engine(alg, g, ids, profile.knobs(), seed);
  return engine.run();
}

EventRunResult run_via_event_engine(const LocalAlgorithm& alg,
                                    const LabeledGraph& g,
                                    const IdAssignment& ids,
                                    const FaultProfileInstance& profile,
                                    std::uint64_t seed) {
  // horizon + 1 rounds, as in run_via_message_passing: the extra round lets
  // distance-t nodes report their own adjacency before outputs.
  class Wrapper final : public MessagePassingAlgorithm {
   public:
    explicit Wrapper(const LocalAlgorithm& inner)
        : gather_(inner), inner_(&inner) {}
    std::string name() const override { return gather_.name(); }
    int rounds() const override { return inner_->horizon() + 1; }
    std::string init(const NodeView& v) const override {
      return gather_.init(v);
    }
    std::string message(const std::string& s, int r) const override {
      return gather_.message(s, r);
    }
    std::string update(const std::string& s,
                       const std::vector<std::string>& inbox,
                       int r) const override {
      return gather_.update(s, inbox, r);
    }
    Verdict output(const std::string& s) const override {
      return gather_.output(s);
    }

   private:
    FullInfoGather gather_;
    const LocalAlgorithm* inner_;
  };
  Wrapper wrapper(alg);
  return run_event_driven(wrapper, g, &ids, profile, seed);
}

EventEngineCounters event_engine_counters() {
  ensure_event_metrics_registered();
  EventEngineCounters out;
  out.events_dispatched = g_events_dispatched.load(std::memory_order_relaxed);
  out.messages_dropped = g_messages_dropped.load(std::memory_order_relaxed);
  out.messages_fragmented =
      g_messages_fragmented.load(std::memory_order_relaxed);
  out.messages_delayed = g_messages_delayed.load(std::memory_order_relaxed);
  out.max_queue_depth = g_max_queue_depth.load(std::memory_order_relaxed);
  return out;
}

}  // namespace locald::local
