// Event-driven message-passing runtime with seeded fault injection.
//
// `local/sync_engine` runs the LOCAL model's clean lockstep rounds. This
// engine runs the SAME algorithm interface over a discrete-event simulation
// instead: messages become events on a priority queue ordered by (virtual
// time, sequence number), and a fault profile (local/fault_profile.h) may
// delay, drop, retransmit, or fragment them in flight. Nodes progress in
// alpha-synchronizer style — a node applies its round-r update the moment
// every round-r inbox slot has resolved (payload delivered or definitively
// lost), buffering messages that arrive for future rounds — so the
// execution is asynchronous even though the algorithm is written in rounds.
//
// Determinism contract: the schedule is a pure function of
// (graph, algorithm, profile, seed).
//  - Every fault decision (drop per attempt, delay per message, jitter per
//    fragment) is drawn from a counter-based stream
//    `Rng::stream(seed ^ plane, arc, index(round, attempt))`, keyed by the
//    directed arc and the (round, attempt) pair — never from engine state —
//    so decisions are call-order-independent.
//  - The queue orders ties by a sequence number assigned at push time, and
//    one run is a single-threaded simulation, so pops are totally ordered.
//  - A lost message resolves its inbox slot to the empty string: the
//    algorithm sees a fixed-arity inbox (one slot per port, in port order)
//    with gaps, exactly the sync engine's shape.
// Under the `none` profile every message arrives at its synchronous slot
// and the engine reproduces `run_message_passing` verbatim (tested).
//
// EventStats is part of the deterministic result — it reports the simulated
// schedule, not wall-clock behaviour — so scenarios may print it in
// byte-gated documents. The engine also feeds process-wide obs/ counters
// (events dispatched, drops, fragments, delays, max queue depth) for the
// volatile metric surfaces; those never flow back into results.
#pragma once

#include <cstdint>
#include <vector>

#include "local/fault_profile.h"
#include "local/sync_engine.h"

namespace locald::local {

// Deterministic statistics of one simulated schedule.
struct EventStats {
  std::uint64_t events_dispatched = 0;   // queue pops
  std::uint64_t messages_sent = 0;       // one per (directed arc, round)
  std::uint64_t messages_delivered = 0;  // resolved with a payload
  std::uint64_t messages_dropped = 0;    // every attempt lost
  std::uint64_t messages_delayed = 0;    // delivered after the sync slot
  std::uint64_t fragments_sent = 0;      // pieces of split payloads
  std::uint64_t retransmissions = 0;     // attempts after the first
  std::uint64_t max_queue_depth = 0;     // high-water mark of pending events

  bool operator==(const EventStats&) const = default;
};

struct EventRunResult {
  std::vector<Verdict> verdicts;
  EventStats stats;
};

// Runs `alg.rounds()` rounds of `alg` on the event engine under `profile`.
// `ids` may be null for anonymous runs (as in run_message_passing).
EventRunResult run_event_driven(const MessagePassingAlgorithm& alg,
                                const LabeledGraph& g, const IdAssignment* ids,
                                const FaultProfileInstance& profile,
                                std::uint64_t seed);

// Convenience mirroring run_via_message_passing: full-information gathering
// for `alg` (horizon + 1 rounds) through the event engine. Under `none`
// this reproduces run_via_message_passing's verdicts exactly; under lossy
// profiles nodes decide on whatever partial ball knowledge got through.
EventRunResult run_via_event_engine(const LocalAlgorithm& alg,
                                    const LabeledGraph& g,
                                    const IdAssignment& ids,
                                    const FaultProfileInstance& profile,
                                    std::uint64_t seed);

// Process-wide event-engine counters, accumulated across every run in this
// process. Scheduling-dependent in aggregate (how many runs happened), so
// they belong to the volatile metric surfaces only — /v1/metrics and
// GET /metrics — like the canonicalization counters they mirror.
struct EventEngineCounters {
  std::uint64_t events_dispatched = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_fragmented = 0;
  std::uint64_t messages_delayed = 0;
  std::uint64_t max_queue_depth = 0;  // high-water mark across all runs
};

// Reading the counters also registers them with obs::registry() (idempotent),
// the same lazy-bridge pattern as graph::canonicalization_counters().
EventEngineCounters event_engine_counters();

}  // namespace locald::local
