#include "local/fault_profile.h"

#include "graph/graph.h"
#include "support/check.h"
#include "support/format.h"

namespace locald::local {

namespace {

// Knob builders. Each profile's schema fixes which knobs its parameters
// feed; everything it leaves out stays at the clean default.

FaultKnobs none_knobs(const std::vector<std::int64_t>& /*values*/) {
  return FaultKnobs{};
}

FaultKnobs delay_knobs(const std::vector<std::int64_t>& values) {
  FaultKnobs k;
  k.delay_max = values[0];
  return k;
}

FaultKnobs drop_knobs(const std::vector<std::int64_t>& values) {
  FaultKnobs k;
  k.loss_per_mille = values[0];
  k.attempts = values[1];
  return k;
}

FaultKnobs fragment_knobs(const std::vector<std::int64_t>& values) {
  FaultKnobs k;
  k.fragments = values[0];
  return k;
}

FaultKnobs chaos_knobs(const std::vector<std::int64_t>& values) {
  FaultKnobs k;
  k.delay_max = values[0];
  k.loss_per_mille = values[1];
  k.attempts = values[2];
  k.fragments = values[3];
  return k;
}

}  // namespace

FaultProfileSpec parse_fault_spec(const std::string& text) {
  FaultProfileSpec spec;
  const std::size_t colon = text.find(':');
  spec.profile = text.substr(0, colon);
  LOCALD_CHECK(!spec.profile.empty(),
               "fault selector needs a name, e.g. \"none\" or "
               "\"drop:per-mille=250,attempts=2\"");
  if (colon == std::string::npos) {
    return spec;
  }
  const std::string rest = text.substr(colon + 1);
  LOCALD_CHECK(!rest.empty(),
               cat("fault selector \"", text, "\" has a ':' but no k=v list"));
  std::size_t start = 0;
  while (start <= rest.size()) {
    std::size_t comma = rest.find(',', start);
    if (comma == std::string::npos) {
      comma = rest.size();
    }
    const std::string item = rest.substr(start, comma - start);
    const std::size_t eq = item.find('=');
    LOCALD_CHECK(eq != std::string::npos && eq > 0,
                 cat("fault parameter \"", item, "\" is not of the form k=v"));
    const std::string key = item.substr(0, eq);
    const auto value = parse_int(item.substr(eq + 1));
    LOCALD_CHECK(value.has_value(),
                 cat("fault parameter \"", item, "\" needs an integer value"));
    for (const auto& [existing, unused] : spec.params) {
      LOCALD_CHECK(existing != key,
                   cat("fault parameter \"", key, "\" given twice"));
    }
    spec.params.emplace_back(key, *value);
    start = comma + 1;
  }
  return spec;
}

FaultProfileInstance::FaultProfileInstance(const FaultProfile* profile,
                                           std::vector<std::int64_t> values)
    : profile_(profile), values_(std::move(values)) {
  LOCALD_ASSERT(profile_ != nullptr, "resolved spec needs a profile");
  LOCALD_ASSERT(values_.size() == profile_->params.size(),
                "one value required per profile parameter");
}

std::int64_t FaultProfileInstance::value(const std::string& param) const {
  const int index = profile_->param_index(param);
  LOCALD_ASSERT(index >= 0,
                cat("profile ", profile_->name, " has no parameter ", param));
  return values_[static_cast<std::size_t>(index)];
}

std::string FaultProfileInstance::canonical() const {
  std::string out = profile_->name;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    out += i == 0 ? ':' : ',';
    out += profile_->params[i].name;
    out += '=';
    out += std::to_string(values_[i]);
  }
  return out;
}

FaultKnobs FaultProfileInstance::knobs() const {
  return profile_->knobs(values_);
}

int FaultProfile::param_index(const std::string& param_name) const {
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i].name == param_name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

const std::vector<FaultProfile>& fault_registry() {
  // Parameter bounds keep one faulty run's event count polynomial in the
  // clean run's: delays and attempts add a bounded factor per message, and
  // fragmentation multiplies event counts by at most 16.
  static const std::vector<FaultProfile> registry = {
      {
          "none",
          "clean synchronous delivery (the event engine's control profile)",
          {},
          none_knobs,
      },
      {
          "delay",
          "per-hop delivery delay drawn uniformly from [0, max] per message",
          {{"max", 3, 1, 64,
            "upper bound on the extra delivery delay, in virtual time units"}},
          delay_knobs,
      },
      {
          "drop",
          "per-attempt probabilistic message loss with bounded retransmission",
          {{"per-mille", 200, 0, 1000,
            "drop probability per transmission attempt, in thousandths"},
           {"attempts", 3, 1, 16,
            "transmission attempts before the message is lost for good"}},
          drop_knobs,
      },
      {
          "fragment",
          "each delivered payload splits into pieces reassembled on arrival",
          {{"pieces", 3, 2, 16, "fragments per delivered message"}},
          fragment_knobs,
      },
      {
          "chaos",
          "delay + loss + fragmentation together (every knob active)",
          {{"delay", 2, 0, 64, "upper bound on the extra delivery delay"},
           {"per-mille", 125, 0, 1000,
            "drop probability per transmission attempt, in thousandths"},
           {"attempts", 4, 1, 16,
            "transmission attempts before the message is lost for good"},
           {"pieces", 2, 1, 16, "fragments per delivered message"}},
          chaos_knobs,
      },
  };
  return registry;
}

const FaultProfile* find_fault_profile(const std::string& name) {
  for (const FaultProfile& p : fault_registry()) {
    if (p.name == name) {
      return &p;
    }
  }
  return nullptr;
}

FaultProfileInstance resolve_faults(const FaultProfileSpec& spec) {
  const FaultProfile* profile = find_fault_profile(spec.profile);
  LOCALD_CHECK(profile != nullptr,
               cat("unknown fault profile \"", spec.profile,
                   "\" (see `locald list --faults`)"));
  std::vector<std::int64_t> values;
  values.reserve(profile->params.size());
  for (const FaultParamSpec& p : profile->params) {
    values.push_back(p.default_value);
  }
  for (const auto& [key, value] : spec.params) {
    const int index = profile->param_index(key);
    LOCALD_CHECK(index >= 0, cat("fault profile \"", profile->name,
                                 "\" has no parameter \"", key, "\""));
    values[static_cast<std::size_t>(index)] = value;
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    const FaultParamSpec& p = profile->params[i];
    LOCALD_CHECK(values[i] >= p.min_value && values[i] <= p.max_value,
                 cat("fault profile \"", profile->name, "\" parameter ",
                     p.name, " = ", values[i], " is outside [", p.min_value,
                     ", ", p.max_value, "]"));
  }
  return FaultProfileInstance(profile, std::move(values));
}

FaultProfileInstance resolve_faults_text(const std::string& text) {
  return resolve_faults(parse_fault_spec(text));
}

LabeledGraph mutate_label(const LabeledGraph& g, Rng& rng) {
  LabeledGraph out = g;
  const graph::NodeId v =
      static_cast<graph::NodeId>(rng.below(g.node_count()));
  Label l = out.label(v);
  std::vector<std::int64_t> fields = l.fields();
  if (fields.empty()) {
    fields.push_back(0);
  }
  const std::size_t i = rng.below(fields.size());
  fields[i] += rng.range(-3, 3) | 1;  // guaranteed non-zero delta
  out.set_label(v, Label(std::move(fields)));
  return out;
}

LabeledGraph mutate_add_edge(const LabeledGraph& g, Rng& rng) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const graph::NodeId u =
        static_cast<graph::NodeId>(rng.below(g.node_count()));
    const graph::NodeId v =
        static_cast<graph::NodeId>(rng.below(g.node_count()));
    if (u != v && !g.graph().has_edge(u, v)) {
      graph::GraphBuilder builder(g.node_count());
      for (const auto& [a, b] : g.graph().edges()) {
        builder.add_edge(a, b);
      }
      builder.add_edge(u, v);
      return LabeledGraph(builder.build(), g.labels());
    }
  }
  return g;
}

LabeledGraph mutate_swap_labels(const LabeledGraph& g, Rng& rng) {
  LabeledGraph out = g;
  const graph::NodeId u =
      static_cast<graph::NodeId>(rng.below(g.node_count()));
  const graph::NodeId v =
      static_cast<graph::NodeId>(rng.below(g.node_count()));
  const Label lu = out.label(u);
  out.set_label(u, out.label(v));
  out.set_label(v, lu);
  return out;
}

LabeledGraph mutate(const LabeledGraph& g, Rng& rng) {
  switch (rng.below(3)) {
    case 0: return mutate_label(g, rng);
    case 1: return mutate_add_edge(g, rng);
    default: return mutate_swap_labels(g, rng);
  }
}

}  // namespace locald::local
