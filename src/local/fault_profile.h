// Fault profiles: the registry of network-misbehaviour models the
// event-driven runtime (local/event_engine.h) injects into a message-passing
// execution.
//
// The paper's LOCAL model assumes clean synchronous rounds; the follow-up
// literature probes what survives under model perturbations. A fault
// profile is the network-side analogue of a graph family: a named,
// parameterized misbehaviour source with
//  - a parameter schema (names, defaults, valid ranges), and
//  - a resolved knob set (`FaultKnobs`) the event engine reads — per-hop
//    delay bound, per-attempt loss probability, bounded retransmission
//    attempts, and payload fragmentation.
//
// Determinism contract: a profile never draws randomness itself. The event
// engine draws every delay/loss/fragmentation decision from counter-based
// streams `Rng::stream(seed, plane, index)` keyed by (arc, round, attempt),
// so a faulty schedule is a pure function of (graph, algorithm, profile,
// seed) — call-order- and thread-count-independent like every other
// randomized artifact in locald.
//
// Selector syntax, shared by `--faults` and the JSON APIs (deliberately the
// `--family` grammar from gen/family.h):
//
//   <name>                      e.g. "drop"
//   <name>:<k>=<v>,<k>=<v>...   e.g. "drop:per-mille=250,attempts=2"
//
// `FaultProfileInstance::canonical()` re-encodes a resolved spec with every
// parameter spelled out in schema order.
//
// This header also hosts the structural/label mutation operators
// (mutate_label, mutate_add_edge, mutate_swap_labels) that the differential
// fault-injection tests originally defined privately; promoting them here
// makes "perturb an instance" a first-class library operation alongside
// "perturb the network".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "local/labeled_graph.h"
#include "support/rng.h"

namespace locald::local {

// One named integer parameter of a fault profile (the gen::ParamSpec shape;
// local/ cannot include gen/ — gen depends on local).
struct FaultParamSpec {
  std::string name;
  std::int64_t default_value = 0;
  std::int64_t min_value = 0;
  std::int64_t max_value = 0;
  std::string help;
};

// The resolved knob set the event engine consumes. The clean profile is the
// default-constructed value: no delay, no loss, one attempt, one fragment.
struct FaultKnobs {
  std::int64_t delay_max = 0;        // extra delivery delay in [0, delay_max]
  std::int64_t loss_per_mille = 0;   // per-attempt drop probability (x/1000)
  std::int64_t attempts = 1;         // transmission attempts per message
  std::int64_t fragments = 1;        // pieces a delivered payload splits into
};

class FaultProfile;

// A parsed (but not yet validated) `--faults` selector.
struct FaultProfileSpec {
  std::string profile;
  std::vector<std::pair<std::string, std::int64_t>> params;  // as written
};

// Parse the selector syntax above. Throws Error on malformed text
// (empty name, missing '=', non-integer value, duplicate key).
FaultProfileSpec parse_fault_spec(const std::string& text);

// A spec resolved against the registry: every schema parameter has a value.
class FaultProfileInstance {
 public:
  FaultProfileInstance(const FaultProfile* profile,
                       std::vector<std::int64_t> values);

  const FaultProfile& profile() const { return *profile_; }
  const std::vector<std::int64_t>& values() const { return values_; }
  std::int64_t value(const std::string& param) const;

  // Canonical encoding: "name:k=v,..." with every parameter in schema order.
  std::string canonical() const;

  FaultKnobs knobs() const;

 private:
  const FaultProfile* profile_;
  std::vector<std::int64_t> values_;
};

// A registered, parameterized fault profile.
class FaultProfile {
 public:
  using KnobsFn = FaultKnobs (*)(const std::vector<std::int64_t>& values);

  std::string name;
  std::string summary;
  std::vector<FaultParamSpec> params;
  KnobsFn knobs = nullptr;

  int param_index(const std::string& param_name) const;  // -1 when unknown
};

// The full registry, in presentation order: none, delay, drop, fragment,
// chaos (see fault_profile.cpp).
const std::vector<FaultProfile>& fault_registry();

// Lookup by name; nullptr when unknown.
const FaultProfile* find_fault_profile(const std::string& name);

// Validate `spec` against the registry and fill unset parameters with their
// defaults. Throws Error on unknown profile, unknown parameter, or
// out-of-range value.
FaultProfileInstance resolve_faults(const FaultProfileSpec& spec);

// parse + resolve in one step (the CLI/API entry point).
FaultProfileInstance resolve_faults_text(const std::string& text);

// --- Instance mutation operators ------------------------------------------
//
// Deterministic given the Rng state; used by the differential fault-
// injection tests and available to any robustness harness.

// Random single-field label perturbation (guaranteed non-zero delta).
LabeledGraph mutate_label(const LabeledGraph& g, Rng& rng);

// Random extra edge between two previously non-adjacent nodes; returns the
// input unchanged when 64 attempts find no non-adjacent pair.
LabeledGraph mutate_add_edge(const LabeledGraph& g, Rng& rng);

// Random label swap between two nodes (keeps the label multiset intact,
// breaks positional consistency).
LabeledGraph mutate_swap_labels(const LabeledGraph& g, Rng& rng);

// Uniformly random choice of the three operators above.
LabeledGraph mutate(const LabeledGraph& g, Rng& rng);

}  // namespace locald::local
