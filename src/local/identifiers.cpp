#include "local/identifiers.h"

#include <algorithm>
#include <unordered_set>

#include "support/check.h"

namespace locald::local {

IdAssignment::IdAssignment(std::vector<Id> ids) : ids_(std::move(ids)) {
  std::unordered_set<Id> seen;
  seen.reserve(ids_.size());
  for (Id id : ids_) {
    LOCALD_CHECK(seen.insert(id).second,
                 "identifier assignment must be one-to-one");
  }
}

Id IdAssignment::of(graph::NodeId v) const {
  LOCALD_CHECK(v >= 0 && v < node_count(), "node out of range");
  return ids_[static_cast<std::size_t>(v)];
}

Id IdAssignment::max_id() const {
  LOCALD_CHECK(!ids_.empty(), "empty assignment has no max id");
  return *std::max_element(ids_.begin(), ids_.end());
}

IdBound::IdBound(std::string name, std::function<Id(Id)> f)
    : name_(std::move(name)), f_(std::move(f)) {}

Id IdBound::inverse(Id i) const {
  // Smallest j with f(j) >= i. f is monotone, so gallop then bisect.
  if (f_(0) >= i) {
    return 0;
  }
  Id lo = 0;
  Id hi = 1;
  while (f_(hi) < i) {
    lo = hi;
    LOCALD_CHECK(hi < (Id{1} << 62), "IdBound::inverse overflow");
    hi *= 2;
  }
  while (lo + 1 < hi) {
    const Id mid = lo + (hi - lo) / 2;
    if (f_(mid) >= i) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

IdBound IdBound::linear_plus(Id k) {
  return IdBound("n+" + std::to_string(k),
                 [k](Id n) { return n + k; });
}

IdBound IdBound::scaled(Id c) {
  LOCALD_CHECK(c >= 1, "scale must be at least 1");
  return IdBound(std::to_string(c) + "n", [c](Id n) { return c * n; });
}

IdBound IdBound::quadratic() {
  return IdBound("n^2+1", [](Id n) { return n * n + 1; });
}

IdAssignment make_consecutive(graph::NodeId n) {
  std::vector<Id> ids(static_cast<std::size_t>(n));
  for (graph::NodeId v = 0; v < n; ++v) {
    ids[static_cast<std::size_t>(v)] = static_cast<Id>(v);
  }
  return IdAssignment(std::move(ids));
}

IdAssignment make_random_permutation(graph::NodeId n, Rng& rng) {
  std::vector<Id> ids(static_cast<std::size_t>(n));
  for (graph::NodeId v = 0; v < n; ++v) {
    ids[static_cast<std::size_t>(v)] = static_cast<Id>(v);
  }
  rng.shuffle(ids);
  return IdAssignment(std::move(ids));
}

IdAssignment make_random_bounded(graph::NodeId n, const IdBound& f, Rng& rng) {
  const Id universe = f(static_cast<Id>(n));
  LOCALD_CHECK(universe >= static_cast<Id>(n),
               "bound f(n) too small for a one-to-one assignment");
  return IdAssignment(rng.sample_distinct(universe,
                                          static_cast<std::size_t>(n)));
}

IdAssignment make_random_unbounded(graph::NodeId n, Id universe, Rng& rng) {
  LOCALD_CHECK(universe >= static_cast<Id>(n),
               "universe too small for a one-to-one assignment");
  return IdAssignment(rng.sample_distinct(universe,
                                          static_cast<std::size_t>(n)));
}

bool respects_bound(const IdAssignment& ids, const IdBound& f) {
  const Id limit = f(static_cast<Id>(ids.node_count()));
  for (Id id : ids.raw()) {
    if (id >= limit) {
      return false;
    }
  }
  return true;
}

}  // namespace locald::local
