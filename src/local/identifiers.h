// Identifier assignments Id : V(G) -> N and the bounded-identifier
// assumption (B).
//
// Under (B) there is a function f with Id(v) < f(n) on every n-node input;
// the paper's Section-2 separation hinges on identifiers leaking a lower
// bound on n precisely because f pins them down. `IdBound` carries such an f
// together with the inverse the paper writes f^{-1}(i) = min{ j : f(j) >= i }.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "support/rng.h"

namespace locald::local {

using Id = std::uint64_t;

// One-to-one identifier assignment for nodes [0, n).
class IdAssignment {
 public:
  IdAssignment() = default;
  explicit IdAssignment(std::vector<Id> ids);

  graph::NodeId node_count() const {
    return static_cast<graph::NodeId>(ids_.size());
  }

  Id of(graph::NodeId v) const;
  Id max_id() const;

  const std::vector<Id>& raw() const { return ids_; }

 private:
  std::vector<Id> ids_;
};

// The bound f of assumption (B). Monotone non-decreasing with f(n) >= n
// (any one-to-one assignment into [0, f(n)) needs at least n values).
class IdBound {
 public:
  IdBound(std::string name, std::function<Id(Id)> f);

  const std::string& name() const { return name_; }
  Id operator()(Id n) const { return f_(n); }

  // f^{-1}(i): smallest j with f(j) >= i; found by doubling + binary search.
  Id inverse(Id i) const;

  // f(n) = n + k. k = 1 is the tightest legal bound: ids are a permutation
  // of a subset of [0, n].
  static IdBound linear_plus(Id k);
  // f(n) = c * n.
  static IdBound scaled(Id c);
  // f(n) = n^2 + 1.
  static IdBound quadratic();

 private:
  std::string name_;
  std::function<Id(Id)> f_;
};

// ids 0..n-1 in node order — the minimal assignment.
IdAssignment make_consecutive(graph::NodeId n);

// ids 0..n-1 randomly permuted.
IdAssignment make_random_permutation(graph::NodeId n, Rng& rng);

// n distinct ids drawn uniformly from [0, f(n)) — assumption (B).
IdAssignment make_random_bounded(graph::NodeId n, const IdBound& f, Rng& rng);

// n distinct ids from [0, universe) for a large caller-chosen universe —
// the finite stand-in for assumption (¬B).
IdAssignment make_random_unbounded(graph::NodeId n, Id universe, Rng& rng);

// Does the assignment satisfy Id(v) < f(n)?
bool respects_bound(const IdAssignment& ids, const IdBound& f);

}  // namespace locald::local
