#include "local/indistinguishability.h"

#include "graph/isomorphism.h"
#include "local/simulator.h"
#include "support/hash.h"

namespace locald::local {

namespace {

// Census over the stripped radius-r balls of `g`, byte-compatible with
// Ball::canonical_encoding(): the census centre-marks ("C"/"N" prefixes)
// the label payloads exactly as Ball does, so prefixing the radius yields
// the identical encoding — and hence the identical fingerprint — that
// add_ball/contains compute one ball at a time.
std::vector<std::uint64_t> ball_fingerprints(const LabeledGraph& g, int radius,
                                             const exec::ExecContext& ctx) {
  std::vector<std::string> payloads;
  payloads.reserve(static_cast<std::size_t>(g.node_count()));
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    payloads.push_back(g.label(v).payload());
  }
  const graph::BallCensusResult census =
      graph::canonical_census(g.graph(), payloads, radius, ctx.pool);
  const std::string prefix = "r=" + std::to_string(radius) + ";";
  // Hash once per canonical class, then scatter to nodes.
  std::vector<std::uint64_t> class_fps;
  class_fps.reserve(census.class_encoding.size());
  for (const std::string& enc : census.class_encoding) {
    class_fps.push_back(hash_string(prefix + enc));
  }
  std::vector<std::uint64_t> fingerprints;
  fingerprints.reserve(census.class_of.size());
  for (const std::size_t cls : census.class_of) {
    fingerprints.push_back(class_fps[cls]);
  }
  return fingerprints;
}

}  // namespace

void BallProfile::add_graph(const LabeledGraph& g,
                            const exec::ExecContext& ctx) {
  for (const std::uint64_t fp : ball_fingerprints(g, radius_, ctx)) {
    fingerprints_.insert(fp);
    ++balls_seen_;
  }
}

void BallProfile::add_ball(const BallView& ball) {
  LOCALD_CHECK(!ball.has_ids(),
               "ball profiles aggregate Id-oblivious (stripped) balls");
  LOCALD_CHECK(ball.radius == radius_, "ball radius mismatch");
  fingerprints_.insert(ball.canonical_fingerprint());
  ++balls_seen_;
}

bool BallProfile::contains(const BallView& ball) const {
  LOCALD_CHECK(!ball.has_ids(), "profile queries use stripped balls");
  return contains(ball.canonical_fingerprint());
}

BallProfile BallProfile::of_graph(const LabeledGraph& g, int radius) {
  BallProfile profile(radius);
  profile.add_graph(g);
  return profile;
}

AuditResult audit_indistinguishability(const LabeledGraph& no_instance,
                                       const BallProfile& yes_profile,
                                       const exec::ExecContext& ctx,
                                       std::size_t max_witnesses) {
  AuditResult result;
  result.radius = yes_profile.radius();
  const std::vector<std::uint64_t> fps =
      ball_fingerprints(no_instance, yes_profile.radius(), ctx);
  std::unordered_set<std::uint64_t> seen;
  for (graph::NodeId v = 0; v < no_instance.node_count(); ++v) {
    const std::uint64_t fp = fps[static_cast<std::size_t>(v)];
    ++result.nodes_audited;
    seen.insert(fp);
    if (!yes_profile.contains(fp)) {
      ++result.missing;
      if (result.missing_witnesses.size() < max_witnesses) {
        result.missing_witnesses.push_back(v);
      }
    }
  }
  result.distinct_balls = seen.size();
  return result;
}

bool oblivious_accepts(const LocalAlgorithm& alg,
                       const LabeledGraph& instance) {
  return run_oblivious(alg, instance).accepted;
}

}  // namespace locald::local
