#include "local/indistinguishability.h"

#include "local/simulator.h"

namespace locald::local {

void BallProfile::add_graph(const LabeledGraph& g) {
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    const Ball ball = extract_ball(g, nullptr, v, radius_);
    add_ball(ball);
  }
}

void BallProfile::add_ball(const Ball& ball) {
  LOCALD_CHECK(!ball.has_ids(),
               "ball profiles aggregate Id-oblivious (stripped) balls");
  LOCALD_CHECK(ball.radius == radius_, "ball radius mismatch");
  fingerprints_.insert(ball.canonical_fingerprint());
  ++balls_seen_;
}

bool BallProfile::contains(const Ball& ball) const {
  LOCALD_CHECK(!ball.has_ids(), "profile queries use stripped balls");
  return contains(ball.canonical_fingerprint());
}

BallProfile BallProfile::of_graph(const LabeledGraph& g, int radius) {
  BallProfile profile(radius);
  profile.add_graph(g);
  return profile;
}

AuditResult audit_indistinguishability(const LabeledGraph& no_instance,
                                       const BallProfile& yes_profile,
                                       std::size_t max_witnesses) {
  AuditResult result;
  result.radius = yes_profile.radius();
  std::unordered_set<std::uint64_t> seen;
  for (graph::NodeId v = 0; v < no_instance.node_count(); ++v) {
    const Ball ball =
        extract_ball(no_instance, nullptr, v, yes_profile.radius());
    const std::uint64_t fp = ball.canonical_fingerprint();
    ++result.nodes_audited;
    seen.insert(fp);
    if (!yes_profile.contains(fp)) {
      ++result.missing;
      if (result.missing_witnesses.size() < max_witnesses) {
        result.missing_witnesses.push_back(v);
      }
    }
  }
  result.distinct_balls = seen.size();
  return result;
}

bool oblivious_accepts(const LocalAlgorithm& alg,
                       const LabeledGraph& instance) {
  return run_oblivious(alg, instance).accepted;
}

}  // namespace locald::local
