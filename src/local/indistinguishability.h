// Ball profiles and the indistinguishability auditor.
//
// An Id-oblivious algorithm with horizon t is a function of the canonical
// class of the stripped ball. Hence, if every radius-t ball of a no-instance
// N already occurs in some yes-instance, then any Id-oblivious t-algorithm
// that accepts all those yes-instances must also accept N: each node of N
// sees a ball on which the algorithm is forced to answer yes. This is the
// engine behind both of the paper's lower bounds (Section 2 directly;
// Section 3 via the neighbourhood generator).
//
// `BallProfile` aggregates canonical fingerprints of stripped balls over an
// instance family, built incrementally so that families too large to hold in
// memory (e.g. all of H_r) can be streamed.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "exec/context.h"
#include "local/algorithm.h"
#include "local/labeled_graph.h"

namespace locald::local {

class BallProfile {
 public:
  explicit BallProfile(int radius) : radius_(radius) {
    LOCALD_CHECK(radius >= 0, "radius must be non-negative");
  }

  int radius() const { return radius_; }

  // Adds the stripped ball of every node of `g`, routed through the bulk
  // census (graph/isomorphism.h) — isomorphic balls canonicalize once, and
  // canonicalizations fan over `ctx.pool` when one is set. Fingerprints are
  // identical to per-ball add_ball at any thread count.
  void add_graph(const LabeledGraph& g, const exec::ExecContext& ctx = {});

  // Adds one ball (must be stripped and of matching radius).
  void add_ball(const BallView& ball);

  bool contains(std::uint64_t fingerprint) const {
    return fingerprints_.contains(fingerprint);
  }

  bool contains(const BallView& ball) const;

  std::size_t distinct_balls() const { return fingerprints_.size(); }
  std::size_t balls_seen() const { return balls_seen_; }

  static BallProfile of_graph(const LabeledGraph& g, int radius);

 private:
  int radius_;
  std::unordered_set<std::uint64_t> fingerprints_;
  std::size_t balls_seen_ = 0;
};

struct AuditResult {
  int radius = 0;
  std::size_t nodes_audited = 0;
  std::size_t distinct_balls = 0;
  std::size_t missing = 0;  // balls of the no-instance absent from the profile
  std::vector<graph::NodeId> missing_witnesses;  // up to a few host nodes

  // True certifies: no Id-oblivious algorithm with this horizon can both
  // accept every instance contributing to the profile and reject the
  // audited no-instance.
  bool indistinguishable() const { return missing == 0; }
};

// Checks whether every radius-(profile.radius()) ball of `no_instance`
// occurs in `yes_profile`. The no-instance census runs on `ctx.pool` when
// one is set; results are identical at any thread count.
AuditResult audit_indistinguishability(const LabeledGraph& no_instance,
                                       const BallProfile& yes_profile,
                                       const exec::ExecContext& ctx = {},
                                       std::size_t max_witnesses = 5);

// Runs the oblivious algorithm on the no-instance and reports whether it
// (incorrectly, given a successful audit) accepts. Convenience for
// experiments that pair the audit with a concrete candidate decider.
bool oblivious_accepts(const LocalAlgorithm& alg,
                       const LabeledGraph& instance);

}  // namespace locald::local
