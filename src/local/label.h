// Node labels ("local inputs" x(v) in the paper).
//
// A label is a short tuple of signed 64-bit fields. Every construction in
// the paper encodes its per-node input this way: Section 2 uses (r, x, y)
// tree coordinates, Section 3 packs a Turing-machine description, grid
// orientation bits and tape-cell contents. Labels compare exactly — the
// canonical-form machinery embeds their bytes verbatim, so two distinct
// labels can never collide in an indistinguishability audit.
#pragma once

#include <compare>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "support/check.h"
#include "support/hash.h"

namespace locald::local {

class Label {
 public:
  Label() = default;
  explicit Label(std::vector<std::int64_t> fields)
      : fields_(std::move(fields)) {}
  Label(std::initializer_list<std::int64_t> fields) : fields_(fields) {}

  const std::vector<std::int64_t>& fields() const { return fields_; }
  std::size_t size() const { return fields_.size(); }
  bool empty() const { return fields_.empty(); }

  std::int64_t at(std::size_t i) const {
    LOCALD_CHECK(i < fields_.size(), "label field index out of range");
    return fields_[i];
  }

  void push(std::int64_t v) { fields_.push_back(v); }

  bool operator==(const Label&) const = default;
  auto operator<=>(const Label&) const = default;

  // Human-readable and unambiguous: "(1,-2,3)".
  std::string to_string() const {
    std::string s = "(";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) s += ",";
      s += std::to_string(fields_[i]);
    }
    s += ")";
    return s;
  }

  // Byte payload for canonical encodings; the fixed grammar makes distinct
  // field vectors produce distinct payloads.
  std::string payload() const { return to_string(); }

  std::uint64_t hash() const { return hash_i64_vector(fields_); }

 private:
  std::vector<std::int64_t> fields_;
};

struct LabelHasher {
  std::size_t operator()(const Label& l) const {
    return static_cast<std::size_t>(l.hash());
  }
};

}  // namespace locald::local
