// A labelled graph (G, x): the paper's instances.
#pragma once

#include <string>
#include <vector>

#include "graph/csr.h"
#include "graph/isomorphism.h"
#include "local/label.h"

namespace locald::local {

class LabeledGraph {
 public:
  LabeledGraph() = default;

  // All labels default-initialized to the empty label.
  explicit LabeledGraph(graph::CsrGraph g)
      : g_(std::move(g)),
        labels_(static_cast<std::size_t>(g_.node_count())) {}

  LabeledGraph(graph::CsrGraph g, std::vector<Label> labels)
      : g_(std::move(g)), labels_(std::move(labels)) {
    LOCALD_CHECK(labels_.size() == static_cast<std::size_t>(g_.node_count()),
                 "one label required per node");
  }

  // Every node labelled `l`.
  static LabeledGraph uniform(graph::CsrGraph g, const Label& l) {
    LabeledGraph out(std::move(g));
    for (auto& lab : out.labels_) {
      lab = l;
    }
    return out;
  }

  const graph::CsrGraph& graph() const { return g_; }
  graph::NodeId node_count() const { return g_.node_count(); }

  const Label& label(graph::NodeId v) const {
    LOCALD_CHECK(v >= 0 && v < g_.node_count(), "node out of range");
    return labels_[static_cast<std::size_t>(v)];
  }

  void set_label(graph::NodeId v, Label l) {
    LOCALD_CHECK(v >= 0 && v < g_.node_count(), "node out of range");
    labels_[static_cast<std::size_t>(v)] = std::move(l);
  }

  const std::vector<Label>& labels() const { return labels_; }

  std::vector<std::string> label_payloads() const {
    std::vector<std::string> out;
    out.reserve(labels_.size());
    for (const auto& l : labels_) {
      out.push_back(l.payload());
    }
    return out;
  }

  // Label-preserving isomorphism — the equivalence defining labelled graph
  // properties in Section 1.2.
  friend bool isomorphic(const LabeledGraph& a, const LabeledGraph& b) {
    return graph::isomorphic(a.g_.span(), a.label_payloads(), b.g_.span(),
                             b.label_payloads());
  }

 private:
  graph::CsrGraph g_;
  std::vector<Label> labels_;
};

}  // namespace locald::local
