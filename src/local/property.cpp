#include "local/property.h"

#include "support/format.h"

namespace locald::local {

IdPolicy consecutive_policy() {
  return [](graph::NodeId n, Rng&) { return make_consecutive(n); };
}

IdPolicy bounded_policy(IdBound f) {
  return [f = std::move(f)](graph::NodeId n, Rng& rng) {
    return make_random_bounded(n, f, rng);
  };
}

IdPolicy unbounded_policy(Id universe) {
  return [universe](graph::NodeId n, Rng& rng) {
    return make_random_unbounded(n, universe, rng);
  };
}

DeciderReport evaluate_decider(const LocalAlgorithm& alg,
                               const Property& property,
                               const std::vector<LabeledGraph>& instances,
                               const IdPolicy& policy,
                               int assignments_per_instance, Rng& rng) {
  LOCALD_CHECK(assignments_per_instance >= 1,
               "need at least one assignment per instance");
  DeciderReport report;
  report.algorithm = alg.name();
  report.property = property.name();
  report.instances = static_cast<int>(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const LabeledGraph& inst = instances[i];
    const bool member = property.contains(inst);
    for (int a = 0; a < assignments_per_instance; ++a) {
      const IdAssignment ids = policy(inst.node_count(), rng);
      ++report.evaluations;
      const RunResult run = run_local_algorithm(alg, inst, ids);
      if (run.accepted != member) {
        DeciderFailure f;
        f.instance_index = i;
        f.expected_member = member;
        f.accepted = run.accepted;
        f.detail = cat("instance ", i, " (n=", inst.node_count(), "): ",
                       member ? "yes-instance rejected" :
                                "no-instance accepted",
                       run.first_rejecting.has_value()
                           ? cat(" (first rejecting node ",
                                 *run.first_rejecting, ")")
                           : std::string());
        report.failures.push_back(std::move(f));
      }
    }
  }
  return report;
}

}  // namespace locald::local
