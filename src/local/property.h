// Labelled graph properties and the decider-evaluation harness.
//
// A `Property` is the global ground truth ("is (G, x) in P?"). The harness
// runs a candidate local decider against instance families under an
// identifier policy and reports completeness (all yes-instances accepted
// under every tried assignment) and soundness (all no-instances rejected).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "local/algorithm.h"
#include "local/simulator.h"

namespace locald::local {

class Property {
 public:
  virtual ~Property() = default;
  virtual std::string name() const = 0;
  virtual bool contains(const LabeledGraph& instance) const = 0;
};

class LambdaProperty final : public Property {
 public:
  using Fn = std::function<bool(const LabeledGraph&)>;

  LambdaProperty(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  std::string name() const override { return name_; }
  bool contains(const LabeledGraph& instance) const override {
    return fn_(instance);
  }

 private:
  std::string name_;
  Fn fn_;
};

// Produces the identifier assignment(s) a decider is evaluated under.
using IdPolicy = std::function<IdAssignment(graph::NodeId n, Rng& rng)>;

IdPolicy consecutive_policy();
IdPolicy bounded_policy(IdBound f);
IdPolicy unbounded_policy(Id universe);

struct DeciderFailure {
  std::size_t instance_index = 0;
  bool expected_member = false;
  bool accepted = false;
  std::string detail;
};

struct DeciderReport {
  std::string algorithm;
  std::string property;
  int instances = 0;
  int evaluations = 0;  // instances x assignments
  std::vector<DeciderFailure> failures;

  bool all_correct() const { return failures.empty(); }
};

// Checks the decision rule of Section 1.2 on every instance:
// member => accepted under every assignment; non-member => rejected under
// every assignment.
DeciderReport evaluate_decider(const LocalAlgorithm& alg,
                               const Property& property,
                               const std::vector<LabeledGraph>& instances,
                               const IdPolicy& policy,
                               int assignments_per_instance, Rng& rng);

}  // namespace locald::local
