#include "local/simulator.h"

#include <atomic>

#include "obs/trace.h"
#include "support/hash.h"

namespace locald::local {

namespace {

// Tag keeping probe_id_dependence's per-trial id-assignment streams disjoint
// from the (trial, node) coin streams of estimate_acceptance under one seed.
constexpr std::uint64_t kProbeIdStreamTag = 0x70726f6265ULL;  // "probe"

// Hub balls above this size bypass the cache. Class-keying costs
// Ω(ball bytes) per ball while the probability of meeting an isomorphic
// ball collapses as balls grow (a high-degree hub drags its whole
// neighbourhood — labels and all — into every nearby ball, and such balls
// are nearly always unique). Measured on fig2-gmr: the pivot's ~2400-node
// radius-2 balls cost ~4ms each to encode against sub-millisecond
// verifier evaluations at a ~0% hit rate, while the graph's thousands of
// small grid-cell balls encode in microseconds and do repeat. The cap is
// a pure function of the ball, so memoized == unmemoized still holds at
// every thread count.
constexpr graph::NodeId kMemoBallCap = 256;

// Evaluate through the memoization cache when one is wired up. The cache key
// is the ball's full canonical encoding (the fingerprint only picks the
// shard), so a fingerprint collision can never smuggle in a wrong verdict.
// Hashing the already-computed encoding equals canonical_fingerprint() by
// definition while canonicalizing only once.
Verdict decide_ball(const LocalAlgorithm& alg, const std::string& alg_name,
                    const BallView& ball, exec::VerdictCache* cache) {
  if (cache == nullptr || !alg.memoization_safe() ||
      ball.node_count() > kMemoBallCap) {
    return alg.evaluate(ball);
  }
  const std::string encoding = ball.canonical_encoding();
  const std::uint64_t fingerprint = hash_string(encoding);
  if (const auto hit = cache->lookup(fingerprint, alg_name, encoding)) {
    return *hit ? Verdict::yes : Verdict::no;
  }
  const Verdict out = alg.evaluate(ball);
  cache->insert(fingerprint, alg_name, encoding, out == Verdict::yes);
  return out;
}

int run_radius(const LocalAlgorithm& alg, const RunOptions& options) {
  const int r = options.radius.value_or(alg.horizon());
  LOCALD_CHECK(r >= 0, "visibility radius must be non-negative");
  return r;
}

RunResult run_impl(const LocalAlgorithm& alg, const LabeledGraph& g,
                   const IdAssignment* ids, const RunOptions& options) {
  RunResult result;
  const std::size_t n = static_cast<std::size_t>(g.node_count());
  result.outputs.assign(n, Verdict::yes);
  const std::string alg_name = options.exec.cache != nullptr ? alg.name() : "";
  // An Id-oblivious algorithm never sees ids: skip gathering them at all
  // instead of stripping afterwards.
  const IdAssignment* visible_ids = alg.id_oblivious() ? nullptr : ids;
  const int radius = run_radius(alg, options);
  // One stage span for the whole node loop: extraction + canonical-encoding
  // memo keys + evaluation. Per-ball spans would swamp the trace at 10^6
  // nodes, so the inner pipeline is visible via the census/workload spans.
  obs::Span span("local-run", alg.name());
  options.exec.for_each(n, [&](std::size_t i) {
    // One extraction arena per worker thread, reused across all nodes that
    // thread processes. Nested parallel_for runs inline on the calling
    // worker, so no second extraction can interleave with a live view.
    static thread_local BallScratch scratch;
    const auto v = static_cast<graph::NodeId>(i);
    const BallView ball = scratch.extract(g, visible_ids, v, radius);
    result.outputs[i] = decide_ball(alg, alg_name, ball, options.exec.cache);
  });
  // Scheduling-independent reduction: node order, after every slot is final.
  for (std::size_t i = 0; i < n; ++i) {
    if (result.outputs[i] == Verdict::no) {
      result.accepted = false;
      result.first_rejecting = static_cast<graph::NodeId>(i);
      break;
    }
  }
  return result;
}

}  // namespace

RunResult run_local_algorithm(const LocalAlgorithm& alg, const LabeledGraph& g,
                              const IdAssignment& ids,
                              const RunOptions& options) {
  LOCALD_CHECK(ids.node_count() == g.node_count(),
               "identifier assignment size mismatch");
  return run_impl(alg, g, &ids, options);
}

RunResult run_oblivious(const LocalAlgorithm& alg, const LabeledGraph& g,
                        const RunOptions& options) {
  LOCALD_CHECK(alg.id_oblivious(),
               "run_oblivious requires an Id-oblivious algorithm");
  return run_impl(alg, g, nullptr, options);
}

bool accepts(const LocalAlgorithm& alg, const LabeledGraph& g,
             const IdAssignment& ids) {
  return run_local_algorithm(alg, g, ids).accepted;
}

IdDependenceProbe probe_id_dependence(const LocalAlgorithm& alg,
                                      const LabeledGraph& g, Id universe,
                                      int trials, const RunOptions& options) {
  LOCALD_CHECK(trials >= 2, "need at least two assignments to compare");
  IdDependenceProbe probe;
  probe.trials = trials;
  const auto run_trial = [&](int t) {
    // Each trial's assignment comes from its own counter stream, so trial t
    // is the same input no matter which thread draws it.
    Rng trial_rng = Rng::stream(options.seed, kProbeIdStreamTag,
                                static_cast<std::uint64_t>(t));
    const IdAssignment ids =
        make_random_unbounded(g.node_count(), universe, trial_rng);
    return run_local_algorithm(alg, g, ids, options);
  };
  const RunResult reference = run_trial(0);
  std::atomic<bool> verdict_changed{false};
  std::atomic<bool> output_changed{false};
  options.exec.for_each(static_cast<std::size_t>(trials - 1),
                        [&](std::size_t i) {
    const RunResult run = run_trial(static_cast<int>(i) + 1);
    if (run.accepted != reference.accepted) {
      verdict_changed.store(true, std::memory_order_relaxed);
    }
    if (run.outputs != reference.outputs) {
      output_changed.store(true, std::memory_order_relaxed);
    }
  });
  probe.global_verdict_changed = verdict_changed.load();
  probe.some_node_output_changed = output_changed.load();
  return probe;
}

RandomizedRun run_randomized_once(const RandomizedLocalAlgorithm& alg,
                                  const LabeledGraph& g,
                                  const IdAssignment* ids, Rng& rng) {
  if (!alg.id_oblivious()) {
    LOCALD_CHECK(ids != nullptr,
                 "id-aware randomized algorithm needs identifiers");
  }
  const IdAssignment* visible_ids = alg.id_oblivious() ? nullptr : ids;
  RandomizedRun run;
  run.outputs.reserve(static_cast<std::size_t>(g.node_count()));
  BallScratch scratch;
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    const BallView ball = scratch.extract(g, visible_ids, v, alg.horizon());
    Rng node_coin = rng.split();
    const Verdict out = alg.evaluate(ball, node_coin);
    run.outputs.push_back(out);
    if (out == Verdict::no) {
      run.accepted = false;
    }
  }
  return run;
}

AcceptanceEstimate estimate_acceptance(const RandomizedLocalAlgorithm& alg,
                                       const LabeledGraph& g,
                                       const IdAssignment* ids, int trials,
                                       const RunOptions& options) {
  LOCALD_CHECK(trials > 0, "need at least one trial");
  if (!alg.id_oblivious()) {
    LOCALD_CHECK(ids != nullptr,
                 "id-aware randomized algorithm needs identifiers");
  }
  if (ids != nullptr) {
    LOCALD_CHECK(ids->node_count() == g.node_count(),
                 "identifier assignment size mismatch");
  }
  // Balls are fixed across trials (only the coins change): extract each one
  // once — owning, because the balls outlive any per-thread scratch.
  const IdAssignment* visible_ids = alg.id_oblivious() ? nullptr : ids;
  const std::size_t n = static_cast<std::size_t>(g.node_count());
  std::vector<Ball> balls(n);
  options.exec.for_each(n, [&](std::size_t i) {
    balls[i] = extract_ball(g, visible_ids, static_cast<graph::NodeId>(i),
                            alg.horizon());
  });
  std::atomic<int> accepted{0};
  options.exec.for_each(static_cast<std::size_t>(trials), [&](std::size_t t) {
    bool all_yes = true;
    for (std::size_t v = 0; v < n; ++v) {
      Rng coin = Rng::stream(options.seed, t, v);
      if (alg.evaluate(balls[v], coin) == Verdict::no) {
        all_yes = false;
        break;
      }
    }
    if (all_yes) {
      accepted.fetch_add(1, std::memory_order_relaxed);
    }
  });
  AcceptanceEstimate est;
  est.trials = trials;
  est.accepted = accepted.load();
  return est;
}

}  // namespace locald::local
