#include "local/simulator.h"

namespace locald::local {

namespace {

RunResult run_impl(const LocalAlgorithm& alg, const LabeledGraph& g,
                   const IdAssignment* ids) {
  RunResult result;
  result.outputs.reserve(static_cast<std::size_t>(g.node_count()));
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    Ball ball = extract_ball(g, ids, v, alg.horizon());
    if (alg.id_oblivious() && ball.has_ids()) {
      ball = ball.without_ids();
    }
    const Verdict out = alg.evaluate(ball);
    result.outputs.push_back(out);
    if (out == Verdict::no && result.accepted) {
      result.accepted = false;
      result.first_rejecting = v;
    }
  }
  return result;
}

}  // namespace

RunResult run_local_algorithm(const LocalAlgorithm& alg, const LabeledGraph& g,
                              const IdAssignment& ids) {
  LOCALD_CHECK(ids.node_count() == g.node_count(),
               "identifier assignment size mismatch");
  return run_impl(alg, g, &ids);
}

RunResult run_oblivious(const LocalAlgorithm& alg, const LabeledGraph& g) {
  LOCALD_CHECK(alg.id_oblivious(),
               "run_oblivious requires an Id-oblivious algorithm");
  return run_impl(alg, g, nullptr);
}

bool accepts(const LocalAlgorithm& alg, const LabeledGraph& g,
             const IdAssignment& ids) {
  return run_local_algorithm(alg, g, ids).accepted;
}

IdDependenceProbe probe_id_dependence(const LocalAlgorithm& alg,
                                      const LabeledGraph& g, Id universe,
                                      int trials, Rng& rng) {
  LOCALD_CHECK(trials >= 2, "need at least two assignments to compare");
  IdDependenceProbe probe;
  probe.trials = trials;
  std::optional<RunResult> reference;
  for (int i = 0; i < trials; ++i) {
    const IdAssignment ids =
        make_random_unbounded(g.node_count(), universe, rng);
    RunResult run = run_local_algorithm(alg, g, ids);
    if (!reference.has_value()) {
      reference = std::move(run);
      continue;
    }
    if (run.accepted != reference->accepted) {
      probe.global_verdict_changed = true;
    }
    if (run.outputs != reference->outputs) {
      probe.some_node_output_changed = true;
    }
  }
  return probe;
}

RandomizedRun run_randomized_once(const RandomizedLocalAlgorithm& alg,
                                  const LabeledGraph& g,
                                  const IdAssignment* ids, Rng& rng) {
  if (!alg.id_oblivious()) {
    LOCALD_CHECK(ids != nullptr,
                 "id-aware randomized algorithm needs identifiers");
  }
  RandomizedRun run;
  run.outputs.reserve(static_cast<std::size_t>(g.node_count()));
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    Ball ball = extract_ball(g, ids, v, alg.horizon());
    if (alg.id_oblivious() && ball.has_ids()) {
      ball = ball.without_ids();
    }
    Rng node_coin = rng.split();
    const Verdict out = alg.evaluate(ball, node_coin);
    run.outputs.push_back(out);
    if (out == Verdict::no) {
      run.accepted = false;
    }
  }
  return run;
}

AcceptanceEstimate estimate_acceptance(const RandomizedLocalAlgorithm& alg,
                                       const LabeledGraph& g,
                                       const IdAssignment* ids, int trials,
                                       Rng& rng) {
  LOCALD_CHECK(trials > 0, "need at least one trial");
  AcceptanceEstimate est;
  est.trials = trials;
  for (int i = 0; i < trials; ++i) {
    if (run_randomized_once(alg, g, ids, rng).accepted) {
      ++est.accepted;
    }
  }
  return est;
}

}  // namespace locald::local
