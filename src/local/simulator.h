// Running a local algorithm on an input (G, x, Id).
//
// Global acceptance follows the paper's local-decision rule: accept iff
// every node outputs yes; a single no rejects.
#pragma once

#include <optional>
#include <vector>

#include "local/algorithm.h"
#include "local/labeled_graph.h"

namespace locald::local {

struct RunResult {
  std::vector<Verdict> outputs;
  bool accepted = true;
  std::optional<graph::NodeId> first_rejecting;
};

// Evaluates the algorithm on every node. If the algorithm declares itself
// Id-oblivious, identifiers are stripped from every ball before evaluation.
RunResult run_local_algorithm(const LocalAlgorithm& alg, const LabeledGraph& g,
                              const IdAssignment& ids);

// Runs an Id-oblivious algorithm without any identifier assignment.
RunResult run_oblivious(const LocalAlgorithm& alg, const LabeledGraph& g);

// Global verdict only.
bool accepts(const LocalAlgorithm& alg, const LabeledGraph& g,
             const IdAssignment& ids);

// Empirical probe of assumption-dependence: evaluates the algorithm under
// `trials` random id assignments drawn from [0, universe) and reports
// whether any PER-NODE output differed between two assignments. A truly
// Id-oblivious algorithm never differs; the Section-2/3 deciders must.
struct IdDependenceProbe {
  bool global_verdict_changed = false;
  bool some_node_output_changed = false;
  int trials = 0;
};

IdDependenceProbe probe_id_dependence(const LocalAlgorithm& alg,
                                      const LabeledGraph& g, Id universe,
                                      int trials, Rng& rng);

// Randomized algorithms: one independent RNG stream per node per trial.
struct RandomizedRun {
  std::vector<Verdict> outputs;
  bool accepted = true;
};

RandomizedRun run_randomized_once(const RandomizedLocalAlgorithm& alg,
                                  const LabeledGraph& g,
                                  const IdAssignment* ids, Rng& rng);

// Monte-Carlo estimate of Pr[accept].
struct AcceptanceEstimate {
  int trials = 0;
  int accepted = 0;
  double probability() const {
    return trials == 0 ? 0.0 : static_cast<double>(accepted) / trials;
  }
};

AcceptanceEstimate estimate_acceptance(const RandomizedLocalAlgorithm& alg,
                                       const LabeledGraph& g,
                                       const IdAssignment* ids, int trials,
                                       Rng& rng);

}  // namespace locald::local
