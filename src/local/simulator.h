// Running a local algorithm on an input (G, x, Id).
//
// Global acceptance follows the paper's local-decision rule: accept iff
// every node outputs yes; a single no rejects.
#pragma once

#include <optional>
#include <vector>

#include "exec/context.h"
#include "local/algorithm.h"
#include "local/labeled_graph.h"

namespace locald::local {

struct RunResult {
  std::vector<Verdict> outputs;
  bool accepted = true;
  std::optional<graph::NodeId> first_rejecting;
};

// Evaluates the algorithm on every node. If the algorithm declares itself
// Id-oblivious, identifiers are stripped from every ball before evaluation.
RunResult run_local_algorithm(const LocalAlgorithm& alg, const LabeledGraph& g,
                              const IdAssignment& ids);

// Runs an Id-oblivious algorithm without any identifier assignment.
RunResult run_oblivious(const LocalAlgorithm& alg, const LabeledGraph& g);

// Execution-engine variants: evaluate nodes on `ctx.pool` (serially when
// null) and memoize per-ball verdicts in `ctx.cache` (skipped when null).
// Results are bit-identical to the serial overloads at any thread count:
// every node writes its own output slot and the accept/first-rejecting
// reduction happens in node order afterwards. Memoization additionally
// requires the algorithm's verdict to be a pure function of the ball's
// canonical class (see exec/verdict_cache.h).
RunResult run_local_algorithm(const LocalAlgorithm& alg, const LabeledGraph& g,
                              const IdAssignment& ids,
                              const exec::ExecContext& ctx);
RunResult run_oblivious(const LocalAlgorithm& alg, const LabeledGraph& g,
                        const exec::ExecContext& ctx);

// Global verdict only.
bool accepts(const LocalAlgorithm& alg, const LabeledGraph& g,
             const IdAssignment& ids);

// Empirical probe of assumption-dependence: evaluates the algorithm under
// `trials` random id assignments drawn from [0, universe) and reports
// whether any PER-NODE output differed between two assignments. A truly
// Id-oblivious algorithm never differs; the Section-2/3 deciders must.
struct IdDependenceProbe {
  bool global_verdict_changed = false;
  bool some_node_output_changed = false;
  int trials = 0;
};

IdDependenceProbe probe_id_dependence(const LocalAlgorithm& alg,
                                      const LabeledGraph& g, Id universe,
                                      int trials, Rng& rng);

// Engine variant: trial t draws its id assignment from the counter-based
// stream (seed, t) — independent of thread scheduling — and trials compare
// against trial 0 in parallel. Identical results at every thread count for
// a fixed seed (but not to the `Rng&` overload above, whose draws depend on
// sequential generator state).
IdDependenceProbe probe_id_dependence(const LocalAlgorithm& alg,
                                      const LabeledGraph& g, Id universe,
                                      int trials, std::uint64_t seed,
                                      const exec::ExecContext& ctx);

// Randomized algorithms: one independent RNG stream per node per trial.
struct RandomizedRun {
  std::vector<Verdict> outputs;
  bool accepted = true;
};

RandomizedRun run_randomized_once(const RandomizedLocalAlgorithm& alg,
                                  const LabeledGraph& g,
                                  const IdAssignment* ids, Rng& rng);

// Monte-Carlo estimate of Pr[accept].
struct AcceptanceEstimate {
  int trials = 0;
  int accepted = 0;
  // Pr[accept] over the trials that ran. A zero-trial estimate has no
  // probability — returning 0.0 would silently conflate "never accepted"
  // with "never ran" — so asking for one is a checked error.
  double probability() const {
    LOCALD_CHECK(trials > 0,
                 "acceptance estimate over zero trials has no probability");
    return static_cast<double>(accepted) / trials;
  }
};

AcceptanceEstimate estimate_acceptance(const RandomizedLocalAlgorithm& alg,
                                       const LabeledGraph& g,
                                       const IdAssignment* ids, int trials,
                                       Rng& rng);

// Engine variant: node v's coins in trial t come from the counter-based
// stream (seed, t, v), so every (node, trial) cell is the same generator no
// matter which thread runs it; balls are extracted once and reused across
// all trials. Identical results at every thread count for a fixed seed.
AcceptanceEstimate estimate_acceptance(const RandomizedLocalAlgorithm& alg,
                                       const LabeledGraph& g,
                                       const IdAssignment* ids, int trials,
                                       std::uint64_t seed,
                                       const exec::ExecContext& ctx);

}  // namespace locald::local
