// Running a local algorithm on an input (G, x, Id).
//
// Global acceptance follows the paper's local-decision rule: accept iff
// every node outputs yes; a single no rejects.
//
// Every entry point takes a `RunOptions` describing HOW to execute —
// threading, memoization, random seed — separated from WHAT to run (the
// algorithm and instance positional arguments). The default-constructed
// options mean: serial, uncached, seed 0. Results are bit-identical across
// thread counts for fixed options: every node writes its own output slot
// and reductions happen in node order afterwards; randomized entry points
// draw every (trial, node) cell from a counter-based stream keyed by
// `options.seed`, never from shared sequential generator state.
#pragma once

#include <optional>
#include <vector>

#include "exec/context.h"
#include "local/algorithm.h"
#include "local/labeled_graph.h"

namespace locald::local {

// Execution options shared by every simulator entry point.
struct RunOptions {
  // Thread pool + verdict cache; ExecContext{} = serial and uncached.
  // Memoization requires the algorithm's verdict to be a pure function of
  // the ball's canonical class (see exec/verdict_cache.h).
  exec::ExecContext exec;
  // Base of the counter streams used by the randomized entry points
  // (probe_id_dependence, estimate_acceptance); ignored by the
  // deterministic ones.
  std::uint64_t seed = 0;
  // Visibility radius override; unset means the algorithm's own horizon().
  std::optional<int> radius;
};

struct RunResult {
  std::vector<Verdict> outputs;
  bool accepted = true;
  std::optional<graph::NodeId> first_rejecting;
};

// Evaluates the algorithm on every node. If the algorithm declares itself
// Id-oblivious, identifiers are stripped from every ball before evaluation.
RunResult run_local_algorithm(const LocalAlgorithm& alg, const LabeledGraph& g,
                              const IdAssignment& ids,
                              const RunOptions& options = {});

// Runs an Id-oblivious algorithm without any identifier assignment.
RunResult run_oblivious(const LocalAlgorithm& alg, const LabeledGraph& g,
                        const RunOptions& options = {});

// Global verdict only.
bool accepts(const LocalAlgorithm& alg, const LabeledGraph& g,
             const IdAssignment& ids);

// Empirical probe of assumption-dependence: evaluates the algorithm under
// `trials` random id assignments drawn from [0, universe) and reports
// whether any PER-NODE output differed between two assignments. A truly
// Id-oblivious algorithm never differs; the Section-2/3 deciders must.
// Trial t draws its assignment from the counter-based stream
// (options.seed, t), so the probe is a pure function of (instance, seed).
struct IdDependenceProbe {
  bool global_verdict_changed = false;
  bool some_node_output_changed = false;
  int trials = 0;
};

IdDependenceProbe probe_id_dependence(const LocalAlgorithm& alg,
                                      const LabeledGraph& g, Id universe,
                                      int trials,
                                      const RunOptions& options = {});

// Randomized algorithms: one independent RNG stream per node per trial.
struct RandomizedRun {
  std::vector<Verdict> outputs;
  bool accepted = true;
};

RandomizedRun run_randomized_once(const RandomizedLocalAlgorithm& alg,
                                  const LabeledGraph& g,
                                  const IdAssignment* ids, Rng& rng);

// Monte-Carlo estimate of Pr[accept].
struct AcceptanceEstimate {
  int trials = 0;
  int accepted = 0;
  // Pr[accept] over the trials that ran. A zero-trial estimate has no
  // probability — returning 0.0 would silently conflate "never accepted"
  // with "never ran" — so asking for one is a checked error.
  double probability() const {
    LOCALD_CHECK(trials > 0,
                 "acceptance estimate over zero trials has no probability");
    return static_cast<double>(accepted) / trials;
  }
};

// Node v's coins in trial t come from the counter-based stream
// (options.seed, t, v), so every (node, trial) cell is the same generator
// no matter which thread runs it; balls are extracted once and reused
// across all trials.
AcceptanceEstimate estimate_acceptance(const RandomizedLocalAlgorithm& alg,
                                       const LabeledGraph& g,
                                       const IdAssignment* ids, int trials,
                                       const RunOptions& options = {});

}  // namespace locald::local
