#include "local/sync_engine.h"

#include <algorithm>
#include <sstream>

#include "graph/graph.h"

#include "support/check.h"

namespace locald::local {

std::vector<Verdict> run_message_passing(const MessagePassingAlgorithm& alg,
                                         const LabeledGraph& g,
                                         const IdAssignment* ids) {
  if (ids != nullptr) {
    LOCALD_CHECK(ids->node_count() == g.node_count(),
                 "identifier assignment size mismatch");
  }
  const graph::NodeId n = g.node_count();
  std::vector<std::string> state(static_cast<std::size_t>(n));
  for (graph::NodeId v = 0; v < n; ++v) {
    NodeView view;
    view.label = g.label(v);
    if (ids != nullptr) {
      view.id = ids->of(v);
    }
    view.degree = g.graph().degree(v);
    state[static_cast<std::size_t>(v)] = alg.init(view);
  }
  for (int round = 0; round < alg.rounds(); ++round) {
    std::vector<std::string> outgoing(static_cast<std::size_t>(n));
    for (graph::NodeId v = 0; v < n; ++v) {
      outgoing[static_cast<std::size_t>(v)] =
          alg.message(state[static_cast<std::size_t>(v)], round);
    }
    std::vector<std::string> next(static_cast<std::size_t>(n));
    for (graph::NodeId v = 0; v < n; ++v) {
      std::vector<std::string> inbox;
      inbox.reserve(g.graph().neighbors(v).size());
      for (graph::NodeId w : g.graph().neighbors(v)) {
        inbox.push_back(outgoing[static_cast<std::size_t>(w)]);
      }
      next[static_cast<std::size_t>(v)] =
          alg.update(state[static_cast<std::size_t>(v)], inbox, round);
    }
    state = std::move(next);
  }
  std::vector<Verdict> out;
  out.reserve(static_cast<std::size_t>(n));
  for (graph::NodeId v = 0; v < n; ++v) {
    out.push_back(alg.output(state[static_cast<std::size_t>(v)]));
  }
  return out;
}

namespace {

std::string encode_label(const Label& l) {
  std::string s;
  for (std::size_t i = 0; i < l.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(l.at(i));
  }
  return s;
}

Label decode_label(const std::string& s) {
  std::vector<std::int64_t> fields;
  if (!s.empty()) {
    std::istringstream is(s);
    std::string tok;
    while (std::getline(is, tok, ',')) {
      fields.push_back(std::stoll(tok));
    }
  }
  return Label(std::move(fields));
}

std::string encode_ids(const std::vector<Id>& ids) {
  std::string s;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(ids[i]);
  }
  return s;
}

std::vector<Id> decode_ids(const std::string& s) {
  std::vector<Id> ids;
  if (!s.empty()) {
    std::istringstream is(s);
    std::string tok;
    while (std::getline(is, tok, ',')) {
      ids.push_back(std::stoull(tok));
    }
  }
  return ids;
}

}  // namespace

std::string encode_knowledge(Id self, const Knowledge& k) {
  std::string out = std::to_string(self);
  out += "\n";
  for (const auto& [id, node] : k) {
    LOCALD_ASSERT(id == node.id, "knowledge key must match node id");
    out += std::to_string(id);
    out += "|";
    out += encode_label(node.label);
    out += "|";
    out += encode_ids(node.adj);
    out += "\n";
  }
  return out;
}

std::pair<Id, Knowledge> decode_knowledge(const std::string& payload) {
  std::istringstream is(payload);
  std::string line;
  LOCALD_CHECK(std::getline(is, line), "knowledge payload missing header");
  const Id self = std::stoull(line);
  Knowledge k;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    const std::size_t p1 = line.find('|');
    const std::size_t p2 = line.find('|', p1 + 1);
    LOCALD_CHECK(p1 != std::string::npos && p2 != std::string::npos,
                 "malformed knowledge line");
    KnownNode node;
    node.id = std::stoull(line.substr(0, p1));
    node.label = decode_label(line.substr(p1 + 1, p2 - p1 - 1));
    node.adj = decode_ids(line.substr(p2 + 1));
    k.emplace(node.id, std::move(node));
  }
  return {self, std::move(k)};
}

namespace {

// Adjacency knowledge only grows (from the empty initial list to the full
// neighbour set), so merging takes the union.
void merge_into(Knowledge& dst, const Knowledge& src) {
  for (const auto& [id, node] : src) {
    auto [it, fresh] = dst.emplace(id, node);
    if (!fresh) {
      LOCALD_CHECK(it->second.label == node.label,
                   "inconsistent label knowledge for the same id");
      std::vector<Id> merged = it->second.adj;
      merged.insert(merged.end(), node.adj.begin(), node.adj.end());
      std::sort(merged.begin(), merged.end());
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
      it->second.adj = std::move(merged);
    }
  }
}

}  // namespace

Ball ball_from_knowledge(Id self, const Knowledge& k, int radius) {
  LOCALD_CHECK(k.contains(self), "knowledge must contain the centre");
  // BFS over known adjacency, depth `radius`.
  std::vector<Id> order{self};
  std::map<Id, int> dist{{self, 0}};
  std::size_t head = 0;
  while (head < order.size()) {
    const Id u = order[head++];
    const int du = dist[u];
    if (du >= radius) {
      continue;
    }
    auto it = k.find(u);
    LOCALD_ASSERT(it != k.end(), "BFS reached an unknown node");
    for (Id w : it->second.adj) {
      if (k.contains(w) && !dist.contains(w)) {
        dist[w] = du + 1;
        order.push_back(w);
      }
    }
  }
  // Deterministic node order: (distance, id).
  std::stable_sort(order.begin(), order.end(), [&](Id a, Id b) {
    return std::pair(dist[a], a) < std::pair(dist[b], b);
  });
  std::map<Id, graph::NodeId> index;
  for (std::size_t i = 0; i < order.size(); ++i) {
    index[order[i]] = static_cast<graph::NodeId>(i);
  }
  Ball ball;
  graph::GraphBuilder builder(static_cast<graph::NodeId>(order.size()));
  ball.radius = radius;
  ball.center = index.at(self);
  std::vector<Id> ball_ids;
  for (const Id u : order) {
    const KnownNode& node = k.at(u);
    ball.labels.push_back(node.label);
    ball_ids.push_back(u);
    for (Id w : node.adj) {
      auto it = index.find(w);
      if (it != index.end()) {
        builder.add_edge_if_absent(index.at(u), it->second);
      }
    }
  }
  ball.g = builder.build();
  ball.ids = std::move(ball_ids);
  // to_host is unknown to a message-passing node; leave empty.
  return ball;
}

std::string FullInfoGather::name() const {
  return "full-info(" + inner_->name() + ")";
}

std::string FullInfoGather::init(const NodeView& view) const {
  LOCALD_CHECK(view.id.has_value(),
               "full-information gathering uses ids as transport addresses");
  Knowledge k;
  KnownNode self;
  self.id = *view.id;
  self.label = view.label;
  k.emplace(self.id, self);
  return encode_knowledge(self.id, k);
}

std::string FullInfoGather::message(const std::string& state,
                                    int /*round*/) const {
  return state;
}

std::string FullInfoGather::update(const std::string& state,
                                   const std::vector<std::string>& inbox,
                                   int /*round*/) const {
  auto [self, knowledge] = decode_knowledge(state);
  std::vector<Id> neighbor_ids;
  for (const std::string& msg : inbox) {
    if (msg.empty()) {
      // A lost message (event engine, faulty profiles): this round taught
      // us nothing about that port. Knowledge merging is a union, so a
      // neighbour heard in any other round still lands in the adjacency.
      continue;
    }
    auto [sender, their] = decode_knowledge(msg);
    neighbor_ids.push_back(sender);
    merge_into(knowledge, their);
  }
  // Learning who the senders are completes this node's own adjacency.
  std::sort(neighbor_ids.begin(), neighbor_ids.end());
  Knowledge own;
  KnownNode me = knowledge.at(self);
  me.adj = neighbor_ids;
  own.emplace(self, std::move(me));
  merge_into(knowledge, own);
  return encode_knowledge(self, knowledge);
}

Verdict FullInfoGather::output(const std::string& state) const {
  auto [self, knowledge] = decode_knowledge(state);
  const Ball ball = ball_from_knowledge(self, knowledge, inner_->horizon());
  BallView view = ball.view();
  if (inner_->id_oblivious()) {
    view = view.without_ids();
  }
  return inner_->evaluate(view);
}

std::vector<Verdict> run_via_message_passing(const LocalAlgorithm& alg,
                                             const LabeledGraph& g,
                                             const IdAssignment& ids) {
  // t + 1 rounds assemble the exact induced radius-t ball (the paper's
  // "t ± 1 rounds" equivalence): edges between two distance-t nodes are only
  // reported after those nodes learned their own adjacency in round 1.
  class Wrapper final : public MessagePassingAlgorithm {
   public:
    explicit Wrapper(const LocalAlgorithm& inner) : gather_(inner), inner_(&inner) {}
    std::string name() const override { return gather_.name(); }
    int rounds() const override { return inner_->horizon() + 1; }
    std::string init(const NodeView& v) const override {
      return gather_.init(v);
    }
    std::string message(const std::string& s, int r) const override {
      return gather_.message(s, r);
    }
    std::string update(const std::string& s,
                       const std::vector<std::string>& inbox,
                       int r) const override {
      return gather_.update(s, inbox, r);
    }
    Verdict output(const std::string& s) const override {
      return gather_.output(s);
    }

   private:
    FullInfoGather gather_;
    const LocalAlgorithm* inner_;
  };
  Wrapper wrapper(alg);
  return run_message_passing(wrapper, g, &ids);
}

}  // namespace locald::local
