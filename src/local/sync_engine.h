// Synchronous message-passing view of the LOCAL model.
//
// Section 1.2 notes that a local algorithm with horizon t is equivalent to a
// distributed algorithm running t (± 1) synchronous rounds: nodes exchange
// unbounded messages with neighbours, then output. This module provides
// that networked-state-machine view and the bridge in both directions:
//
//  - `MessagePassingAlgorithm`: write an algorithm as init/message/update/
//    output; the engine runs the rounds.
//  - `FullInfoGather`: the canonical t-round algorithm that floods
//    (id, label, adjacency) knowledge, reconstructs (G, x, Id) |` B(v, t)
//    exactly, and delegates to any `LocalAlgorithm`. Tests assert it
//    reproduces direct ball evaluation verbatim — the equivalence the paper
//    appeals to.
//
// The engine uses identifiers as transport addresses during flooding. For an
// Id-oblivious inner algorithm the reconstructed ball is stripped before
// evaluation, so obliviousness remains framework-enforced.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "local/algorithm.h"
#include "local/labeled_graph.h"

namespace locald::local {

struct NodeView {
  Label label;
  std::optional<Id> id;
  int degree = 0;
};

class MessagePassingAlgorithm {
 public:
  virtual ~MessagePassingAlgorithm() = default;

  virtual std::string name() const = 0;
  virtual int rounds() const = 0;

  virtual std::string init(const NodeView& view) const = 0;
  // Message broadcast to all neighbours this round (LOCAL: unbounded size).
  virtual std::string message(const std::string& state, int round) const = 0;
  // Inbox is ordered by neighbour port (ascending node index) — the engine
  // hides raw indices from the algorithm otherwise.
  virtual std::string update(const std::string& state,
                             const std::vector<std::string>& inbox,
                             int round) const = 0;
  virtual Verdict output(const std::string& state) const = 0;
};

// Runs `rounds()` synchronous rounds; `ids` may be null for anonymous runs.
std::vector<Verdict> run_message_passing(const MessagePassingAlgorithm& alg,
                                         const LabeledGraph& g,
                                         const IdAssignment* ids);

// What one node knows about another after flooding.
struct KnownNode {
  Id id = 0;
  Label label;
  std::vector<Id> adj;  // full adjacency, as ids (may mention unknown nodes)

  bool operator==(const KnownNode&) const = default;
};

using Knowledge = std::map<Id, KnownNode>;

// Serialization used as message payload (exercised directly by tests).
std::string encode_knowledge(Id self, const Knowledge& k);
std::pair<Id, Knowledge> decode_knowledge(const std::string& payload);

// Rebuilds the induced radius-t ball around `self` from flooded knowledge.
// Only information actually contained in the knowledge map is used.
Ball ball_from_knowledge(Id self, const Knowledge& k, int radius);

// Full-information algorithm wrapping an inner `LocalAlgorithm`.
class FullInfoGather final : public MessagePassingAlgorithm {
 public:
  explicit FullInfoGather(const LocalAlgorithm& inner) : inner_(&inner) {}

  std::string name() const override;
  int rounds() const override { return inner_->horizon(); }
  std::string init(const NodeView& view) const override;
  std::string message(const std::string& state, int round) const override;
  std::string update(const std::string& state,
                     const std::vector<std::string>& inbox,
                     int round) const override;
  Verdict output(const std::string& state) const override;

 private:
  const LocalAlgorithm* inner_;
};

// Convenience: run `alg` through the message-passing engine. Produces the
// same outputs as run_local_algorithm (tested equivalence).
std::vector<Verdict> run_via_message_passing(const LocalAlgorithm& alg,
                                             const LabeledGraph& g,
                                             const IdAssignment& ids);

}  // namespace locald::local
