#include "oblivious/simulation.h"

#include <algorithm>
#include <atomic>

#include "exec/context.h"
#include "support/format.h"
#include "support/rng.h"

namespace locald::oblivious {

namespace {

using local::BallView;
using local::Id;
using local::Verdict;

// Number of injections from b slots into u ids, saturating at `cap`.
std::size_t injection_count(Id u, int b, std::size_t cap) {
  std::size_t total = 1;
  for (int i = 0; i < b; ++i) {
    const Id factor = u - static_cast<Id>(i);
    if (factor == 0) {
      return 0;
    }
    if (total > cap / factor) {
      return cap + 1;  // saturated
    }
    total *= static_cast<std::size_t>(factor);
  }
  return total;
}

// Recursively enumerates all injections extending `chosen`; returns true if
// a rejecting assignment was found. `found` is the cross-branch abort flag:
// once any branch rejects, the remaining enumeration is pruned (the global
// verdict — an exists-quantifier — is already settled).
bool search_exhaustive(const local::LocalAlgorithm& inner,
                       const BallView& ball,
                       std::vector<Id>& chosen, std::vector<bool>& used,
                       Id universe, std::size_t& tried,
                       const std::atomic<bool>& found) {
  if (found.load(std::memory_order_relaxed)) {
    return false;
  }
  const std::size_t slot = chosen.size();
  if (slot == static_cast<std::size_t>(ball.node_count())) {
    ++tried;
    return inner.evaluate(ball.with_ids(chosen)) == Verdict::no;
  }
  for (Id id = 0; id < universe; ++id) {
    if (used[static_cast<std::size_t>(id)]) {
      continue;
    }
    used[static_cast<std::size_t>(id)] = true;
    chosen.push_back(id);
    if (search_exhaustive(inner, ball, chosen, used, universe, tried, found)) {
      return true;
    }
    chosen.pop_back();
    used[static_cast<std::size_t>(id)] = false;
  }
  return false;
}

}  // namespace

ObliviousSimulation::ObliviousSimulation(
    std::shared_ptr<const local::LocalAlgorithm> inner,
    SimulationOptions options)
    : inner_(std::move(inner)), options_(options) {
  LOCALD_CHECK(inner_ != nullptr, "inner algorithm required");
  LOCALD_CHECK(!inner_->id_oblivious(),
               "simulating an already Id-oblivious algorithm is a no-op");
  LOCALD_CHECK(options_.id_universe >= 1, "empty id universe");
}

std::string ObliviousSimulation::name() const {
  return cat("A*(", inner_->name(), ")");
}

Verdict ObliviousSimulation::evaluate(const BallView& ball) const {
  const int b = ball.node_count();
  LOCALD_CHECK(static_cast<Id>(b) <= options_.id_universe,
               "id universe smaller than the ball");
  const exec::ExecContext ctx{options_.pool, nullptr};
  SimulationStats stats;
  std::string encoding;  // set in exhaustive mode; keys the verdict memo
  std::atomic<bool> rejected{false};
  std::atomic<std::size_t> tried{0};

  const std::size_t total =
      injection_count(options_.id_universe, b, options_.max_assignments);
  if (total <= options_.max_assignments) {
    stats.exhaustive = true;
    // An exhaustive verdict quantifies over EVERY injection, so it is a
    // pure function of the ball's isomorphism class — memoize it per
    // canonical encoding (the class-keyed route through the
    // canonicalization engine; sampled mode below must stay unmemoized,
    // see memoization_safe()). A hit skips the whole enumeration.
    encoding = ball.canonical_encoding();
    {
      std::lock_guard<std::mutex> lk(memo_mu_);
      const auto hit = exhaustive_memo_.find(encoding);
      if (hit != exhaustive_memo_.end()) {
        stats.memo_hit = true;
        std::lock_guard<std::mutex> sk(stats_mu_);
        stats_ = stats;
        return hit->second ? Verdict::no : Verdict::yes;
      }
    }
    // Enumeration fanned out over the centre slot's id: every branch owns
    // its chosen/used scratch, so branches are independent. The exhaustive
    // path only triggers for small universes (the injection count fits the
    // budget), so the per-branch O(universe) scratch is cheap.
    ctx.for_each(static_cast<std::size_t>(options_.id_universe),
                 [&](std::size_t first) {
                   if (rejected.load(std::memory_order_relaxed)) {
                     return;
                   }
                   std::vector<Id> chosen{static_cast<Id>(first)};
                   std::vector<bool> used(
                       static_cast<std::size_t>(options_.id_universe));
                   used[first] = true;
                   std::size_t branch_tried = 0;
                   const bool found =
                       search_exhaustive(*inner_, ball, chosen, used,
                                         options_.id_universe, branch_tried,
                                         rejected);
                   tried.fetch_add(branch_tried, std::memory_order_relaxed);
                   if (found) {
                     rejected.store(true, std::memory_order_relaxed);
                   }
                 });
  } else {
    // Sampled search: the computable stand-in for the infinite enumeration.
    // Candidate i is drawn from counter stream (seed ^ fingerprint, i), so
    // the candidate set — and with it the exists-verdict — is fixed before
    // any thread runs; scheduling only affects which candidates get skipped
    // after the first rejecting one is found.
    const std::uint64_t stream_seed =
        options_.seed ^ ball.canonical_fingerprint();
    ctx.for_each(options_.max_assignments, [&](std::size_t i) {
      if (rejected.load(std::memory_order_relaxed)) {
        return;
      }
      Rng rng = Rng::stream(stream_seed, i);
      const auto ids = rng.sample_distinct(options_.id_universe,
                                           static_cast<std::size_t>(b));
      tried.fetch_add(1, std::memory_order_relaxed);
      if (inner_->evaluate(ball.with_ids(ids)) == Verdict::no) {
        rejected.store(true, std::memory_order_relaxed);
      }
    });
  }

  stats.assignments_tried = tried.load();
  if (stats.exhaustive) {
    std::lock_guard<std::mutex> lk(memo_mu_);
    // Concurrent misses of the same class insert the same verdict (the
    // enumeration is exhaustive), so last-writer-wins is harmless.
    exhaustive_memo_[encoding] = rejected.load();
  }
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_ = stats;
  }
  return rejected.load() ? Verdict::no : Verdict::yes;
}

std::unique_ptr<ObliviousSimulation> make_oblivious_simulation(
    std::shared_ptr<const local::LocalAlgorithm> inner,
    SimulationOptions options) {
  return std::make_unique<ObliviousSimulation>(std::move(inner), options);
}

}  // namespace locald::oblivious
