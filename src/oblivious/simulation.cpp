#include "oblivious/simulation.h"

#include <algorithm>

#include "support/format.h"
#include "support/rng.h"

namespace locald::oblivious {

namespace {

using local::Ball;
using local::Id;
using local::Verdict;

// Number of injections from b slots into u ids, saturating at `cap`.
std::size_t injection_count(Id u, int b, std::size_t cap) {
  std::size_t total = 1;
  for (int i = 0; i < b; ++i) {
    const Id factor = u - static_cast<Id>(i);
    if (factor == 0) {
      return 0;
    }
    if (total > cap / factor) {
      return cap + 1;  // saturated
    }
    total *= static_cast<std::size_t>(factor);
  }
  return total;
}

// Recursively enumerates all injections; returns true if a rejecting
// assignment was found.
bool search_exhaustive(const local::LocalAlgorithm& inner, const Ball& ball,
                       std::vector<Id>& chosen, std::vector<bool>& used,
                       Id universe, std::size_t& tried) {
  const std::size_t slot = chosen.size();
  if (slot == static_cast<std::size_t>(ball.node_count())) {
    ++tried;
    return inner.evaluate(ball.with_ids(chosen)) == Verdict::no;
  }
  for (Id id = 0; id < universe; ++id) {
    if (used[static_cast<std::size_t>(id)]) {
      continue;
    }
    used[static_cast<std::size_t>(id)] = true;
    chosen.push_back(id);
    if (search_exhaustive(inner, ball, chosen, used, universe, tried)) {
      return true;
    }
    chosen.pop_back();
    used[static_cast<std::size_t>(id)] = false;
  }
  return false;
}

}  // namespace

ObliviousSimulation::ObliviousSimulation(
    std::shared_ptr<const local::LocalAlgorithm> inner,
    SimulationOptions options)
    : inner_(std::move(inner)), options_(options) {
  LOCALD_CHECK(inner_ != nullptr, "inner algorithm required");
  LOCALD_CHECK(!inner_->id_oblivious(),
               "simulating an already Id-oblivious algorithm is a no-op");
  LOCALD_CHECK(options_.id_universe >= 1, "empty id universe");
}

std::string ObliviousSimulation::name() const {
  return cat("A*(", inner_->name(), ")");
}

Verdict ObliviousSimulation::evaluate(const Ball& ball) const {
  const int b = ball.node_count();
  LOCALD_CHECK(static_cast<Id>(b) <= options_.id_universe,
               "id universe smaller than the ball");
  stats_ = {};
  const std::size_t total =
      injection_count(options_.id_universe, b, options_.max_assignments);
  if (total <= options_.max_assignments) {
    stats_.exhaustive = true;
    std::vector<Id> chosen;
    std::vector<bool> used(static_cast<std::size_t>(options_.id_universe));
    const bool rejected = search_exhaustive(*inner_, ball, chosen, used,
                                            options_.id_universe,
                                            stats_.assignments_tried);
    return rejected ? Verdict::no : Verdict::yes;
  }
  // Sampled search: the computable stand-in for the infinite enumeration.
  Rng rng(options_.seed ^ ball.canonical_fingerprint());
  for (std::size_t i = 0; i < options_.max_assignments; ++i) {
    const auto ids = rng.sample_distinct(options_.id_universe,
                                         static_cast<std::size_t>(b));
    ++stats_.assignments_tried;
    if (inner_->evaluate(ball.with_ids(ids)) == Verdict::no) {
      return Verdict::no;
    }
  }
  return Verdict::yes;
}

std::unique_ptr<ObliviousSimulation> make_oblivious_simulation(
    std::shared_ptr<const local::LocalAlgorithm> inner,
    SimulationOptions options) {
  return std::make_unique<ObliviousSimulation>(std::move(inner), options);
}

}  // namespace locald::oblivious
