// The Id-oblivious simulation A* from the paper's introduction.
//
// Given a local algorithm A, the simulation outputs no on a ball iff SOME
// one-to-one identifier assignment makes A output no. Under (¬B, ¬C) this
// decides the same property as A — the paper's proof that identifiers are
// unnecessary when both assumptions are dropped. Under (B) the simulation
// breaks (it explores assignments that the bounded-id promise rules out),
// and under (C) it may fail to terminate (the search is over an infinite
// domain): both failure modes are demonstrated in the experiments.
//
// Substitution (documented in docs/ARCHITECTURE.md): the infinite search is realized
// as exhaustive enumeration when the injection count fits the budget and
// as seeded random sampling otherwise; `id_universe` is the finite stand-in
// for N.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "exec/thread_pool.h"
#include "local/algorithm.h"

namespace locald::oblivious {

struct SimulationOptions {
  local::Id id_universe = 1 << 20;     // ids searched in [0, id_universe)
  std::size_t max_assignments = 20'000;  // enumeration/sampling budget
  std::uint64_t seed = 1;
  // Candidate assignments are searched on this pool when set (null: serial).
  // The verdict is an exists-quantifier over a candidate set fixed by
  // (seed, ball fingerprint) counter streams, so it is identical at every
  // thread count; only `assignments_tried` may vary under parallelism.
  exec::ThreadPool* pool = nullptr;
};

// Statistics of the most recent completed evaluation (exposed for the
// experiments). When the same simulation object is evaluated from several
// threads at once — e.g. under the parallel node loop — the snapshot is the
// last evaluation to finish.
struct SimulationStats {
  bool exhaustive = false;          // full injection enumeration used
  bool memo_hit = false;            // answered from the exhaustive-mode memo
  std::size_t assignments_tried = 0;
};

class ObliviousSimulation final : public local::LocalAlgorithm {
 public:
  ObliviousSimulation(std::shared_ptr<const local::LocalAlgorithm> inner,
                      SimulationOptions options);

  std::string name() const override;
  int horizon() const override { return inner_->horizon(); }
  bool id_oblivious() const override { return true; }
  // Sampled-mode verdicts are not invariant under ball-node renumbering:
  // the candidate id lists are applied by node index, so two isomorphic
  // balls with different numbering are probed with different effective
  // assignments. Memoizing per canonical class would be unsound for an
  // id-dependent inner algorithm. Exhaustive-mode verdicts, by contrast,
  // quantify over EVERY injection, so they ARE class-invariant — the
  // simulation memoizes those internally per canonical encoding (below)
  // even though the external cache must stay off.
  bool memoization_safe() const override { return false; }

  local::Verdict evaluate(const local::BallView& ball) const override;

  SimulationStats last_stats() const {
    std::lock_guard<std::mutex> lk(stats_mu_);
    return stats_;
  }

 private:
  std::shared_ptr<const local::LocalAlgorithm> inner_;
  SimulationOptions options_;
  mutable std::mutex stats_mu_;
  mutable SimulationStats stats_;
  // Exhaustive-mode verdict memo, keyed by the stripped ball's canonical
  // encoding (graph/isomorphism.h): whether some injection rejects is a
  // pure function of the ball's isomorphism class when every injection is
  // enumerated, so a hit can never change a verdict — it only skips a
  // full enumeration. Deterministic at any thread count for that reason.
  mutable std::mutex memo_mu_;
  mutable std::unordered_map<std::string, bool> exhaustive_memo_;
};

std::unique_ptr<ObliviousSimulation> make_oblivious_simulation(
    std::shared_ptr<const local::LocalAlgorithm> inner,
    SimulationOptions options = {});

}  // namespace locald::oblivious
