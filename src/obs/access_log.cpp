#include "obs/access_log.h"

#include <chrono>
#include <cstdio>

#include "support/check.h"
#include "support/format.h"

namespace locald::obs {

namespace {

// Wall-clock milliseconds since the Unix epoch — the event label. Durations
// in the same line come from steady_clock via the caller.
std::int64_t wall_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

AccessLog::AccessLog(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  LOCALD_CHECK(f != nullptr, "cannot open access log: " + path);
  file_ = f;
}

AccessLog::~AccessLog() {
  if (file_ != nullptr) std::fclose(static_cast<std::FILE*>(file_));
}

void AccessLog::write(const AccessEntry& entry) {
  std::string line = "{\"ts_ms\":";
  line += std::to_string(wall_ms());
  line += ",\"method\":";
  line += json_quote(entry.method);
  line += ",\"path\":";
  line += json_quote(entry.path);
  line += ",\"status\":";
  line += std::to_string(entry.status);
  line += ",\"bytes\":";
  line += std::to_string(entry.response_bytes);
  line += ",\"duration_ms\":";
  line += fixed(entry.duration_ms, 3);
  line += ",\"worker\":";
  line += std::to_string(entry.worker);
  line += ",\"cache_hits\":";
  line += std::to_string(entry.cache_hits);
  line += "}\n";
  std::lock_guard<std::mutex> lk(mu_);
  auto* f = static_cast<std::FILE*>(file_);
  std::fwrite(line.data(), 1, line.size(), f);
  std::fflush(f);
  ++lines_;
}

}  // namespace locald::obs
