// Structured NDJSON access log for `locald serve --access-log FILE`.
//
// One JSON object per line, flushed per line so a tailing consumer (or a
// crashed server's post-mortem) sees every completed request. Timestamps
// are wall-clock (they label events for humans and log shippers); the
// duration is measured on steady_clock by the caller, so the two never mix.
// The log is a volatile side channel: it must not influence any
// deterministic document.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

namespace locald::obs {

struct AccessEntry {
  std::string method;
  std::string path;
  int status = 0;
  std::uint64_t response_bytes = 0;
  double duration_ms = 0.0;
  int worker = -1;               // serving worker thread index
  std::uint64_t cache_hits = 0;  // verdict-cache hits during the request
};

class AccessLog {
 public:
  // Opens `path` for append. Throws Error (LOCALD_CHECK) if it cannot.
  explicit AccessLog(const std::string& path);
  ~AccessLog();

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  // Serializes `entry` as one NDJSON line and flushes. Thread-safe.
  void write(const AccessEntry& entry);

  std::uint64_t lines_written() const { return lines_; }

 private:
  std::mutex mu_;
  void* file_ = nullptr;  // std::FILE*, kept opaque to the header
  std::uint64_t lines_ = 0;
};

}  // namespace locald::obs
