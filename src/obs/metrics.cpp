#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <thread>

#include "support/check.h"

namespace locald::obs {

namespace {

// Slot choice: hash the thread id once per thread. Distinct threads spread
// across slots; a collision costs contention, never correctness.
std::size_t thread_slot() {
  static thread_local const std::size_t slot =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return slot;
}

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

bool valid_label_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

// Prometheus sample values are floats; integral values render without a
// fraction so counter samples byte-agree with the JSON surface's integers.
std::string render_value(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 9.0e15) {
    std::ostringstream os;
    os << static_cast<std::int64_t>(v);
    return os.str();
  }
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

const char* type_name(MetricType type) {
  switch (type) {
    case MetricType::counter:
      return "counter";
    case MetricType::gauge:
      return "gauge";
    case MetricType::histogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

void Counter::add(std::uint64_t delta) {
  slots_[thread_slot() % kSlots].v.fetch_add(delta,
                                             std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const Slot& slot : slots_) {
    total += slot.v.load(std::memory_order_relaxed);
  }
  return total;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  LOCALD_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                    std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                        bounds_.end(),
                "histogram bounds must be strictly increasing");
}

void Histogram::observe(double v) {
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + v,
                                     std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.reserve(buckets_.size());
  for (const auto& bucket : buckets_) {
    s.counts.push_back(bucket.load(std::memory_order_relaxed));
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

const std::vector<double>& Histogram::default_latency_buckets_seconds() {
  static const std::vector<double> buckets = {0.001, 0.005, 0.025, 0.1,
                                              0.5,   1.0,   5.0,   10.0};
  return buckets;
}

std::string escape_help(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string escape_label_value(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string label_key(std::vector<Label> labels) {
  if (labels.empty()) return "";
  std::sort(labels.begin(), labels.end(),
            [](const Label& a, const Label& b) { return a.name < b.name; });
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].name;
    out += "=\"";
    out += escape_label_value(labels[i].value);
    out += "\"";
  }
  out += "}";
  return out;
}

bool Registry::Child::expired() const {
  return counter.expired() && gauge.expired() && histogram.expired() &&
         counter_cb.expired() && gauge_cb.expired();
}

Registry::Family& Registry::family_for(const std::string& name,
                                       const std::string& help,
                                       MetricType type) {
  LOCALD_ASSERT(valid_metric_name(name),
                "metric name must match [a-zA-Z_:][a-zA-Z0-9_:]*");
  auto [it, inserted] = families_.try_emplace(name);
  Family& family = it->second;
  if (inserted) {
    family.help = help;
    family.type = type;
  } else {
    LOCALD_ASSERT(family.type == type,
                  "metric re-registered with a different type: " + name);
  }
  return family;
}

std::shared_ptr<Counter> Registry::counter(const std::string& name,
                                           const std::string& help,
                                           std::vector<Label> labels) {
  for (const Label& label : labels) {
    LOCALD_ASSERT(valid_label_name(label.name), "bad label name");
  }
  auto metric = std::make_shared<Counter>();
  std::lock_guard<std::mutex> lk(mu_);
  Family& family = family_for(name, help, MetricType::counter);
  Child child;
  child.labels = labels;
  child.counter = metric;
  family.children[label_key(std::move(labels))] = std::move(child);
  return metric;
}

std::shared_ptr<Gauge> Registry::gauge(const std::string& name,
                                       const std::string& help,
                                       std::vector<Label> labels) {
  for (const Label& label : labels) {
    LOCALD_ASSERT(valid_label_name(label.name), "bad label name");
  }
  auto metric = std::make_shared<Gauge>();
  std::lock_guard<std::mutex> lk(mu_);
  Family& family = family_for(name, help, MetricType::gauge);
  Child child;
  child.labels = labels;
  child.gauge = metric;
  family.children[label_key(std::move(labels))] = std::move(child);
  return metric;
}

std::shared_ptr<Histogram> Registry::histogram(const std::string& name,
                                               const std::string& help,
                                               std::vector<double> bounds,
                                               std::vector<Label> labels) {
  for (const Label& label : labels) {
    LOCALD_ASSERT(valid_label_name(label.name), "bad label name");
  }
  auto metric = std::make_shared<Histogram>(std::move(bounds));
  std::lock_guard<std::mutex> lk(mu_);
  Family& family = family_for(name, help, MetricType::histogram);
  Child child;
  child.labels = labels;
  child.histogram = metric;
  family.children[label_key(std::move(labels))] = std::move(child);
  return metric;
}

MetricHandle Registry::counter_fn(const std::string& name,
                                  const std::string& help,
                                  std::function<std::uint64_t()> fn,
                                  std::vector<Label> labels) {
  for (const Label& label : labels) {
    LOCALD_ASSERT(valid_label_name(label.name), "bad label name");
  }
  auto cb = std::make_shared<CallbackCounter>();
  cb->fn = std::move(fn);
  std::lock_guard<std::mutex> lk(mu_);
  Family& family = family_for(name, help, MetricType::counter);
  Child child;
  child.labels = labels;
  child.counter_cb = cb;
  family.children[label_key(std::move(labels))] = std::move(child);
  return cb;
}

MetricHandle Registry::gauge_fn(const std::string& name,
                                const std::string& help,
                                std::function<double()> fn,
                                std::vector<Label> labels) {
  for (const Label& label : labels) {
    LOCALD_ASSERT(valid_label_name(label.name), "bad label name");
  }
  auto cb = std::make_shared<CallbackGauge>();
  cb->fn = std::move(fn);
  std::lock_guard<std::mutex> lk(mu_);
  Family& family = family_for(name, help, MetricType::gauge);
  Child child;
  child.labels = labels;
  child.gauge_cb = cb;
  family.children[label_key(std::move(labels))] = std::move(child);
  return cb;
}

std::string Registry::render_prometheus() {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  for (auto family_it = families_.begin(); family_it != families_.end();) {
    Family& family = family_it->second;
    for (auto it = family.children.begin(); it != family.children.end();) {
      it = it->second.expired() ? family.children.erase(it) : std::next(it);
    }
    if (family.children.empty()) {
      family_it = families_.erase(family_it);
      continue;
    }
    const std::string& name = family_it->first;
    out += "# HELP " + name + " " + escape_help(family.help) + "\n";
    out += "# TYPE " + name + " " + std::string(type_name(family.type)) +
           "\n";
    for (const auto& [key, child] : family.children) {
      if (const auto c = child.counter.lock()) {
        out += name + key + " " +
               render_value(static_cast<double>(c->value())) + "\n";
      } else if (const auto cb = child.counter_cb.lock()) {
        out += name + key + " " +
               render_value(static_cast<double>(cb->fn())) + "\n";
      } else if (const auto g = child.gauge.lock()) {
        out += name + key + " " +
               render_value(static_cast<double>(g->value())) + "\n";
      } else if (const auto gb = child.gauge_cb.lock()) {
        out += name + key + " " + render_value(gb->fn()) + "\n";
      } else if (const auto h = child.histogram.lock()) {
        const Histogram::Snapshot s = h->snapshot();
        // `_bucket` samples are cumulative, closed by the mandatory +Inf.
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < s.counts.size(); ++b) {
          cumulative += s.counts[b];
          std::vector<Label> bucket_labels = child.labels;
          bucket_labels.push_back(
              {"le", b < s.bounds.size() ? render_value(s.bounds[b])
                                         : "+Inf"});
          out += name + "_bucket" + label_key(std::move(bucket_labels)) +
                 " " + render_value(static_cast<double>(cumulative)) + "\n";
        }
        out += name + "_sum" + key + " " + render_value(s.sum) + "\n";
        out += name + "_count" + key + " " +
               render_value(static_cast<double>(s.count)) + "\n";
      }
    }
    ++family_it;
  }
  return out;
}

std::size_t Registry::family_count() {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t live = 0;
  for (auto& [name, family] : families_) {
    for (auto it = family.children.begin(); it != family.children.end();) {
      it = it->second.expired() ? family.children.erase(it) : std::next(it);
    }
    if (!family.children.empty()) ++live;
  }
  return live;
}

Registry& registry() {
  static Registry* instance = new Registry();  // never destroyed: metric
  return *instance;  // owners may outlive static destruction order
}

}  // namespace locald::obs
