// Process-wide metrics registry: the one place every subsystem reports
// operational counters, gauges, and latency histograms into, and the one
// source both metric surfaces render from — `GET /metrics` (Prometheus text
// exposition format 0.0.4) and the `/v1/metrics` JSON document.
//
// Design:
//  - Instrument types are lock-free on the hot path. `Counter` shards its
//    value across cache-line-padded atomic slots picked by thread identity,
//    so concurrent increments from the thread pool never bounce one cache
//    line; `value()` sums the slots. `Histogram` keeps fixed bucket bounds
//    chosen at registration and atomic per-bucket counts, so `observe` is a
//    couple of relaxed atomic adds.
//  - Registration is the cold path (mutex-guarded). `Registry` hands out
//    `shared_ptr` instruments and keeps only weak references: dropping the
//    last owner handle unregisters the metric, so per-run components (a CLI
//    scenario's cache, a test's server) clean up after themselves.
//    Re-registering a live (name, labels) pair replaces the exported child
//    — "last registration wins" — which is what lets sequential `Server`
//    instances in one process each export fresh zero-based counters.
//  - Callback metrics (`counter_fn`, `gauge_fn`) bridge components whose
//    source of truth is an existing atomic (canonicalization counters,
//    `VerdictCache::Stats`, queue depths): the value is pulled at
//    collection time, never duplicated.
//
// Determinism contract: nothing in this registry may feed a deterministic
// document. Metrics are scheduling-dependent by nature (cache hit counts,
// latencies, queue depths) and belong only to the volatile surfaces —
// `/v1/metrics`, `GET /metrics`, access logs, traces. The byte-gated JSON
// documents (run/sweep/bench defaults) must render identically whether the
// registry is busy or empty; tests enforce this.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace locald::obs {

struct Label {
  std::string name;
  std::string value;
};

// Monotonic counter, sharded across padded atomic slots so hammering from
// many pool threads scales without cache-line contention.
class Counter {
 public:
  void add(std::uint64_t delta = 1);
  std::uint64_t value() const;

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> v{0};
  };
  static constexpr std::size_t kSlots = 16;
  Slot slots_[kSlots];
};

// Point-in-time signed value (queue depths, entry counts).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Fixed-bucket histogram: bounds are upper limits (`le`), strictly
// increasing, with an implicit +Inf bucket appended. `observe` is two
// relaxed atomic adds; `snapshot` returns per-bucket (non-cumulative)
// counts plus the exact total count and sum.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  struct Snapshot {
    std::vector<double> bounds;         // finite bounds; +Inf implied last
    std::vector<std::uint64_t> counts;  // bounds.size() + 1 entries
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  Snapshot snapshot() const;

  // {0.001, 0.005, 0.025, 0.1, 0.5, 1, 5, 10} seconds — the default grid
  // for request/stage latencies.
  static const std::vector<double>& default_latency_buckets_seconds();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};  // CAS-loop add (pre-C++20 portable)
};

enum class MetricType { counter, gauge, histogram };

// Opaque keep-alive handle for callback registrations: the registration
// lives exactly as long as some copy of the handle does.
using MetricHandle = std::shared_ptr<void>;

class Registry {
 public:
  // Owned instruments. `name` must match [a-zA-Z_:][a-zA-Z0-9_:]* (checked;
  // violations throw BugError — a bad metric name is a locald defect).
  // Registering a (name, labels) pair that is already live replaces the
  // exported child; registering a live name with a different type throws.
  std::shared_ptr<Counter> counter(const std::string& name,
                                   const std::string& help,
                                   std::vector<Label> labels = {});
  std::shared_ptr<Gauge> gauge(const std::string& name,
                               const std::string& help,
                               std::vector<Label> labels = {});
  std::shared_ptr<Histogram> histogram(const std::string& name,
                                       const std::string& help,
                                       std::vector<double> upper_bounds,
                                       std::vector<Label> labels = {});

  // Callback instruments: the value is pulled from `fn` at collection time.
  // The returned handle is the registration's lifetime.
  MetricHandle counter_fn(const std::string& name, const std::string& help,
                          std::function<std::uint64_t()> fn,
                          std::vector<Label> labels = {});
  MetricHandle gauge_fn(const std::string& name, const std::string& help,
                        std::function<double()> fn,
                        std::vector<Label> labels = {});

  // Prometheus text exposition format 0.0.4: families sorted by name, one
  // `# HELP` + `# TYPE` pair per family, children sorted by label set,
  // label values escaped (\\, \", \n). Expired (dropped-handle) children
  // are pruned as a side effect.
  std::string render_prometheus();

  // Number of live metric families (expired children pruned); for tests.
  std::size_t family_count();

 private:
  struct CallbackCounter {
    std::function<std::uint64_t()> fn;
  };
  struct CallbackGauge {
    std::function<double()> fn;
  };
  struct Child {
    std::vector<Label> labels;
    // Exactly one engaged, matching the family type.
    std::weak_ptr<Counter> counter;
    std::weak_ptr<Gauge> gauge;
    std::weak_ptr<Histogram> histogram;
    std::weak_ptr<CallbackCounter> counter_cb;
    std::weak_ptr<CallbackGauge> gauge_cb;
    bool expired() const;
  };
  struct Family {
    std::string help;
    MetricType type = MetricType::counter;
    // Keyed by the canonical label serialization, so iteration (and thus
    // exposition order) is deterministic.
    std::map<std::string, Child> children;
  };

  Family& family_for(const std::string& name, const std::string& help,
                     MetricType type);

  std::mutex mu_;
  std::map<std::string, Family> families_;
};

// The process-wide registry every subsystem registers into.
Registry& registry();

// Canonical serialization of a label set: sorted by label name,
// `{k="v",...}` with Prometheus escaping; empty string for no labels.
std::string label_key(std::vector<Label> labels);

// Prometheus escaping for HELP text (\\ and \n) and label values
// (\\, \" and \n).
std::string escape_help(const std::string& s);
std::string escape_label_value(const std::string& s);

}  // namespace locald::obs
