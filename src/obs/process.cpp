#include "obs/process.h"

#include <chrono>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace locald::obs {

namespace {

std::chrono::steady_clock::time_point& uptime_anchor() {
  static std::chrono::steady_clock::time_point anchor =
      std::chrono::steady_clock::now();
  return anchor;
}

}  // namespace

std::uint64_t peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss) / 1024;  // bytes
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // KiB
#endif
#else
  return 0;
#endif
}

double uptime_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       uptime_anchor())
      .count();
}

void anchor_uptime() { uptime_anchor() = std::chrono::steady_clock::now(); }

}  // namespace locald::obs
