// Process-level observability facts: uptime, peak RSS. Shared by `locald
// bench --timing`, the `/v1/metrics` "process" section, and the Prometheus
// surface so all three report the same numbers.
#pragma once

#include <cstdint>

namespace locald::obs {

// Peak resident set size in KiB (getrusage ru_maxrss); 0 if unavailable.
std::uint64_t peak_rss_kb();

// Seconds since this process first asked for its uptime (a static
// steady_clock anchor; calling early in main pins it to process start).
double uptime_seconds();

// Forces the uptime anchor to "now". Called once at the top of main so
// uptime measures the process, not the first metrics scrape.
void anchor_uptime();

}  // namespace locald::obs
