// The one stopwatch for every `--timing` measurement. Monotonic by
// construction: `steady_clock` is statically asserted, so no duration in a
// timing table can go negative when NTP steps the wall clock mid-run.
#pragma once

#include <chrono>

namespace locald::obs {

class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady,
                "timing durations must come from a monotonic clock");

  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  Clock::time_point start_;
};

}  // namespace locald::obs
