#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "support/format.h"

namespace locald::obs {

namespace {

struct Event {
  const char* name;
  std::string detail;
  std::int64_t start_us;
  std::int64_t dur_us;
  std::uint32_t tid;
  int depth;
};

// One buffer per thread, owned jointly by the thread (via a thread_local
// shared_ptr) and the session registry (so events survive thread exit until
// the session is drained). The per-buffer mutex is uncontended on the append
// path — only the draining thread ever competes for it.
struct ThreadBuf {
  std::mutex mu;
  std::uint32_t tid = 0;
  std::vector<Event> events;
};

struct Session {
  std::mutex mu;  // guards buffers/next_tid/generation
  std::vector<std::shared_ptr<ThreadBuf>> buffers;
  std::uint32_t next_tid = 0;
  // Bumped by tracing_start(); a thread whose cached buffer carries an older
  // generation re-registers, so stale events from a previous session never
  // leak into the next one.
  std::uint64_t generation = 0;
};

std::atomic<bool> g_enabled{false};
std::atomic<std::int64_t> g_epoch_ns{0};

Session& session() {
  static Session* s = new Session();  // leaked: spans may outlive statics
  return *s;
}

struct LocalBuf {
  std::shared_ptr<ThreadBuf> buf;
  std::uint64_t generation = 0;
};

ThreadBuf& thread_buf() {
  static thread_local LocalBuf local;
  Session& s = session();
  std::lock_guard<std::mutex> lk(s.mu);
  if (!local.buf || local.generation != s.generation) {
    local.buf = std::make_shared<ThreadBuf>();
    local.buf->tid = s.next_tid++;
    local.generation = s.generation;
    s.buffers.push_back(local.buf);
  }
  return *local.buf;
}

thread_local int t_depth = 0;

std::int64_t now_us_since_epoch() {
  const std::int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return (now_ns - g_epoch_ns.load(std::memory_order_relaxed)) / 1000;
}

}  // namespace

bool tracing_active() { return g_enabled.load(std::memory_order_relaxed); }

void tracing_start() {
  Session& s = session();
  {
    std::lock_guard<std::mutex> lk(s.mu);
    s.buffers.clear();
    s.next_tid = 0;
    ++s.generation;
  }
  g_epoch_ns.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now().time_since_epoch())
                       .count(),
                   std::memory_order_relaxed);
  g_enabled.store(true, std::memory_order_release);
}

std::string tracing_stop_json() {
  g_enabled.store(false, std::memory_order_release);
  std::vector<std::shared_ptr<ThreadBuf>> buffers;
  {
    Session& s = session();
    std::lock_guard<std::mutex> lk(s.mu);
    buffers = s.buffers;
  }
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lk(buf->mu);
    for (const Event& e : buf->events) {
      if (!first) out += ",";
      first = false;
      out += "{\"ph\":\"X\",\"pid\":1,\"tid\":";
      out += std::to_string(e.tid);
      out += ",\"ts\":";
      out += std::to_string(e.start_us);
      out += ",\"dur\":";
      out += std::to_string(e.dur_us);
      out += ",\"name\":";
      out += json_quote(e.name);
      out += ",\"args\":{\"depth\":";
      out += std::to_string(e.depth);
      if (!e.detail.empty()) {
        out += ",\"detail\":";
        out += json_quote(e.detail);
      }
      out += "}}";
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool tracing_stop_to_file(const std::string& path, std::string* error) {
  const std::string doc = tracing_stop_json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open trace file: " + path;
    return false;
  }
  const std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  const bool ok = written == doc.size() && std::fclose(f) == 0;
  if (!ok && error != nullptr) *error = "short write to trace file: " + path;
  return ok;
}

std::size_t tracing_event_count() {
  Session& s = session();
  std::lock_guard<std::mutex> lk(s.mu);
  std::size_t total = 0;
  for (const auto& buf : s.buffers) {
    std::lock_guard<std::mutex> blk(buf->mu);
    total += buf->events.size();
  }
  return total;
}

Span::Span(const char* name) : Span(name, std::string()) {}

Span::Span(const char* name, std::string detail) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  active_ = true;
  name_ = name;
  detail_ = std::move(detail);
  depth_ = t_depth++;
  start_us_ = now_us_since_epoch();
}

Span::~Span() {
  if (!active_) return;
  --t_depth;
  // A session stopping mid-span drops the event: the buffer it would land
  // in may already be drained, and a truncated session is volatile output
  // anyway.
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  const std::int64_t end_us = now_us_since_epoch();
  ThreadBuf& buf = thread_buf();
  std::lock_guard<std::mutex> lk(buf.mu);
  buf.events.push_back(Event{name_, std::move(detail_), start_us_,
                             end_us - start_us_, buf.tid, depth_});
}

}  // namespace locald::obs
