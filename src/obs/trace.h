// Span-based tracing with Chrome trace_event output.
//
// A `Span` is an RAII stage marker: construction records the start, the
// destructor records a complete event (name, start, duration, thread,
// nesting depth) into a per-thread buffer. Spans on one thread nest by
// construction — the destructor of an inner span always runs before its
// enclosing span's — so the emitted events satisfy the Chrome trace
// containment invariant (two events on one thread are either disjoint or
// one contains the other) and render as a flame graph in `chrome://tracing`
// or Perfetto (https://ui.perfetto.dev, open the file directly).
//
// Collection is process-wide and opt-in: until `tracing_start()` runs,
// constructing a span is one relaxed atomic load and no allocation — cheap
// enough to leave instrumentation permanently in hot paths like the census
// stages. While active, each thread appends to its own buffer under a
// per-thread mutex (uncontended except at drain time), so tracing never
// serializes the thread pool. `tracing_stop_json()` disables collection and
// renders everything buffered as `{"traceEvents": [...]}` JSON.
//
// Determinism contract: spans are a pure side channel. They observe wall
// time but never feed a deterministic document — `--trace-out` writes to
// its own file, and the byte-gated JSON on stdout must be identical with
// tracing on or off (enforced by tests and the CI trace gate).
#pragma once

#include <cstdint>
#include <string>

namespace locald::obs {

// True while a trace session is collecting.
bool tracing_active();

// Clears previously buffered events and enables collection. Start/stop are
// not reentrant; callers own the "one session at a time" discipline (the
// CLI starts one per invocation, the server one per lifetime).
void tracing_start();

// Disables collection, drains every thread's buffer, and renders the
// session as a Chrome trace_event JSON document. Safe to call with no
// session active (returns an empty-trace document).
std::string tracing_stop_json();

// `tracing_stop_json` written to `path`. Returns false and fills `*error`
// when the file cannot be written.
bool tracing_stop_to_file(const std::string& path, std::string* error);

// Number of events buffered so far (racy while threads append; exact once
// collection is disabled). For tests and flush heuristics.
std::size_t tracing_event_count();

class Span {
 public:
  // `name` must outlive the trace session — string literals in practice.
  // `detail` is an optional free-form argument shown in the trace viewer
  // (kept out of the name so event names stay low-cardinality).
  explicit Span(const char* name);
  Span(const char* name, std::string detail);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_ = false;
  const char* name_ = nullptr;
  std::string detail_;
  std::int64_t start_us_ = 0;
  int depth_ = 0;
};

}  // namespace locald::obs
