#include "props/properties.h"

#include "graph/algorithms.h"
#include "support/format.h"

namespace locald::props {

using local::BallView;
using local::LabeledGraph;
using local::LambdaProperty;
using local::Verdict;

namespace {

// Field 0 of a node's label, with a checked arity.
std::int64_t field0(const BallView& ball, graph::NodeId v) {
  LOCALD_CHECK(ball.label(v).size() >= 1, "property expects field 0");
  return ball.label(v).at(0);
}

}  // namespace

std::unique_ptr<local::Property> proper_coloring_property(int k) {
  LOCALD_CHECK(k >= 1, "need at least one colour");
  return std::make_unique<LambdaProperty>(
      cat("proper-", k, "-coloring"), [k](const LabeledGraph& g) {
        for (graph::NodeId v = 0; v < g.node_count(); ++v) {
          if (g.label(v).size() < 1) return false;
          const auto c = g.label(v).at(0);
          if (c < 0 || c >= k) return false;
          for (graph::NodeId w : g.graph().neighbors(v)) {
            if (g.label(w).size() >= 1 && g.label(w).at(0) == c) return false;
          }
        }
        return true;
      });
}

std::unique_ptr<local::LocalAlgorithm> proper_coloring_decider(int k) {
  LOCALD_CHECK(k >= 1, "need at least one colour");
  return local::make_oblivious(
      cat("decide-proper-", k, "-coloring"), 1, [k](const BallView& ball) {
        if (ball.center_label().size() < 1) return Verdict::no;
        const auto c = ball.center_label().at(0);
        if (c < 0 || c >= k) return Verdict::no;
        for (graph::NodeId w : ball.g.neighbors(ball.center)) {
          if (field0(ball, w) == c) return Verdict::no;
        }
        return Verdict::yes;
      });
}

std::unique_ptr<local::Property> mis_property() {
  return std::make_unique<LambdaProperty>(
      "maximal-independent-set", [](const LabeledGraph& g) {
        for (graph::NodeId v = 0; v < g.node_count(); ++v) {
          if (g.label(v).size() < 1) return false;
          const auto x = g.label(v).at(0);
          if (x != 0 && x != 1) return false;
        }
        for (graph::NodeId v = 0; v < g.node_count(); ++v) {
          const bool in = g.label(v).at(0) == 1;
          bool neighbor_in = false;
          for (graph::NodeId w : g.graph().neighbors(v)) {
            if (g.label(w).at(0) == 1) {
              neighbor_in = true;
              if (in) return false;  // independence violated
            }
          }
          if (!in && !neighbor_in) return false;  // maximality violated
        }
        return true;
      });
}

std::unique_ptr<local::LocalAlgorithm> mis_decider() {
  return local::make_oblivious("decide-mis", 1, [](const BallView& ball) {
    if (ball.center_label().size() < 1) return Verdict::no;
    const auto x = ball.center_label().at(0);
    if (x != 0 && x != 1) return Verdict::no;
    bool neighbor_in = false;
    for (graph::NodeId w : ball.g.neighbors(ball.center)) {
      const auto y = field0(ball, w);
      if (y != 0 && y != 1) return Verdict::no;
      if (y == 1) {
        neighbor_in = true;
      }
    }
    if (x == 1 && neighbor_in) return Verdict::no;   // not independent
    if (x == 0 && !neighbor_in) return Verdict::no;  // not maximal
    return Verdict::yes;
  });
}

std::unique_ptr<local::Property> agreement_property() {
  return std::make_unique<LambdaProperty>(
      "label-agreement", [](const LabeledGraph& g) {
        for (graph::NodeId v = 0; v < g.node_count(); ++v) {
          if (g.label(v).size() < 1) return false;
          if (g.label(v).at(0) != g.label(0).at(0)) return false;
        }
        return g.node_count() > 0;
      });
}

std::unique_ptr<local::LocalAlgorithm> agreement_decider() {
  return local::make_oblivious("decide-agreement", 1, [](const BallView& ball) {
    if (ball.center_label().size() < 1) return Verdict::no;
    const auto x = ball.center_label().at(0);
    for (graph::NodeId w : ball.g.neighbors(ball.center)) {
      if (field0(ball, w) != x) return Verdict::no;
    }
    return Verdict::yes;
  });
}

std::unique_ptr<local::Property> bounded_degree_property(int d) {
  LOCALD_CHECK(d >= 0, "degree bound must be non-negative");
  return std::make_unique<LambdaProperty>(
      cat("max-degree-", d), [d](const LabeledGraph& g) {
        return g.graph().max_degree() <= d;
      });
}

std::unique_ptr<local::LocalAlgorithm> bounded_degree_decider(int d) {
  LOCALD_CHECK(d >= 0, "degree bound must be non-negative");
  return local::make_oblivious(
      cat("decide-max-degree-", d), 1, [d](const BallView& ball) {
        return ball.g.degree(ball.center) <= d ? Verdict::yes : Verdict::no;
      });
}

std::unique_ptr<local::Property> cycle_property() {
  return std::make_unique<LambdaProperty>("is-cycle", [](const LabeledGraph& g) {
    return graph::is_cycle_graph(g.graph());
  });
}

std::unique_ptr<local::LocalAlgorithm> cycle_decider() {
  return local::make_oblivious("decide-is-cycle", 1, [](const BallView& ball) {
    // Degree exactly 2 everywhere characterizes cycles among connected
    // graphs (the paper's standing promise); also rule out the triangle-free
    // violation of a doubled edge via simplicity of Graph.
    return ball.g.degree(ball.center) == 2 ? Verdict::yes : Verdict::no;
  });
}

}  // namespace locald::props
