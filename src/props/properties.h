// Example labelled-graph properties (Section 1.2's examples) with paired
// global oracles and Id-oblivious local deciders.
//
// These serve three purposes: they are the quickstart material for the
// library, they exercise the decision framework in tests, and they are the
// LD* baselines — properties where identifiers are provably unnecessary —
// against which the paper's identifier-hungry properties stand out.
//
// Label conventions are documented per property; all deciders here are
// Id-oblivious and have horizon 1 (a radius-1 ball includes the edges among
// the centre's neighbours).
#pragma once

#include <memory>

#include "local/algorithm.h"
#include "local/property.h"

namespace locald::props {

// (G, x) with x(v) = colour in field 0. Member iff x is a proper colouring
// with colours in [0, k).
std::unique_ptr<local::Property> proper_coloring_property(int k);
std::unique_ptr<local::LocalAlgorithm> proper_coloring_decider(int k);

// x(v) in {0, 1} (field 0). Member iff the 1-nodes form a maximal
// independent set.
std::unique_ptr<local::Property> mis_property();
std::unique_ptr<local::LocalAlgorithm> mis_decider();

// Member iff all nodes carry the same field-0 value. Locally decidable on
// connected inputs: disagreement must occur across some edge.
std::unique_ptr<local::Property> agreement_property();
std::unique_ptr<local::LocalAlgorithm> agreement_decider();

// Member iff every degree is at most d (labels ignored).
std::unique_ptr<local::Property> bounded_degree_property(int d);
std::unique_ptr<local::LocalAlgorithm> bounded_degree_decider(int d);

// Member iff G is a cycle (labels ignored). Under the paper's connectivity
// promise "every node has degree exactly 2" decides this locally.
std::unique_ptr<local::Property> cycle_property();
std::unique_ptr<local::LocalAlgorithm> cycle_decider();

}  // namespace locald::props
