#include "server/api.h"

#include <limits>
#include <sstream>

#include "cli/sweep.h"
#include "gen/family.h"
#include "local/fault_profile.h"
#include "obs/trace.h"
#include "support/check.h"
#include "support/format.h"
#include "support/json.h"
#include "support/schema.h"

namespace locald::server {

namespace {

// Field accessors with request-shaped error messages (they surface to
// clients verbatim inside the 400 body).
std::uint64_t take_seed(const JsonValue& v, const char* field) {
  LOCALD_CHECK(v.is_integer(), cat("field \"", field,
                                   "\" must be a non-negative integer"));
  const std::int64_t n = v.as_integer();
  LOCALD_CHECK(n >= 0, cat("field \"", field, "\" must be non-negative"));
  return static_cast<std::uint64_t>(n);
}

int take_count(const JsonValue& v, const char* field) {
  LOCALD_CHECK(v.is_integer(), cat("field \"", field,
                                   "\" must be a non-negative integer"));
  const std::int64_t n = v.as_integer();
  LOCALD_CHECK(n >= 0 && n <= std::numeric_limits<int>::max(),
               cat("field \"", field, "\" is out of range"));
  return static_cast<int>(n);
}

JsonValue parse_object_body(const std::string& body) {
  LOCALD_CHECK(!body.empty(), "request body must be a JSON object");
  const JsonValue root = parse_json(body);
  LOCALD_CHECK(root.is_object(), "request body must be a JSON object");
  return root;
}

std::string take_scenario_name(const JsonValue& root) {
  const JsonValue* name = root.find("scenario");
  LOCALD_CHECK(name != nullptr, "field \"scenario\" is required");
  LOCALD_CHECK(name->is_string(), "field \"scenario\" must be a string");
  LOCALD_CHECK(!name->as_string().empty(),
               "field \"scenario\" must be non-empty");
  return name->as_string();
}

std::string take_family(const JsonValue& root) {
  const JsonValue* family = root.find("family");
  if (family == nullptr) {
    return {};
  }
  LOCALD_CHECK(family->is_string(), "field \"family\" must be a string");
  LOCALD_CHECK(!family->as_string().empty(),
               "field \"family\" must be a non-empty selector "
               "(see /v1/families)");
  return family->as_string();
}

std::string take_fault_profile(const JsonValue& root) {
  const JsonValue* faults = root.find("fault_profile");
  if (faults == nullptr) {
    return {};
  }
  LOCALD_CHECK(faults->is_string(),
               "field \"fault_profile\" must be a string");
  LOCALD_CHECK(!faults->as_string().empty(),
               "field \"fault_profile\" must be a non-empty selector "
               "(see /v1/faults)");
  return faults->as_string();
}

void reject_unknown_fields(const JsonValue& root,
                           std::initializer_list<const char*> known) {
  for (const auto& [key, value] : root.members()) {
    bool ok = false;
    for (const char* k : known) {
      ok = ok || key == k;
    }
    LOCALD_CHECK(ok, cat("unknown field ", json_quote(key)));
  }
}

}  // namespace

// A scenario must opt into family parameterization before a request may
// select one; checked before running anything so the mistake surfaces as a
// 400, not a half-run document (or a half-streamed one).
void check_family_supported(const cli::Scenario& scenario,
                            const std::string& family) {
  LOCALD_CHECK(family.empty() || !scenario.family_help.empty(),
               cat("scenario ", json_quote(scenario.name),
                   " does not take a family"));
}

void check_faults_supported(const cli::Scenario& scenario,
                            const std::string& fault_profile) {
  LOCALD_CHECK(fault_profile.empty() || !scenario.fault_help.empty(),
               cat("scenario ", json_quote(scenario.name),
                   " does not take a fault profile"));
}

RunRequest parse_run_request(const std::string& body) {
  const JsonValue root = parse_object_body(body);
  reject_unknown_fields(
      root, {"scenario", "seed", "size", "trials", "family", "fault_profile"});
  RunRequest req;
  req.scenario = take_scenario_name(root);
  if (const JsonValue* v = root.find("seed")) req.seed = take_seed(*v, "seed");
  if (const JsonValue* v = root.find("size")) req.size = take_count(*v, "size");
  if (const JsonValue* v = root.find("trials")) {
    req.trials = take_count(*v, "trials");
  }
  req.family = take_family(root);
  req.fault_profile = take_fault_profile(root);
  return req;
}

SweepRequest parse_sweep_request(const std::string& body) {
  const JsonValue root = parse_object_body(body);
  reject_unknown_fields(
      root, {"scenario", "seed", "sizes", "trials", "family", "fault_profile"});
  SweepRequest req;
  req.scenario = take_scenario_name(root);
  req.family = take_family(root);
  req.fault_profile = take_fault_profile(root);
  if (const JsonValue* v = root.find("seed")) req.seed = take_seed(*v, "seed");
  if (const JsonValue* v = root.find("trials")) {
    req.trials = take_count(*v, "trials");
  }
  if (const JsonValue* v = root.find("sizes")) {
    LOCALD_CHECK(v->is_array(), "field \"sizes\" must be an array");
    LOCALD_CHECK(!v->items().empty(),
                 "field \"sizes\" must hold at least one size");
    // A grid is bounded work per request; an enormous one is a typo or a
    // resource-exhaustion attempt, not a sweep.
    LOCALD_CHECK(v->items().size() <= 256,
                 "field \"sizes\" holds more than 256 cells");
    for (const JsonValue& item : v->items()) {
      req.sizes.push_back(take_count(item, "sizes"));
    }
  }
  return req;
}

std::string scenarios_document() {
  std::ostringstream out;
  JsonWriter w(out, 2);
  w.begin_object();
  w.key("tool");
  w.value("locald-list");
  w.key("schema_version");
  w.value(kSchemaVersion);
  w.key("scenarios");
  w.begin_array();
  for (const cli::Scenario& s : cli::scenario_registry()) {
    w.begin_object();
    w.key("name");
    w.value(s.name);
    w.key("paper_ref");
    w.value(s.paper_ref);
    w.key("summary");
    w.value(s.summary);
    w.key("size_help");
    w.value(s.size_help);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
  return out.str();
}

std::string families_document() {
  std::ostringstream out;
  JsonWriter w(out, 2);
  w.begin_object();
  w.key("tool");
  w.value("locald-families");
  w.key("schema_version");
  w.value(kSchemaVersion);
  w.key("families");
  w.begin_array();
  for (const gen::Family& f : gen::family_registry()) {
    w.begin_object();
    w.key("name");
    w.value(f.name);
    w.key("summary");
    w.value(f.summary);
    w.key("randomized");
    w.value(f.randomized);
    w.key("params");
    w.begin_array();
    for (const gen::ParamSpec& p : f.params) {
      w.begin_object();
      w.key("name");
      w.value(p.name);
      w.key("default");
      w.value(p.default_value);
      w.key("min");
      w.value(p.min_value);
      w.key("max");
      w.value(p.max_value);
      w.key("help");
      w.value(p.help);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
  return out.str();
}

std::string faults_document() {
  std::ostringstream out;
  JsonWriter w(out, 2);
  w.begin_object();
  w.key("tool");
  w.value("locald-faults");
  w.key("schema_version");
  w.value(kSchemaVersion);
  w.key("faults");
  w.begin_array();
  for (const local::FaultProfile& p : local::fault_registry()) {
    w.begin_object();
    w.key("name");
    w.value(p.name);
    w.key("summary");
    w.value(p.summary);
    w.key("params");
    w.begin_array();
    for (const local::FaultParamSpec& spec : p.params) {
      w.begin_object();
      w.key("name");
      w.value(spec.name);
      w.key("default");
      w.value(spec.default_value);
      w.key("min");
      w.value(spec.min_value);
      w.key("max");
      w.value(spec.max_value);
      w.key("help");
      w.value(spec.help);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
  return out.str();
}

std::string version_document() {
  std::ostringstream out;
  JsonWriter w(out, 2);
  w.begin_object();
  w.key("tool");
  w.value("locald-version");
  w.key("schema_version");
  w.value(kSchemaVersion);
  w.key("graph_core");
  w.value(kGraphCoreId);
  w.key("build");
  w.begin_object();
  w.key("compiler");
#ifdef __VERSION__
  w.value(__VERSION__);
#else
  w.value("unknown");
#endif
  w.key("standard");
  w.value(static_cast<std::int64_t>(__cplusplus));
  w.end_object();
  w.end_object();
  out << "\n";
  return out.str();
}

std::string run_document(const RunRequest& request,
                         const exec::ExecContext& exec, bool* ok_out) {
  const cli::Scenario* scenario = cli::find_scenario(request.scenario);
  LOCALD_CHECK(scenario != nullptr,
               cat("unknown scenario ", json_quote(request.scenario),
                   " (see /v1/scenarios or `locald list`)"));
  check_family_supported(*scenario, request.family);
  check_faults_supported(*scenario, request.fault_profile);

  cli::ScenarioOptions opts;
  opts.seed = request.seed;
  opts.size = request.size;
  opts.trials = request.trials;
  opts.family = request.family;
  opts.faults = request.fault_profile;
  opts.format = cli::OutputFormat::csv;  // the machine-readable renderer
  opts.exec = exec;

  std::ostringstream tables;
  bool ok = false;
  std::string error;
  try {
    obs::Span span("run-document", scenario->name);
    ok = scenario->run(opts, tables);
  } catch (const std::exception& e) {
    error = e.what();
  }
  if (ok_out != nullptr) *ok_out = ok;

  std::ostringstream out;
  JsonWriter w(out, 2);
  w.begin_object();
  w.key("tool");
  w.value("locald-run");
  w.key("schema_version");
  w.value(kSchemaVersion);
  w.key("scenario");
  w.value(scenario->name);
  w.key("paper_ref");
  w.value(scenario->paper_ref);
  w.key("seed");
  w.value(request.seed);
  w.key("size");
  w.value(request.size);
  w.key("trials");
  w.value(request.trials);
  if (!request.family.empty()) {
    w.key("family");
    w.value(request.family);
  }
  if (!request.fault_profile.empty()) {
    w.key("faults");
    w.value(request.fault_profile);
  }
  w.key("ok");
  w.value(ok);
  if (!error.empty()) {
    w.key("error");
    w.value(error);
  }
  // The scenario's own CSV tables, embedded verbatim (partial when the
  // scenario threw mid-run).
  w.key("output");
  w.value(tables.str());
  w.end_object();
  out << "\n";
  return out.str();
}

namespace {

cli::SweepOptions sweep_options_for(const SweepRequest& request,
                                    exec::ThreadPool* pool) {
  // Existence is checked here so the HTTP layer can answer 404 before
  // running (or streaming) anything; run_sweep re-checks internally.
  const cli::Scenario* scenario = cli::find_scenario(request.scenario);
  LOCALD_CHECK(scenario != nullptr,
               cat("unknown scenario ", json_quote(request.scenario),
                   " (see /v1/scenarios or `locald list`)"));
  check_family_supported(*scenario, request.family);
  check_faults_supported(*scenario, request.fault_profile);
  cli::SweepOptions sweep;
  sweep.seed = request.seed;
  sweep.sizes = request.sizes;
  sweep.trials = request.trials;
  sweep.family = request.family;
  sweep.faults = request.fault_profile;
  sweep.timing = false;  // scheduling-dependent fields never leave /v1/metrics
  sweep.pool = pool;
  return sweep;
}

}  // namespace

std::string sweep_document(const SweepRequest& request,
                           exec::ThreadPool* pool, bool* ok_out) {
  const cli::SweepOptions sweep = sweep_options_for(request, pool);
  std::ostringstream out;
  obs::Span span("sweep-document", request.scenario);
  const int exit_code = cli::run_sweep(request.scenario, sweep, out);
  if (ok_out != nullptr) *ok_out = exit_code == 0;
  return out.str();
}

void sweep_document_stream(
    const SweepRequest& request, exec::ThreadPool* pool,
    const std::function<void(const std::string&)>& emit, bool* ok_out) {
  const cli::SweepOptions sweep = sweep_options_for(request, pool);
  // One buffer, drained at every flush boundary: the emitted pieces are a
  // partition of exactly the bytes the buffered path returns, because both
  // paths run the identical writer over the identical stream.
  std::ostringstream out;
  const auto flush = [&] {
    std::string piece = out.str();
    if (!piece.empty()) {
      out.str({});
      emit(piece);
    }
  };
  const int exit_code = cli::run_sweep(request.scenario, sweep, out, flush);
  if (ok_out != nullptr) *ok_out = exit_code == 0;
}

std::string error_document(int status, const std::string& message) {
  std::ostringstream out;
  JsonWriter w(out, 2);
  w.begin_object();
  w.key("schema_version");
  w.value(kSchemaVersion);
  w.key("status");
  w.value(status);
  w.key("error");
  w.value(message);
  w.end_object();
  out << "\n";
  return out.str();
}

}  // namespace locald::server
