// The serving layer's JSON documents and request decoding, factored out of
// the socket code so `locald serve`, `locald list --format json`, and
// `locald run --format json` emit literally the same bytes.
//
// Determinism contract (inherited from the execution engine, see
// docs/ARCHITECTURE.md "Execution engine"): every document built here from a
// (scenario, seed, size, trials) tuple is a pure function of that tuple —
// no timestamps, no thread counts, no cache statistics. CI byte-compares a
// `POST /v1/run` response against the `locald run --format json` output at a
// different --threads value, so anything scheduling-dependent belongs in
// `/v1/metrics`, never here.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cli/scenario.h"
#include "exec/context.h"

namespace locald::server {

// Body of POST /v1/run, mirroring `cli::ScenarioOptions`. Defaults match
// the CLI flags' defaults so the two surfaces agree on omitted fields.
struct RunRequest {
  std::string scenario;
  std::uint64_t seed = 42;
  int size = 0;    // 0 = scenario default
  int trials = 0;  // 0 = scenario default
  // gen/family.h selector ("name:k=v,..."); empty = the scenario's built-in
  // topology. Only family-aware scenarios accept it (400 otherwise).
  std::string family;
  // local/fault_profile.h selector ("name:k=v,..."); empty = the scenario's
  // default profile. Only fault-aware scenarios accept it (400 otherwise).
  // The event engine's schedule is seeded, so fault-parameterized documents
  // keep the byte-identity contract.
  std::string fault_profile;
};

// Body of POST /v1/sweep, mirroring `cli::SweepOptions` minus the
// scheduling-affecting knobs (threads, timing) which the server owns.
struct SweepRequest {
  std::string scenario;
  std::uint64_t seed = 42;
  std::vector<int> sizes;  // empty = the scenario's default size
  int trials = 0;
  std::string family;         // as in RunRequest; handed to every cell
  std::string fault_profile;  // as in RunRequest; handed to every cell
};

// Decode a request body. Both throw `Error` (surfaced as HTTP 400) on
// malformed JSON, wrong field types, negative values, or unknown fields —
// unknown fields are rejected so a typoed "trails" cannot silently run a
// default-parameter sweep.
RunRequest parse_run_request(const std::string& body);
SweepRequest parse_sweep_request(const std::string& body);

// The scenario catalog: GET /v1/scenarios and `locald list --format json`.
std::string scenarios_document();

// The workload generator's family catalog (names, parameter schemas, size
// mapping availability): GET /v1/families and
// `locald list --families --format json`.
std::string families_document();

// The event engine's fault-profile catalog (names, parameter schemas):
// GET /v1/faults and `locald list --faults --format json`.
std::string faults_document();

// GET /v1/version: build information (compiler, language standard), the
// document schema version every /v1 response carries, and the graph-core
// identifier (support/schema.h). The one document a client may poll to
// decide whether its parser still matches the server.
std::string version_document();

// One scenario run: POST /v1/run and `locald run --format json`. Executes
// the scenario with `exec` (shared pool + cache on the server; per-run on
// the CLI — the engine contract makes the bytes identical either way) and
// reports whether the paper's prediction was reproduced. `ok_out`, when
// non-null, receives the verdict for exit-code plumbing.
std::string run_document(const RunRequest& request,
                         const exec::ExecContext& exec, bool* ok_out);

// A size-grid sweep: POST /v1/sweep. Delegates to `cli::run_sweep` with
// timing disabled, so the body is the same deterministic document the CLI
// prints (cells keep their fresh per-cell caches). `pool` is the server's
// process-wide pool (null = serial). `ok_out` as above.
std::string sweep_document(const SweepRequest& request,
                           exec::ThreadPool* pool, bool* ok_out);

// Streamed form of `sweep_document`: the SAME bytes, handed to `emit` in
// pieces as cells finish (prelude, one piece per cell, postlude) instead of
// buffered whole — the chunked-transfer payload of a streamed /v1/sweep.
// Concatenating every `emit` piece reproduces `sweep_document`'s return
// value byte for byte. An `emit` that throws aborts the sweep and
// propagates (the serving layer stops computing for a vanished client).
void sweep_document_stream(const SweepRequest& request,
                           exec::ThreadPool* pool,
                           const std::function<void(const std::string&)>& emit,
                           bool* ok_out);

// Throws `Error` (HTTP 400) when `family` is non-empty but `scenario` is
// not family-parameterized. The serving layer runs this before committing
// to a streamed response head; the document builders re-check internally.
void check_family_supported(const cli::Scenario& scenario,
                            const std::string& family);

// Throws `Error` (HTTP 400) when `fault_profile` is non-empty but
// `scenario` is not fault-parameterized; same timing as
// check_family_supported.
void check_faults_supported(const cli::Scenario& scenario,
                            const std::string& fault_profile);

// {"error": ..., "status": N} — the uniform 4xx/5xx body.
std::string error_document(int status, const std::string& message);

}  // namespace locald::server
