#include "server/http.h"

#include <algorithm>
#include <cctype>

#include "support/format.h"

namespace locald::server {

namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

ParseResult fail(int status, std::string why) {
  ParseResult r;
  r.status = status;
  r.error = std::move(why);
  return r;
}

// RFC 9110 token characters; method names and header names use this set.
bool is_token(const std::string& s) {
  if (s.empty()) return false;
  for (unsigned char c : s) {
    const bool ok = std::isalnum(c) || c == '!' || c == '#' || c == '$' ||
                    c == '%' || c == '&' || c == '\'' || c == '*' ||
                    c == '+' || c == '-' || c == '.' || c == '^' ||
                    c == '_' || c == '`' || c == '|' || c == '~';
    if (!ok) return false;
  }
  return true;
}

// Chunk-size lines and trailer fields are framing overhead with no reason
// to be large; a bound keeps a hostile peer from growing them unboundedly.
constexpr std::size_t kMaxFramingLine = 1024;

// Incremental reader over (leftover bytes, then the ByteSource), tracking
// the consumed prefix so pipelined bytes past one request survive into the
// caller's leftover buffer.
struct WireReader {
  const ByteSource& source;
  std::string buf;
  std::size_t pos = 0;
  bool any_bytes = false;  // any byte of THIS request seen (incl. leftover)

  enum class Pull { ok, eof, err };
  Pull pull() {
    char chunk[4096];
    const long n = source(chunk, sizeof(chunk));
    if (n < 0) return Pull::err;
    if (n == 0) return Pull::eof;
    any_bytes = true;
    buf.append(chunk, static_cast<std::size_t>(n));
    return Pull::ok;
  }

  std::size_t available() const { return buf.size() - pos; }
};

}  // namespace

const std::string* HttpRequest::header(const std::string& lower_name) const {
  for (const auto& [name, value] : headers) {
    if (name == lower_name) return &value;
  }
  return nullptr;
}

std::string HttpRequest::path() const {
  const std::size_t q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

ParseResult read_http_request(const ByteSource& source,
                              const HttpLimits& limits,
                              std::string* leftover) {
  WireReader in{source, {}};
  if (leftover != nullptr && !leftover->empty()) {
    in.buf = std::move(*leftover);
    in.any_bytes = true;
    leftover->clear();
  }

  // Phase 1: accumulate until the blank line ending the head.
  std::size_t head_end = std::string::npos;
  while (true) {
    head_end = in.buf.find("\r\n\r\n", in.pos);
    if (head_end != std::string::npos) break;
    if (in.available() > limits.max_head_bytes) {
      return fail(431, "request head exceeds the supported maximum");
    }
    const WireReader::Pull p = in.pull();
    if (p == WireReader::Pull::err) {
      if (!in.any_bytes) {
        ParseResult r = fail(408, "idle connection timed out");
        r.idle_close = true;
        return r;
      }
      return fail(408, "timed out reading the request head");
    }
    if (p == WireReader::Pull::eof) {
      if (in.available() == 0) {
        // A clean EOF before any byte is the client hanging up between
        // requests, never a malformed request.
        ParseResult r = fail(400, "connection closed between requests");
        r.idle_close = true;
        return r;
      }
      return fail(400, "connection closed mid-head");
    }
  }
  if (head_end - in.pos > limits.max_head_bytes) {
    return fail(431, "request head exceeds the supported maximum");
  }

  // Phase 2: request line.
  ParseResult result;
  HttpRequest& req = result.request;
  const std::string head = in.buf.substr(in.pos, head_end - in.pos);
  in.pos = head_end + 4;
  std::size_t line_start = 0;
  auto next_line = [&]() -> std::string {
    if (line_start > head.size()) return std::string();
    std::size_t eol = head.find("\r\n", line_start);
    if (eol == std::string::npos) eol = head.size();
    std::string line = head.substr(line_start, eol - line_start);
    line_start = eol + 2;
    return line;
  };
  const std::string request_line = next_line();
  {
    const std::size_t sp1 = request_line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : request_line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        request_line.find(' ', sp2 + 1) != std::string::npos) {
      return fail(400, "malformed request line");
    }
    req.method = request_line.substr(0, sp1);
    req.target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    req.version = request_line.substr(sp2 + 1);
  }
  if (!is_token(req.method)) return fail(400, "malformed method");
  if (req.target.empty() || req.target[0] != '/') {
    return fail(400, "request target must be an absolute path");
  }
  if (req.version != "HTTP/1.1" && req.version != "HTTP/1.0") {
    return fail(400, "unsupported HTTP version");
  }

  // Phase 3: headers.
  while (line_start <= head.size()) {
    const std::string line = next_line();
    if (line.empty()) break;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) return fail(400, "malformed header line");
    const std::string name = line.substr(0, colon);
    if (!is_token(name)) return fail(400, "malformed header name");
    req.headers.emplace_back(to_lower(name), trim(line.substr(colon + 1)));
  }

  // Phase 4: the body — Content-Length or chunked, never both (a message
  // with two length declarations is the classic smuggling vector).
  const std::string* te = req.header("transfer-encoding");
  const std::string* cl = req.header("content-length");
  if (te != nullptr && cl != nullptr) {
    return fail(400, "both Transfer-Encoding and Content-Length present");
  }

  // Reads a CRLF-terminated framing line (chunk size or trailer field).
  // Returns 0 on success or the failure status.
  auto read_line = [&](std::string* line) -> int {
    while (true) {
      const std::size_t eol = in.buf.find("\r\n", in.pos);
      if (eol != std::string::npos) {
        if (eol - in.pos > kMaxFramingLine) return 400;
        *line = in.buf.substr(in.pos, eol - in.pos);
        in.pos = eol + 2;
        return 0;
      }
      if (in.available() > kMaxFramingLine) return 400;
      const WireReader::Pull p = in.pull();
      if (p == WireReader::Pull::err) return 408;
      if (p == WireReader::Pull::eof) return 400;
    }
  };

  if (te != nullptr) {
    if (to_lower(trim(*te)) != "chunked") {
      return fail(501, cat("transfer coding ", *te, " is not implemented"));
    }
    while (true) {
      std::string line;
      if (const int s = read_line(&line)) {
        return fail(s, s == 408 ? "timed out reading a chunk size"
                                : "malformed chunk-size line");
      }
      // Chunk extensions (";name=value") are legal framing noise: ignored.
      std::string size_str = trim(line.substr(0, line.find(';')));
      if (size_str.empty() || size_str.size() > 8 ||
          size_str.find_first_not_of("0123456789abcdefABCDEF") !=
              std::string::npos) {
        return fail(400, "malformed chunk size");
      }
      const std::size_t chunk_len = std::stoull(size_str, nullptr, 16);
      if (chunk_len == 0) break;
      if (req.body.size() + chunk_len > limits.max_body_bytes) {
        return fail(413, cat("chunked body exceeds the ",
                             limits.max_body_bytes, "-byte maximum"));
      }
      while (in.available() < chunk_len + 2) {
        const WireReader::Pull p = in.pull();
        if (p == WireReader::Pull::err) {
          return fail(408, "timed out reading chunk data");
        }
        if (p == WireReader::Pull::eof) {
          return fail(400, "connection closed mid-chunk");
        }
      }
      req.body.append(in.buf, in.pos, chunk_len);
      in.pos += chunk_len;
      if (in.buf.compare(in.pos, 2, "\r\n") != 0) {
        return fail(400, "chunk data not terminated by CRLF");
      }
      in.pos += 2;
    }
    // Trailer section: fields are read and discarded, bounded like the
    // size lines; the blank line ends the message.
    std::size_t trailer_bytes = 0;
    while (true) {
      std::string line;
      if (const int s = read_line(&line)) {
        return fail(s, s == 408 ? "timed out reading trailers"
                                : "malformed trailer section");
      }
      if (line.empty()) break;
      trailer_bytes += line.size();
      if (trailer_bytes > kMaxFramingLine) {
        return fail(400, "oversized trailer section");
      }
    }
  } else {
    // Content-Length (or no body), gated before any of it is buffered.
    std::size_t content_length = 0;
    if (cl != nullptr) {
      if (cl->empty() ||
          cl->find_first_not_of("0123456789") != std::string::npos ||
          cl->size() > 12) {
        return fail(400, "malformed Content-Length");
      }
      content_length = static_cast<std::size_t>(std::stoull(*cl));
      if (content_length > limits.max_body_bytes) {
        return fail(413, cat("request body of ", content_length,
                             " bytes exceeds the ", limits.max_body_bytes,
                             "-byte maximum"));
      }
    }
    const std::size_t take = std::min(content_length, in.available());
    req.body.assign(in.buf, in.pos, take);
    in.pos += take;
    while (req.body.size() < content_length) {
      const WireReader::Pull p = in.pull();
      if (p == WireReader::Pull::err) {
        return fail(408, "timed out reading the request body");
      }
      if (p == WireReader::Pull::eof) {
        return fail(400, "connection closed mid-body");
      }
      const std::size_t want =
          std::min(content_length - req.body.size(), in.available());
      req.body.append(in.buf, in.pos, want);
      in.pos += want;
    }
  }

  // Bytes past this request: pipelined next request on a keep-alive
  // connection, request smuggling on a one-shot one.
  if (leftover != nullptr) {
    leftover->assign(in.buf, in.pos, in.buf.size() - in.pos);
  } else if (in.available() > 0) {
    return fail(400, "bytes beyond the declared Content-Length");
  }
  return result;
}

bool request_keep_alive(const HttpRequest& request) {
  bool close_token = false;
  bool keep_token = false;
  if (const std::string* conn = request.header("connection")) {
    // The Connection header is a comma-separated token list.
    std::size_t start = 0;
    while (start <= conn->size()) {
      std::size_t comma = conn->find(',', start);
      if (comma == std::string::npos) comma = conn->size();
      const std::string token =
          to_lower(trim(conn->substr(start, comma - start)));
      close_token = close_token || token == "close";
      keep_token = keep_token || token == "keep-alive";
      start = comma + 1;
    }
  }
  if (close_token) return false;
  if (request.version == "HTTP/1.0") return keep_token;
  return true;  // HTTP/1.1 default
}

namespace {

std::string serialize_head_common(const HttpResponse& response) {
  std::string out;
  out += cat("HTTP/1.1 ", response.status, " ", status_reason(response.status),
             "\r\n");
  if (!response.content_type.empty()) {
    out += cat("Content-Type: ", response.content_type, "\r\n");
  }
  for (const auto& [name, value] : response.extra_headers) {
    out += cat(name, ": ", value, "\r\n");
  }
  return out;
}

}  // namespace

std::string serialize_http_response(const HttpResponse& response,
                                    bool keep_alive) {
  std::string out = serialize_head_common(response);
  out += cat("Content-Length: ", response.body.size(), "\r\n");
  out += keep_alive ? "Connection: keep-alive\r\n\r\n"
                    : "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

std::string serialize_http_response_head(const HttpResponse& response,
                                         bool keep_alive) {
  std::string out = serialize_head_common(response);
  out += "Transfer-Encoding: chunked\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n\r\n"
                    : "Connection: close\r\n\r\n";
  return out;
}

std::string encode_chunk(const std::string& data) {
  if (data.empty()) return {};
  static const char* hex = "0123456789abcdef";
  std::string size_hex;
  for (std::size_t v = data.size(); v != 0; v >>= 4) {
    size_hex.insert(size_hex.begin(), hex[v & 0xf]);
  }
  std::string out;
  out.reserve(size_hex.size() + data.size() + 4);
  out += size_hex;
  out += "\r\n";
  out += data;
  out += "\r\n";
  return out;
}

std::string last_chunk() { return "0\r\n\r\n"; }

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

}  // namespace locald::server
