#include "server/http.h"

#include <algorithm>
#include <cctype>

#include "support/format.h"

namespace locald::server {

namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

ParseResult fail(int status, std::string why) {
  ParseResult r;
  r.status = status;
  r.error = std::move(why);
  return r;
}

// RFC 9110 token characters; method names and header names use this set.
bool is_token(const std::string& s) {
  if (s.empty()) return false;
  for (unsigned char c : s) {
    const bool ok = std::isalnum(c) || c == '!' || c == '#' || c == '$' ||
                    c == '%' || c == '&' || c == '\'' || c == '*' ||
                    c == '+' || c == '-' || c == '.' || c == '^' ||
                    c == '_' || c == '`' || c == '|' || c == '~';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

const std::string* HttpRequest::header(const std::string& lower_name) const {
  for (const auto& [name, value] : headers) {
    if (name == lower_name) return &value;
  }
  return nullptr;
}

std::string HttpRequest::path() const {
  const std::size_t q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

ParseResult read_http_request(const ByteSource& source,
                              const HttpLimits& limits) {
  std::string buffer;
  char chunk[4096];

  // Phase 1: accumulate until the blank line ending the head.
  std::size_t head_end = std::string::npos;
  while (true) {
    head_end = buffer.find("\r\n\r\n");
    if (head_end != std::string::npos) break;
    if (buffer.size() > limits.max_head_bytes) {
      return fail(431, "request head exceeds the supported maximum");
    }
    const long n = source(chunk, sizeof(chunk));
    if (n < 0) return fail(408, "timed out reading the request head");
    if (n == 0) {
      return fail(400, buffer.empty() ? "empty request"
                                      : "connection closed mid-head");
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  if (head_end > limits.max_head_bytes) {
    return fail(431, "request head exceeds the supported maximum");
  }

  // Phase 2: request line.
  ParseResult result;
  HttpRequest& req = result.request;
  const std::string head = buffer.substr(0, head_end);
  std::size_t line_start = 0;
  auto next_line = [&]() -> std::string {
    if (line_start > head.size()) return std::string();
    std::size_t eol = head.find("\r\n", line_start);
    if (eol == std::string::npos) eol = head.size();
    std::string line = head.substr(line_start, eol - line_start);
    line_start = eol + 2;
    return line;
  };
  const std::string request_line = next_line();
  {
    const std::size_t sp1 = request_line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : request_line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        request_line.find(' ', sp2 + 1) != std::string::npos) {
      return fail(400, "malformed request line");
    }
    req.method = request_line.substr(0, sp1);
    req.target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    req.version = request_line.substr(sp2 + 1);
  }
  if (!is_token(req.method)) return fail(400, "malformed method");
  if (req.target.empty() || req.target[0] != '/') {
    return fail(400, "request target must be an absolute path");
  }
  if (req.version != "HTTP/1.1" && req.version != "HTTP/1.0") {
    return fail(400, "unsupported HTTP version");
  }

  // Phase 3: headers.
  while (line_start <= head.size()) {
    const std::string line = next_line();
    if (line.empty()) break;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) return fail(400, "malformed header line");
    const std::string name = line.substr(0, colon);
    if (!is_token(name)) return fail(400, "malformed header name");
    req.headers.emplace_back(to_lower(name), trim(line.substr(colon + 1)));
  }

  if (req.header("transfer-encoding") != nullptr) {
    return fail(501, "transfer encodings are not implemented");
  }

  // Phase 4: body, gated by Content-Length before any of it is buffered.
  std::size_t content_length = 0;
  if (const std::string* cl = req.header("content-length")) {
    if (cl->empty() ||
        cl->find_first_not_of("0123456789") != std::string::npos ||
        cl->size() > 12) {
      return fail(400, "malformed Content-Length");
    }
    content_length = static_cast<std::size_t>(std::stoull(*cl));
    if (content_length > limits.max_body_bytes) {
      return fail(413, cat("request body of ", content_length,
                           " bytes exceeds the ", limits.max_body_bytes,
                           "-byte maximum"));
    }
  }
  req.body = buffer.substr(head_end + 4);
  if (req.body.size() > content_length) {
    // One request per connection: bytes beyond the declared body have no
    // meaning here and hint at request smuggling, so reject them.
    return fail(400, "bytes beyond the declared Content-Length");
  }
  while (req.body.size() < content_length) {
    const std::size_t want = std::min(
        sizeof(chunk), content_length - req.body.size());
    const long n = source(chunk, want);
    if (n < 0) return fail(408, "timed out reading the request body");
    if (n == 0) return fail(400, "connection closed mid-body");
    req.body.append(chunk, static_cast<std::size_t>(n));
  }
  return result;
}

std::string serialize_http_response(const HttpResponse& response) {
  std::string out;
  out += cat("HTTP/1.1 ", response.status, " ", status_reason(response.status),
             "\r\n");
  if (!response.content_type.empty()) {
    out += cat("Content-Type: ", response.content_type, "\r\n");
  }
  for (const auto& [name, value] : response.extra_headers) {
    out += cat(name, ": ", value, "\r\n");
  }
  out += cat("Content-Length: ", response.body.size(), "\r\n");
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

}  // namespace locald::server
