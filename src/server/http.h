// HTTP/1.1 message layer for the embedded serving subsystem.
//
// `locald serve` speaks the subset of HTTP a JSON API needs behind curl or
// a load balancer: request line + headers + body in (Content-Length or
// chunked transfer coding), status line + headers + body out, persistent
// connections per RFC 7230 semantics. Keep-alive is negotiated per request
// (`request_keep_alive`): HTTP/1.1 persists unless the client sends
// `Connection: close`, HTTP/1.0 closes unless it sends
// `Connection: keep-alive`, and every response states the decision
// explicitly. Bytes a client pipelines beyond one request's end are carried
// into the next parse through the caller-owned `leftover` buffer instead of
// being discarded. Responses are either sized by Content-Length or streamed
// with `Transfer-Encoding: chunked` (the sweep endpoint emits one JSON cell
// per chunk); either way they carry no Date header, so identical requests
// produce byte-identical bytes-on-the-wire — the serving layer's core
// contract. There is still deliberately no TLS and no content negotiation:
// the server sits behind localhost or a fronting proxy.
//
// Parsing is fed through a `ByteSource` pull callback so the same code path
// is exercised by unit tests (string-backed source) and by the socket layer
// (recv-backed source).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace locald::server {

struct HttpRequest {
  std::string method;   // e.g. "GET"
  std::string target;   // request target as sent, e.g. "/v1/run?x=1"
  std::string version;  // e.g. "HTTP/1.1"
  // Names lower-cased at parse time (header names are case-insensitive).
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  // First header with this (lower-case) name; nullptr when absent.
  const std::string* header(const std::string& lower_name) const;
  // `target` with any query string stripped — what the router matches on.
  std::string path() const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::vector<std::pair<std::string, std::string>> extra_headers;
  std::string body;
};

// Bounds enforced while reading a request. Head covers the request line
// plus all headers; a Content-Length body is gated by the declared length
// before it is read, so an oversized upload is rejected without buffering
// it; a chunked body is gated cumulatively as chunks arrive.
struct HttpLimits {
  std::size_t max_head_bytes = 8 * 1024;
  std::size_t max_body_bytes = 1024 * 1024;
};

// Pull up to `len` bytes into `buf`; returns the count, 0 on orderly EOF,
// -1 on error/timeout.
using ByteSource = std::function<long(char* buf, std::size_t len)>;

// Outcome of reading one request: either a request (`status == 200`) or
// the 4xx the caller should answer with (`error` is the human-readable
// reason placed in the JSON error body).
struct ParseResult {
  int status = 200;
  std::string error;
  HttpRequest request;
  // True when the connection ended (orderly EOF or timeout) before ANY
  // byte of this request arrived — the normal end of a keep-alive
  // conversation, not a protocol error. The caller closes silently instead
  // of writing a 4xx into a connection nobody is speaking on.
  bool idle_close = false;
};

// Reads and parses exactly one request from `source` under `limits`.
//
// `leftover`, when non-null, is the keep-alive pipelining buffer: bytes it
// holds are consumed before `source` is pulled, and bytes past this
// request's end (the start of a pipelined next request) are left in it for
// the next call. When null, the connection is one-shot and any bytes
// beyond the declared body are rejected as request smuggling.
//
// Bodies arrive via Content-Length or `Transfer-Encoding: chunked` (chunk
// extensions are ignored, trailer fields are read and discarded); a request
// carrying both length declarations is rejected as a smuggling vector.
//
// Failure statuses: 400 (malformed framing, header syntax, or chunk
// framing), 408 (the source reported timeout/error mid-request), 413 (body
// beyond the body bound, declared or accumulated), 431 (head larger than
// the head bound), 501 (a transfer coding other than chunked).
ParseResult read_http_request(const ByteSource& source,
                              const HttpLimits& limits,
                              std::string* leftover = nullptr);

// RFC 7230 persistence negotiation for a parsed request: HTTP/1.1 persists
// unless the Connection header lists `close`; HTTP/1.0 closes unless it
// lists `keep-alive`.
bool request_keep_alive(const HttpRequest& request);

// Serializes status line, standard headers (Content-Type, Content-Length,
// Connection: keep-alive|close), any extra headers, and the body.
std::string serialize_http_response(const HttpResponse& response,
                                    bool keep_alive = false);

// The head of a chunked-streamed response: like serialize_http_response but
// with `Transfer-Encoding: chunked` in place of Content-Length and no body
// bytes. Follow with encode_chunk(...) frames and close with last_chunk().
std::string serialize_http_response_head(const HttpResponse& response,
                                         bool keep_alive);

// One chunked-transfer frame: hex size, CRLF, data, CRLF. Empty data
// returns an empty string (a zero-size frame is the terminator, which only
// last_chunk() may emit).
std::string encode_chunk(const std::string& data);

// The terminating zero chunk (no trailers).
std::string last_chunk();

// Canonical reason phrase for the status codes this server emits.
const char* status_reason(int status);

}  // namespace locald::server
