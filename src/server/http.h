// Minimal HTTP/1.1 message layer for the embedded serving subsystem.
//
// `locald serve` speaks just enough HTTP for a JSON API behind curl or a
// load balancer: request line + headers + Content-Length body in, status
// line + headers + body out, one request per connection (`Connection:
// close` on every response). There is deliberately no keep-alive, no
// chunked transfer, no TLS — the server sits behind localhost or a fronting
// proxy, and every feature left out is attack surface and nondeterminism
// left out. Responses carry no Date header so identical requests produce
// byte-identical responses, the serving layer's core contract.
//
// Parsing is fed through a `ByteSource` pull callback so the same code path
// is exercised by unit tests (string-backed source) and by the socket layer
// (recv-backed source).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace locald::server {

struct HttpRequest {
  std::string method;   // e.g. "GET"
  std::string target;   // request target as sent, e.g. "/v1/run?x=1"
  std::string version;  // e.g. "HTTP/1.1"
  // Names lower-cased at parse time (header names are case-insensitive).
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  // First header with this (lower-case) name; nullptr when absent.
  const std::string* header(const std::string& lower_name) const;
  // `target` with any query string stripped — what the router matches on.
  std::string path() const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::vector<std::pair<std::string, std::string>> extra_headers;
  std::string body;
};

// Bounds enforced while reading a request. Head covers the request line
// plus all headers; body is gated by Content-Length before it is read, so
// an oversized upload is rejected without buffering it.
struct HttpLimits {
  std::size_t max_head_bytes = 8 * 1024;
  std::size_t max_body_bytes = 1024 * 1024;
};

// Pull up to `len` bytes into `buf`; returns the count, 0 on orderly EOF,
// -1 on error/timeout.
using ByteSource = std::function<long(char* buf, std::size_t len)>;

// Outcome of reading one request: either a request (`status == 200`) or
// the 4xx the caller should answer with (`error` is the human-readable
// reason placed in the JSON error body).
struct ParseResult {
  int status = 200;
  std::string error;
  HttpRequest request;
};

// Reads and parses exactly one request from `source` under `limits`.
// Failure statuses: 400 (malformed framing or header syntax), 408 (the
// source reported timeout/error mid-request), 413 (Content-Length beyond
// the body bound), 431 (head larger than the head bound), 501 (transfer
// encodings this layer does not implement).
ParseResult read_http_request(const ByteSource& source,
                              const HttpLimits& limits);

// Serializes status line, standard headers (Content-Type, Content-Length,
// Connection: close), any extra headers, and the body.
std::string serialize_http_response(const HttpResponse& response);

// Canonical reason phrase for the status codes this server emits.
const char* status_reason(int status);

}  // namespace locald::server
