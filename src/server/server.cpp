#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>

#include "obs/process.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"
#include "server/api.h"
#include "support/check.h"
#include "support/format.h"
#include "support/schema.h"

namespace locald::server {

namespace {

std::string healthz_document() {
  std::ostringstream out;
  JsonWriter w(out, 2);
  w.begin_object();
  w.key("schema_version");
  w.value(kSchemaVersion);
  w.key("status");
  w.value("ok");
  w.end_object();
  out << "\n";
  return out.str();
}

std::string metrics_document(const MetricsSnapshot& m) {
  std::ostringstream out;
  JsonWriter w(out, 2);
  w.begin_object();
  w.key("tool");
  w.value("locald-serve");
  w.key("schema_version");
  w.value(kSchemaVersion);
  w.key("requests_total");
  w.value(m.requests_total);
  w.key("connections_total");
  w.value(m.connections_total);
  w.key("rejected_total");
  w.value(m.rejected_total);
  w.key("errors_total");
  w.value(m.errors_total);
  w.key("in_flight");
  w.value(m.in_flight);
  w.key("queue_depth");
  w.value(m.queue_depth);
  w.key("workers");
  w.value(m.workers);
  w.key("max_queue");
  w.value(m.max_queue);
  w.key("pool_parallelism");
  w.value(m.pool_parallelism);
  w.key("cache");
  w.begin_object();
  w.key("hits");
  w.value(m.cache.hits);
  w.key("store_hits");
  w.value(m.cache.store_hits);
  w.key("misses");
  w.value(m.cache.misses);
  w.key("entries");
  w.value(m.cache.entries);
  w.key("hit_rate");
  w.value(m.cache.hit_rate(), 4);
  w.key("resets");
  w.value(m.cache_resets);
  w.end_object();
  if (m.store_attached) {
    w.key("store");
    w.begin_object();
    w.key("path");
    w.value(m.store_path);
    w.key("role");
    w.value(m.store_follower ? "follower" : "writer");
    w.key("tail_refreshes");
    w.value(m.store.tail_refreshes);
    w.key("tail_records");
    w.value(m.store.tail_records);
    w.key("records_loaded");
    w.value(m.store.records_loaded);
    w.key("quarantined");
    w.value(m.store.quarantined);
    w.key("dropped_bytes");
    w.value(m.store.dropped_bytes);
    w.key("truncations");
    w.value(m.store.truncations);
    w.key("appended");
    w.value(m.store.appended);
    w.key("appended_bytes");
    w.value(m.store.appended_bytes);
    w.key("fsyncs");
    w.value(m.store.fsyncs);
    w.end_object();
  }
  w.key("canon");
  w.begin_object();
  w.key("forms");
  w.value(m.canon.forms);
  w.key("census_balls");
  w.value(m.canon.census_balls);
  w.key("census_raw_hits");
  w.value(m.canon.census_raw_hits);
  w.end_object();
  w.key("events");
  w.begin_object();
  w.key("dispatched");
  w.value(m.events.events_dispatched);
  w.key("messages_dropped");
  w.value(m.events.messages_dropped);
  w.key("messages_fragmented");
  w.value(m.events.messages_fragmented);
  w.key("messages_delayed");
  w.value(m.events.messages_delayed);
  w.key("max_queue_depth");
  w.value(m.events.max_queue_depth);
  w.end_object();
  w.key("process");
  w.begin_object();
  w.key("uptime_seconds");
  w.value(m.uptime_seconds, 3);
  w.key("peak_rss_kb");
  w.value(m.peak_rss_kb);
  w.key("open_connections");
  w.value(m.in_flight);
  w.key("queue_depth");
  w.value(m.queue_depth);
  w.end_object();
  w.end_object();
  out << "\n";
  return out.str();
}

HttpResponse error_response(int status, const std::string& message) {
  HttpResponse r;
  r.status = status;
  r.body = error_document(status, message);
  return r;
}

HttpResponse method_not_allowed(const std::string& allow) {
  HttpResponse r = error_response(405, cat("method not allowed; use ", allow));
  r.extra_headers.emplace_back("Allow", allow);
  return r;
}

void set_recv_timeout(int fd, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

}  // namespace

Server::Server(ServeOptions options) : options_(std::move(options)) {
  LOCALD_CHECK(options_.port >= 0 && options_.port <= 65535,
               "port must be in [0, 65535]");
  LOCALD_CHECK(options_.threads >= 0, "threads must be non-negative");
  LOCALD_CHECK(options_.workers >= 1, "at least one request worker");
  LOCALD_CHECK(options_.max_queue >= 1, "queue bound must be at least 1");

  obs::Registry& reg = obs::registry();
  requests_total_ = reg.counter("locald_http_requests_total",
                                "HTTP responses written by request workers");
  connections_total_ = reg.counter("locald_http_connections_total",
                                   "Connections served by request workers");
  rejected_total_ = reg.counter("locald_http_rejected_total",
                                "Connections shed with 503 by the acceptor");
  errors_total_ = reg.counter("locald_http_errors_total",
                              "Responses with status >= 400");
  cache_resets_ = reg.counter(
      "locald_cache_resets_total",
      "Shared verdict-cache memory-tier resets (entry budget exceeded)");
  response_bytes_ = reg.counter("locald_http_response_bytes_total",
                                "Response body bytes written to clients");
  in_flight_ = reg.gauge("locald_http_open_connections",
                         "Connections currently inside a request worker");
  request_seconds_ = reg.histogram(
      "locald_http_request_seconds", "End-to-end request service latency",
      obs::Histogram::default_latency_buckets_seconds());
  metric_handles_.push_back(reg.gauge_fn(
      "locald_http_queue_depth", "Accepted connections awaiting a worker",
      [this] {
        std::lock_guard<std::mutex> lk(queue_mu_);
        return static_cast<double>(queue_.size());
      }));
  metric_handles_.push_back(reg.gauge_fn(
      "locald_process_uptime_seconds", "Seconds since process start",
      [] { return obs::uptime_seconds(); }));
  metric_handles_.push_back(
      reg.gauge_fn("locald_process_peak_rss_kb",
                   "Peak resident set size in KiB (getrusage)",
                   [] { return static_cast<double>(obs::peak_rss_kb()); }));
  for (auto& handle : cache_.register_metrics()) {
    metric_handles_.push_back(std::move(handle));
  }
  // Force the process-wide canonicalization and event-engine counters into
  // the registry so a scrape before any work already exposes them (at zero).
  (void)graph::canonicalization_counters();
  (void)local::event_engine_counters();
}

Server::~Server() { stop(); }

void Server::start() {
  LOCALD_CHECK(listen_fd_ < 0, "server already started");
  if (options_.threads != 1) {
    pool_.emplace(options_.threads);
  }
  if (!options_.store_path.empty()) {
    // Opened (and recovered) before the socket exists: a server that
    // advertises --store either starts warm or fails loudly, never serves
    // cold by accident. In follower mode this is also where a second
    // writer is rejected — the lease check happens before any socket binds.
    store_.emplace(options_.store_path, options_.store_shards,
                   options_.store_follower
                       ? exec::VerdictStore::Role::follower
                       : exec::VerdictStore::Role::writer);
    cache_.attach_store(&*store_);
    for (auto& handle : store_->register_metrics()) {
      metric_handles_.push_back(std::move(handle));
    }
  }
  if (!options_.access_log_path.empty()) {
    access_log_.emplace(options_.access_log_path);
  }
  if (!options_.trace_out.empty()) {
    obs::tracing_start();
  }

  // SOCK_CLOEXEC keeps the listen socket out of any forked/exec'd child
  // (same audit as the store's shard fds — a child inheriting the socket
  // would keep the port bound after this process dies).
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  LOCALD_CHECK(listen_fd_ >= 0, cat("socket(): ", std::strerror(errno)));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  LOCALD_CHECK(
      ::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) == 1,
      cat("not an IPv4 bind address: ", options_.host));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error(cat("cannot bind ", options_.host, ":", options_.port, ": ",
                    why));
  }
  LOCALD_CHECK(::listen(listen_fd_, 128) == 0,
               cat("listen(): ", std::strerror(errno)));

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  LOCALD_CHECK(::getsockname(listen_fd_,
                             reinterpret_cast<sockaddr*>(&bound), &len) == 0,
               cat("getsockname(): ", std::strerror(errno)));
  bound_port_ = static_cast<int>(ntohs(bound.sin_port));

  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  if (listen_fd_ >= 0) {
    // Unblocks the acceptor's accept(); it observes stopping_ and exits.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  {
    // Unblock workers parked in recv() waiting for a keep-alive client's
    // next request: shutdown makes the recv return 0 (idle close) so the
    // connection loop exits without waiting out the idle timeout.
    std::lock_guard<std::mutex> lk(queue_mu_);
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  queue_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Whatever was still queued never reached a worker; close, don't answer.
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    for (int fd : queue_) ::close(fd);
    queue_.clear();
  }
  if (!options_.trace_out.empty()) {
    // Best-effort: trace output is a volatile side channel, and stop() must
    // never fail because a disk filled up.
    std::string ignored;
    obs::tracing_stop_to_file(options_.trace_out, &ignored);
  }
}

void Server::accept_loop() {
  // Built once: shedding load must not allocate per rejected connection.
  const std::string busy = serialize_http_response([] {
    HttpResponse r = error_response(503, "server at capacity; retry shortly");
    r.extra_headers.emplace_back("Retry-After", "1");
    return r;
  }());
  while (true) {
    // accept4 over accept for SOCK_CLOEXEC: connection fds must not leak
    // into forked/exec'd children either.
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    {
      std::lock_guard<std::mutex> lk(queue_mu_);
      if (stopping_) {
        if (fd >= 0) ::close(fd);
        return;
      }
    }
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Transient resource pressure (typically fd exhaustion while the
        // workers hold connections): back off briefly and keep accepting
        // rather than silently becoming a server that never answers again.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      return;  // listen socket is gone; stop() is the only way this happens
    }
    timeval tv{};
    tv.tv_sec = options_.read_timeout_ms / 1000;
    tv.tv_usec = (options_.read_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    // Same deadline on writes: a client that never drains its response
    // must time out instead of pinning a worker in send() forever (which
    // would also wedge stop()'s join).
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

    bool shed = false;
    {
      std::lock_guard<std::mutex> lk(queue_mu_);
      if (queue_.size() >= static_cast<std::size_t>(options_.max_queue)) {
        shed = true;
      } else {
        queue_.push_back(fd);
      }
    }
    if (shed) {
      rejected_total_->add(1);
      send_all(fd, busy);
      ::close(fd);
    } else {
      queue_cv_.notify_one();
    }
  }
}

void Server::worker_loop(int worker) {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lk(queue_mu_);
      queue_cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      fd = queue_.front();
      queue_.pop_front();
    }
    serve_connection(fd, worker);
    ::close(fd);
  }
}

void Server::serve_connection(int fd, int worker) {
  in_flight_->add(1);
  connections_total_->add(1);
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    active_fds_.insert(fd);
  }

  // Two recv deadlines per request: the idle timeout while waiting for its
  // first byte (a keep-alive client may legitimately sit quiet between
  // requests), the read timeout once the request has started arriving (a
  // started-then-stalled request is a misbehaving client, not an idle one).
  bool request_started = false;
  const ByteSource source = [&](char* buf, std::size_t len) -> long {
    while (true) {
      const ssize_t n = ::recv(fd, buf, len, 0);
      if (n > 0 && !request_started) {
        request_started = true;
        set_recv_timeout(fd, options_.read_timeout_ms);
      }
      if (n >= 0) return static_cast<long>(n);
      if (errno == EINTR) continue;
      return -1;  // timeout (EAGAIN under SO_RCVTIMEO) or hard error
    }
  };

  std::string leftover;  // pipelined bytes carried between requests
  int handled = 0;
  while (true) {
    {
      std::lock_guard<std::mutex> lk(queue_mu_);
      if (stopping_) break;
    }
    request_started = false;
    set_recv_timeout(fd, handled == 0 ? options_.read_timeout_ms
                                      : options_.idle_timeout_ms);
    const ParseResult parsed =
        read_http_request(source, options_.limits, &leftover);
    if (parsed.idle_close) break;  // client hung up between requests
    // Counted before routing so a /v1/metrics response includes itself.
    requests_total_->add(1);
    ++handled;

    // Request-scoped observability: service latency on the monotonic
    // stopwatch, verdict-cache activity deltas for the access log, and one
    // span per request when tracing is on. All volatile side channels.
    const obs::Stopwatch stopwatch;
    const auto cache_hits_now = [this] {
      const exec::VerdictCache::Stats s = cache_.stats();
      return s.hits + s.store_hits;
    };
    const std::uint64_t hits_before =
        access_log_.has_value() ? cache_hits_now() : 0;
    const auto finish_request = [&](const std::string& method,
                                    const std::string& path, int status,
                                    std::uint64_t bytes) {
      const double seconds = stopwatch.elapsed_seconds();
      request_seconds_->observe(seconds);
      response_bytes_->add(bytes);
      if (access_log_.has_value()) {
        obs::AccessEntry entry;
        entry.method = method;
        entry.path = path;
        entry.status = status;
        entry.response_bytes = bytes;
        entry.duration_ms = seconds * 1e3;
        entry.worker = worker;
        entry.cache_hits = cache_hits_now() - hits_before;
        access_log_->write(entry);
      }
    };

    if (parsed.status != 200) {
      // After a framing error the byte stream is unreliable; answer and
      // close regardless of what the client asked for.
      errors_total_->add(1);
      const HttpResponse bad = error_response(parsed.status, parsed.error);
      send_all(fd, serialize_http_response(bad, false));
      finish_request(parsed.request.method, "", bad.status,
                     bad.body.size());
      break;
    }

    obs::Span request_span("http-request", cat(parsed.request.method, " ",
                                               parsed.request.path()));
    const bool keep_alive = request_keep_alive(parsed.request) &&
                            handled < options_.max_requests_per_connection;

    if (parsed.request.method == "POST" &&
        parsed.request.path() == "/v1/sweep" &&
        parsed.request.version == "HTTP/1.1") {
      // Streamed: cells leave as chunks while later cells still compute.
      // (HTTP/1.0 clients cannot parse chunked framing and fall through to
      // the buffered path below.)
      bool io_failed = false;
      std::uint64_t bytes_sent = 0;
      const std::optional<HttpResponse> early =
          stream_sweep(fd, parsed.request, keep_alive, &io_failed,
                       &bytes_sent);
      if (!early.has_value()) {
        maybe_reset_cache();
        finish_request(parsed.request.method, parsed.request.path(), 200,
                       bytes_sent);
        if (io_failed || !keep_alive) break;
        continue;
      }
      errors_total_->add(1);
      const bool sent =
          send_all(fd, serialize_http_response(*early, keep_alive));
      finish_request(parsed.request.method, parsed.request.path(),
                     early->status, early->body.size());
      if (!sent || !keep_alive) break;
      continue;
    }

    const HttpResponse response = handle(parsed.request);
    if (response.status >= 400) {
      errors_total_->add(1);
    }
    const bool sent =
        send_all(fd, serialize_http_response(response, keep_alive));
    maybe_reset_cache();
    finish_request(parsed.request.method, parsed.request.path(),
                   response.status, response.body.size());
    if (!sent || !keep_alive) break;
  }

  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    active_fds_.erase(fd);
  }
  in_flight_->add(-1);
}

std::optional<HttpResponse> Server::stream_sweep(int fd,
                                                 const HttpRequest& request,
                                                 bool keep_alive,
                                                 bool* io_failed,
                                                 std::uint64_t* bytes_sent) {
  *io_failed = false;
  *bytes_sent = 0;
  SweepRequest sweep;
  try {
    sweep = parse_sweep_request(request.body);
  } catch (const Error& e) {
    return error_response(400, e.what());
  }
  // Everything that can fail is checked before the 200 head is committed
  // to the wire; past this point errors can only abort the connection.
  const cli::Scenario* scenario = cli::find_scenario(sweep.scenario);
  if (scenario == nullptr) {
    return error_response(404, cat("unknown scenario ",
                                   json_quote(sweep.scenario),
                                   " (see /v1/scenarios)"));
  }
  try {
    check_family_supported(*scenario, sweep.family);
    check_faults_supported(*scenario, sweep.fault_profile);
  } catch (const Error& e) {
    return error_response(400, e.what());
  }

  if (!send_all(fd, serialize_http_response_head(HttpResponse{}, keep_alive))) {
    *io_failed = true;
    return std::nullopt;
  }
  struct ClientGone {};
  try {
    sweep_document_stream(
        sweep, pool_ ? &*pool_ : nullptr,
        [&](const std::string& piece) {
          if (!send_all(fd, encode_chunk(piece))) throw ClientGone{};
          *bytes_sent += piece.size();
        },
        nullptr);
  } catch (const ClientGone&) {
    // Mid-stream disconnect: stop computing cells nobody will read. The
    // connection is unusable (the response is incomplete) so it closes,
    // releasing this worker back to the queue.
    *io_failed = true;
    return std::nullopt;
  } catch (const std::exception&) {
    // The head already promised a 200; a failure now cannot be reported
    // in-band. Closing without the terminating chunk tells the client the
    // body is truncated (chunked framing makes truncation detectable).
    *io_failed = true;
    return std::nullopt;
  }
  if (!send_all(fd, last_chunk())) *io_failed = true;
  return std::nullopt;
}

bool Server::send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // client went away; nothing useful to do
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void Server::maybe_reset_cache() {
  if (cache_.stats().entries > options_.cache_reset_entries) {
    cache_.clear();
    cache_resets_->add(1);
  }
}

MetricsSnapshot Server::metrics() const {
  MetricsSnapshot m;
  m.requests_total = requests_total_->value();
  m.connections_total = connections_total_->value();
  m.rejected_total = rejected_total_->value();
  m.errors_total = errors_total_->value();
  m.cache_resets = cache_resets_->value();
  m.in_flight = static_cast<std::uint64_t>(in_flight_->value());
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    m.queue_depth = queue_.size();
  }
  m.workers = options_.workers;
  m.max_queue = options_.max_queue;
  m.pool_parallelism = pool_ ? pool_->parallelism() : 1;
  m.uptime_seconds = obs::uptime_seconds();
  m.peak_rss_kb = obs::peak_rss_kb();
  m.cache = cache_.stats();
  if (store_.has_value()) {
    m.store_attached = true;
    m.store_follower = !store_->writable();
    m.store_path = store_->path();
    m.store = store_->stats();
  }
  m.canon = graph::canonicalization_counters();
  m.events = local::event_engine_counters();
  return m;
}

HttpResponse Server::handle(const HttpRequest& request) {
  const std::string path = request.path();
  HttpResponse response;
  try {
    if (path == "/v1/healthz") {
      if (request.method != "GET") return method_not_allowed("GET");
      response.body = healthz_document();
    } else if (path == "/v1/version") {
      if (request.method != "GET") return method_not_allowed("GET");
      response.body = version_document();
    } else if (path == "/v1/scenarios") {
      if (request.method != "GET") return method_not_allowed("GET");
      response.body = scenarios_document();
    } else if (path == "/v1/families") {
      if (request.method != "GET") return method_not_allowed("GET");
      response.body = families_document();
    } else if (path == "/v1/faults") {
      if (request.method != "GET") return method_not_allowed("GET");
      response.body = faults_document();
    } else if (path == "/v1/metrics") {
      if (request.method != "GET") return method_not_allowed("GET");
      response.body = metrics_document(metrics());
    } else if (path == "/metrics") {
      // Prometheus text exposition (0.0.4) from the same registry the JSON
      // surface reads — standard scrapers point here unmodified.
      if (request.method != "GET") return method_not_allowed("GET");
      response.content_type = "text/plain; version=0.0.4; charset=utf-8";
      response.body = obs::registry().render_prometheus();
    } else if (path == "/v1/run") {
      if (request.method != "POST") return method_not_allowed("POST");
      const RunRequest run = parse_run_request(request.body);
      if (cli::find_scenario(run.scenario) == nullptr) {
        return error_response(
            404, cat("unknown scenario ", json_quote(run.scenario),
                     " (see /v1/scenarios)"));
      }
      exec::ExecContext ctx;
      ctx.pool = pool_ ? &*pool_ : nullptr;
      ctx.cache = &cache_;
      response.body = run_document(run, ctx, nullptr);
    } else if (path == "/v1/sweep") {
      if (request.method != "POST") return method_not_allowed("POST");
      const SweepRequest sweep = parse_sweep_request(request.body);
      if (cli::find_scenario(sweep.scenario) == nullptr) {
        return error_response(
            404, cat("unknown scenario ", json_quote(sweep.scenario),
                     " (see /v1/scenarios)"));
      }
      response.body = sweep_document(sweep, pool_ ? &*pool_ : nullptr,
                                     nullptr);
    } else {
      return error_response(
          404, cat("no such endpoint ", json_quote(path),
                   "; endpoints: /v1/healthz /v1/version /v1/scenarios "
                   "/v1/families /v1/faults /v1/metrics /metrics /v1/run "
                   "/v1/sweep"));
    }
  } catch (const Error& e) {
    // Caller-facing precondition (bad JSON, bad field): the request's fault.
    return error_response(400, e.what());
  } catch (const std::exception& e) {
    return error_response(500, e.what());
  }
  return response;
}

}  // namespace locald::server
