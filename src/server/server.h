// `locald serve` — the long-lived HTTP/JSON serving layer.
//
// One process-wide work-stealing `ThreadPool` and ONE shared `VerdictCache`
// live for the whole server lifetime, so canonical-ball verdicts memoized
// while answering request A accelerate every later request that meets an
// isomorphic ball — the cross-request regime the one-shot CLI can never
// reach. Results stay byte-identical anyway: the execution engine's
// contract (memoized == unmemoized, any thread count) means the shared
// cache and pool are pure accelerators, never inputs to a response body.
//
// Concurrency model: an acceptor thread plus a fixed pool of request
// workers draining a bounded connection queue. When the queue is full the
// acceptor answers `503 Service Unavailable` with `Retry-After` directly —
// overload sheds load at the door with O(1) memory instead of queueing
// unboundedly toward OOM. Request workers may run scenarios concurrently;
// the exec pool serializes its parallel loops internally, and scenarios
// share no mutable state, so concurrent identical requests produce
// byte-identical bodies (tested, and smoke-checked in CI).
//
// Connections are persistent (HTTP/1.1 keep-alive): a worker serves
// requests off one connection in a loop until the client closes or sends
// `Connection: close`, the negotiated protocol demands it, the
// per-connection request cap is reached, or the connection idles past
// `idle_timeout_ms` between requests. Bytes a client pipelines beyond one
// request carry into the next parse. `POST /v1/sweep` over HTTP/1.1
// streams its response with chunked transfer coding — one chunk per flush
// boundary (prelude / each finished cell / postlude) — and the
// concatenated chunks are byte-identical to the buffered document, so
// streaming never weakens the byte-identity contract.
//
// The shared cache is reset (entries dropped, monotonic counters kept)
// whenever it outgrows `cache_reset_entries`, bounding the resident memory
// of an arbitrarily long serving life. With `store_path` set, a persistent
// `VerdictStore` backs the cache: inserts write through, resets only drop
// the memory tier, and a restarted server answers previously-decided
// canonical classes from disk (warm start).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "exec/thread_pool.h"
#include "exec/verdict_cache.h"
#include "exec/verdict_store.h"
#include "graph/isomorphism.h"
#include "local/event_engine.h"
#include "obs/access_log.h"
#include "obs/metrics.h"
#include "server/http.h"

namespace locald::server {

struct ServeOptions {
  std::string host = "127.0.0.1";  // bind address (loopback by default)
  int port = 8080;                 // 0 = ephemeral, read back via port()
  int threads = 1;                 // exec-pool size; 0 = hardware, 1 = serial
  int workers = 4;                 // concurrent request handlers
  int max_queue = 64;              // accepted-but-unserved connection bound
  int read_timeout_ms = 10000;     // per-recv deadline inside one request
  int idle_timeout_ms = 5000;      // keep-alive: wait for the next request
  // Requests served on one connection before it is closed (Connection:
  // close on the final response); bounds how long a client can pin a
  // worker.
  int max_requests_per_connection = 100;
  HttpLimits limits;
  std::uint64_t cache_reset_entries = 1u << 20;  // shared-cache entry budget
  // Directory of the persistent verdict store (`locald serve --store`);
  // empty = in-memory cache only, verdicts die with the process.
  std::string store_path;
  std::size_t store_shards = 16;
  // Open the store as a read-only follower (`locald serve --follower`):
  // another process holds the write lease and appends; this one serves
  // lookups from private mmaps and picks up the grown tail on a miss.
  // Ignored when store_path is empty.
  bool store_follower = false;
  // NDJSON access log (`locald serve --access-log FILE`); empty = disabled.
  std::string access_log_path;
  // Span-trace collection over the server's life, written as Chrome trace
  // JSON on stop() (`locald serve --trace-out FILE`); empty = disabled.
  std::string trace_out;
};

// A point-in-time view for GET /v1/metrics. Counters are monotonic over the
// server's life except the two gauges (in_flight, queue_depth).
struct MetricsSnapshot {
  std::uint64_t requests_total = 0;     // responses written by workers
  std::uint64_t connections_total = 0;  // connections served by workers
  std::uint64_t rejected_total = 0;     // 503s shed by the acceptor
  std::uint64_t errors_total = 0;       // worker responses with status >= 400
  std::uint64_t cache_resets = 0;
  std::uint64_t in_flight = 0;       // gauge: connections being served now
  std::uint64_t queue_depth = 0;     // gauge: connections awaiting a worker
  int workers = 0;
  int max_queue = 0;
  int pool_parallelism = 1;
  // Process section: uptime, peak RSS, and the two gauges above double as
  // the open-connection / queue-depth facts.
  double uptime_seconds = 0.0;
  std::uint64_t peak_rss_kb = 0;
  exec::VerdictCache::Stats cache;
  // Persistent-store section; meaningful only when `store_attached`.
  bool store_attached = false;
  bool store_follower = false;  // this process's role on the shared store
  std::string store_path;
  exec::VerdictStore::Stats store;
  // Process-wide canonicalization-engine counters (graph/isomorphism.h):
  // tier-2 searches run, census balls seen, census balls answered by the
  // raw-structure dedup before any search. Monotonic, scheduling-dependent
  // — /v1/metrics is the one endpoint allowed to be volatile.
  graph::CanonicalizationCounters canon;
  // Process-wide event-engine counters (local/event_engine.h): events
  // dispatched, messages dropped/fragmented/delayed, deepest queue seen.
  // Monotonic accumulations over every event-driven run in the process.
  local::EventEngineCounters events;
};

class Server {
 public:
  explicit Server(ServeOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds and starts the acceptor + workers; throws `Error` when the
  // address cannot be bound. Idempotence is not needed: one start per
  // Server.
  void start();

  // Stops accepting, drains nothing (queued connections are closed), joins
  // all threads. Safe to call repeatedly; the destructor calls it.
  void stop();

  // The bound port (resolves port 0 to the kernel-assigned ephemeral one).
  int port() const { return bound_port_; }

  MetricsSnapshot metrics() const;

  // Routes one parsed request to a response. Public so tests can exercise
  // routing without sockets; the workers use exactly this path.
  HttpResponse handle(const HttpRequest& request);

 private:
  void accept_loop();
  void worker_loop(int worker);
  void serve_connection(int fd, int worker);
  // Streams POST /v1/sweep with chunked transfer coding. Engaged result:
  // a pre-head validation failure (400/404) for the caller to answer
  // buffered. nullopt: the response left on the wire (or the client went
  // away mid-stream — `*io_failed` true, caller must close).
  std::optional<HttpResponse> stream_sweep(int fd, const HttpRequest& request,
                                           bool keep_alive, bool* io_failed,
                                           std::uint64_t* bytes_sent);
  bool send_all(int fd, const std::string& bytes);
  void maybe_reset_cache();

  ServeOptions options_;
  int listen_fd_ = -1;
  int bound_port_ = 0;

  std::optional<exec::ThreadPool> pool_;  // engaged unless threads == 1
  std::optional<exec::VerdictStore> store_;  // engaged when store_path set
  exec::VerdictCache cache_;

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> queue_;  // accepted fds awaiting a worker
  // Connections currently inside serve_connection; stop() shuts them down
  // so workers blocked waiting for a next keep-alive request wake promptly.
  std::unordered_set<int> active_fds_;
  bool stopping_ = false;

  std::optional<obs::AccessLog> access_log_;  // engaged via access_log_path

  // Registry-backed instruments (the old hand-maintained atomics). The
  // server owns the handles; `metrics()` and the Prometheus exposition read
  // the same objects, so the two surfaces cannot disagree. A later Server
  // in the same process re-registers the names and wins the export.
  std::shared_ptr<obs::Counter> requests_total_;
  std::shared_ptr<obs::Counter> connections_total_;
  std::shared_ptr<obs::Counter> rejected_total_;
  std::shared_ptr<obs::Counter> errors_total_;
  std::shared_ptr<obs::Counter> cache_resets_;
  std::shared_ptr<obs::Counter> response_bytes_;
  std::shared_ptr<obs::Gauge> in_flight_;
  std::shared_ptr<obs::Histogram> request_seconds_;
  // Callback registrations (queue depth, process facts, cache/store tiers).
  // Declared last so they unregister first during destruction, while every
  // member they read is still alive.
  std::vector<obs::MetricHandle> metric_handles_;
};

}  // namespace locald::server
