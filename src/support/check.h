// Checked-error primitives shared by every locald module.
//
// The library distinguishes two failure kinds:
//  - `Error`: a violated runtime precondition or malformed input; recoverable
//    by the caller, reported with context.
//  - `BugError`: an internal invariant broke; indicates a defect in locald
//    itself rather than in the caller's input.
//
// Both carry the source location of the failed check so that test failures
// and example output point at the violated condition directly.
#pragma once

#include <stdexcept>
#include <string>

namespace locald {

// Violated caller-facing precondition (bad argument, malformed instance...).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Violated internal invariant; a locald bug, not a usage error.
class BugError : public std::logic_error {
 public:
  explicit BugError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* kind, const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::string out;
  out += kind;
  out += " failed: ";
  out += expr;
  out += " at ";
  out += file;
  out += ":";
  out += std::to_string(line);
  if (!msg.empty()) {
    out += " — ";
    out += msg;
  }
  if (kind[0] == 'L') {  // LOCALD_CHECK → caller error
    throw Error(out);
  }
  throw BugError(out);
}

}  // namespace detail
}  // namespace locald

// Precondition on caller input. Throws locald::Error when violated.
#define LOCALD_CHECK(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::locald::detail::throw_check_failure("LOCALD_CHECK", #cond, __FILE__, \
                                            __LINE__, (msg));                \
    }                                                                        \
  } while (false)

// Internal invariant. Throws locald::BugError when violated.
#define LOCALD_ASSERT(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::locald::detail::throw_check_failure("ASSERT", #cond, __FILE__,    \
                                            __LINE__, (msg));             \
    }                                                                     \
  } while (false)
