#include "support/format.h"

#include <algorithm>
#include <iomanip>

#include "support/check.h"

namespace locald {

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string fixed(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          std::ostringstream os;
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(static_cast<unsigned char>(ch));
          out += os.str();
        } else {
          out += ch;
        }
    }
  }
  out += '"';
  return out;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  LOCALD_CHECK(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  LOCALD_CHECK(cells.size() == header_.size(),
               "row width must match the header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::left << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

std::string TextTable::render_csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) {
      return cell;
    }
    std::string quoted = "\"";
    for (char ch : cell) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << escape(row[c]);
    }
    os << '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

}  // namespace locald
