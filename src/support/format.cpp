#include "support/format.h"

#include <algorithm>
#include <iomanip>

#include "support/check.h"

namespace locald {

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::optional<std::int64_t> parse_int(const std::string& text) {
  if (text.empty()) {
    return std::nullopt;
  }
  try {
    std::size_t used = 0;
    const std::int64_t value = std::stoll(text, &used);
    if (used != text.size()) {
      return std::nullopt;
    }
    return value;
  } catch (...) {
    return std::nullopt;
  }
}

std::string fixed(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          std::ostringstream os;
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(static_cast<unsigned char>(ch));
          out += os.str();
        } else {
          out += ch;
        }
    }
  }
  out += '"';
  return out;
}

JsonWriter::JsonWriter(std::ostream& out, int indent)
    : out_(out), indent_(indent) {
  LOCALD_CHECK(indent >= 0, "indent must be non-negative");
}

void JsonWriter::newline_indent(std::size_t depth) {
  if (indent_ > 0) {
    out_ << '\n'
         << std::string(depth * static_cast<std::size_t>(indent_), ' ');
  }
}

void JsonWriter::before_value() {
  LOCALD_ASSERT(!complete(), "JSON document already complete");
  if (stack_.empty()) {
    root_written_ = true;
    return;
  }
  Level& top = stack_.back();
  if (top.is_object) {
    LOCALD_ASSERT(pending_key_, "object member written without a key");
    pending_key_ = false;
    return;
  }
  if (top.count > 0) out_ << ',';
  newline_indent(stack_.size());
  ++top.count;
}

void JsonWriter::write_scalar(const std::string& rendered) {
  before_value();
  out_ << rendered;
}

void JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  stack_.push_back(Level{true, 0});
}

void JsonWriter::end_object() {
  LOCALD_ASSERT(!stack_.empty() && stack_.back().is_object && !pending_key_,
                "end_object without a matching open object");
  const std::size_t count = stack_.back().count;
  stack_.pop_back();
  if (count > 0) newline_indent(stack_.size());
  out_ << '}';
}

void JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  stack_.push_back(Level{false, 0});
}

void JsonWriter::end_array() {
  LOCALD_ASSERT(!stack_.empty() && !stack_.back().is_object,
                "end_array without a matching open array");
  const std::size_t count = stack_.back().count;
  stack_.pop_back();
  if (count > 0) newline_indent(stack_.size());
  out_ << ']';
}

void JsonWriter::key(const std::string& name) {
  LOCALD_ASSERT(!stack_.empty() && stack_.back().is_object && !pending_key_,
                "key() is only valid directly inside an object");
  Level& top = stack_.back();
  if (top.count > 0) out_ << ',';
  newline_indent(stack_.size());
  ++top.count;
  out_ << json_quote(name) << (indent_ > 0 ? ": " : ":");
  pending_key_ = true;
}

void JsonWriter::value(const std::string& v) { write_scalar(json_quote(v)); }
void JsonWriter::value(const char* v) { write_scalar(json_quote(v)); }
void JsonWriter::value(bool v) { write_scalar(v ? "true" : "false"); }
void JsonWriter::value(std::int64_t v) { write_scalar(std::to_string(v)); }
void JsonWriter::value(std::uint64_t v) { write_scalar(std::to_string(v)); }
void JsonWriter::value(double v, int digits) {
  write_scalar(fixed(v, digits));
}
void JsonWriter::null_value() { write_scalar("null"); }

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  LOCALD_CHECK(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  LOCALD_CHECK(cells.size() == header_.size(),
               "row width must match the header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::left << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

std::string TextTable::render_csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) {
      return cell;
    }
    std::string quoted = "\"";
    for (char ch : cell) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << escape(row[c]);
    }
    os << '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

}  // namespace locald
