// Text formatting used by examples and benchmark binaries.
//
// The paper-reproduction benches print aligned tables ("the same rows the
// paper reports"); `TextTable` renders those without dragging in a formatting
// dependency. `cat(...)` is the project-wide string builder. `JsonWriter` is
// the one JSON emitter shared by `locald sweep`, `locald list/run --format
// json`, and the HTTP serving layer, so their documents cannot drift apart.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace locald {

// Concatenate streamable values into a string.
template <typename... Args>
std::string cat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

// Strict base-10 integer parse: the whole string must be consumed, or
// nullopt. The one integer reader behind CLI flag values and family
// selector parameters, so the two surfaces cannot drift.
std::optional<std::int64_t> parse_int(const std::string& text);

// Fixed-point rendering with `digits` decimals (no locale surprises).
std::string fixed(double value, int digits);

// RFC-8259 JSON string literal (quotes included): ", \ and control
// characters escaped. Backs the CLI's `sweep --format json` mode.
std::string json_quote(const std::string& s);

// A streaming JSON document writer with automatic comma and indentation
// bookkeeping. `indent == 0` emits the document compact on one line;
// `indent > 0` pretty-prints with that many spaces per nesting level.
// Doubles always take an explicit digit count (rendered via `fixed`) so
// every emitted byte is deterministic — the serving layer's byte-identity
// contract and the sweep CI gate both ride on this.
//
//   JsonWriter w(out, 2);
//   w.begin_object();
//   w.key("scenario"); w.value("promise-cycle");
//   w.key("ok"); w.value(true);
//   w.end_object();
//
// Misuse (a value without a key inside an object, unbalanced end_* calls)
// throws BugError — emitting malformed JSON is a locald defect, never valid
// output.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out, int indent = 0);

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  void key(const std::string& name);

  void value(const std::string& v);
  void value(const char* v);
  void value(bool v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(double v, int digits);
  void null_value();

  // True once the root value is closed; nothing further may be written.
  bool complete() const { return root_written_ && stack_.empty(); }

 private:
  struct Level {
    bool is_object = false;
    std::size_t count = 0;
  };

  void before_value();
  void newline_indent(std::size_t depth);
  void write_scalar(const std::string& rendered);

  std::ostream& out_;
  int indent_;
  std::vector<Level> stack_;
  bool pending_key_ = false;
  bool root_written_ = false;
};

// A minimal aligned-column table renderer.
//
//   TextTable t({"r", "|T_r|", "audit"});
//   t.add_row({"1", "31", "1.000"});
//   std::cout << t.render();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  // Render with a header rule, columns padded to the widest cell.
  std::string render() const;

  // Render as RFC-4180 CSV (header row first); cells containing commas,
  // quotes, or newlines are quoted. Used by the CLI's --format csv mode.
  std::string render_csv() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace locald
