// Text formatting used by examples and benchmark binaries.
//
// The paper-reproduction benches print aligned tables ("the same rows the
// paper reports"); `TextTable` renders those without dragging in a formatting
// dependency. `cat(...)` is the project-wide string builder.
#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace locald {

// Concatenate streamable values into a string.
template <typename... Args>
std::string cat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

// Fixed-point rendering with `digits` decimals (no locale surprises).
std::string fixed(double value, int digits);

// RFC-8259 JSON string literal (quotes included): ", \ and control
// characters escaped. Backs the CLI's `sweep --format json` mode.
std::string json_quote(const std::string& s);

// A minimal aligned-column table renderer.
//
//   TextTable t({"r", "|T_r|", "audit"});
//   t.add_row({"1", "31", "1.000"});
//   std::cout << t.render();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  // Render with a header rule, columns padded to the widest cell.
  std::string render() const;

  // Render as RFC-4180 CSV (header row first); cells containing commas,
  // quotes, or newlines are quoted. Used by the CLI's --format csv mode.
  std::string render_csv() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace locald
