// Hashing helpers used for canonical-form fingerprints and hash maps keyed
// by composite values (labels, balls, fragments).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace locald {

// FNV-1a over raw bytes; stable across platforms and runs, which matters
// because canonical fingerprints are compared between independently built
// graphs.
inline std::uint64_t fnv1a(const void* data, std::size_t len,
                           std::uint64_t seed = 0xcbf29ce484222325ULL) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline std::uint64_t hash_string(const std::string& s) {
  return fnv1a(s.data(), s.size());
}

inline void hash_combine(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

inline std::uint64_t hash_i64_vector(const std::vector<std::int64_t>& v) {
  std::uint64_t h = 0x84222325cbf29ce4ULL;
  for (std::int64_t x : v) {
    hash_combine(h, static_cast<std::uint64_t>(x));
  }
  hash_combine(h, v.size());
  return h;
}

}  // namespace locald
