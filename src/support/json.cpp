#include "support/json.h"

#include <cctype>
#include <cstdlib>
#include <unordered_set>

#include "support/check.h"
#include "support/format.h"

namespace locald {

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::boolean;
  v.boolean_ = b;
  return v;
}

JsonValue JsonValue::make_integer(std::int64_t n) {
  JsonValue v;
  v.kind_ = Kind::number;
  v.integral_ = true;
  v.integer_ = n;
  v.number_ = static_cast<double>(n);
  return v;
}

JsonValue JsonValue::make_double(double d) {
  JsonValue v;
  v.kind_ = Kind::number;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::string;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::array;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::object;
  v.members_ = std::move(members);
  return v;
}

bool JsonValue::as_bool() const {
  LOCALD_CHECK(is_bool(), "JSON value is not a boolean");
  return boolean_;
}

double JsonValue::as_double() const {
  LOCALD_CHECK(is_number(), "JSON value is not a number");
  return number_;
}

std::int64_t JsonValue::as_integer() const {
  LOCALD_CHECK(is_integer(), "JSON value is not an integer");
  return integer_;
}

const std::string& JsonValue::as_string() const {
  LOCALD_CHECK(is_string(), "JSON value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  LOCALD_CHECK(is_array(), "JSON value is not an array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  LOCALD_CHECK(is_object(), "JSON value is not an object");
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

// Request bodies are flat; 64 levels is far beyond anything legitimate and
// keeps hostile deeply-nested input from exhausting the stack.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    skip_ws();
    JsonValue v = parse_value(0);
    skip_ws();
    check(pos_ == text_.size(), "trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw Error(cat("malformed JSON at byte ", pos_, ": ", why));
  }
  void check(bool ok, const char* why) const {
    if (!ok) fail(why);
  }

  bool done() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }
  char take() {
    check(!done(), "unexpected end of input");
    return text_[pos_++];
  }
  bool consume(char c) {
    if (!done() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect(char c) {
    check(!done() && peek() == c, "unexpected character");
    ++pos_;
  }
  void skip_ws() {
    while (!done() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                       peek() == '\r')) {
      ++pos_;
    }
  }
  void expect_literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      check(!done() && peek() == *p, "invalid literal");
      ++pos_;
    }
  }

  JsonValue parse_value(int depth) {
    check(depth < kMaxDepth, "nesting deeper than the supported maximum");
    check(!done(), "unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        expect_literal("true");
        return JsonValue::make_bool(true);
      case 'f':
        expect_literal("false");
        return JsonValue::make_bool(false);
      case 'n':
        expect_literal("null");
        return JsonValue::make_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    // Hash-set membership, not a scan over `members`: a hostile body can
    // pack ~10^5 distinct keys under the request size limit, and a linear
    // scan per key would burn CPU quadratically before rejection.
    std::unordered_set<std::string> seen;
    skip_ws();
    if (consume('}')) return JsonValue::make_object(std::move(members));
    while (true) {
      skip_ws();
      check(!done() && peek() == '"', "object member needs a quoted key");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      JsonValue value = parse_value(depth + 1);
      if (!seen.insert(key).second) {
        fail(cat("duplicate object key ", json_quote(key)));
      }
      members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      return JsonValue::make_object(std::move(members));
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (consume(']')) return JsonValue::make_array(std::move(items));
    while (true) {
      skip_ws();
      items.push_back(parse_value(depth + 1));
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      return JsonValue::make_array(std::move(items));
    }
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape digit");
      }
    }
    return value;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            check(!done() && peek() == '\\', "unpaired surrogate");
            ++pos_;
            check(!done() && peek() == 'u', "unpaired surrogate");
            ++pos_;
            const unsigned lo = parse_hex4();
            check(lo >= 0xDC00 && lo <= 0xDFFF, "unpaired surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("invalid escape sequence");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    consume('-');
    check(!done() && std::isdigit(static_cast<unsigned char>(peek())),
          "invalid number");
    if (!consume('0')) {  // leading zeros are invalid JSON
      while (!done() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    bool integral = true;
    if (consume('.')) {
      integral = false;
      check(!done() && std::isdigit(static_cast<unsigned char>(peek())),
            "digit required after decimal point");
      while (!done() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (!done() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!done() && (peek() == '+' || peek() == '-')) ++pos_;
      check(!done() && std::isdigit(static_cast<unsigned char>(peek())),
            "digit required in exponent");
      while (!done() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    const std::string literal = text_.substr(start, pos_ - start);
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long n = std::strtoll(literal.c_str(), &end, 10);
      // Integers beyond int64 degrade to doubles rather than failing;
      // callers that need exactness use as_integer(), which rejects them.
      if (errno == 0 && end != nullptr && *end == '\0') {
        return JsonValue::make_integer(static_cast<std::int64_t>(n));
      }
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(literal.c_str(), &end);
    check(end != nullptr && *end == '\0' && errno == 0,
          "number out of representable range");
    return JsonValue::make_double(d);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) { return Parser(text).parse(); }

}  // namespace locald
