// A minimal strict JSON reader for the serving layer's request bodies.
//
// `parse_json` turns an RFC-8259 text into a `JsonValue` tree, throwing
// `Error` on any deviation (trailing garbage, bad escapes, unterminated
// containers, nesting beyond a fixed depth cap). The reader is intentionally
// small: request bodies are a handful of scalar fields, so there is no
// streaming, no SAX interface, and no number formats beyond what strtod
// accepts. Object member order is preserved so documents can round-trip
// deterministically through `JsonWriter` (support/format.h).
//
// Integers are tracked separately from doubles: a number literal with no
// fraction or exponent that fits in int64 reports `is_integer()`, which is
// what the API layer needs to reject `"seed": 1.5` without accepting the
// precision loss of a double round-trip.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace locald {

class JsonValue {
 public:
  enum class Kind { null, boolean, number, string, array, object };

  JsonValue() : kind_(Kind::null) {}

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_integer(std::int64_t v);
  static JsonValue make_double(double v);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::null; }
  bool is_bool() const { return kind_ == Kind::boolean; }
  bool is_number() const { return kind_ == Kind::number; }
  bool is_integer() const { return kind_ == Kind::number && integral_; }
  bool is_string() const { return kind_ == Kind::string; }
  bool is_array() const { return kind_ == Kind::array; }
  bool is_object() const { return kind_ == Kind::object; }

  // Typed accessors; throw `Error` when the value has a different kind.
  bool as_bool() const;
  double as_double() const;          // any number
  std::int64_t as_integer() const;   // integral numbers only
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;  // arrays only
  const std::vector<std::pair<std::string, JsonValue>>& members()
      const;  // objects only

  // Object member lookup; nullptr when absent (or when not an object).
  const JsonValue* find(const std::string& key) const;

 private:
  Kind kind_;
  bool boolean_ = false;
  bool integral_ = false;
  double number_ = 0.0;
  std::int64_t integer_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

// Parses exactly one JSON value spanning the whole input (surrounding
// whitespace allowed). Throws `Error` with a byte offset on malformed input.
JsonValue parse_json(const std::string& text);

}  // namespace locald
