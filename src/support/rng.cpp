#include "support/rng.h"

#include <unordered_set>

namespace locald {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) {
    s = splitmix64(x);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  LOCALD_CHECK(bound > 0, "Rng::below requires a positive bound");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  LOCALD_CHECK(lo <= hi, "Rng::range requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  return uniform01() < p;
}

int Rng::coin_tosses_until_head() {
  int tosses = 1;
  while ((next_u64() & 1) == 0) {
    ++tosses;
  }
  return tosses;
}

Rng Rng::split() {
  return Rng(next_u64());
}

Rng Rng::stream(std::uint64_t seed, std::uint64_t hi, std::uint64_t lo) {
  // Fold the counters into the splitmix sequence one at a time so that
  // (seed, hi, lo) triples differing in any coordinate diverge immediately;
  // multiplying by large odd constants keeps consecutive counters far apart
  // before the avalanche.
  std::uint64_t x = seed;
  x ^= splitmix64(x) + hi * 0xa24baed4963ee407ULL;
  x ^= splitmix64(x) + lo * 0x9fb21c651e98df25ULL;
  Rng out(0);
  for (auto& s : out.s_) {
    s = splitmix64(x);
  }
  return out;
}

std::vector<std::uint64_t> Rng::sample_distinct(std::uint64_t n,
                                                std::size_t k) {
  LOCALD_CHECK(k <= n, "cannot sample more distinct values than the range");
  std::vector<std::uint64_t> out;
  out.reserve(k);
  if (k * 2 >= n) {
    // Dense case: shuffle a prefix of the identity permutation.
    std::vector<std::uint64_t> all(n);
    for (std::uint64_t i = 0; i < n; ++i) all[i] = i;
    shuffle(all);
    all.resize(k);
    return all;
  }
  std::unordered_set<std::uint64_t> seen;
  while (out.size() < k) {
    const std::uint64_t v = below(n);
    if (seen.insert(v).second) {
      out.push_back(v);
    }
  }
  return out;
}

}  // namespace locald
