// Deterministic pseudo-random number generation.
//
// All randomness in locald flows through `Rng` so that every experiment,
// test and benchmark is reproducible from a single 64-bit seed. The engine
// is xoshiro256** seeded through splitmix64 (the standard recipe); it is
// small, fast, and has no global state.
#pragma once

#include <cstdint>
#include <vector>

#include "support/check.h"

namespace locald {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform over the full 64-bit range.
  std::uint64_t next_u64();

  // Uniform integer in [0, bound). `bound` must be positive.
  std::uint64_t below(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double uniform01();

  // True with probability p.
  bool bernoulli(double p);

  // Number of fair-coin tosses until (and including) the first head;
  // the geometric draw used by the Corollary-1 decider.
  int coin_tosses_until_head();

  // Derive an independent child generator; used to give each simulated node
  // its own stream without correlating them. Stateful: the child depends on
  // how much of this generator was consumed before the call.
  Rng split();

  // Counter-based stream derivation: the generator for logical stream
  // (hi, lo) under `seed`, independent of any generator state or call
  // order. This is what makes the parallel execution engine
  // scheduling-deterministic — stream (trial, node) is the same generator
  // no matter which thread reaches it first, so parallel runs are
  // bit-identical to serial ones. Distinct (seed, hi, lo) triples give
  // statistically independent streams (each state word passes through a
  // full splitmix64 avalanche).
  static Rng stream(std::uint64_t seed, std::uint64_t hi,
                    std::uint64_t lo = 0);

  // Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  // k distinct values sampled uniformly from [0, n). Requires k <= n.
  std::vector<std::uint64_t> sample_distinct(std::uint64_t n, std::size_t k);

 private:
  std::uint64_t s_[4];
};

}  // namespace locald
