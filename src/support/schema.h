// Versioning of the machine-readable JSON documents (the /v1 wire format
// and the CLI's sweep/bench artifacts — one schema, two transports).
//
// Every document carries `schema_version` so consumers can gate on shape
// changes instead of sniffing fields. The version is bumped whenever any
// document's deterministic fields change meaning or layout; byte-comparison
// gates (CLI vs HTTP, thread-grid identity) compare documents of one
// version only, so a bump never mixes shapes inside a gate.
#pragma once

namespace locald {

// v2: the CSR graph-core generation — per-class ball censuses
// (class_of/class_encoding instead of per-node encodings feeding the
// documents' counts) and the schema_version field itself.
inline constexpr int kSchemaVersion = 2;

// Identifier of the graph-core implementation the documents' numbers were
// produced by (surfaced by GET /v1/version); changes when the adjacency
// representation generation changes.
inline constexpr const char* kGraphCoreId = "csr-v1";

}  // namespace locald
