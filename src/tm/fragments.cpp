#include "tm/fragments.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace locald::tm {

std::vector<std::pair<int, int>> Fragment::glued_border_cells() const {
  std::set<std::pair<int, int>> cells_set;
  for (int x = 0; x < width; ++x) {
    cells_set.emplace(x, 0);  // top row always glued
    if (glue_bottom) {
      cells_set.emplace(x, height - 1);
    }
  }
  for (int y = 0; y < height; ++y) {
    if (glue_left) {
      cells_set.emplace(0, y);
    }
    if (glue_right) {
      cells_set.emplace(width - 1, y);
    }
  }
  // Row-major order.
  std::vector<std::pair<int, int>> out(cells_set.begin(), cells_set.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return std::pair(a.second, a.first) < std::pair(b.second, b.first);
  });
  return out;
}

bool Fragment::glued_borders_connected() const {
  // Glued sides always include the top row; the set is disconnected exactly
  // when the bottom row is glued but neither side column is.
  if (glue_bottom && !glue_left && !glue_right && height > 2) {
    return false;
  }
  return true;
}

std::string Fragment::key() const {
  std::string k = std::to_string(width) + "x" + std::to_string(height) + ":";
  for (int c : cells) {
    k += std::to_string(c);
    k += ",";
  }
  k += glue_left ? "L" : "-";
  k += glue_right ? "R" : "-";
  k += glue_bottom ? "B" : "-";
  return k;
}

void classify_borders(const LocalRules& rules, Fragment& f) {
  const TuringMachine& m = rules.machine();
  f.left_natural = true;
  f.right_natural = true;
  for (int y = 0; y + 1 < f.height; ++y) {
    if (rules.head_crosses_left_boundary(f.cell(0, y), f.cell(1, y),
                                         f.cell(0, y + 1))) {
      f.left_natural = false;
    }
    if (rules.head_crosses_right_boundary(f.cell(f.width - 2, y),
                                          f.cell(f.width - 1, y),
                                          f.cell(f.width - 1, y + 1))) {
      f.right_natural = false;
    }
  }
  f.bottom_natural = true;
  for (int x = 0; x < f.width; ++x) {
    const int c = f.cell(x, f.height - 1);
    if (m.cell_has_head(c) && !m.is_halting(m.cell_state(c))) {
      f.bottom_natural = false;
    }
  }
  f.glue_left = !f.left_natural;
  f.glue_right = !f.right_natural;
  f.glue_bottom = !f.bottom_natural;
}

std::vector<Fragment> apply_connectivity_fix(Fragment f) {
  if (!f.glued_borders_connected()) {
    Fragment left_variant = f;
    left_variant.glue_left = true;
    Fragment right_variant = std::move(f);
    right_variant.glue_right = true;
    LOCALD_ASSERT(left_variant.glued_borders_connected() &&
                      right_variant.glued_borders_connected(),
                  "connectivity fix failed");
    return {std::move(left_variant), std::move(right_variant)};
  }
  return {std::move(f)};
}

std::vector<std::vector<int>> successor_rows(const LocalRules& rules,
                                             const std::vector<int>& top) {
  const int w = static_cast<int>(top.size());
  LOCALD_CHECK(w >= 3, "fragment width must be at least 3");
  // Interior cells are forced; a contradiction kills the whole row.
  std::vector<int> interior(static_cast<std::size_t>(w), -1);
  for (int x = 1; x + 1 < w; ++x) {
    const auto cell = rules.next_cell(top[static_cast<std::size_t>(x - 1)],
                                      top[static_cast<std::size_t>(x)],
                                      top[static_cast<std::size_t>(x + 1)]);
    if (!cell.has_value()) {
      return {};
    }
    interior[static_cast<std::size_t>(x)] = *cell;
  }
  const std::vector<int> lefts = rules.allowed_left_boundary(top[0], top[1]);
  const std::vector<int> rights = rules.allowed_right_boundary(
      top[static_cast<std::size_t>(w - 2)], top[static_cast<std::size_t>(w - 1)]);
  std::vector<std::vector<int>> out;
  out.reserve(lefts.size() * rights.size());
  for (int l : lefts) {
    for (int r : rights) {
      std::vector<int> row = interior;
      row[0] = l;
      row[static_cast<std::size_t>(w - 1)] = r;
      out.push_back(std::move(row));
    }
  }
  return out;
}

namespace {

// Dense encoding of a row as an integer key (base C).
std::uint64_t row_key(const std::vector<int>& row, int code_count) {
  std::uint64_t k = 0;
  for (int c : row) {
    k = k * static_cast<std::uint64_t>(code_count) +
        static_cast<std::uint64_t>(c);
  }
  return k;
}

std::vector<std::vector<int>> all_rows(int width, int code_count) {
  const double total = std::pow(static_cast<double>(code_count), width);
  LOCALD_CHECK(total <= 4e6,
               "row space too large to enumerate; use a smaller machine or "
               "fragment size");
  std::vector<std::vector<int>> rows;
  rows.reserve(static_cast<std::size_t>(total));
  std::vector<int> row(static_cast<std::size_t>(width), 0);
  for (;;) {
    rows.push_back(row);
    int x = width - 1;
    while (x >= 0 && row[static_cast<std::size_t>(x)] == code_count - 1) {
      row[static_cast<std::size_t>(x)] = 0;
      --x;
    }
    if (x < 0) {
      break;
    }
    ++row[static_cast<std::size_t>(x)];
  }
  return rows;
}

}  // namespace

unsigned long long count_fragments(const TuringMachine& m, int k) {
  LOCALD_CHECK(k >= 3, "fragment size must be at least 3");
  const LocalRules rules(m);
  const int codes = m.cell_code_count();
  const auto rows = all_rows(k, codes);
  std::unordered_map<std::uint64_t, unsigned long long> cur;
  cur.reserve(rows.size());
  for (const auto& row : rows) {
    cur[row_key(row, codes)] = 1;
  }
  // Rebuild row vectors from keys lazily via a lookup table.
  std::unordered_map<std::uint64_t, const std::vector<int>*> by_key;
  by_key.reserve(rows.size());
  for (const auto& row : rows) {
    by_key[row_key(row, codes)] = &row;
  }
  for (int level = 1; level < k; ++level) {
    std::unordered_map<std::uint64_t, unsigned long long> next;
    for (const auto& [key, count] : cur) {
      const auto succ = successor_rows(rules, *by_key.at(key));
      for (const auto& s : succ) {
        next[row_key(s, codes)] += count;
      }
    }
    cur = std::move(next);
  }
  unsigned long long total = 0;
  for (const auto& [key, count] : cur) {
    total += count;
  }
  return total;
}

namespace {

void materialize_dfs(const LocalRules& rules, int k,
                     std::vector<std::vector<int>>& stack,
                     std::vector<Fragment>& out, std::size_t cap,
                     bool& truncated) {
  if (out.size() >= cap) {
    truncated = true;
    return;
  }
  if (static_cast<int>(stack.size()) == k) {
    Fragment f;
    f.width = k;
    f.height = k;
    f.cells.reserve(static_cast<std::size_t>(k) * k);
    for (const auto& row : stack) {
      f.cells.insert(f.cells.end(), row.begin(), row.end());
    }
    out.push_back(std::move(f));
    return;
  }
  for (auto& s : successor_rows(rules, stack.back())) {
    stack.push_back(std::move(s));
    materialize_dfs(rules, k, stack, out, cap, truncated);
    stack.pop_back();
    if (truncated && out.size() >= cap) {
      return;
    }
  }
}

}  // namespace

FragmentCollection build_fragment_collection(
    const TuringMachine& m, int k, const FragmentPolicy& policy,
    const std::vector<const ExecutionTable*>& must_include) {
  LOCALD_CHECK(k >= 3, "fragment size must be at least 3");
  const LocalRules rules(m);
  FragmentCollection col;
  col.size = k;
  col.exact_count = count_fragments(m, k);

  auto tops = all_rows(k, m.cell_code_count());
  Rng rng(policy.seed);
  rng.shuffle(tops);

  std::vector<Fragment> grids;
  bool truncated = false;
  for (const auto& top : tops) {
    if (grids.size() >= policy.max_fragments) {
      truncated = true;
      break;
    }
    std::vector<std::vector<int>> stack{top};
    materialize_dfs(rules, k, stack, grids, policy.max_fragments, truncated);
  }
  col.exhaustive = !truncated &&
                   grids.size() == static_cast<std::size_t>(col.exact_count);

  std::unordered_set<std::string> seen;
  auto add = [&](Fragment f) {
    classify_borders(rules, f);
    for (Fragment& variant : apply_connectivity_fix(std::move(f))) {
      const std::string key = variant.key();
      if (seen.insert(key).second) {
        col.fragments.push_back(std::move(variant));
      }
    }
  };
  for (Fragment& f : grids) {
    add(std::move(f));
  }
  // The fooling property for the machines under test: every window of each
  // provided real table belongs to the collection.
  for (const ExecutionTable* t : must_include) {
    for (Fragment& w : windows_of_table(*t, k)) {
      Fragment plain;
      plain.width = w.width;
      plain.height = w.height;
      plain.cells = w.cells;
      add(std::move(plain));
    }
  }
  return col;
}

std::vector<Fragment> windows_of_table(const ExecutionTable& t, int k) {
  LOCALD_CHECK(k >= 3, "fragment size must be at least 3");
  LOCALD_CHECK(t.width() >= k && t.height() >= k,
               "table smaller than the window");
  const LocalRules rules(t.machine());
  std::vector<Fragment> out;
  std::unordered_set<std::string> seen;
  for (int y = 0; y + k <= t.height(); ++y) {
    for (int x = 0; x + k <= t.width(); ++x) {
      Fragment f;
      f.width = k;
      f.height = k;
      f.cells.reserve(static_cast<std::size_t>(k) * k);
      for (int dy = 0; dy < k; ++dy) {
        for (int dx = 0; dx < k; ++dx) {
          f.cells.push_back(t.cell(x + dx, y + dy));
        }
      }
      classify_borders(rules, f);
      for (Fragment& variant : apply_connectivity_fix(std::move(f))) {
        if (seen.insert(variant.key()).second) {
          out.push_back(std::move(variant));
        }
      }
    }
  }
  return out;
}

std::optional<Fragment> reconstruct_fragment(
    const LocalRules& rules, int width, int height,
    const std::vector<int>& top_row,
    const std::optional<std::vector<int>>& left_col,
    const std::optional<std::vector<int>>& right_col,
    const std::optional<std::vector<int>>& bottom_row) {
  LOCALD_CHECK(width >= 3 && height >= 2, "fragment too small");
  LOCALD_CHECK(static_cast<int>(top_row.size()) == width,
               "top row width mismatch");
  if (left_col.has_value()) {
    LOCALD_CHECK(static_cast<int>(left_col->size()) == height,
                 "left column height mismatch");
    if ((*left_col)[0] != top_row[0]) {
      return std::nullopt;  // corner disagreement
    }
  }
  if (right_col.has_value()) {
    LOCALD_CHECK(static_cast<int>(right_col->size()) == height,
                 "right column height mismatch");
    if ((*right_col)[0] != top_row[static_cast<std::size_t>(width - 1)]) {
      return std::nullopt;
    }
  }
  if (bottom_row.has_value()) {
    LOCALD_CHECK(static_cast<int>(bottom_row->size()) == width,
                 "bottom row width mismatch");
  }

  Fragment f;
  f.width = width;
  f.height = height;
  f.cells.assign(static_cast<std::size_t>(width) * height, -1);
  for (int x = 0; x < width; ++x) {
    f.cells[static_cast<std::size_t>(x)] = top_row[static_cast<std::size_t>(x)];
  }
  for (int y = 0; y + 1 < height; ++y) {
    auto cell_at = [&](int x) { return f.cell(x, y); };
    // Column 0.
    int c0;
    if (left_col.has_value()) {
      c0 = (*left_col)[static_cast<std::size_t>(y + 1)];
      const auto allowed = rules.allowed_left_boundary(cell_at(0), cell_at(1));
      if (!std::binary_search(allowed.begin(), allowed.end(), c0)) {
        return std::nullopt;
      }
    } else {
      // Natural side: no head ever crosses — identical to a tape wall.
      const auto cell = rules.next_cell_at_wall(cell_at(0), cell_at(1));
      if (!cell.has_value()) {
        return std::nullopt;
      }
      c0 = *cell;
    }
    f.cells[static_cast<std::size_t>(y + 1) * width] = c0;
    // Interior.
    for (int x = 1; x + 1 < width; ++x) {
      const auto cell = rules.next_cell(cell_at(x - 1), cell_at(x), cell_at(x + 1));
      if (!cell.has_value()) {
        return std::nullopt;
      }
      f.cells[static_cast<std::size_t>(y + 1) * width + x] = *cell;
    }
    // Last column.
    int cl;
    if (right_col.has_value()) {
      cl = (*right_col)[static_cast<std::size_t>(y + 1)];
      const auto allowed =
          rules.allowed_right_boundary(cell_at(width - 2), cell_at(width - 1));
      if (!std::binary_search(allowed.begin(), allowed.end(), cl)) {
        return std::nullopt;
      }
    } else {
      // Natural right side: mirror of the wall rule.
      const auto cell =
          rules.next_cell_natural_right(cell_at(width - 2), cell_at(width - 1));
      if (!cell.has_value()) {
        return std::nullopt;
      }
      cl = *cell;
    }
    f.cells[static_cast<std::size_t>(y + 1) * width + (width - 1)] = cl;
  }
  if (bottom_row.has_value()) {
    for (int x = 0; x < width; ++x) {
      if (f.cell(x, height - 1) != (*bottom_row)[static_cast<std::size_t>(x)]) {
        return std::nullopt;
      }
    }
  }
  classify_borders(rules, f);
  // Absent sides must indeed be natural, otherwise the caller was missing a
  // border the gluing should have exposed.
  if (!left_col.has_value() && !f.left_natural) {
    return std::nullopt;
  }
  if (!right_col.has_value() && !f.right_natural) {
    return std::nullopt;
  }
  if (!bottom_row.has_value() && !f.bottom_natural) {
    return std::nullopt;
  }
  f.glue_left = left_col.has_value();
  f.glue_right = right_col.has_value();
  f.glue_bottom = bottom_row.has_value();
  return f;
}

}  // namespace locald::tm
