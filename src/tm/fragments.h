// The fragment collection C(M, r) of Section 3.2.
//
// A fragment is a k x k grid labelled in any way that satisfies the local
// window rules ("all syntactically possible execution table fragments").
// This module provides:
//
//  - exact counting of the collection by row-level dynamic programming
//    (the count explodes combinatorially — the explosion itself is one of
//    the quantities reported in the Figure-2 bench);
//  - materialization: exhaustive when the count fits the policy cap,
//    otherwise a deterministic seeded prefix, ALWAYS united with every
//    window of caller-supplied real tables (so the fooling property "every
//    neighbourhood of T occurs in C" holds for the machines under test);
//  - natural-border classification (which borders could, in principle, be
//    table boundaries) and the paper's border-connectivity fix;
//  - the Border property: unique reconstruction of a fragment from its
//    glued borders, used by the Appendix-A verifier's pivot check.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "support/rng.h"
#include "tm/rules.h"

namespace locald::tm {

struct Fragment {
  int width = 0;
  int height = 0;
  std::vector<int> cells;  // row-major cell codes

  // Intrinsic classification (Section 3.2: the top row is never natural).
  bool left_natural = false;
  bool right_natural = false;
  bool bottom_natural = false;

  // Effective gluing: a side is glued to the pivot iff non-natural OR forced
  // by the connectivity fix. The top row is always glued.
  bool glue_left = false;
  bool glue_right = false;
  bool glue_bottom = false;

  int cell(int x, int y) const {
    LOCALD_CHECK(x >= 0 && x < width && y >= 0 && y < height,
                 "fragment coordinate out of range");
    return cells[static_cast<std::size_t>(y) * width + x];
  }

  // Grid positions glued to the pivot, deduplicated, row-major order.
  std::vector<std::pair<int, int>> glued_border_cells() const;

  // Are the glued borders connected in the fragment's border graph?
  // (The connectivity fix exists to make this always true.)
  bool glued_borders_connected() const;

  // Dedup key: dimensions + cells + gluing flags.
  std::string key() const;
};

struct FragmentPolicy {
  // Materialize at most this many distinct cell-grids (before the
  // connectivity fix possibly doubles some of them).
  std::size_t max_fragments = 20'000;
  // Exploration order when capped (deterministic given the seed).
  std::uint64_t seed = 1;

  bool operator==(const FragmentPolicy&) const = default;
};

struct FragmentCollection {
  int size = 0;                         // k
  unsigned long long exact_count = 0;   // DP count of consistent cell-grids
  bool exhaustive = false;              // fragments cover every grid
  std::vector<Fragment> fragments;      // after classification + fix
};

// Exact number of locally consistent k x k grids (row DP). k >= 3.
unsigned long long count_fragments(const TuringMachine& m, int k);

// Every consistent "next row" under a given row (boundary columns get the
// existential fragment semantics). Exposed for tests and for the DP.
std::vector<std::vector<int>> successor_rows(const LocalRules& rules,
                                             const std::vector<int>& top);

// Build C(M, k). See file comment for the policy semantics.
FragmentCollection build_fragment_collection(
    const TuringMachine& m, int k, const FragmentPolicy& policy,
    const std::vector<const ExecutionTable*>& must_include = {});

// All k x k windows of a real table, classified and fixed like enumerated
// fragments. Windows are genuine members of C (tested).
std::vector<Fragment> windows_of_table(const ExecutionTable& t, int k);

// Border property (Section 3.2): the unique consistent completion of the
// given glued borders; natural (absent) sides evolve like tape walls with
// no head crossing. Returns nullopt if the borders admit no completion or
// the completion's natural-side classification contradicts the gluing.
std::optional<Fragment> reconstruct_fragment(
    const LocalRules& rules, int width, int height,
    const std::vector<int>& top_row,
    const std::optional<std::vector<int>>& left_col,
    const std::optional<std::vector<int>>& right_col,
    const std::optional<std::vector<int>>& bottom_row);

// Classify natural borders and set default gluing (no connectivity fix).
void classify_borders(const LocalRules& rules, Fragment& f);

// The paper's fix: a fragment whose glued borders are exactly {top, bottom}
// is replaced by two variants gluing additionally the left (resp. right)
// column. Other fragments pass through unchanged.
std::vector<Fragment> apply_connectivity_fix(Fragment f);

}  // namespace locald::tm
