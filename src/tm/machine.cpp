#include "tm/machine.h"

namespace locald::tm {

TuringMachine::TuringMachine(std::string name, int state_count,
                             int alphabet_size)
    : name_(std::move(name)),
      state_count_(state_count),
      alphabet_size_(alphabet_size) {
  LOCALD_CHECK(state_count_ >= 3,
               "need at least one working state plus the two halting states");
  LOCALD_CHECK(alphabet_size_ >= 1, "need at least the blank symbol");
  const std::size_t n = static_cast<std::size_t>(state_count_) *
                        static_cast<std::size_t>(alphabet_size_);
  delta_.resize(n);
  present_.resize(n, false);
}

int TuringMachine::halt_output(int q) const {
  LOCALD_CHECK(is_halting(q), "state is not halting");
  return q == halt0() ? 0 : 1;
}

void TuringMachine::set_transition(int q, int symbol, Transition t) {
  check_state(q);
  check_symbol(symbol);
  LOCALD_CHECK(!is_halting(q), "halting states have no outgoing transitions");
  check_state(t.next_state);
  check_symbol(t.write);
  const std::size_t i = static_cast<std::size_t>(q) * alphabet_size_ + symbol;
  delta_[i] = t;
  present_[i] = true;
}

const Transition& TuringMachine::delta(int q, int symbol) const {
  check_state(q);
  check_symbol(symbol);
  LOCALD_CHECK(!is_halting(q), "halting states have no transitions");
  const std::size_t i = static_cast<std::size_t>(q) * alphabet_size_ + symbol;
  LOCALD_CHECK(present_[i], "transition not defined");
  return delta_[i];
}

void TuringMachine::validate() const {
  for (int q = 0; q < working_state_count(); ++q) {
    for (int s = 0; s < alphabet_size_; ++s) {
      const std::size_t i =
          static_cast<std::size_t>(q) * alphabet_size_ + s;
      LOCALD_CHECK(present_[i],
                   "machine '" + name_ + "' missing transition (q=" +
                       std::to_string(q) + ", s=" + std::to_string(s) + ")");
    }
  }
}

std::vector<std::int64_t> TuringMachine::encode() const {
  validate();
  std::vector<std::int64_t> out;
  out.push_back(state_count_);
  out.push_back(alphabet_size_);
  for (int q = 0; q < working_state_count(); ++q) {
    for (int s = 0; s < alphabet_size_; ++s) {
      const Transition& t = delta(q, s);
      out.push_back(t.next_state);
      out.push_back(t.write);
      out.push_back(t.move == Move::right ? 1 : 0);
    }
  }
  return out;
}

TuringMachine TuringMachine::decode(const std::vector<std::int64_t>& fields,
                                    std::string name) {
  LOCALD_CHECK(fields.size() >= 2, "machine encoding too short");
  const int states = static_cast<int>(fields[0]);
  const int alphabet = static_cast<int>(fields[1]);
  TuringMachine m(std::move(name), states, alphabet);
  const std::size_t expected =
      2 + 3 * static_cast<std::size_t>(m.working_state_count()) *
              static_cast<std::size_t>(alphabet);
  LOCALD_CHECK(fields.size() == expected, "machine encoding length mismatch");
  std::size_t i = 2;
  for (int q = 0; q < m.working_state_count(); ++q) {
    for (int s = 0; s < alphabet; ++s) {
      Transition t;
      t.next_state = static_cast<int>(fields[i++]);
      t.write = static_cast<int>(fields[i++]);
      t.move = fields[i++] == 1 ? Move::right : Move::left;
      m.set_transition(q, s, t);
    }
  }
  return m;
}

int TuringMachine::plain_cell(int symbol) const {
  check_symbol(symbol);
  return symbol;
}

int TuringMachine::head_cell(int q, int symbol) const {
  check_state(q);
  check_symbol(symbol);
  return alphabet_size_ + q * alphabet_size_ + symbol;
}

bool TuringMachine::cell_has_head(int code) const {
  LOCALD_CHECK(code >= 0 && code < cell_code_count(), "cell code out of range");
  return code >= alphabet_size_;
}

int TuringMachine::cell_symbol(int code) const {
  LOCALD_CHECK(code >= 0 && code < cell_code_count(), "cell code out of range");
  return code < alphabet_size_ ? code : (code - alphabet_size_) % alphabet_size_;
}

int TuringMachine::cell_state(int code) const {
  LOCALD_CHECK(cell_has_head(code), "cell has no head");
  return (code - alphabet_size_) / alphabet_size_;
}

std::string TuringMachine::cell_to_string(int code) const {
  if (!cell_has_head(code)) {
    return std::to_string(cell_symbol(code));
  }
  return "[q" + std::to_string(cell_state(code)) + "/" +
         std::to_string(cell_symbol(code)) + "]";
}

}  // namespace locald::tm
