// Turing machines over a one-way infinite tape, as used by the Section-3
// construction.
//
// Conventions (fixed so that machine descriptions embed into node labels):
//  - tape symbols are 0..alphabet_size-1 with 0 = blank;
//  - states are 0..state_count-1; the last two states are the halting states
//    halt0 = state_count-2 ("M outputs 0") and halt1 = state_count-1
//    ("M outputs 1") — membership in L0/L1 is which halting state is reached;
//  - the head starts on cell 0 in state 0 on a blank tape;
//  - halting states are frozen points: a halted configuration repeats
//    forever, which lets execution tables extend past the halting step
//    (needed to pad tables to power-of-two heights for the pyramid).
//
// Moving left from cell 0 is a runtime error; the machines in the zoo are
// designed never to fall off the tape.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/check.h"

namespace locald::tm {

enum class Move : std::int8_t { left = 0, right = 1 };

struct Transition {
  int next_state = 0;
  int write = 0;
  Move move = Move::right;

  bool operator==(const Transition&) const = default;
};

class TuringMachine {
 public:
  // `state_count` includes the two halting states (so >= 3 for any machine
  // with at least one working state).
  TuringMachine(std::string name, int state_count, int alphabet_size);

  const std::string& name() const { return name_; }
  int state_count() const { return state_count_; }
  int alphabet_size() const { return alphabet_size_; }
  int working_state_count() const { return state_count_ - 2; }

  static constexpr int kStartState = 0;
  int halt0() const { return state_count_ - 2; }
  int halt1() const { return state_count_ - 1; }
  bool is_halting(int q) const {
    check_state(q);
    return q >= state_count_ - 2;
  }
  // 0 or 1; q must be halting.
  int halt_output(int q) const;

  void set_transition(int q, int symbol, Transition t);
  const Transition& delta(int q, int symbol) const;

  // All (working state, symbol) pairs must have transitions.
  void validate() const;

  // --- label embedding -----------------------------------------------------
  // Encodes the full machine description as int64 fields (alphabet, states,
  // then the transition table row-major), so that every node of G(M, r) can
  // carry "(M, r) as part of its input labelling".
  std::vector<std::int64_t> encode() const;
  static TuringMachine decode(const std::vector<std::int64_t>& fields,
                              std::string name = "decoded");

  bool operator==(const TuringMachine& other) const {
    return state_count_ == other.state_count_ &&
           alphabet_size_ == other.alphabet_size_ &&
           delta_ == other.delta_;
  }

  // --- execution-table cell codes -------------------------------------------
  // A table cell holds either a plain symbol s (code s) or a head-owning
  // cell (q, s) (code alphabet_size + q * alphabet_size + s).
  int cell_code_count() const {
    return alphabet_size_ * (1 + state_count_);
  }
  int plain_cell(int symbol) const;
  int head_cell(int q, int symbol) const;
  bool cell_has_head(int code) const;
  int cell_symbol(int code) const;
  // State of a head cell; code must carry a head.
  int cell_state(int code) const;
  std::string cell_to_string(int code) const;

 private:
  void check_state(int q) const {
    LOCALD_CHECK(q >= 0 && q < state_count_, "state out of range");
  }
  void check_symbol(int s) const {
    LOCALD_CHECK(s >= 0 && s < alphabet_size_, "symbol out of range");
  }

  std::string name_;
  int state_count_;
  int alphabet_size_;
  // delta_[q * alphabet + s]; present_ marks defined entries.
  std::vector<Transition> delta_;
  std::vector<bool> present_;
};

}  // namespace locald::tm
