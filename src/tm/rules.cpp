#include "tm/rules.h"

#include <algorithm>
#include <set>

namespace locald::tm {

LocalRules::LocalRules(const TuringMachine& m) : m_(&m) {
  m.validate();
  std::set<int> left;
  std::set<int> right;
  for (int q = 0; q < m.working_state_count(); ++q) {
    for (int s = 0; s < m.alphabet_size(); ++s) {
      const Transition& t = m.delta(q, s);
      if (t.move == Move::right) {
        left.insert(t.next_state);
      } else {
        right.insert(t.next_state);
      }
    }
  }
  enter_left_.assign(left.begin(), left.end());
  enter_right_.assign(right.begin(), right.end());
}

std::optional<int> LocalRules::arrival_from_left(int top_left) const {
  if (!m_->cell_has_head(top_left)) {
    return std::nullopt;
  }
  const int q = m_->cell_state(top_left);
  if (m_->is_halting(q)) {
    return std::nullopt;  // frozen head never moves
  }
  const Transition& t = m_->delta(q, m_->cell_symbol(top_left));
  if (t.move == Move::right) {
    return t.next_state;
  }
  return std::nullopt;
}

std::optional<int> LocalRules::arrival_from_right(int top_right) const {
  if (!m_->cell_has_head(top_right)) {
    return std::nullopt;
  }
  const int q = m_->cell_state(top_right);
  if (m_->is_halting(q)) {
    return std::nullopt;
  }
  const Transition& t = m_->delta(q, m_->cell_symbol(top_right));
  if (t.move == Move::left) {
    return t.next_state;
  }
  return std::nullopt;
}

std::optional<int> LocalRules::resolve(int top_mid, const Incoming& in) const {
  const bool mid_head = m_->cell_has_head(top_mid);
  if (mid_head && m_->is_halting(m_->cell_state(top_mid))) {
    // Frozen halting cell: persists verbatim; a second head arriving is a
    // contradiction.
    if (in.from_left || in.from_right) {
      return std::nullopt;
    }
    return top_mid;
  }
  int base_symbol;
  if (mid_head) {
    const Transition& t =
        m_->delta(m_->cell_state(top_mid), m_->cell_symbol(top_mid));
    base_symbol = t.write;
  } else {
    base_symbol = m_->cell_symbol(top_mid);
  }
  if (in.from_left && in.from_right) {
    return std::nullopt;  // head collision
  }
  if (in.from_left) {
    return m_->head_cell(in.left_state, base_symbol);
  }
  if (in.from_right) {
    return m_->head_cell(in.right_state, base_symbol);
  }
  return m_->plain_cell(base_symbol);
}

std::optional<int> LocalRules::next_cell(int top_left, int top_mid,
                                         int top_right) const {
  Incoming in;
  if (const auto q = arrival_from_left(top_left)) {
    in.from_left = true;
    in.left_state = *q;
  }
  if (const auto q = arrival_from_right(top_right)) {
    in.from_right = true;
    in.right_state = *q;
  }
  return resolve(top_mid, in);
}

std::optional<int> LocalRules::next_cell_at_wall(int top_mid,
                                                 int top_right) const {
  // A head in the wall column moving left falls off the tape: no valid
  // continuation.
  if (m_->cell_has_head(top_mid) &&
      !m_->is_halting(m_->cell_state(top_mid))) {
    const Transition& t =
        m_->delta(m_->cell_state(top_mid), m_->cell_symbol(top_mid));
    if (t.move == Move::left) {
      return std::nullopt;
    }
  }
  Incoming in;
  if (const auto q = arrival_from_right(top_right)) {
    in.from_right = true;
    in.right_state = *q;
  }
  return resolve(top_mid, in);
}

std::vector<int> LocalRules::allowed_left_boundary(int top_mid,
                                                   int top_right) const {
  Incoming base;
  if (const auto q = arrival_from_right(top_right)) {
    base.from_right = true;
    base.right_state = *q;
  }
  std::set<int> allowed;
  // Unseen left column contributes either nothing...
  if (const auto cell = resolve(top_mid, base)) {
    allowed.insert(*cell);
  }
  // ...or a head arriving rightwards in any syntactically reachable state.
  for (int q : enter_left_) {
    Incoming in = base;
    in.from_left = true;
    in.left_state = q;
    if (const auto cell = resolve(top_mid, in)) {
      allowed.insert(*cell);
    }
  }
  return {allowed.begin(), allowed.end()};
}

std::vector<int> LocalRules::allowed_right_boundary(int top_left,
                                                    int top_mid) const {
  Incoming base;
  if (const auto q = arrival_from_left(top_left)) {
    base.from_left = true;
    base.left_state = *q;
  }
  std::set<int> allowed;
  if (const auto cell = resolve(top_mid, base)) {
    allowed.insert(*cell);
  }
  for (int q : enter_right_) {
    Incoming in = base;
    in.from_right = true;
    in.right_state = q;
    if (const auto cell = resolve(top_mid, in)) {
      allowed.insert(*cell);
    }
  }
  return {allowed.begin(), allowed.end()};
}

bool LocalRules::head_crosses_left_boundary(int top0, int top1,
                                            int bottom0) const {
  // Crossing out: the column-x head moves left.
  if (m_->cell_has_head(top0) && !m_->is_halting(m_->cell_state(top0))) {
    if (m_->delta(m_->cell_state(top0), m_->cell_symbol(top0)).move ==
        Move::left) {
      return true;
    }
  }
  // Crossing in: column x gains a head that no in-fragment source explains.
  if (m_->cell_has_head(bottom0)) {
    const bool frozen_here =
        m_->cell_has_head(top0) && m_->is_halting(m_->cell_state(top0));
    const bool from_right = arrival_from_right(top1).has_value();
    if (!frozen_here && !from_right) {
      return true;
    }
  }
  return false;
}

std::optional<int> LocalRules::next_cell_natural_right(int top_prev,
                                                       int top_last) const {
  if (m_->cell_has_head(top_last) && !m_->is_halting(m_->cell_state(top_last))) {
    if (m_->delta(m_->cell_state(top_last), m_->cell_symbol(top_last)).move ==
        Move::right) {
      return std::nullopt;
    }
  }
  return next_cell(top_prev, top_last, m_->plain_cell(0));
}

bool LocalRules::head_crosses_right_boundary(int top_prev, int top_last,
                                             int bottom_last) const {
  if (m_->cell_has_head(top_last) && !m_->is_halting(m_->cell_state(top_last))) {
    if (m_->delta(m_->cell_state(top_last), m_->cell_symbol(top_last)).move ==
        Move::right) {
      return true;
    }
  }
  if (m_->cell_has_head(bottom_last)) {
    const bool frozen_here =
        m_->cell_has_head(top_last) && m_->is_halting(m_->cell_state(top_last));
    const bool from_left = arrival_from_left(top_prev).has_value();
    if (!frozen_here && !from_left) {
      return true;
    }
  }
  return false;
}

std::optional<std::pair<int, int>> LocalRules::find_violation(
    const ExecutionTable& t) const {
  // Row 0: blank initial configuration with the head on cell 0.
  if (t.cell(0, 0) != m_->head_cell(TuringMachine::kStartState, 0)) {
    return std::pair{0, 0};
  }
  for (int x = 1; x < t.width(); ++x) {
    if (t.cell(x, 0) != m_->plain_cell(0)) {
      return std::pair{x, 0};
    }
  }
  for (int y = 0; y + 1 < t.height(); ++y) {
    for (int x = 0; x < t.width(); ++x) {
      std::optional<int> expected;
      if (x == 0) {
        expected = next_cell_at_wall(t.cell(0, y),
                                     t.width() > 1 ? t.cell(1, y)
                                                   : m_->plain_cell(0));
      } else if (x == t.width() - 1) {
        // Beyond the right edge the tape is blank (the head cannot be there:
        // it moves one cell per step and started at column 0).
        expected = next_cell(t.cell(x - 1, y), t.cell(x, y), m_->plain_cell(0));
      } else {
        expected = next_cell(t.cell(x - 1, y), t.cell(x, y), t.cell(x + 1, y));
      }
      if (!expected.has_value() || *expected != t.cell(x, y + 1)) {
        return std::pair{x, y + 1};
      }
    }
  }
  return std::nullopt;
}

}  // namespace locald::tm
