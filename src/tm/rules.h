// Local consistency rules of execution tables.
//
// The Section-3 construction needs table validity to be checkable from
// constant-radius windows. We use 2-row x 3-column windows: the bottom
// middle cell is determined by the top triple (the head moves at most one
// cell per step), with frozen halting cells and "two heads collide" treated
// as contradictions. Fragment boundaries where a neighbour column lies
// outside the fragment get existential semantics — a cell is allowed iff
// SOME value of the unseen column makes the window consistent — which is
// exactly the paper's "no limitations on how the boundary nodes are
// labelled" rule.
//
// The same rules drive four consumers: validating real tables, enumerating
// the fragment collection C(M, r), classifying natural borders, and the
// Appendix-A local verifier.
#pragma once

#include <optional>
#include <vector>

#include "tm/table.h"

namespace locald::tm {

class LocalRules {
 public:
  explicit LocalRules(const TuringMachine& m);

  const TuringMachine& machine() const { return *m_; }

  // Bottom-middle cell under a fully known top triple; nullopt = window
  // contradictory (head collision, arrival at a frozen cell).
  std::optional<int> next_cell(int top_left, int top_mid, int top_right) const;

  // Column 0 of a real table: nothing ever exists to the left. nullopt also
  // covers the head stepping off the tape.
  std::optional<int> next_cell_at_wall(int top_mid, int top_right) const;

  // Fragment-boundary semantics (see file comment). Sorted, duplicate-free.
  std::vector<int> allowed_left_boundary(int top_mid, int top_right) const;
  std::vector<int> allowed_right_boundary(int top_left, int top_mid) const;

  // Natural right column (no head ever crosses the right boundary): the
  // unseen right side contributes nothing; nullopt if the head exits right.
  // The wall rule `next_cell_at_wall` is the left mirror image.
  std::optional<int> next_cell_natural_right(int top_prev, int top_last) const;

  // States the head can be in just after crossing a column boundary
  // rightwards (enter-from-left) / leftwards (enter-from-right).
  const std::vector<int>& enter_from_left_states() const {
    return enter_left_;
  }
  const std::vector<int>& enter_from_right_states() const {
    return enter_right_;
  }

  // Does the head cross the boundary between column x-1 and column x between
  // this row and the next? `top0`/`top1` are row-y cells at columns x, x+1;
  // `bottom0` is the row-(y+1) cell at column x. Used to classify natural
  // left borders (mirrored for right borders by the caller).
  bool head_crosses_left_boundary(int top0, int top1, int bottom0) const;

  // Mirror image: crossing between the last fragment column and the column
  // right of it. `top_last`/`top_prev` are row-y cells at columns x, x-1;
  // `bottom_last` is the row-(y+1) cell at column x.
  bool head_crosses_right_boundary(int top_prev, int top_last,
                                   int bottom_last) const;

  // Validates a real table against the rules: row 0 is the blank initial
  // configuration, every inner window matches, walls respected. Returns the
  // first violation as (x, y) of the inconsistent bottom cell.
  std::optional<std::pair<int, int>> find_violation(
      const ExecutionTable& t) const;

 private:
  struct Incoming {
    bool from_left = false;
    int left_state = 0;
    bool from_right = false;
    int right_state = 0;
  };

  // Core resolution given explicit knowledge of arriving heads.
  std::optional<int> resolve(int top_mid, const Incoming& in) const;

  // Head arriving INTO the middle from this top-left cell?
  std::optional<int> arrival_from_left(int top_left) const;
  std::optional<int> arrival_from_right(int top_right) const;

  const TuringMachine* m_;
  std::vector<int> enter_left_;
  std::vector<int> enter_right_;
};

}  // namespace locald::tm
