#include "tm/run.h"

namespace locald::tm {

bool step(const TuringMachine& m, Configuration& c) {
  if (m.is_halting(c.state)) {
    return false;
  }
  if (c.head >= static_cast<int>(c.tape.size())) {
    c.tape.resize(static_cast<std::size_t>(c.head) + 1, 0);
  }
  const Transition& t = m.delta(c.state, c.tape[static_cast<std::size_t>(c.head)]);
  c.tape[static_cast<std::size_t>(c.head)] = t.write;
  c.state = t.next_state;
  if (t.move == Move::left) {
    LOCALD_CHECK(c.head > 0,
                 "machine '" + m.name() + "' fell off the left tape end");
    --c.head;
  } else {
    ++c.head;
  }
  return true;
}

RunOutcome run_machine(const TuringMachine& m, long long max_steps) {
  LOCALD_CHECK(max_steps >= 0, "step budget must be non-negative");
  Configuration c;
  RunOutcome out;
  while (out.steps < max_steps && step(m, c)) {
    ++out.steps;
  }
  if (m.is_halting(c.state)) {
    out.halted = true;
    out.output = m.halt_output(c.state);
  }
  return out;
}

std::vector<Configuration> trace_machine(const TuringMachine& m,
                                         long long max_steps) {
  LOCALD_CHECK(max_steps >= 0, "step budget must be non-negative");
  std::vector<Configuration> out;
  Configuration c;
  out.push_back(c);
  for (long long i = 0; i < max_steps; ++i) {
    if (!step(m, c)) {
      break;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace locald::tm
