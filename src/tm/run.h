// Direct Turing-machine simulation (configurations, stepping, bounded runs).
//
// This is the reference semantics; the execution-table builder and the local
// window rules are validated against it in tests.
#pragma once

#include <vector>

#include "tm/machine.h"

namespace locald::tm {

struct Configuration {
  std::vector<int> tape;  // grows on demand; absent cells are blank
  int head = 0;
  int state = TuringMachine::kStartState;

  int symbol_under_head() const {
    return head < static_cast<int>(tape.size()) ? tape[head] : 0;
  }
};

// One step. Returns false (and leaves the configuration unchanged) when the
// machine has already halted. Throws if the head would fall off the tape.
bool step(const TuringMachine& m, Configuration& c);

struct RunOutcome {
  bool halted = false;
  long long steps = 0;   // steps executed (== halting time when halted)
  int output = -1;       // 0/1 when halted
};

// Runs from the blank initial configuration for at most `max_steps` steps.
RunOutcome run_machine(const TuringMachine& m, long long max_steps);

// Configurations before steps 0..k where k = min(halt, max_steps); the
// final entry is the halting configuration when the machine halts in time.
std::vector<Configuration> trace_machine(const TuringMachine& m,
                                         long long max_steps);

}  // namespace locald::tm
