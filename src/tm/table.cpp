#include "tm/table.h"

#include <bit>
#include <sstream>

namespace locald::tm {

ExecutionTable ExecutionTable::build(const TuringMachine& m, int height,
                                     int width) {
  LOCALD_CHECK(height >= 1 && width >= 1, "table dimensions must be positive");
  LOCALD_CHECK(width >= height,
               "width must cover the head's maximal excursion (>= height)");
  ExecutionTable t(m, width, height);
  t.cells_.resize(static_cast<std::size_t>(width) * height);
  Configuration c;
  for (int y = 0; y < height; ++y) {
    LOCALD_ASSERT(c.head < width, "head escaped the table");
    for (int x = 0; x < width; ++x) {
      const int symbol =
          x < static_cast<int>(c.tape.size()) ? c.tape[static_cast<std::size_t>(x)] : 0;
      const int code = (x == c.head) ? m.head_cell(c.state, symbol)
                                     : m.plain_cell(symbol);
      t.cells_[static_cast<std::size_t>(y) * width + x] = code;
    }
    if (m.is_halting(c.state)) {
      if (!t.halting_step_.has_value()) {
        t.halting_step_ = y;
      }
      continue;  // frozen: next row copies this one
    }
    if (y + 1 < height) {
      step(m, c);
    }
  }
  return t;
}

ExecutionTable ExecutionTable::build_padded_pow2(const TuringMachine& m,
                                                 long long max_steps,
                                                 int minimum_size) {
  const RunOutcome out = run_machine(m, max_steps);
  LOCALD_CHECK(out.halted, "machine '" + m.name() +
                               "' did not halt within the step budget");
  const long long rows = out.steps + 1;
  std::uint64_t size = std::bit_ceil(static_cast<std::uint64_t>(
      std::max<long long>(rows, minimum_size)));
  return build(m, static_cast<int>(size), static_cast<int>(size));
}

int ExecutionTable::cell(int x, int y) const {
  LOCALD_CHECK(x >= 0 && x < width_ && y >= 0 && y < height_,
               "table coordinate out of range");
  return cells_[static_cast<std::size_t>(y) * width_ + x];
}

int ExecutionTable::head_column(int y) const {
  for (int x = 0; x < width_; ++x) {
    if (machine_->cell_has_head(cell(x, y))) {
      return x;
    }
  }
  LOCALD_ASSERT(false, "table row has no head");
  return -1;
}

std::string ExecutionTable::to_string() const {
  std::ostringstream os;
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      os << machine_->cell_to_string(cell(x, y));
      os << " ";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace locald::tm
