// Execution tables: the grid representation of a machine run (Section 3.2).
//
// Row y holds the configuration before step y; rows repeat the halted
// configuration once the machine halts ("frozen" halting semantics), which
// is what allows padding a table to a power-of-two height for the pyramid
// augmentation of Appendix A. Cells are stored as the machine's cell codes
// (plain symbol, or head+state+symbol).
#pragma once

#include <optional>
#include <vector>

#include "tm/machine.h"
#include "tm/run.h"

namespace locald::tm {

class ExecutionTable {
 public:
  // Builds a height x width table. Requires width >= height so the head
  // (which moves at most one cell per step) cannot leave the grid. Works for
  // non-halting machines too: only `height - 1` steps are ever simulated.
  static ExecutionTable build(const TuringMachine& m, int height, int width);

  // Natural table of a halting machine: runs it, takes s+1 rows, and pads
  // both dimensions to the next power of two (>= minimum_size).
  static ExecutionTable build_padded_pow2(const TuringMachine& m,
                                          long long max_steps,
                                          int minimum_size = 1);

  int width() const { return width_; }
  int height() const { return height_; }
  const TuringMachine& machine() const { return *machine_; }

  int cell(int x, int y) const;

  // Step at which the machine halted, if it did within the table.
  std::optional<long long> halting_step() const { return halting_step_; }

  // Row index -> head column (each genuine row has exactly one head).
  int head_column(int y) const;

  std::string to_string() const;  // ASCII art for debugging/examples

 private:
  ExecutionTable(const TuringMachine& m, int width, int height)
      : machine_(&m), width_(width), height_(height) {}

  const TuringMachine* machine_;
  int width_;
  int height_;
  std::vector<int> cells_;  // row-major
  std::optional<long long> halting_step_;
};

}  // namespace locald::tm
