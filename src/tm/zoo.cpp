#include "tm/zoo.h"

#include "support/format.h"
#include "tm/run.h"

namespace locald::tm {

namespace {

// Right-moving no-op used to complete transition tables on unreachable
// (state, symbol) pairs; moving right keeps any accidental execution on the
// tape.
Transition dummy(int self_state) {
  return Transition{self_state, 0, Move::right};
}

}  // namespace

TuringMachine halt_after(int k, int output) {
  LOCALD_CHECK(k >= 1, "runtime must be at least one step");
  LOCALD_CHECK(output == 0 || output == 1, "output must be 0 or 1");
  TuringMachine m(cat("halt_after(", k, ",", output, ")"), k + 2, 2);
  const int halt = output == 0 ? m.halt0() : m.halt1();
  for (int i = 0; i < k; ++i) {
    const int next = (i + 1 < k) ? i + 1 : halt;
    m.set_transition(i, 0, Transition{next, 1, Move::right});
    m.set_transition(i, 1, Transition{next, 1, Move::right});
  }
  m.validate();
  return m;
}

TuringMachine bouncer() {
  TuringMachine m("bouncer", 4, 2);
  m.set_transition(0, 0, Transition{1, 1, Move::right});
  m.set_transition(0, 1, Transition{1, 1, Move::right});
  m.set_transition(1, 0, Transition{0, 1, Move::left});
  m.set_transition(1, 1, Transition{0, 1, Move::left});
  m.validate();
  return m;
}

TuringMachine right_drifter() {
  TuringMachine m("right_drifter", 3, 2);
  m.set_transition(0, 0, Transition{0, 1, Move::right});
  m.set_transition(0, 1, Transition{0, 1, Move::right});
  m.validate();
  return m;
}

TuringMachine crawler() {
  TuringMachine m("crawler", 4, 2);
  m.set_transition(0, 0, Transition{1, 1, Move::right});
  m.set_transition(0, 1, Transition{1, 1, Move::right});
  m.set_transition(1, 0, Transition{0, 1, Move::left});
  m.set_transition(1, 1, Transition{0, 0, Move::right});
  m.validate();
  return m;
}

namespace {

// Shared sweep logic: states are
//   mark = 0, and per round i (1-based): right_i, left_i.
// zigzag_expander reuses a single (right, left) pair; zigzag_halt chains
// `rounds` pairs and halts when the last round returns to the marker.
constexpr int kBlank = 0;
constexpr int kOne = 1;
constexpr int kMark = 2;

}  // namespace

TuringMachine zigzag_expander() {
  // states: 0 = mark, 1 = right, 2 = left (+2 halting, unreachable).
  TuringMachine m("zigzag_expander", 5, 3);
  m.set_transition(0, kBlank, Transition{1, kMark, Move::right});
  m.set_transition(0, kOne, dummy(0));
  m.set_transition(0, kMark, dummy(0));
  m.set_transition(1, kBlank, Transition{2, kOne, Move::left});
  m.set_transition(1, kOne, Transition{1, kOne, Move::right});
  m.set_transition(1, kMark, dummy(1));
  m.set_transition(2, kOne, Transition{2, kOne, Move::left});
  m.set_transition(2, kMark, Transition{1, kMark, Move::right});
  m.set_transition(2, kBlank, dummy(2));
  m.validate();
  return m;
}

TuringMachine zigzag_halt(int rounds, int output) {
  LOCALD_CHECK(rounds >= 1, "need at least one round");
  LOCALD_CHECK(output == 0 || output == 1, "output must be 0 or 1");
  // states: 0 = mark; right_i = 1 + 2*(i-1); left_i = 2 + 2*(i-1).
  const int work = 1 + 2 * rounds;
  TuringMachine m(cat("zigzag_halt(", rounds, ",", output, ")"), work + 2, 3);
  const int halt = output == 0 ? m.halt0() : m.halt1();
  m.set_transition(0, kBlank, Transition{1, kMark, Move::right});
  m.set_transition(0, kOne, dummy(0));
  m.set_transition(0, kMark, dummy(0));
  for (int i = 1; i <= rounds; ++i) {
    const int right = 1 + 2 * (i - 1);
    const int left = 2 + 2 * (i - 1);
    const int next_right = (i < rounds) ? 1 + 2 * i : halt;
    m.set_transition(right, kBlank, Transition{left, kOne, Move::left});
    m.set_transition(right, kOne, Transition{right, kOne, Move::right});
    m.set_transition(right, kMark, dummy(right));
    m.set_transition(left, kOne, Transition{left, kOne, Move::left});
    m.set_transition(left, kMark, Transition{next_right, kMark, Move::right});
    m.set_transition(left, kBlank, dummy(left));
  }
  m.validate();
  return m;
}

namespace {

ZooEntry halting_entry(TuringMachine m) {
  const RunOutcome out = run_machine(m, 1'000'000);
  LOCALD_ASSERT(out.halted, "zoo entry expected to halt");
  ZooEntry e{std::move(m), true, out.steps, out.output};
  return e;
}

ZooEntry diverging_entry(TuringMachine m) {
  return ZooEntry{std::move(m), false, -1, -1};
}

}  // namespace

std::vector<ZooEntry> small_zoo() {
  std::vector<ZooEntry> zoo;
  zoo.push_back(halting_entry(halt_after(1, 0)));
  zoo.push_back(halting_entry(halt_after(1, 1)));
  zoo.push_back(halting_entry(halt_after(2, 0)));
  zoo.push_back(halting_entry(halt_after(2, 1)));
  zoo.push_back(halting_entry(halt_after(3, 0)));
  zoo.push_back(halting_entry(halt_after(3, 1)));
  zoo.push_back(diverging_entry(bouncer()));
  zoo.push_back(diverging_entry(right_drifter()));
  zoo.push_back(diverging_entry(crawler()));
  return zoo;
}

std::vector<ZooEntry> full_zoo() {
  std::vector<ZooEntry> zoo = small_zoo();
  zoo.push_back(halting_entry(halt_after(6, 0)));
  zoo.push_back(halting_entry(halt_after(6, 1)));
  zoo.push_back(halting_entry(halt_after(10, 0)));
  zoo.push_back(halting_entry(halt_after(10, 1)));
  zoo.push_back(halting_entry(zigzag_halt(1, 0)));
  zoo.push_back(halting_entry(zigzag_halt(2, 1)));
  zoo.push_back(halting_entry(zigzag_halt(3, 0)));
  zoo.push_back(halting_entry(zigzag_halt(4, 1)));
  zoo.push_back(diverging_entry(zigzag_expander()));
  return zoo;
}

}  // namespace locald::tm
