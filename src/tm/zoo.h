// A zoo of small Turing machines used throughout the Section-3 experiments.
//
// The Section-3 construction multiplies the machine's cell alphabet into the
// fragment-collection size, so the zoo favours machines with very few states
// whose behaviours still cover the cases the paper cares about:
//
//  - members of L0 / L1 (halt with output 0 / 1) with tunable runtimes;
//  - non-halting machines of three flavours: bounded-space oscillation,
//    steady right drift, and ever-growing zigzag excursions — the inputs on
//    which the neighbourhood generator B(N, r) must still halt;
//  - chain machines halt_after(k, out) whose runtime is exactly k, used by
//    the diagonalization harness to outlast any budget-k candidate decider.
//
// All machines run on a one-way tape and never fall off the left end.
#pragma once

#include <vector>

#include "tm/machine.h"

namespace locald::tm {

// Halts after exactly k steps (k >= 1) in halt0/halt1 per `output`.
// Uses k working states: a pure state-chain drifting right.
TuringMachine halt_after(int k, int output);

// Two working states, alphabet {0,1}: oscillates between cells 0 and 1
// forever. Bounded-space non-halting.
TuringMachine bouncer();

// One working state: drifts right forever writing 1s. Non-halting with
// linearly growing support.
TuringMachine right_drifter();

// Two working states: drifts right two cells every four steps, moving both
// directions along the way. Non-halting.
TuringMachine crawler();

// Marks cell 0, then sweeps right to the first blank and back, excursions
// growing by one cell per round, forever. Three working states, alphabet
// {blank, 1, marker}. Non-halting with unbounded excursions.
TuringMachine zigzag_expander();

// Same sweep, but counts `rounds` round trips in its state and then halts
// with `output`. Runtime grows quadratically in `rounds`.
TuringMachine zigzag_halt(int rounds, int output);

// Convenience catalogue entry: machine plus its ground truth.
struct ZooEntry {
  TuringMachine machine;
  bool halts = false;
  long long runtime = -1;  // meaningful when halts
  int output = -1;         // meaningful when halts
};

// Small machines (few states) suitable for fragment-heavy experiments.
std::vector<ZooEntry> small_zoo();

// Wider catalogue including slower halting machines.
std::vector<ZooEntry> full_zoo();

}  // namespace locald::tm
