#include "trees/audit.h"

#include "graph/generators.h"
#include "local/ball.h"

namespace locald::trees {

namespace {

// Stripped radius-1 ball of the node with coordinates (x, y) in `g`.
local::Ball ball_of_coords(const local::LabeledGraph& g, int r, Coord x,
                           Coord y) {
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    const local::Label& l = g.label(v);
    if (l.size() == 4 && l.at(0) == kTreeTag && l.at(1) == r &&
        l.at(2) == x && l.at(3) == y) {
      return extract_ball(g, nullptr, v, 1);
    }
  }
  LOCALD_ASSERT(false, "coordinates not found in instance");
  return {};
}

}  // namespace

TreeAuditResult audit_tree_coverage(const TreeParams& p,
                                    std::uint64_t max_nodes,
                                    std::uint64_t canonical_sample,
                                    Rng& rng) {
  const Coord R = p.capital_R();
  const std::uint64_t n = (std::uint64_t{1} << (R + 1)) - 1;
  const bool exhaustive = max_nodes == 0 || max_nodes >= n;
  const std::uint64_t count = exhaustive ? n : max_nodes;

  // Build T_r lazily only if canonical comparisons are requested.
  std::unique_ptr<local::LabeledGraph> T;
  if (canonical_sample > 0) {
    T = std::make_unique<local::LabeledGraph>(build_T(p));
  }

  TreeAuditResult result;
  for (std::uint64_t i = 0; i < count; ++i) {
    const graph::NodeId v = static_cast<graph::NodeId>(
        exhaustive ? i : rng.below(n));
    const Coord y = graph::TreeIndex::level(v);
    const Coord x = graph::TreeIndex::offset(v);
    ++result.nodes_audited;

    const std::optional<Patch> witness = witness_patch(p, x, y);
    const bool contained = witness.has_value() && witness->contains(x, y) &&
                           !is_border(*witness, x, y, R);
    if (contained) {
      ++result.patch_covered;
    }
    if (has_subtree_witness(p, x, y)) {
      ++result.subtree_covered;
    }

    if (contained && T != nullptr &&
        result.canonical_checked < canonical_sample) {
      ++result.canonical_checked;
      const local::Ball in_T = extract_ball(*T, nullptr, v, 1);
      const local::LabeledGraph instance =
          build_patch_instance(p, *witness);
      const local::Ball in_H = ball_of_coords(instance, p.r, x, y);
      if (in_T.canonical_encoding() != in_H.canonical_encoding()) {
        ++result.canonical_mismatch;
      }
    }
  }
  return result;
}

}  // namespace locald::trees
