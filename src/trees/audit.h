// The Figure-1 indistinguishability experiment.
//
// For every (or a sampled subset of) node v of T_r the audit exhibits a
// yes-instance H+ whose corresponding node has the identical stripped
// radius-1 ball — the containment "every t-neighbourhood of T_r is found in
// one of the yes-instances" behind P not in LD*. Containment is established
// combinatorially (the witness patch contains N[v] with v off-border, and
// patches are induced, so the balls agree by construction) and re-verified
// on request by comparing canonical ball encodings against the actually
// built instance.
//
// The audit also reports how many nodes admit an ALIGNED-SUBTREE witness:
// under the literal reading of the paper's H <= r T_r this is strictly less
// than all of them (alignment boundaries fail), which is the reproduction
// finding documented in docs/ARCHITECTURE.md.
#pragma once

#include "support/rng.h"
#include "trees/construction.h"

namespace locald::trees {

struct TreeAuditResult {
  std::uint64_t nodes_audited = 0;
  std::uint64_t patch_covered = 0;     // witness patch found (expected: all)
  std::uint64_t subtree_covered = 0;   // aligned-subtree witness exists
  std::uint64_t canonical_checked = 0; // balls compared byte-for-byte
  std::uint64_t canonical_mismatch = 0;

  bool full_patch_coverage() const {
    return patch_covered == nodes_audited;
  }
  double subtree_fraction() const {
    return nodes_audited == 0
               ? 0.0
               : static_cast<double>(subtree_covered) / nodes_audited;
  }
};

// Audits up to `max_nodes` nodes of T_r (all nodes if max_nodes == 0 or
// >= |T_r|; otherwise a seeded uniform sample). `canonical_sample` nodes
// additionally get the full canonical-ball comparison against the built
// witness instance.
TreeAuditResult audit_tree_coverage(const TreeParams& p,
                                    std::uint64_t max_nodes,
                                    std::uint64_t canonical_sample, Rng& rng);

}  // namespace locald::trees
