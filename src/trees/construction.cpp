#include "trees/construction.h"

#include <algorithm>
#include <map>
#include <set>

#include "graph/generators.h"
#include "support/format.h"

namespace locald::trees {

local::Label tree_label(int r, Coord x, Coord y) {
  return local::Label{kTreeTag, r, x, y};
}

local::Label pivot_label(int r) {
  return local::Label{kPivotTag, r};
}

Coord TreeParams::capital_R() const {
  LOCALD_CHECK(r >= 1, "Section 2 needs r >= 1");
  LOCALD_CHECK(r <= 20, "r out of supported range");
  const local::Id R = f(yes_size_bound());
  LOCALD_CHECK(R > static_cast<local::Id>(r), "id bound too weak: R(r) <= r");
  LOCALD_CHECK(R <= 40, "R(r) too large for coordinate arithmetic");
  return static_cast<Coord>(R);
}

std::vector<CoordPair> tr_neighbors(Coord x, Coord y, Coord R) {
  LOCALD_CHECK(y >= 0 && y <= R && x >= 0 && x < (Coord{1} << y),
               "coordinates outside T_r");
  std::vector<CoordPair> out;
  if (y > 0) {
    out.push_back({x >> 1, y - 1});
  }
  if (y < R) {
    out.push_back({2 * x, y + 1});
    out.push_back({2 * x + 1, y + 1});
  }
  if (x > 0) {
    out.push_back({x - 1, y});
  }
  if (x < (Coord{1} << y) - 1) {
    out.push_back({x + 1, y});
  }
  return out;
}

bool coords_adjacent(const CoordPair& a, const CoordPair& b, Coord R) {
  if (a == b) {
    return false;
  }
  const auto in_range = [R](const CoordPair& c) {
    return c.y >= 0 && c.y <= R && c.x >= 0 && c.x < (Coord{1} << c.y);
  };
  if (!in_range(a) || !in_range(b)) {
    return false;
  }
  if (a.y == b.y) {
    return std::abs(a.x - b.x) == 1;  // level path
  }
  const CoordPair& up = a.y < b.y ? a : b;
  const CoordPair& down = a.y < b.y ? b : a;
  return down.y == up.y + 1 && (down.x >> 1) == up.x;  // tree edge
}

bool Patch::contains(Coord x, Coord y) const {
  if (y < y0 || y > y0 + r) {
    return false;
  }
  const int j = static_cast<int>(y - y0);
  return x >= left(j) && x <= right(j);
}

std::int64_t Patch::node_count() const {
  std::int64_t total = 0;
  for (int j = 0; j <= r; ++j) {
    total += right(j) - left(j) + 1;
  }
  return total;
}

bool Patch::valid(const TreeParams& p) const {
  if (r != p.r || y0 < 0) {
    return false;
  }
  const Coord R = p.capital_R();
  if (y0 + r > R) {
    return false;
  }
  if (bottom_left < 0 || bottom_left > bottom_right ||
      bottom_right >= (Coord{1} << (y0 + r))) {
    return false;
  }
  return width() <= (Coord{1} << r);
}

Patch subtree_patch(const TreeParams& p, Coord x0, Coord y0) {
  Patch h;
  h.r = p.r;
  h.y0 = y0;
  h.bottom_left = x0 << p.r;
  h.bottom_right = ((x0 + 1) << p.r) - 1;
  LOCALD_CHECK(h.valid(p), "invalid subtree root");
  return h;
}

std::vector<CoordPair> patch_neighbors(const Patch& h, Coord x, Coord y,
                                       Coord R) {
  LOCALD_CHECK(h.contains(x, y), "node outside the patch");
  std::vector<CoordPair> out;
  for (const CoordPair& c : tr_neighbors(x, y, R)) {
    if (h.contains(c.x, c.y)) {
      out.push_back(c);
    }
  }
  return out;
}

bool is_border(const Patch& h, Coord x, Coord y, Coord R) {
  return patch_neighbors(h, x, y, R).size() != tr_neighbors(x, y, R).size();
}

std::vector<CoordPair> expected_border(const Patch& h, Coord R) {
  std::vector<CoordPair> out;
  for (int j = 0; j <= h.r; ++j) {
    const Coord y = h.y0 + j;
    for (Coord x = h.left(j); x <= h.right(j); ++x) {
      if (is_border(h, x, y, R)) {
        out.push_back({x, y});
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

local::LabeledGraph build_T(const TreeParams& p) {
  const Coord R = p.capital_R();
  LOCALD_CHECK(R <= 24, "T_r too large to materialize (R > 24)");
  graph::CsrGraph g = graph::make_layered_tree(static_cast<int>(R));
  local::LabeledGraph out(std::move(g));
  for (graph::NodeId v = 0; v < out.node_count(); ++v) {
    const int y = graph::TreeIndex::level(v);
    const Coord x = graph::TreeIndex::offset(v);
    out.set_label(v, tree_label(p.r, x, y));
  }
  return out;
}

local::LabeledGraph build_patch_instance(const TreeParams& p, const Patch& h) {
  LOCALD_CHECK(h.valid(p), "invalid patch");
  const Coord R = p.capital_R();
  std::map<CoordPair, graph::NodeId> index;
  graph::GraphBuilder g;
  std::vector<local::Label> labels;
  for (int j = 0; j <= h.r; ++j) {
    const Coord y = h.y0 + j;
    for (Coord x = h.left(j); x <= h.right(j); ++x) {
      const graph::NodeId v = g.add_node();
      index[{x, y}] = v;
      labels.push_back(tree_label(p.r, x, y));
    }
  }
  for (const auto& [coords, v] : index) {
    for (const CoordPair& c : patch_neighbors(h, coords.x, coords.y, R)) {
      const auto it = index.find(c);
      LOCALD_ASSERT(it != index.end(), "patch neighbour not indexed");
      if (v < it->second) {
        g.add_edge(v, it->second);
      }
    }
  }
  const graph::NodeId pivot = g.add_node();
  labels.push_back(pivot_label(p.r));
  const auto border = expected_border(h, R);
  LOCALD_CHECK(!border.empty(),
               "patch has no border: the pivot would be disconnected");
  for (const CoordPair& c : border) {
    g.add_edge(pivot, index.at(c));
  }
  return local::LabeledGraph(g.build(), std::move(labels));
}

std::optional<Patch> witness_patch(const TreeParams& p, Coord x, Coord y) {
  const Coord R = p.capital_R();
  LOCALD_CHECK(y >= 0 && y <= R && x >= 0 && x < (Coord{1} << y),
               "coordinates outside T_r");
  // Closed form: place (x, y) at relative level j — shallow nodes in the
  // full-width top patch, generic nodes two levels below the patch top,
  // deep nodes pinned by the bottom hitting R.
  const Coord depth_in = std::min<Coord>(2, p.r);
  const Coord y0_formula = std::clamp<Coord>(y - depth_in, 0, R - p.r);
  {
    const int j = static_cast<int>(y - y0_formula);
    if (j <= p.r) {
      const Coord row_width = Coord{1} << j;
      const Coord row_left =
          std::clamp<Coord>(x - (row_width / 2 - (j > 0 ? 1 : 0)), 0,
                            (Coord{1} << y) - row_width);
      Patch h;
      h.r = p.r;
      h.y0 = y0_formula;
      h.bottom_left = row_left << (p.r - j);
      h.bottom_right = ((row_left + row_width - 1) << (p.r - j)) +
                       ((Coord{1} << (p.r - j)) - 1);
      if (h.valid(p) && h.contains(x, y) && !is_border(h, x, y, R)) {
        return h;
      }
    }
  }
  // Fallback: search bottom windows around the node's descendant interval
  // (covers unaligned placements, e.g. relative level 1 at r = 2).
  const Coord W = Coord{1} << p.r;
  const Coord lo = std::max<Coord>(0, y - p.r);
  const Coord hi = std::min<Coord>(y, R - p.r);
  for (Coord y0 = hi; y0 >= lo; --y0) {
    const Coord bottom_level = y0 + p.r;
    const Coord level_size = Coord{1} << bottom_level;
    const Coord vx_lo = x << (bottom_level - y);
    for (Coord bL = std::max<Coord>(0, vx_lo - W + 1);
         bL <= std::min(vx_lo + W - 1, level_size - 1); ++bL) {
      for (Coord width = W; width >= 1; --width) {
        const Coord bR = bL + width - 1;
        if (bR >= level_size) {
          continue;
        }
        Patch h;
        h.r = p.r;
        h.y0 = y0;
        h.bottom_left = bL;
        h.bottom_right = bR;
        if (h.valid(p) && h.contains(x, y) && !is_border(h, x, y, R)) {
          return h;
        }
      }
    }
  }
  return std::nullopt;
}

bool has_subtree_witness(const TreeParams& p, Coord x, Coord y) {
  const Coord R = p.capital_R();
  const Coord lo = std::max<Coord>(0, y - p.r);
  const Coord hi = std::min<Coord>(y, R - p.r);
  for (Coord y0 = lo; y0 <= hi; ++y0) {
    const Patch h = subtree_patch(p, x >> (y - y0), y0);
    if (!is_border(h, x, y, R)) {
      return true;
    }
  }
  return false;
}

namespace {

struct ParsedLabels {
  std::map<CoordPair, graph::NodeId> tree_nodes;
  std::vector<graph::NodeId> pivots;
  bool ok = false;
};

ParsedLabels parse_labels(const TreeParams& p, const local::LabeledGraph& g,
                          Coord R) {
  ParsedLabels out;
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    const local::Label& l = g.label(v);
    if (l.size() == 2 && l.at(0) == kPivotTag && l.at(1) == p.r) {
      out.pivots.push_back(v);
      continue;
    }
    if (l.size() != 4 || l.at(0) != kTreeTag || l.at(1) != p.r) {
      return out;
    }
    const Coord x = l.at(2);
    const Coord y = l.at(3);
    if (y < 0 || y > R || x < 0 || x >= (Coord{1} << y)) {
      return out;
    }
    if (!out.tree_nodes.emplace(CoordPair{x, y}, v).second) {
      return out;  // duplicate coordinates
    }
  }
  out.ok = true;
  return out;
}

// Do the graph's edges agree exactly with coordinate adjacency (plus the
// given pivot adjacency)?
bool edges_match(const local::LabeledGraph& g,
                 const std::set<std::pair<graph::NodeId, graph::NodeId>>&
                     pivot_edges,
                 Coord R, std::size_t expected_adjacent_pairs) {
  std::size_t adjacent_pairs = 0;
  for (const auto& [u, v] : g.graph().edges()) {
    const auto key = std::minmax(u, v);
    if (pivot_edges.contains({key.first, key.second})) {
      continue;
    }
    const local::Label& lu = g.label(u);
    const local::Label& lv = g.label(v);
    if (lu.size() != 4 || lv.size() != 4) {
      return false;  // pivot edge not accounted for
    }
    if (!coords_adjacent({lu.at(2), lu.at(3)}, {lv.at(2), lv.at(3)}, R)) {
      return false;
    }
    ++adjacent_pairs;
  }
  return adjacent_pairs == expected_adjacent_pairs;
}

// Number of T_r-adjacent pairs among a coordinate set.
std::size_t count_adjacent_pairs(const std::map<CoordPair, graph::NodeId>& s,
                                 Coord R) {
  std::size_t count = 0;
  for (const auto& [c, v] : s) {
    for (const CoordPair& n : tr_neighbors(c.x, c.y, R)) {
      if (n < c && s.contains(n)) {
        ++count;
      }
    }
  }
  return count;
}

}  // namespace

bool is_T(const TreeParams& p, const local::LabeledGraph& g) {
  const Coord R = p.capital_R();
  const std::int64_t expected_n = (std::int64_t{1} << (R + 1)) - 1;
  if (g.node_count() != expected_n) {
    return false;
  }
  const ParsedLabels parsed = parse_labels(p, g, R);
  if (!parsed.ok || !parsed.pivots.empty()) {
    return false;
  }
  if (static_cast<std::int64_t>(parsed.tree_nodes.size()) != expected_n) {
    return false;
  }
  // Coordinates form the full tree by counting: distinct, in range, and
  // exactly 2^{R+1} - 1 of them.
  return edges_match(g, {}, R,
                     count_adjacent_pairs(parsed.tree_nodes, R));
}

bool is_patch_instance(const TreeParams& p, const local::LabeledGraph& g) {
  const Coord R = p.capital_R();
  const ParsedLabels parsed = parse_labels(p, g, R);
  if (!parsed.ok || parsed.pivots.size() != 1 || parsed.tree_nodes.empty()) {
    return false;
  }
  // Infer the patch from the coordinate set.
  const Coord y0 = parsed.tree_nodes.begin()->first.y;
  Coord ymax = y0;
  for (const auto& [c, v] : parsed.tree_nodes) {
    ymax = std::max(ymax, c.y);
  }
  if (ymax - y0 != p.r) {
    return false;
  }
  std::map<Coord, std::pair<Coord, Coord>> row;  // level -> [min, max]
  std::map<Coord, std::int64_t> row_count;
  for (const auto& [c, v] : parsed.tree_nodes) {
    auto [it, fresh] = row.emplace(c.y, std::pair{c.x, c.x});
    if (!fresh) {
      it->second.first = std::min(it->second.first, c.x);
      it->second.second = std::max(it->second.second, c.x);
    }
    ++row_count[c.y];
  }
  Patch h;
  h.r = p.r;
  h.y0 = y0;
  const auto bottom = row.find(y0 + p.r);
  if (bottom == row.end()) {
    return false;
  }
  h.bottom_left = bottom->second.first;
  h.bottom_right = bottom->second.second;
  if (!h.valid(p)) {
    return false;
  }
  // Every level must be the exact ancestor interval (contiguous rows are
  // implied by matching counts and min/max).
  for (int j = 0; j <= p.r; ++j) {
    const Coord y = y0 + j;
    const auto it = row.find(y);
    if (it == row.end() || it->second.first != h.left(j) ||
        it->second.second != h.right(j) ||
        row_count[y] != h.right(j) - h.left(j) + 1) {
      return false;
    }
  }
  // Pivot adjacency must be exactly the border.
  const graph::NodeId pivot = parsed.pivots[0];
  std::set<std::pair<graph::NodeId, graph::NodeId>> pivot_edges;
  std::set<CoordPair> pivot_coords;
  for (graph::NodeId w : g.graph().neighbors(pivot)) {
    const local::Label& l = g.label(w);
    if (l.size() != 4) {
      return false;  // pivot adjacent to another pivot
    }
    pivot_coords.insert({l.at(2), l.at(3)});
    const auto key = std::minmax(pivot, w);
    pivot_edges.insert({key.first, key.second});
  }
  const auto border = expected_border(h, R);
  if (pivot_coords != std::set<CoordPair>(border.begin(), border.end())) {
    return false;
  }
  return edges_match(g, pivot_edges, R,
                     count_adjacent_pairs(parsed.tree_nodes, R));
}

std::unique_ptr<local::Property> property_P(const TreeParams& p) {
  return std::make_unique<local::LambdaProperty>(
      cat("sec2-P(r=", p.r, ",f=", p.f.name(), ")"),
      [p](const local::LabeledGraph& g) { return is_patch_instance(p, g); });
}

std::unique_ptr<local::Property> property_P_prime(const TreeParams& p) {
  return std::make_unique<local::LambdaProperty>(
      cat("sec2-P'(r=", p.r, ",f=", p.f.name(), ")"),
      [p](const local::LabeledGraph& g) {
        return is_patch_instance(p, g) || is_T(p, g);
      });
}

}  // namespace locald::trees
