// The Section-2 construction: layered trees T_r and the small instances H+.
//
// T_r is the layered tree of depth R(r) = f(2^{r+1} + 1), each node labelled
// with its (r, x, y) coordinates. The yes-instances are depth-r fragments of
// T_r augmented with a pivot node adjacent to all border nodes (Figure 1).
//
// A note on the fragment family ("patches"). The paper writes H <= r T_r for
// induced subgraphs whose topology is a layered depth-r tree. Read literally
// that family contains exactly the *aligned* subtrees (every triangle of a
// layered tree is a parent-with-children triangle, which pins any induced
// copy to tree alignment) — and aligned subtrees do NOT cover the radius-t
// balls of nodes sitting on subtree alignment boundaries (e.g. the bottom
// node x = 2^r has its left level-neighbour in no aligned subtree that
// contains it off-border). We therefore implement the family that makes the
// paper's containment claim true: ancestor-closed trapezoidal windows
//
//   Patch(y0, [bL, bR]) = { (x, y0+j) : bL >> (r-j) <= x <= bR >> (r-j) },
//
// with bottom width at most 2^r (so instance sizes keep the paper's
// 2^{r+1} bound and R(r) is unchanged). Aligned subtrees are the special
// case bL = x0 * 2^r, bR = (x0+1) * 2^r - 1. The coverage experiment
// measures both readings.
#pragma once

#include <cstdint>
#include <vector>

#include "local/identifiers.h"
#include "local/labeled_graph.h"
#include "local/property.h"

namespace locald::trees {

using Coord = std::int64_t;

struct CoordPair {
  Coord x = 0;
  Coord y = 0;
  auto operator<=>(const CoordPair&) const = default;
};

// Label schema: tree node (kTreeTag, r, x, y); pivot (kPivotTag, r).
inline constexpr std::int64_t kTreeTag = 1;
inline constexpr std::int64_t kPivotTag = 2;

local::Label tree_label(int r, Coord x, Coord y);
local::Label pivot_label(int r);

struct TreeParams {
  int r = 3;
  local::IdBound f = local::IdBound::linear_plus(1);

  // Largest yes-instance size + 1. A patch row at relative level j is an
  // ancestor interval of the bottom window and can hold 2^j + 1 nodes, so a
  // patch has at most sum_j (2^j + 1) = 2^{r+1} + r nodes including the
  // pivot (one more than the paper's aligned-subtree bound 2^{r+1}).
  local::Id yes_size_bound() const {
    return (local::Id{1} << (r + 1)) + static_cast<local::Id>(r) + 1;
  }
  // R(r) = f(yes_size_bound), the paper's R(r) = f(2^{r+1} + 1) adjusted to
  // the trapezoid family.
  Coord capital_R() const;
};

// All T_r neighbours of (x, y): parent, children, level-predecessor and
// -successor, within the depth-R layered tree.
std::vector<CoordPair> tr_neighbors(Coord x, Coord y, Coord R);

// Are two coordinate pairs adjacent in T_r?
bool coords_adjacent(const CoordPair& a, const CoordPair& b, Coord R);

struct Patch {
  int r = 0;
  Coord y0 = 0;
  Coord bottom_left = 0;
  Coord bottom_right = 0;

  // Row interval at relative level j in [0, r].
  Coord left(int j) const { return bottom_left >> (r - j); }
  Coord right(int j) const { return bottom_right >> (r - j); }

  Coord top_level() const { return y0; }
  Coord bottom_level() const { return y0 + r; }
  Coord width() const { return bottom_right - bottom_left + 1; }

  bool contains(Coord x, Coord y) const;
  std::int64_t node_count() const;

  // Structural validity against the parameters (bounds, width cap).
  bool valid(const TreeParams& p) const;

  auto operator<=>(const Patch&) const = default;
};

// The aligned depth-r subtree rooted at (x0, y0) as a patch.
Patch subtree_patch(const TreeParams& p, Coord x0, Coord y0);

// T_r-neighbours of (x, y) that lie inside the patch. (x, y) must be in it.
std::vector<CoordPair> patch_neighbors(const Patch& h, Coord x, Coord y,
                                       Coord R);

// Border node: has a T_r-neighbour outside the patch (equivalently,
// patch_neighbors != tr_neighbors).
bool is_border(const Patch& h, Coord x, Coord y, Coord R);

// All border coordinates, sorted.
std::vector<CoordPair> expected_border(const Patch& h, Coord R);

// ---- instance builders ----------------------------------------------------

// T_r itself (2^{R+1} - 1 nodes; R is capped to keep this materializable).
local::LabeledGraph build_T(const TreeParams& p);

// Patch + pivot adjacent to every border node. The pivot is the last node.
local::LabeledGraph build_patch_instance(const TreeParams& p, const Patch& h);

// A patch containing the closed radius-1 neighbourhood of (x, y) with
// (x, y) off the border — the witness used by the coverage audit. Exists
// for every node of T_r when r >= 2 (tries a closed-form placement first,
// then searches nearby bottom windows); nullopt when no patch covers the
// node (generic at r = 1, where every mid-tree patch node is a border node).
std::optional<Patch> witness_patch(const TreeParams& p, Coord x, Coord y);

// Is there an ALIGNED subtree witnessing (x, y) the same way? (The literal
// reading of the paper; fails on alignment boundaries.)
bool has_subtree_witness(const TreeParams& p, Coord x, Coord y);

// ---- oracles ---------------------------------------------------------------

bool is_T(const TreeParams& p, const local::LabeledGraph& g);
bool is_patch_instance(const TreeParams& p, const local::LabeledGraph& g);

// P  = { patch instances }           (the paper's "small" instances)
// P' = P union { T_r }               (locally verifiable superset)
std::unique_ptr<local::Property> property_P(const TreeParams& p);
std::unique_ptr<local::Property> property_P_prime(const TreeParams& p);

}  // namespace locald::trees
