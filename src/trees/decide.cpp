#include "trees/decide.h"

#include <algorithm>
#include <optional>
#include <set>

#include "support/format.h"

namespace locald::trees {

namespace {

using local::BallView;
using local::Verdict;

struct BallNode {
  graph::NodeId id = 0;
  bool is_pivot = false;
  CoordPair coords;
};

// Parses ball labels; nullopt on any malformed label or r mismatch.
std::optional<std::vector<BallNode>> parse_ball(const BallView& ball, int r,
                                                Coord R) {
  std::vector<BallNode> out;
  for (graph::NodeId v = 0; v < ball.node_count(); ++v) {
    const local::Label& l = ball.label(v);
    BallNode node;
    node.id = v;
    if (l.size() == 2 && l.at(0) == kPivotTag && l.at(1) == r) {
      node.is_pivot = true;
    } else if (l.size() == 4 && l.at(0) == kTreeTag && l.at(1) == r) {
      node.coords = {l.at(2), l.at(3)};
      if (node.coords.y < 0 || node.coords.y > R || node.coords.x < 0 ||
          node.coords.x >= (Coord{1} << node.coords.y)) {
        return std::nullopt;
      }
    } else {
      return std::nullopt;
    }
    out.push_back(node);
  }
  return out;
}

// Edge <=> coordinate adjacency among all tree nodes of the ball, and
// distinct coordinates.
bool pair_rule_holds(const BallView& ball, const std::vector<BallNode>& nodes,
                     Coord R) {
  std::set<CoordPair> seen;
  for (const BallNode& n : nodes) {
    if (!n.is_pivot && !seen.insert(n.coords).second) {
      return false;
    }
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      if (nodes[i].is_pivot || nodes[j].is_pivot) {
        continue;
      }
      const bool edge = ball.g.has_edge(nodes[i].id, nodes[j].id);
      const bool adj = coords_adjacent(nodes[i].coords, nodes[j].coords, R);
      if (edge != adj) {
        return false;
      }
    }
  }
  return true;
}

// Candidate patches that could make `v` a border node with the observed
// presence pattern. Enumerates all (y0, bottom interval) combinations whose
// rows near v are constrained — O((r+1) * 4^r), fine for small r.
bool border_pattern_consistent(const TreeParams& p, Coord R,
                               const CoordPair& v,
                               const std::set<CoordPair>& present) {
  const Coord W = Coord{1} << p.r;
  const Coord lo = std::max<Coord>(0, v.y - p.r);
  const Coord hi = std::min<Coord>(v.y, R - p.r);
  for (Coord y0 = lo; y0 <= hi; ++y0) {
    const Coord bottom_level = y0 + p.r;
    const Coord level_size = Coord{1} << bottom_level;
    // v's descendants-interval pins the bottom window near
    // v.x << (bottom_level - v.y); scan all windows overlapping it.
    const Coord vx_lo = v.x << (bottom_level - v.y);
    for (Coord bL = std::max<Coord>(0, vx_lo - W + 1);
         bL <= std::min(vx_lo + W - 1, level_size - 1); ++bL) {
      for (Coord width = 1; width <= W; ++width) {
        const Coord bR = bL + width - 1;
        if (bR >= level_size) {
          break;
        }
        Patch h;
        h.r = p.r;
        h.y0 = y0;
        h.bottom_left = bL;
        h.bottom_right = bR;
        if (!h.valid(p) || !h.contains(v.x, v.y)) {
          continue;
        }
        if (!is_border(h, v.x, v.y, R)) {
          continue;
        }
        const auto inside = patch_neighbors(h, v.x, v.y, R);
        if (std::set<CoordPair>(inside.begin(), inside.end()) == present) {
          return true;
        }
      }
    }
  }
  return false;
}

Verdict check_tree_node(const TreeParams& p, Coord R, const BallView& ball,
                        const std::vector<BallNode>& nodes) {
  const BallNode& center = nodes[static_cast<std::size_t>(ball.center)];
  int pivot_neighbors = 0;
  std::set<CoordPair> present;
  for (const BallNode& n : nodes) {
    if (n.id == ball.center || !ball.g.has_edge(ball.center, n.id)) {
      continue;
    }
    if (n.is_pivot) {
      ++pivot_neighbors;
      continue;
    }
    // Neighbour coordinates must be T_r-adjacent to the centre (the pair
    // rule re-checks this; keep the set for the presence rule).
    present.insert(n.coords);
  }
  if (pivot_neighbors > 1) {
    return Verdict::no;
  }
  const auto all = tr_neighbors(center.coords.x, center.coords.y, R);
  const std::set<CoordPair> all_set(all.begin(), all.end());
  for (const CoordPair& c : present) {
    if (!all_set.contains(c)) {
      return Verdict::no;
    }
  }
  if (pivot_neighbors == 0) {
    // Interior or T_r node: the full T_r neighbourhood must be present.
    return present == all_set ? Verdict::yes : Verdict::no;
  }
  // Border node: some patch must explain exactly this presence pattern.
  return border_pattern_consistent(p, R, center.coords, present)
             ? Verdict::yes
             : Verdict::no;
}

Verdict check_pivot(const TreeParams& p, Coord R, const BallView& ball,
                    const std::vector<BallNode>& nodes) {
  const graph::NodeId center = ball.center;
  std::set<CoordPair> border_coords;
  Coord ymin = R + 1;
  for (const BallNode& n : nodes) {
    if (n.id == center) {
      continue;
    }
    if (!ball.g.has_edge(center, n.id)) {
      // Radius-1 pivot ball contains only neighbours; anything else means a
      // malformed extraction — reject defensively.
      return Verdict::no;
    }
    if (n.is_pivot) {
      return Verdict::no;  // pivots are never adjacent
    }
    border_coords.insert(n.coords);
    ymin = std::min(ymin, n.coords.y);
  }
  if (border_coords.empty()) {
    return Verdict::no;
  }
  // Reconstruct candidate patches: the border determines the bottom window.
  for (Coord y0 = std::max<Coord>(0, ymin - p.r);
       y0 <= std::min(ymin, R - p.r); ++y0) {
    const Coord bottom_level = y0 + p.r;
    std::vector<Coord> bottom_xs;
    for (const CoordPair& c : border_coords) {
      if (c.y == bottom_level) {
        bottom_xs.push_back(c.x);
      }
    }
    std::vector<Coord> bl_candidates{0};
    std::vector<Coord> br_candidates{(Coord{1} << bottom_level) - 1};
    for (Coord x : bottom_xs) {
      bl_candidates.push_back(x);
      br_candidates.push_back(x);
    }
    for (Coord bL : bl_candidates) {
      for (Coord bR : br_candidates) {
        if (bL > bR) {
          continue;
        }
        Patch h;
        h.r = p.r;
        h.y0 = y0;
        h.bottom_left = bL;
        h.bottom_right = bR;
        if (!h.valid(p)) {
          continue;
        }
        const auto expected = expected_border(h, R);
        if (std::set<CoordPair>(expected.begin(), expected.end()) ==
            border_coords) {
          return Verdict::yes;
        }
      }
    }
  }
  return Verdict::no;
}

}  // namespace

std::unique_ptr<local::LocalAlgorithm> make_P_prime_verifier(
    const TreeParams& p) {
  const Coord R = p.capital_R();
  return local::make_oblivious(
      cat("verify-P'(r=", p.r, ")"), 1, [p, R](const BallView& ball) {
        const auto nodes = parse_ball(ball, p.r, R);
        if (!nodes.has_value()) {
          return Verdict::no;
        }
        if (!pair_rule_holds(ball, *nodes, R)) {
          return Verdict::no;
        }
        const BallNode& center =
            (*nodes)[static_cast<std::size_t>(ball.center)];
        return center.is_pivot ? check_pivot(p, R, ball, *nodes)
                               : check_tree_node(p, R, ball, *nodes);
      });
}

std::unique_ptr<local::LocalAlgorithm> make_P_decider(const TreeParams& p) {
  const Coord R = p.capital_R();
  auto verifier = std::make_shared<std::unique_ptr<local::LocalAlgorithm>>(
      make_P_prime_verifier(p));
  return local::make_id_aware(
      cat("decide-P(r=", p.r, ",f=", p.f.name(), ")"), 1,
      [R, verifier](const BallView& ball) {
        // Identifier leak: an id of at least R(r) proves n > 2^{r+1}, i.e.
        // the instance cannot be a patch.
        if (ball.center_id() >= static_cast<local::Id>(R)) {
          return Verdict::no;
        }
        return (*verifier)->evaluate(ball.without_ids());
      });
}

}  // namespace locald::trees
