// Local deciders for the Section-2 property.
//
//  - The P' verifier is Id-oblivious with horizon 1: it accepts exactly the
//    patch instances and T_r ("the input is small, or large — never in
//    between"), implementing the paper's coordinate checks plus the pivot's
//    border reconstruction.
//  - The P decider reads identifiers: it runs the P' verifier and
//    additionally rejects at any node whose identifier is at least
//    R(r) = f(2^{r+1} + 1). Under assumption (B) every patch instance keeps
//    all ids below R(r) while T_r, having 2^{R+1} - 1 nodes, must contain an
//    id >= R(r) under ANY one-to-one assignment — this is how identifiers
//    leak n (Section 2).
#pragma once

#include <memory>

#include "local/algorithm.h"
#include "trees/construction.h"

namespace locald::trees {

// Id-oblivious, horizon 1. Decides P' = patches + { T_r }.
std::unique_ptr<local::LocalAlgorithm> make_P_prime_verifier(
    const TreeParams& p);

// Id-aware, horizon 1. Decides P = patches under assumption (B) with
// bound f. (Not correct under unbounded identifiers — that is the point.)
std::unique_ptr<local::LocalAlgorithm> make_P_decider(const TreeParams& p);

}  // namespace locald::trees
