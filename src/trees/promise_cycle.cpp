#include "trees/promise_cycle.h"

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "local/labeled_graph.h"
#include "support/format.h"

namespace locald::trees {

namespace {

local::LabeledGraph build_cycle(int r, local::Id length) {
  LOCALD_CHECK(length >= 3, "cycle needs length >= 3");
  LOCALD_CHECK(length <= (local::Id{1} << 24), "cycle too large");
  return local::LabeledGraph::uniform(
      graph::make_cycle(static_cast<graph::NodeId>(length)),
      local::Label{kCycleTag, r});
}

}  // namespace

local::LabeledGraph build_yes_cycle(const PromiseCycleParams& p) {
  return build_cycle(p.r, static_cast<local::Id>(p.r));
}

local::LabeledGraph build_no_cycle(const PromiseCycleParams& p) {
  return build_cycle(p.r, p.no_length());
}

std::unique_ptr<local::Property> promise_cycle_property(
    const PromiseCycleParams& p) {
  return std::make_unique<local::LambdaProperty>(
      cat("promise-cycle(r=", p.r, ",f=", p.f.name(), ")"),
      [p](const local::LabeledGraph& g) {
        if (g.node_count() != p.r ||
            !graph::is_cycle_graph(g.graph())) {
          return false;
        }
        for (graph::NodeId v = 0; v < g.node_count(); ++v) {
          if (g.label(v) != local::Label{kCycleTag, p.r}) {
            return false;
          }
        }
        return true;
      });
}

std::unique_ptr<local::LocalAlgorithm> make_promise_cycle_decider(
    const PromiseCycleParams& p) {
  const local::Id threshold = p.f(static_cast<local::Id>(p.r));
  return local::make_id_aware(
      cat("decide-promise-cycle(r=", p.r, ")"), 1,
      [p, threshold](const local::BallView& ball) {
        // Structural sanity any decider should do: right label, degree 2.
        if (ball.center_label() != local::Label{kCycleTag, p.r} ||
            ball.g.degree(ball.center) != 2) {
          return local::Verdict::no;
        }
        // The identifier leak: id >= f(r) cannot happen in an r-cycle
        // under (B).
        return ball.center_id() >= threshold ? local::Verdict::no
                                             : local::Verdict::yes;
      });
}

}  // namespace locald::trees
