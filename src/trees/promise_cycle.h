// The Section-2 warm-up promise problem on cycles.
//
// Instances are labelled cycles (G, r) with the constant label r; under the
// promise the cycle length is either r (yes) or a larger no-length derived
// from f. The id-based decider rejects any node whose identifier is >= f(r)
// — impossible in an r-cycle under assumption (B), guaranteed to occur in
// the no-instance.
//
// Deviation from the paper (documented in docs/ARCHITECTURE.md): the paper takes the
// no-length to be exactly f(r), but with 0-based one-to-one identifiers the
// assignment {0, ..., f(r)-1} on an f(r)-cycle stays below f(r) and the
// pigeonhole argument misses by one. We use no-length f(r) + 1, which
// forces max id >= f(r) under every assignment and keeps the instances
// just as locally indistinguishable.
#pragma once

#include <memory>

#include "local/algorithm.h"
#include "local/property.h"

namespace locald::local {
class LabeledGraph;
}

namespace locald::trees {

struct PromiseCycleParams {
  int r = 6;
  local::IdBound f = local::IdBound::quadratic();

  local::Id no_length() const { return f(static_cast<local::Id>(r)) + 1; }
};

// Label schema: every node carries (kCycleTag, r).
inline constexpr std::int64_t kCycleTag = 3;

local::LabeledGraph build_yes_cycle(const PromiseCycleParams& p);
local::LabeledGraph build_no_cycle(const PromiseCycleParams& p);

// yes iff the instance is an r-cycle with the right labels. (The promise —
// cycle of length r or no_length — is the caller's responsibility.)
std::unique_ptr<local::Property> promise_cycle_property(
    const PromiseCycleParams& p);

// Id-aware decider: reject iff own id >= f(r). Correct under the promise
// and assumption (B).
std::unique_ptr<local::LocalAlgorithm> make_promise_cycle_decider(
    const PromiseCycleParams& p);

}  // namespace locald::trees
