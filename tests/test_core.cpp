// Integration test: the Section-1.1 matrix driver reproduces the paper's
// table end to end.
#include <gtest/gtest.h>

#include "core/locald.h"

namespace locald::core {
namespace {

TEST(Matrix, ReproducesPaperTable) {
  const auto results = evaluate_separation_matrix(/*seed=*/42);
  ASSERT_EQ(results.size(), 4u);
  // (B, C), (B, ¬C), (¬B, C): separated; (¬B, ¬C): equal.
  EXPECT_EQ(results[0].quadrant, "(B, C)");
  EXPECT_TRUE(results[0].separated);
  EXPECT_EQ(results[1].quadrant, "(B, ¬C)");
  EXPECT_TRUE(results[1].separated);
  EXPECT_EQ(results[2].quadrant, "(¬B, C)");
  EXPECT_TRUE(results[2].separated);
  EXPECT_EQ(results[3].quadrant, "(¬B, ¬C)");
  EXPECT_TRUE(results[3].equal);
  EXPECT_FALSE(results[3].separated);

  const std::string rendered = render_matrix(results);
  EXPECT_NE(rendered.find("(B, C)"), std::string::npos);
  EXPECT_NE(rendered.find("!="), std::string::npos);
  EXPECT_NE(rendered.find("="), std::string::npos);
}

TEST(Matrix, UmbrellaHeaderExposesAllModules) {
  // Spot-check a symbol from each module through the umbrella include.
  EXPECT_EQ(graph::make_cycle(5).node_count(), 5);
  EXPECT_EQ(tm::halt_after(2, 0).state_count(), 4);
  trees::TreeParams p;
  EXPECT_GT(p.capital_R(), 0);
  EXPECT_GT(halting::corollary1_failure_bound(100.0), 0.0);
}

}  // namespace
}  // namespace locald::core
