// Golden equivalence suite for the CSR graph core (graph/csr.h).
//
// The CSR redesign replaced the mutable vector-of-vectors graph with an
// immutable offsets/adj pair reachable by three construction routes:
// freezing a GraphBuilder, CsrGraph::from_edges, and deep-copying a
// CsrSpan. This suite pins the routes to each other and to independent
// reference implementations — edge lists, neighbour iteration order, BFS
// ball membership, zero-copy slice extraction — and locks the bulk
// canonical census to byte-identical output across every registered
// family, a grid of sizes, and serial / 2-thread / 4-thread pools.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"
#include "gen/family.h"
#include "graph/algorithms.h"
#include "graph/ball_slice.h"
#include "graph/csr.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/isomorphism.h"
#include "support/check.h"

namespace locald::graph {
namespace {

// A mixed bag of topologies covering degenerate, regular, and irregular
// adjacency shapes; every structural test below sweeps all of them.
std::vector<CsrGraph> sample_graphs() {
  std::vector<CsrGraph> graphs;
  graphs.emplace_back();                          // empty
  graphs.push_back(CsrGraph::from_edges(1, {}));  // isolated node
  graphs.push_back(CsrGraph::from_edges(4, {}));  // several isolated nodes
  graphs.push_back(make_path(7));
  graphs.push_back(make_cycle(8));
  graphs.push_back(make_complete(5));
  graphs.push_back(make_star(6));
  graphs.push_back(make_random_connected(40, 25, 901));
  graphs.push_back(make_random_tree(30, 902));
  graphs.push_back(make_random_gnp(25, 0.2, 903));
  return graphs;
}

// ---------------------------------------------------------------------------
// Construction routes agree
// ---------------------------------------------------------------------------

TEST(CsrConstruction, BuilderFromEdgesAndSpanCopyAgree) {
  for (const CsrGraph& g : sample_graphs()) {
    const auto edges = g.edges();

    GraphBuilder builder(g.node_count());
    for (const auto& [u, v] : edges) {
      builder.add_edge(u, v);
    }
    const CsrGraph from_builder = builder.build();
    const CsrGraph from_list = CsrGraph::from_edges(g.node_count(), edges);
    const CsrGraph from_span = CsrGraph(g.span());

    EXPECT_TRUE(from_builder == g);
    EXPECT_TRUE(from_list == g);
    EXPECT_TRUE(from_span == g);
    EXPECT_EQ(from_builder.edges(), edges);
    EXPECT_EQ(from_list.edges(), edges);
  }
}

TEST(CsrConstruction, FromEdgesIsInsertionOrderIndependent) {
  const CsrGraph reference = make_random_connected(30, 20, 904);
  auto edges = reference.edges();
  // Reversed and interleaved orders must freeze to the same arrays.
  std::reverse(edges.begin(), edges.end());
  EXPECT_TRUE(CsrGraph::from_edges(reference.node_count(), edges) == reference);
  std::vector<std::pair<NodeId, NodeId>> swapped;
  for (const auto& [u, v] : edges) {
    swapped.emplace_back(v, u);  // endpoint order must not matter either
  }
  EXPECT_TRUE(CsrGraph::from_edges(reference.node_count(), swapped) ==
              reference);
}

TEST(CsrConstruction, FromEdgesRejectsMalformedInput) {
  EXPECT_THROW(CsrGraph::from_edges(3, {{0, 0}}), Error);        // loop
  EXPECT_THROW(CsrGraph::from_edges(3, {{0, 3}}), Error);        // out of range
  EXPECT_THROW(CsrGraph::from_edges(3, {{-1, 1}}), Error);       // negative id
  EXPECT_THROW(CsrGraph::from_edges(3, {{0, 1}, {1, 0}}), Error);  // duplicate
}

TEST(CsrConstruction, OffsetsAndRowsAreCanonical) {
  for (const CsrGraph& g : sample_graphs()) {
    const CsrSpan s = g.span();
    ASSERT_EQ(s.offsets[0], 0u);
    std::size_t directed = 0;
    for (NodeId v = 0; v < s.node_count(); ++v) {
      const NeighborSpan row = s.neighbors(v);
      EXPECT_EQ(row.size(), static_cast<std::size_t>(s.degree(v)));
      EXPECT_TRUE(std::is_sorted(row.begin(), row.end()));
      EXPECT_EQ(std::adjacent_find(row.begin(), row.end()), row.end());
      directed += row.size();
    }
    EXPECT_EQ(directed, 2 * g.edge_count());
  }
}

// ---------------------------------------------------------------------------
// Read API vs builder reference
// ---------------------------------------------------------------------------

TEST(CsrEquivalence, NeighborIterationMatchesBuilderRows) {
  for (const CsrGraph& g : sample_graphs()) {
    GraphBuilder builder(g.node_count());
    for (const auto& [u, v] : g.edges()) {
      builder.add_edge(u, v);
    }
    ASSERT_EQ(builder.node_count(), g.node_count());
    ASSERT_EQ(builder.edge_count(), g.edge_count());
    EXPECT_EQ(builder.max_degree(), g.max_degree());
    for (NodeId v = 0; v < g.node_count(); ++v) {
      EXPECT_EQ(builder.degree(v), g.degree(v));
      // Same neighbours in the same (ascending) order.
      EXPECT_EQ(g.neighbors(v).to_vector(), builder.neighbors(v));
      for (NodeId u = 0; u < g.node_count(); ++u) {
        EXPECT_EQ(g.has_edge(v, u), builder.has_edge(v, u));
      }
    }
  }
}

TEST(CsrEquivalence, BfsBallMembershipMatchesAdjacencyListReference) {
  for (const CsrGraph& g : sample_graphs()) {
    if (g.node_count() == 0) {
      continue;
    }
    // Independent dense-matrix BFS: no CSR code on this side.
    const auto n = static_cast<std::size_t>(g.node_count());
    std::vector<std::vector<bool>> adjacent(n, std::vector<bool>(n, false));
    for (const auto& [u, v] : g.edges()) {
      adjacent[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)] = true;
      adjacent[static_cast<std::size_t>(v)][static_cast<std::size_t>(u)] = true;
    }
    for (NodeId src : {NodeId{0}, g.node_count() - 1}) {
      std::vector<int> expected(n, -1);
      expected[static_cast<std::size_t>(src)] = 0;
      for (bool changed = true; changed;) {
        changed = false;
        for (std::size_t u = 0; u < n; ++u) {
          if (expected[u] < 0) continue;
          for (std::size_t v = 0; v < n; ++v) {
            if (adjacent[u][v] &&
                (expected[v] < 0 || expected[v] > expected[u] + 1)) {
              expected[v] = expected[u] + 1;
              changed = true;
            }
          }
        }
      }
      EXPECT_EQ(bfs_distances(g, src), expected);
      for (int radius : {0, 1, 2, 3}) {
        std::vector<NodeId> want;
        for (std::size_t v = 0; v < n; ++v) {
          if (expected[v] >= 0 && expected[v] <= radius) {
            want.push_back(static_cast<NodeId>(v));
          }
        }
        std::vector<NodeId> got = nodes_within(g, src, radius);
        std::sort(got.begin(), got.end());
        EXPECT_EQ(got, want);
      }
    }
  }
}

TEST(CsrEquivalence, BallSliceMatchesNodesWithinAndInducedEdges) {
  BallScratch scratch;
  for (const CsrGraph& g : sample_graphs()) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
      for (int radius : {0, 1, 2}) {
        const BallSlice slice = scratch.extract(g, v, radius);
        ASSERT_EQ(slice.center, 0);
        ASSERT_EQ(slice.to_host[0], v);  // centre first
        // Membership: exactly B(v, radius).
        std::vector<NodeId> hosts(slice.to_host,
                                  slice.to_host + slice.local.node_count());
        std::vector<NodeId> sorted_hosts = hosts;
        std::sort(sorted_hosts.begin(), sorted_hosts.end());
        std::vector<NodeId> want = nodes_within(g, v, radius);
        std::sort(want.begin(), want.end());
        ASSERT_EQ(sorted_hosts, want);
        // Induced adjacency: local {a, b} iff host {to_host[a], to_host[b]}.
        for (NodeId a = 0; a < slice.local.node_count(); ++a) {
          for (NodeId b = static_cast<NodeId>(a + 1);
               b < slice.local.node_count(); ++b) {
            EXPECT_EQ(slice.local.has_edge(a, b),
                      g.has_edge(hosts[static_cast<std::size_t>(a)],
                                 hosts[static_cast<std::size_t>(b)]));
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Census: byte identity across families, sizes, and thread counts
// ---------------------------------------------------------------------------

TEST(CsrCensus, RegistryHoldsTheFullFamilyGrid) {
  EXPECT_GE(gen::family_registry().size(), 12u);
}

TEST(CsrCensus, ByteIdenticalAcrossFamiliesSizesAndThreads) {
  exec::ThreadPool two(2);
  exec::ThreadPool four(4);
  for (const gen::Family& family : gen::family_registry()) {
    for (int size : {24, 60}) {
      const gen::FamilyInstanceSpec spec =
          gen::resolve_family_text(family.name, size);
      const CsrGraph g = spec.build(5);
      const std::vector<std::string> payloads(
          static_cast<std::size_t>(g.node_count()));
      const BallCensusResult serial = canonical_census(g, payloads, 2);
      for (exec::ThreadPool* pool : {&two, &four}) {
        const BallCensusResult pooled = canonical_census(g, payloads, 2, pool);
        ASSERT_EQ(serial.class_of, pooled.class_of)
            << family.name << " size " << size;
        ASSERT_EQ(serial.class_representative, pooled.class_representative)
            << family.name << " size " << size;
        ASSERT_EQ(serial.class_encoding, pooled.class_encoding)
            << family.name << " size " << size;
        EXPECT_EQ(serial.distinct, pooled.distinct);
      }
    }
  }
}

TEST(CsrCensus, EncodingsMatchPerBallCanonicalForm) {
  BallScratch scratch;
  for (const gen::Family& family : gen::family_registry()) {
    const gen::FamilyInstanceSpec spec =
        gen::resolve_family_text(family.name, 24);
    const CsrGraph g = spec.build(5);
    const std::vector<std::string> payloads(
        static_cast<std::size_t>(g.node_count()));
    const BallCensusResult census = canonical_census(g, payloads, 2);
    for (NodeId v = 0; v < g.node_count(); v += 5) {
      const BallSlice slice = scratch.extract(g, v, 2);
      // Centre-marked payloads, matching the census's "C"/"N" scheme.
      std::vector<std::string> marked(
          static_cast<std::size_t>(slice.local.node_count()), "N");
      marked[0] = "C";
      EXPECT_EQ(canonical_form(slice.local, marked).encoding,
                census.encoding_of(v))
          << family.name << " node " << v;
    }
  }
}

}  // namespace
}  // namespace locald::graph
