// Scheduling-determinism of the execution engine: the counter-based RNG
// streams, the parallel simulator entry points (bit-identical results at
// any thread count), the ball-fingerprint memoization (memoized and
// unmemoized runs agree — including on the re-enabled fig2-gmr verifier
// path), the bulk canonicalization census (byte-identical encodings at
// 1/2/8 threads on the families whose cells used to take the
// degree-profile fallback), and the zero-trial acceptance-estimate guard.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "cli/bench.h"
#include "exec/context.h"
#include "graph/generators.h"
#include "graph/isomorphism.h"
#include "halting/gmr.h"
#include "halting/verifier.h"
#include "local/simulator.h"
#include "oblivious/simulation.h"
#include "support/rng.h"
#include "tm/zoo.h"

namespace locald::local {
namespace {

using graph::make_cycle;
using graph::make_path;

LabeledGraph two_colored_cycle(int n) {
  LabeledGraph g = LabeledGraph::uniform(make_cycle(n), Label{});
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    g.set_label(v, Label{v % 2});
  }
  return g;
}

TEST(RngStream, DeterministicAndStateIndependent) {
  Rng a = Rng::stream(7, 3, 5);
  Rng b = Rng::stream(7, 3, 5);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
  // Deriving other streams in between must not perturb stream (3, 5).
  Rng noise1 = Rng::stream(7, 0, 0);
  Rng noise2 = Rng::stream(7, 99, 1);
  noise1.next_u64();
  noise2.next_u64();
  Rng c = Rng::stream(7, 3, 5);
  Rng d = Rng::stream(7, 3, 5);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(c.next_u64(), d.next_u64());
  }
}

TEST(RngStream, DistinctCoordinatesDiverge) {
  const std::uint64_t base = Rng::stream(1, 2, 3).next_u64();
  EXPECT_NE(base, Rng::stream(2, 2, 3).next_u64());
  EXPECT_NE(base, Rng::stream(1, 3, 3).next_u64());
  EXPECT_NE(base, Rng::stream(1, 2, 4).next_u64());
  // Adjacent counters should not produce obviously correlated values.
  EXPECT_NE(Rng::stream(1, 2, 3).next_u64() ^ Rng::stream(1, 2, 4).next_u64(),
            0u);
}

// A randomized decider that actually consumes coins: accept unless the
// node's geometric draw exceeds a label-dependent threshold.
class CoinHungry final : public RandomizedLocalAlgorithm {
 public:
  std::string name() const override { return "coin-hungry"; }
  int horizon() const override { return 1; }
  bool id_oblivious() const override { return true; }
  Verdict evaluate(const BallView& ball, Rng& coin) const override {
    const int tosses = coin.coin_tosses_until_head();
    const auto threshold = 3 + ball.center_label().at(0);
    return tosses <= threshold ? Verdict::yes : Verdict::no;
  }
};

TEST(Determinism, EstimateAcceptanceIdenticalAt1And2And8Threads) {
  const LabeledGraph g = two_colored_cycle(12);
  const CoinHungry alg;
  constexpr int kTrials = 300;
  constexpr std::uint64_t kSeed = 99;

  exec::ExecContext serial;
  const auto reference =
      estimate_acceptance(alg, g, nullptr, kTrials, {serial, kSeed});
  EXPECT_EQ(reference.trials, kTrials);
  // The estimate must be non-trivial for the comparison to mean anything.
  EXPECT_GT(reference.accepted, 0);
  EXPECT_LT(reference.accepted, kTrials);

  for (int threads : {1, 2, 8}) {
    exec::ThreadPool pool(threads);
    exec::ExecContext ctx{&pool, nullptr};
    const auto run = estimate_acceptance(alg, g, nullptr, kTrials, {ctx, kSeed});
    EXPECT_EQ(run.accepted, reference.accepted) << threads << " threads";
    EXPECT_EQ(run.trials, reference.trials);
  }
}

TEST(Determinism, ProbeIdDependenceIdenticalAt1And2And8Threads) {
  const LabeledGraph g = LabeledGraph::uniform(make_cycle(6), Label{});
  const auto threshold = make_id_aware("big-id-rejects", 0, [](const BallView& b) {
    return b.center_id() >= 7 ? Verdict::no : Verdict::yes;
  });
  const auto constant =
      make_id_aware("const", 0, [](const BallView&) { return Verdict::yes; });
  constexpr std::uint64_t kSeed = 5;

  exec::ExecContext serial;
  const auto ref_dep =
      probe_id_dependence(*threshold, g, /*universe=*/8, 20, {serial, kSeed});
  EXPECT_TRUE(ref_dep.some_node_output_changed);
  EXPECT_TRUE(ref_dep.global_verdict_changed);
  const auto ref_const =
      probe_id_dependence(*constant, g, 1'000'000, 10, {serial, kSeed});
  EXPECT_FALSE(ref_const.some_node_output_changed);

  for (int threads : {1, 2, 8}) {
    exec::ThreadPool pool(threads);
    exec::ExecContext ctx{&pool, nullptr};
    const auto dep =
        probe_id_dependence(*threshold, g, 8, 20, {ctx, kSeed});
    EXPECT_EQ(dep.some_node_output_changed, ref_dep.some_node_output_changed);
    EXPECT_EQ(dep.global_verdict_changed, ref_dep.global_verdict_changed);
    const auto con = probe_id_dependence(*constant, g, 1'000'000, 10, {ctx, kSeed});
    EXPECT_FALSE(con.some_node_output_changed);
  }
}

TEST(Determinism, RunLocalAlgorithmCtxMatchesSerialOverload) {
  const LabeledGraph g = two_colored_cycle(10);
  const IdAssignment ids = make_consecutive(g.node_count());
  // Rejects on odd labels: exercises first_rejecting.
  const auto alg = make_id_aware("odd-rejects", 1, [](const BallView& b) {
    return b.center_label().at(0) == 1 ? Verdict::no : Verdict::yes;
  });
  const auto legacy = run_local_algorithm(*alg, g, ids);
  for (int threads : {1, 8}) {
    exec::ThreadPool pool(threads);
    exec::VerdictCache cache;
    exec::ExecContext ctx{&pool, &cache};
    const auto run = run_local_algorithm(*alg, g, ids, {ctx});
    EXPECT_EQ(run.outputs, legacy.outputs);
    EXPECT_EQ(run.accepted, legacy.accepted);
    EXPECT_EQ(run.first_rejecting, legacy.first_rejecting);
  }
}

TEST(CacheCorrectness, MemoizedAndUnmemoizedRunsAgree) {
  // Every ball of an unlabeled cycle is isomorphic, so one evaluation per
  // class suffices; the memoized run must still produce the same outputs.
  const LabeledGraph g = LabeledGraph::uniform(make_cycle(24), Label{});
  std::atomic<int> evaluations{0};
  const auto alg = make_oblivious("degree-2-check", 1, [&](const BallView& b) {
    evaluations.fetch_add(1, std::memory_order_relaxed);
    return b.g.degree(b.center) == 2 ? Verdict::yes : Verdict::no;
  });

  exec::ExecContext plain;
  const auto unmemoized = run_oblivious(*alg, g, {plain});
  const int unmemoized_evals = evaluations.exchange(0);
  EXPECT_EQ(unmemoized_evals, 24);

  exec::VerdictCache cache;
  exec::ExecContext memo{nullptr, &cache};
  const auto memoized = run_oblivious(*alg, g, {memo});
  EXPECT_EQ(memoized.outputs, unmemoized.outputs);
  EXPECT_EQ(memoized.accepted, unmemoized.accepted);
  // 24 isomorphic balls, one canonical class: decided once.
  EXPECT_EQ(evaluations.load(), 1);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.hits, 23u);

  // A graph with several classes: memoized still agrees with unmemoized.
  const LabeledGraph mixed = two_colored_cycle(16);
  const auto direct = run_oblivious(*alg, mixed, {plain});
  exec::VerdictCache cache2;
  exec::ThreadPool pool(8);
  exec::ExecContext memo_parallel{&pool, &cache2};
  const auto cached = run_oblivious(*alg, mixed, {memo_parallel});
  EXPECT_EQ(cached.outputs, direct.outputs);
}

TEST(CacheCorrectness, MemoizationUnsafeAlgorithmsBypassTheCache) {
  // An algorithm that declares itself unsafe to memoize must be evaluated
  // on every ball even when a cache is wired up.
  class Unsafe final : public LocalAlgorithm {
   public:
    std::string name() const override { return "unsafe"; }
    int horizon() const override { return 1; }
    bool id_oblivious() const override { return true; }
    bool memoization_safe() const override { return false; }
    Verdict evaluate(const BallView&) const override {
      ++evaluations;
      return Verdict::yes;
    }
    mutable std::atomic<int> evaluations{0};
  };
  const LabeledGraph g = LabeledGraph::uniform(make_cycle(8), Label{});
  Unsafe alg;
  exec::VerdictCache cache;
  exec::ExecContext memo{nullptr, &cache};
  (void)run_oblivious(alg, g, {memo});
  EXPECT_EQ(alg.evaluations.load(), 8);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 0u);
  // The Id-oblivious simulation A* is the shipped example of such an
  // algorithm: sampled-mode verdicts can depend on ball-node numbering.
  auto inner = std::make_shared<LambdaAlgorithm>(
      "reads-ids", 1, false, [](const BallView& b) {
        (void)b.center_id();
        return Verdict::yes;
      });
  const auto sim = oblivious::make_oblivious_simulation(inner, {});
  EXPECT_FALSE(sim->memoization_safe());
}

TEST(Determinism, ObliviousSimulationVerdictIndependentOfPool) {
  // Id-reading inner that rejects when the centre holds the largest id in
  // the ball: A* must find a rejecting assignment in both search modes.
  auto inner = std::make_shared<LambdaAlgorithm>(
      "center-max-rejects", 1, false, [](const BallView& ball) {
        const Id c = ball.center_id();
        for (graph::NodeId v = 0; v < ball.node_count(); ++v) {
          if (v != ball.center && ball.id_of(v) > c) {
            return Verdict::yes;
          }
        }
        return Verdict::no;
      });
  const LabeledGraph g = LabeledGraph::uniform(make_path(5), Label{});
  const Ball ball = extract_ball(g, nullptr, 2, 1);

  for (bool exhaustive : {true, false}) {
    oblivious::SimulationOptions serial_opts;
    serial_opts.id_universe = exhaustive ? 8 : 4096;
    serial_opts.max_assignments = exhaustive ? 1'000 : 64;
    const auto serial_sim =
        oblivious::make_oblivious_simulation(inner, serial_opts);
    const Verdict reference = serial_sim->evaluate(ball);
    EXPECT_EQ(serial_sim->last_stats().exhaustive, exhaustive);

    exec::ThreadPool pool(8);
    oblivious::SimulationOptions pooled = serial_opts;
    pooled.pool = &pool;
    const auto pooled_sim = oblivious::make_oblivious_simulation(inner, pooled);
    EXPECT_EQ(pooled_sim->evaluate(ball), reference);
  }
}

TEST(Determinism, CensusEncodingsByteIdenticalAt1And2And8Threads) {
  // The two families whose census cells PR 4 kept off the exact path: the
  // census must now be exact AND byte-identical at every thread count.
  for (const graph::CsrGraph& host :
       {graph::make_hypercube(5), graph::make_complete_bipartite(7, 7)}) {
    const std::vector<std::string> payloads(
        static_cast<std::size_t>(host.node_count()));
    const graph::BallCensusResult serial =
        graph::canonical_census(host, payloads, 1, nullptr);
    for (int threads : {1, 2, 8}) {
      exec::ThreadPool pool(threads);
      const graph::BallCensusResult pooled =
          graph::canonical_census(host, payloads, 1, &pool);
      ASSERT_EQ(pooled.class_of, serial.class_of) << threads << " threads";
      ASSERT_EQ(pooled.class_encoding, serial.class_encoding)
          << threads << " threads";
      EXPECT_EQ(pooled.class_representative, serial.class_representative);
      EXPECT_EQ(pooled.distinct, serial.distinct);
      EXPECT_EQ(pooled.unique_structures, serial.unique_structures);
      EXPECT_EQ(pooled.raw_duplicates, serial.raw_duplicates);
    }
  }
}

TEST(Determinism, FamilyWorkloadCellsByteIdenticalNowThatTheFallbackIsGone) {
  // `locald bench` documents over hypercube and complete-bipartite — the
  // cells that previously used the sound-but-incomplete degree-profile
  // key — byte-identical across a 1/2/8 thread grid.
  cli::BenchOptions base;
  base.seed = 13;
  base.families = {"hypercube", "complete-bipartite",
                   "complete-bipartite:a=1"};
  base.sizes = {32, 64};
  std::ostringstream serial;
  std::ostringstream pooled;
  cli::BenchOptions a = base;
  a.thread_grid = {1};
  EXPECT_EQ(cli::run_bench(a, serial), 0);
  cli::BenchOptions b = base;
  b.thread_grid = {2, 8};  // bench cross-checks the grid internally too
  EXPECT_EQ(cli::run_bench(b, pooled), 0);
  EXPECT_EQ(serial.str(), pooled.str());
}

TEST(CacheCorrectness, MemoizedAndUnmemoizedAgreeOnTheGmrVerifierPath) {
  // The fig2-gmr scenario routes its verifier through the shared cache
  // again (PR 3 had it bypass the cache because canonicalization was ~5x
  // the evaluation cost); memoized == unmemoized is the contract that
  // makes that re-enablement safe, asserted on a real G(M, r) instance.
  tm::FragmentPolicy policy;
  policy.max_fragments = 60;
  policy.seed = 7;
  halting::GmrParams params{tm::halt_after(2, 0), 1, 3, policy, false, 4096};
  const auto inst = halting::build_gmr(params);
  const auto verifier = halting::make_gmr_verifier(3, policy, false, 4096);

  exec::ExecContext plain;
  const auto unmemoized = run_oblivious(*verifier, inst.graph, {plain});
  for (int threads : {1, 8}) {
    exec::ThreadPool pool(threads);
    exec::VerdictCache cache;
    exec::ExecContext memo{&pool, &cache};
    const auto memoized = run_oblivious(*verifier, inst.graph, {memo});
    EXPECT_EQ(memoized.outputs, unmemoized.outputs) << threads << " threads";
    EXPECT_EQ(memoized.accepted, unmemoized.accepted);
    const auto stats = cache.stats();
    EXPECT_GT(stats.hits + stats.misses, 0u);
  }
}

TEST(Determinism, ExhaustiveSimulationMemoNeverChangesTheVerdict) {
  // A*'s exhaustive-mode verdicts are class-invariant and internally
  // memoized; re-evaluating isomorphic balls must hit the memo and return
  // the identical verdict, serial or pooled.
  auto inner = std::make_shared<LambdaAlgorithm>(
      "center-max-rejects", 1, false, [](const BallView& ball) {
        const Id c = ball.center_id();
        for (graph::NodeId v = 0; v < ball.node_count(); ++v) {
          if (v != ball.center && ball.id_of(v) > c) {
            return Verdict::yes;
          }
        }
        return Verdict::no;
      });
  oblivious::SimulationOptions options;
  options.id_universe = 6;
  options.max_assignments = 10'000;
  const auto sim = oblivious::make_oblivious_simulation(inner, options);
  const LabeledGraph cycle =
      LabeledGraph::uniform(make_cycle(12), Label{});
  exec::ExecContext plain;
  const auto first = run_oblivious(*sim, cycle, {plain});
  EXPECT_TRUE(sim->last_stats().exhaustive);
  // All 12 balls are isomorphic: the second run is answered by the memo.
  const auto second = run_oblivious(*sim, cycle, {plain});
  EXPECT_EQ(second.outputs, first.outputs);
  EXPECT_TRUE(sim->last_stats().memo_hit);
  for (int threads : {2, 8}) {
    exec::ThreadPool pool(threads);
    exec::ExecContext ctx{&pool, nullptr};
    EXPECT_EQ(run_oblivious(*sim, cycle, {ctx}).outputs, first.outputs);
  }
}

TEST(AcceptanceEstimate, ZeroTrialEstimateHasNoProbability) {
  AcceptanceEstimate empty;
  EXPECT_THROW(empty.probability(), Error);
  AcceptanceEstimate ran;
  ran.trials = 4;
  ran.accepted = 1;
  EXPECT_DOUBLE_EQ(ran.probability(), 0.25);
  // estimate_acceptance itself refuses to produce a zero-trial estimate.
  const LabeledGraph g = LabeledGraph::uniform(make_path(2), Label{});
  const CoinHungry alg;
  exec::ExecContext serial;
  EXPECT_THROW(estimate_acceptance(alg, g, nullptr, 0, {serial, 1}), Error);
}

}  // namespace
}  // namespace locald::local
