// The event-driven message-passing runtime (local/event_engine.h).
//
// The engine's two promises, tested head-on:
//  1. Equivalence: under the `none` control profile — and under any profile
//     that perturbs timing without losing information (delay, fragmentation)
//     — the event-driven execution reproduces the synchronous engine's
//     verdicts exactly, on every topology tried.
//  2. Determinism: verdicts AND schedule statistics are pure functions of
//     (graph, algorithm, profile, seed); repeat runs agree field for field,
//     and different seeds reshuffle faulty schedules without touching the
//     clean ones.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "graph/generators.h"
#include "local/ball.h"
#include "local/event_engine.h"
#include "local/fault_profile.h"
#include "local/identifiers.h"
#include "local/labeled_graph.h"
#include "local/sync_engine.h"

namespace locald::local {
namespace {

std::unique_ptr<LocalAlgorithm> even_degree() {
  return make_oblivious("even-degree", 1, [](const BallView& ball) {
    return ball.g.degree(ball.center) % 2 == 0 ? Verdict::yes : Verdict::no;
  });
}

std::unique_ptr<LocalAlgorithm> triangle_free() {
  return make_oblivious("triangle-free", 1, [](const BallView& ball) {
    const auto& nbrs = ball.g.neighbors(ball.center);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        if (ball.g.has_edge(nbrs[i], nbrs[j])) {
          return Verdict::no;
        }
      }
    }
    return Verdict::yes;
  });
}

std::vector<graph::CsrGraph> topologies() {
  std::vector<graph::CsrGraph> out;
  out.push_back(graph::make_cycle(9));
  out.push_back(graph::make_path(7));
  out.push_back(graph::make_star(5));
  out.push_back(graph::make_complete(5));
  out.push_back(graph::make_grid(3, 4));
  out.push_back(graph::make_complete_binary_tree(3));
  return out;
}

TEST(EventEngine, NoneProfileReproducesSyncEngineEverywhere) {
  const auto control = resolve_faults_text("none");
  const auto alg = even_degree();
  const auto tri = triangle_free();
  for (const graph::CsrGraph& g : topologies()) {
    const LabeledGraph instance(g);
    const IdAssignment ids = make_consecutive(g.node_count());
    for (const LocalAlgorithm* a : {alg.get(), tri.get()}) {
      const std::vector<Verdict> sync =
          run_via_message_passing(*a, instance, ids);
      const EventRunResult event =
          run_via_event_engine(*a, instance, ids, control, 42);
      EXPECT_EQ(event.verdicts, sync) << a->name() << " on n=" << g.node_count();
      EXPECT_EQ(event.stats.messages_dropped, 0u);
      EXPECT_EQ(event.stats.messages_delayed, 0u);
      EXPECT_EQ(event.stats.fragments_sent, 0u);
      EXPECT_EQ(event.stats.retransmissions, 0u);
    }
  }
}

// Delay and fragmentation perturb the schedule, never the information: the
// α-synchronizer waits out every slot, so verdicts still match the sync
// engine even though messages arrive late and in pieces.
TEST(EventEngine, LosslessProfilesPreserveVerdicts) {
  const auto alg = even_degree();
  for (const char* selector :
       {"delay:max=7", "fragment:pieces=5", "chaos:per-mille=0"}) {
    const auto profile = resolve_faults_text(selector);
    for (const graph::CsrGraph& g : topologies()) {
      const LabeledGraph instance(g);
      const IdAssignment ids = make_consecutive(g.node_count());
      const std::vector<Verdict> sync =
          run_via_message_passing(*alg, instance, ids);
      const EventRunResult event =
          run_via_event_engine(*alg, instance, ids, profile, 7);
      EXPECT_EQ(event.verdicts, sync)
          << selector << " on n=" << g.node_count();
      EXPECT_EQ(event.stats.messages_dropped, 0u) << selector;
    }
  }
}

TEST(EventEngine, RepeatRunsAgreeVerbatimIncludingStats) {
  const auto alg = even_degree();
  const LabeledGraph instance(graph::make_grid(4, 4));
  const IdAssignment ids = make_consecutive(instance.node_count());
  const auto profile =
      resolve_faults_text("chaos:delay=3,per-mille=400,attempts=2,pieces=3");
  const EventRunResult first =
      run_via_event_engine(*alg, instance, ids, profile, 13);
  for (int i = 0; i < 3; ++i) {
    const EventRunResult again =
        run_via_event_engine(*alg, instance, ids, profile, 13);
    EXPECT_EQ(again.verdicts, first.verdicts);
    EXPECT_TRUE(again.stats == first.stats);
  }
  // A different seed draws a different schedule (with these knobs the drop
  // pattern virtually surely differs somewhere across 96 arcs x 2 rounds).
  const EventRunResult reseeded =
      run_via_event_engine(*alg, instance, ids, profile, 14);
  EXPECT_FALSE(reseeded.stats == first.stats);
}

TEST(EventEngine, HeavyLossPerturbsVerdictsButNeverWedges) {
  const auto alg = even_degree();
  const LabeledGraph instance(graph::make_cycle(10));
  const IdAssignment ids = make_consecutive(instance.node_count());
  const std::vector<Verdict> sync =
      run_via_message_passing(*alg, instance, ids);
  const auto lossy = resolve_faults_text("drop:per-mille=900,attempts=1");
  const EventRunResult faulty =
      run_via_event_engine(*alg, instance, ids, lossy, 42);
  // Every node still terminates and outputs...
  ASSERT_EQ(faulty.verdicts.size(), sync.size());
  // ...but with 90% loss some node must have missed a neighbour and seen an
  // undersized ball.
  EXPECT_NE(faulty.verdicts, sync);
  EXPECT_GT(faulty.stats.messages_dropped, 0u);
}

TEST(EventEngine, StatsAreConsistentOnACleanCycle) {
  const auto alg = even_degree();
  const LabeledGraph instance(graph::make_cycle(6));
  const IdAssignment ids = make_consecutive(instance.node_count());
  const auto control = resolve_faults_text("none");
  const EventRunResult r =
      run_via_event_engine(*alg, instance, ids, control, 42);
  // horizon 1 => 2 rounds; each of the 6 degree-2 nodes sends 2 messages
  // per round, every one delivered as a single un-fragmented event.
  EXPECT_EQ(r.stats.messages_sent, 24u);
  EXPECT_EQ(r.stats.messages_delivered, 24u);
  EXPECT_EQ(r.stats.events_dispatched, 24u);
  EXPECT_GT(r.stats.max_queue_depth, 0u);
  EXPECT_LE(r.stats.max_queue_depth, 24u);
}

TEST(EventEngine, FragmentationAccountsEveryPiece) {
  const auto alg = even_degree();
  const LabeledGraph instance(graph::make_cycle(6));
  const IdAssignment ids = make_consecutive(instance.node_count());
  const auto frag = resolve_faults_text("fragment:pieces=4");
  const EventRunResult r =
      run_via_event_engine(*alg, instance, ids, frag, 42);
  EXPECT_EQ(r.stats.messages_sent, 24u);
  EXPECT_EQ(r.stats.messages_delivered, 24u);
  EXPECT_EQ(r.stats.fragments_sent, 96u);   // 4 pieces per delivery
  EXPECT_EQ(r.stats.events_dispatched, 96u);
}

TEST(EventEngine, ProcessCountersAccumulateAcrossRuns) {
  const auto alg = even_degree();
  const LabeledGraph instance(graph::make_cycle(8));
  const IdAssignment ids = make_consecutive(instance.node_count());
  const EventEngineCounters before = event_engine_counters();
  const auto lossy = resolve_faults_text("drop:per-mille=900,attempts=1");
  const EventRunResult r =
      run_via_event_engine(*alg, instance, ids, lossy, 5);
  const EventEngineCounters after = event_engine_counters();
  EXPECT_EQ(after.events_dispatched - before.events_dispatched,
            r.stats.events_dispatched);
  EXPECT_EQ(after.messages_dropped - before.messages_dropped,
            r.stats.messages_dropped);
  EXPECT_GE(after.max_queue_depth, r.stats.max_queue_depth);
}

}  // namespace
}  // namespace locald::local
