// Tests for the execution engine's building blocks: the work-stealing
// thread pool and the sharded verdict cache. Scheduling-determinism of the
// simulator entry points built on them is covered in test_determinism.cpp.
#include <gtest/gtest.h>

#include <stdlib.h>
#include <unistd.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/context.h"
#include "exec/thread_pool.h"
#include "exec/verdict_cache.h"
#include "exec/verdict_store.h"

namespace locald::exec {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    constexpr std::size_t n = 10'000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " at " << threads
                                   << " threads";
    }
  }
}

TEST(ThreadPool, EmptyAndSingletonLoops) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ReusableAcrossManyLoops) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(100, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 5'000u);
}

TEST(ThreadPool, NestedLoopsRunInline) {
  ThreadPool pool(4);
  std::atomic<std::size_t> inner_total{0};
  pool.parallel_for(16, [&](std::size_t) {
    // A nested loop must complete inline rather than deadlock on the pool.
    pool.parallel_for(8, [&](std::size_t) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 16u * 8u);
}

TEST(ThreadPool, PropagatesFirstException) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    EXPECT_THROW(pool.parallel_for(64,
                                   [&](std::size_t i) {
                                     if (i == 13) {
                                       throw std::runtime_error("boom");
                                     }
                                   }),
                 std::runtime_error);
    // The pool stays usable after a failed loop.
    std::atomic<int> ok{0};
    pool.parallel_for(8, [&](std::size_t) { ok.fetch_add(1); });
    EXPECT_EQ(ok.load(), 8);
  }
}

TEST(ThreadPool, HardwareParallelismIsPositive) {
  EXPECT_GE(ThreadPool::hardware_parallelism(), 1);
  ThreadPool defaulted;
  EXPECT_EQ(defaulted.parallelism(), ThreadPool::hardware_parallelism());
  ThreadPool serial(1);
  EXPECT_EQ(serial.parallelism(), 1);
}

TEST(ExecContext, DefaultIsSerialEngine) {
  ExecContext ctx;
  EXPECT_EQ(ctx.parallelism(), 1);
  std::vector<int> order;
  ctx.for_each(4, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(VerdictCache, MissThenHit) {
  VerdictCache cache;
  EXPECT_FALSE(cache.lookup(7, "alg", "ball-a").has_value());
  cache.insert(7, "alg", "ball-a", true);
  const auto hit = cache.lookup(7, "alg", "ball-a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(*hit);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(VerdictCache, KeysSeparateAlgorithms) {
  VerdictCache cache;
  cache.insert(1, "alg-a", "ball", true);
  cache.insert(1, "alg-b", "ball", false);
  EXPECT_TRUE(*cache.lookup(1, "alg-a", "ball"));
  EXPECT_FALSE(*cache.lookup(1, "alg-b", "ball"));
}

TEST(VerdictCache, FingerprintCollisionsCannotCorruptVerdicts) {
  VerdictCache cache(4);
  // Same fingerprint (same shard), different canonical encodings: both
  // classes keep their own verdict.
  cache.insert(42, "alg", "ball-yes", true);
  cache.insert(42, "alg", "ball-no", false);
  EXPECT_TRUE(*cache.lookup(42, "alg", "ball-yes"));
  EXPECT_FALSE(*cache.lookup(42, "alg", "ball-no"));
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(VerdictCache, SafeUnderConcurrentMixedTraffic) {
  VerdictCache cache;
  ThreadPool pool(8);
  constexpr std::size_t kClasses = 64;
  pool.parallel_for(8 * kClasses, [&](std::size_t i) {
    const std::uint64_t fp = i % kClasses;
    const std::string enc = "ball-" + std::to_string(fp);
    const bool accepted = fp % 2 == 0;
    if (const auto hit = cache.lookup(fp, "alg", enc)) {
      EXPECT_EQ(*hit, accepted);
    } else {
      cache.insert(fp, "alg", enc, accepted);
    }
  });
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, kClasses);
  EXPECT_EQ(stats.hits + stats.misses, 8 * kClasses);
}

TEST(VerdictCache, ClearDropsEntriesButKeepsMonotonicCounters) {
  VerdictCache cache(4);
  cache.insert(1, "alg", "ball-a", true);
  cache.insert(2, "alg", "ball-b", false);
  EXPECT_TRUE(cache.lookup(1, "alg", "ball-a").has_value());  // one hit
  EXPECT_EQ(cache.stats().entries, 2u);

  cache.clear();
  const auto after = cache.stats();
  EXPECT_EQ(after.entries, 0u);
  // The serving layer reports hits/misses as monotonic metrics; a reset
  // must not rewind them.
  EXPECT_EQ(after.hits, 1u);
  EXPECT_EQ(after.misses, 0u);

  // Dropped classes simply get re-decided.
  EXPECT_FALSE(cache.lookup(1, "alg", "ball-a").has_value());
  cache.insert(1, "alg", "ball-a", true);
  EXPECT_TRUE(*cache.lookup(1, "alg", "ball-a"));
}

TEST(VerdictCache, EvictedEntriesComeBackFromTheStoreNotRecomputation) {
  // clear() only drops the MEMORY tier: with a store attached, every insert
  // wrote through to disk, so an evicted-then-requeried class is a store
  // hit (a promotion), never a miss forcing recomputation.
  char tmpl[] = "/tmp/locald-exec-store-XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  {
    VerdictStore store(dir, 2);
    VerdictCache cache(4);
    cache.attach_store(&store);
    cache.insert(1, "alg", "ball-a", true);
    cache.insert(2, "alg", "ball-b", false);

    cache.clear();  // the serving layer's memory-bound reset
    const auto evicted = cache.stats();
    EXPECT_EQ(evicted.entries, 0u);
    EXPECT_EQ(evicted.misses, 0u);

    const auto a = cache.lookup(1, "alg", "ball-a");
    const auto b = cache.lookup(2, "alg", "ball-b");
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_TRUE(*a);
    EXPECT_FALSE(*b);
    const auto after = cache.stats();
    EXPECT_EQ(after.store_hits, 2u);
    EXPECT_EQ(after.misses, 0u);  // the store answered; nothing to recompute
    // The store hit promoted both classes back into the memory tier: the
    // next lookup is an ordinary memory hit.
    EXPECT_EQ(after.entries, 2u);
    EXPECT_TRUE(*cache.lookup(1, "alg", "ball-a"));
    EXPECT_EQ(cache.stats().store_hits, 2u);
    cache.attach_store(nullptr);
  }
  // Best-effort scratch cleanup (two shard logs + the directory).
  for (const char* shard : {"/shard-00.log", "/shard-01.log"}) {
    ::unlink((dir + shard).c_str());
  }
  ::rmdir(dir.c_str());
}

}  // namespace
}  // namespace locald::exec
