// Differential fault injection across both constructions.
//
// Strategy: start from a valid instance, apply a random structural or
// label mutation, and require that the Id-oblivious verifier and the global
// oracle AGREE on the mutated instance. This catches both unsoundness (a
// verifier accepting what the oracle rejects) and over-rejection bugs, and
// it probes corner cases no hand-written test enumerates.
//
// Mutations that happen to produce another valid instance are fine — the
// agreement requirement handles them uniformly.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph.h"
#include "halting/gmr.h"
#include "halting/verifier.h"
#include "local/property.h"
#include "local/simulator.h"
#include "tm/zoo.h"
#include "trees/construction.h"
#include "trees/decide.h"

namespace locald {
namespace {

using local::LabeledGraph;

// Random single-field label perturbation.
LabeledGraph mutate_label(const LabeledGraph& g, Rng& rng) {
  LabeledGraph out = g;
  const graph::NodeId v =
      static_cast<graph::NodeId>(rng.below(g.node_count()));
  local::Label l = out.label(v);
  std::vector<std::int64_t> fields = l.fields();
  if (fields.empty()) {
    fields.push_back(0);
  }
  const std::size_t i = rng.below(fields.size());
  fields[i] += rng.range(-3, 3) | 1;  // guaranteed non-zero delta
  out.set_label(v, local::Label(std::move(fields)));
  return out;
}

// Random extra edge between two previously non-adjacent nodes.
LabeledGraph mutate_add_edge(const LabeledGraph& g, Rng& rng) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const graph::NodeId u =
        static_cast<graph::NodeId>(rng.below(g.node_count()));
    const graph::NodeId v =
        static_cast<graph::NodeId>(rng.below(g.node_count()));
    if (u != v && !g.graph().has_edge(u, v)) {
      graph::GraphBuilder builder(g.node_count());
      for (const auto& [a, b] : g.graph().edges()) {
        builder.add_edge(a, b);
      }
      builder.add_edge(u, v);
      return LabeledGraph(builder.build(), g.labels());
    }
  }
  return g;
}

// Random label swap between two nodes (keeps the multiset intact, breaks
// positional consistency).
LabeledGraph mutate_swap_labels(const LabeledGraph& g, Rng& rng) {
  LabeledGraph out = g;
  const graph::NodeId u =
      static_cast<graph::NodeId>(rng.below(g.node_count()));
  const graph::NodeId v =
      static_cast<graph::NodeId>(rng.below(g.node_count()));
  const local::Label lu = out.label(u);
  out.set_label(u, out.label(v));
  out.set_label(v, lu);
  return out;
}

LabeledGraph mutate(const LabeledGraph& g, Rng& rng) {
  switch (rng.below(3)) {
    case 0: return mutate_label(g, rng);
    case 1: return mutate_add_edge(g, rng);
    default: return mutate_swap_labels(g, rng);
  }
}

class Sec2Fuzz : public ::testing::TestWithParam<int> {};

TEST_P(Sec2Fuzz, VerifierAgreesWithOracleUnderMutations) {
  trees::TreeParams p;
  p.r = 2;
  p.f = local::IdBound::linear_plus(1);
  Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  const auto verifier = trees::make_P_prime_verifier(p);
  const auto oracle = trees::property_P_prime(p);

  // Base instances: a few patch shapes.
  std::vector<LabeledGraph> bases;
  bases.push_back(
      trees::build_patch_instance(p, trees::subtree_patch(p, 0, 0)));
  bases.push_back(
      trees::build_patch_instance(p, trees::subtree_patch(p, 2, 3)));
  trees::Patch trap;
  trap.r = 2;
  trap.y0 = 3;
  trap.bottom_left = 9;
  trap.bottom_right = 12;
  bases.push_back(trees::build_patch_instance(p, trap));

  int mutants = 0;
  for (const LabeledGraph& base : bases) {
    ASSERT_TRUE(local::run_oblivious(*verifier, base).accepted);
    ASSERT_TRUE(oracle->contains(base));
    for (int i = 0; i < 12; ++i) {
      const LabeledGraph bad = mutate(base, rng);
      const bool verdict = local::run_oblivious(*verifier, bad).accepted;
      const bool truth = oracle->contains(bad);
      EXPECT_EQ(verdict, truth)
          << "seed " << GetParam() << " mutant " << mutants
          << (truth ? ": over-rejection" : ": UNSOUND acceptance");
      ++mutants;
    }
  }
  EXPECT_EQ(mutants, 36);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Sec2Fuzz, ::testing::Range(0, 10));

class Sec3Fuzz : public ::testing::TestWithParam<int> {};

// For Section 3 the reconstruction oracle is exact only on builder output,
// so the fuzz requirement is one-sided: every mutated instance the
// verifier ACCEPTS must still be accepted by the oracle's structural
// checks... in practice at these sizes every mutation must be rejected by
// the verifier unless it leaves the instance label-isomorphic; we assert
// rejection for mutations that provably change structure.
TEST_P(Sec3Fuzz, VerifierRejectsStructuralMutations) {
  tm::FragmentPolicy policy;
  policy.max_fragments = 150;
  policy.seed = 3;
  Rng rng(2000 + static_cast<std::uint64_t>(GetParam()));
  halting::GmrParams params{tm::halt_after(2, GetParam() % 2), 1, 3, policy,
                            false, 4096};
  const auto inst = halting::build_gmr(params);
  const auto verifier = halting::make_gmr_verifier(3, policy, false, 4096);
  ASSERT_TRUE(local::run_oblivious(*verifier, inst.graph).accepted);

  int rejected = 0;
  const int trials = 8;
  for (int i = 0; i < trials; ++i) {
    // Label-field mutations always change some cell/role/orientation datum.
    const LabeledGraph bad = mutate_label(inst.graph, rng);
    if (!local::run_oblivious(*verifier, bad).accepted) {
      ++rejected;
    }
  }
  // Every label mutation must be caught: labels are load-bearing (machine
  // encoding, orientation, cell codes are all checked).
  EXPECT_EQ(rejected, trials);

  // Extra-edge mutations: adding any edge breaks grid geometry, glue
  // accounting, or the pivot's component shapes.
  rejected = 0;
  for (int i = 0; i < trials; ++i) {
    const LabeledGraph bad = mutate_add_edge(inst.graph, rng);
    if (!local::run_oblivious(*verifier, bad).accepted) {
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, trials);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Sec3Fuzz, ::testing::Range(0, 8));

// The Section-2 decider under the promise-free property P: random id
// assignments drawn from the (B) policy never flip a correct verdict.
class DeciderStability : public ::testing::TestWithParam<int> {};

TEST_P(DeciderStability, VerdictStableAcrossBoundedAssignments) {
  trees::TreeParams p;
  p.r = 2;
  Rng rng(3000 + static_cast<std::uint64_t>(GetParam()));
  const auto decider = trees::make_P_decider(p);
  const auto yes =
      trees::build_patch_instance(p, trees::subtree_patch(p, 1, 2));
  for (int i = 0; i < 10; ++i) {
    const auto ids = local::make_random_bounded(yes.node_count(), p.f, rng);
    EXPECT_TRUE(local::accepts(*decider, yes, ids));
  }
  const auto T = trees::build_T(p);
  for (int i = 0; i < 3; ++i) {
    const auto ids = local::make_random_bounded(T.node_count(), p.f, rng);
    EXPECT_FALSE(local::accepts(*decider, T, ids));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeciderStability, ::testing::Range(0, 5));

}  // namespace
}  // namespace locald
