// Differential fault injection across both constructions.
//
// Strategy: start from a valid instance, apply a random structural or
// label mutation, and require that the Id-oblivious verifier and the global
// oracle AGREE on the mutated instance. This catches both unsoundness (a
// verifier accepting what the oracle rejects) and over-rejection bugs, and
// it probes corner cases no hand-written test enumerates.
//
// Mutations that happen to produce another valid instance are fine — the
// agreement requirement handles them uniformly.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph.h"
#include "halting/gmr.h"
#include "halting/verifier.h"
#include "local/fault_profile.h"
#include "local/property.h"
#include "local/simulator.h"
#include "server/api.h"
#include "server/http.h"
#include "server/server.h"
#include "tm/zoo.h"
#include "trees/construction.h"
#include "trees/decide.h"

namespace locald {
namespace {

using local::LabeledGraph;

// The mutation operators are library code now (local/fault_profile.h);
// these tests exercise them through the public registry surface.
using local::mutate;
using local::mutate_add_edge;
using local::mutate_label;

class Sec2Fuzz : public ::testing::TestWithParam<int> {};

TEST_P(Sec2Fuzz, VerifierAgreesWithOracleUnderMutations) {
  trees::TreeParams p;
  p.r = 2;
  p.f = local::IdBound::linear_plus(1);
  Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  const auto verifier = trees::make_P_prime_verifier(p);
  const auto oracle = trees::property_P_prime(p);

  // Base instances: a few patch shapes.
  std::vector<LabeledGraph> bases;
  bases.push_back(
      trees::build_patch_instance(p, trees::subtree_patch(p, 0, 0)));
  bases.push_back(
      trees::build_patch_instance(p, trees::subtree_patch(p, 2, 3)));
  trees::Patch trap;
  trap.r = 2;
  trap.y0 = 3;
  trap.bottom_left = 9;
  trap.bottom_right = 12;
  bases.push_back(trees::build_patch_instance(p, trap));

  int mutants = 0;
  for (const LabeledGraph& base : bases) {
    ASSERT_TRUE(local::run_oblivious(*verifier, base).accepted);
    ASSERT_TRUE(oracle->contains(base));
    for (int i = 0; i < 12; ++i) {
      const LabeledGraph bad = mutate(base, rng);
      const bool verdict = local::run_oblivious(*verifier, bad).accepted;
      const bool truth = oracle->contains(bad);
      EXPECT_EQ(verdict, truth)
          << "seed " << GetParam() << " mutant " << mutants
          << (truth ? ": over-rejection" : ": UNSOUND acceptance");
      ++mutants;
    }
  }
  EXPECT_EQ(mutants, 36);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Sec2Fuzz, ::testing::Range(0, 10));

class Sec3Fuzz : public ::testing::TestWithParam<int> {};

// For Section 3 the reconstruction oracle is exact only on builder output,
// so the fuzz requirement is one-sided: every mutated instance the
// verifier ACCEPTS must still be accepted by the oracle's structural
// checks... in practice at these sizes every mutation must be rejected by
// the verifier unless it leaves the instance label-isomorphic; we assert
// rejection for mutations that provably change structure.
TEST_P(Sec3Fuzz, VerifierRejectsStructuralMutations) {
  tm::FragmentPolicy policy;
  policy.max_fragments = 150;
  policy.seed = 3;
  Rng rng(2000 + static_cast<std::uint64_t>(GetParam()));
  halting::GmrParams params{tm::halt_after(2, GetParam() % 2), 1, 3, policy,
                            false, 4096};
  const auto inst = halting::build_gmr(params);
  const auto verifier = halting::make_gmr_verifier(3, policy, false, 4096);
  ASSERT_TRUE(local::run_oblivious(*verifier, inst.graph).accepted);

  int rejected = 0;
  const int trials = 8;
  for (int i = 0; i < trials; ++i) {
    // Label-field mutations always change some cell/role/orientation datum.
    const LabeledGraph bad = mutate_label(inst.graph, rng);
    if (!local::run_oblivious(*verifier, bad).accepted) {
      ++rejected;
    }
  }
  // Every label mutation must be caught: labels are load-bearing (machine
  // encoding, orientation, cell codes are all checked).
  EXPECT_EQ(rejected, trials);

  // Extra-edge mutations: adding any edge breaks grid geometry, glue
  // accounting, or the pivot's component shapes.
  rejected = 0;
  for (int i = 0; i < trials; ++i) {
    const LabeledGraph bad = mutate_add_edge(inst.graph, rng);
    if (!local::run_oblivious(*verifier, bad).accepted) {
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, trials);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Sec3Fuzz, ::testing::Range(0, 8));

// The Section-2 decider under the promise-free property P: random id
// assignments drawn from the (B) policy never flip a correct verdict.
class DeciderStability : public ::testing::TestWithParam<int> {};

TEST_P(DeciderStability, VerdictStableAcrossBoundedAssignments) {
  trees::TreeParams p;
  p.r = 2;
  Rng rng(3000 + static_cast<std::uint64_t>(GetParam()));
  const auto decider = trees::make_P_decider(p);
  const auto yes =
      trees::build_patch_instance(p, trees::subtree_patch(p, 1, 2));
  for (int i = 0; i < 10; ++i) {
    const auto ids = local::make_random_bounded(yes.node_count(), p.f, rng);
    EXPECT_TRUE(local::accepts(*decider, yes, ids));
  }
  const auto T = trees::build_T(p);
  for (int i = 0; i < 3; ++i) {
    const auto ids = local::make_random_bounded(T.node_count(), p.f, rng);
    EXPECT_FALSE(local::accepts(*decider, T, ids));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeciderStability, ::testing::Range(0, 5));

// --- Fault-profile selector round trips ------------------------------------

TEST(FaultSelector, CanonicalSpellsEveryDefaultAndIsAFixedPoint) {
  for (const local::FaultProfile& p : local::fault_registry()) {
    const auto inst = local::resolve_faults_text(p.name);
    // Bare name resolves to all defaults...
    for (const local::FaultParamSpec& spec : p.params) {
      EXPECT_EQ(inst.value(spec.name), spec.default_value) << p.name;
    }
    // ...and the canonical encoding re-resolves to itself.
    const std::string canonical = inst.canonical();
    EXPECT_EQ(local::resolve_faults_text(canonical).canonical(), canonical)
        << p.name;
  }
}

TEST(FaultSelector, PartialOverrideRoundTrips) {
  const auto inst = local::resolve_faults_text("drop:per-mille=50");
  EXPECT_EQ(inst.value("per-mille"), 50);
  EXPECT_EQ(inst.value("attempts"), 3);  // untouched default
  EXPECT_EQ(inst.canonical(), "drop:per-mille=50,attempts=3");
  EXPECT_EQ(local::resolve_faults_text(inst.canonical()).canonical(),
            inst.canonical());
}

TEST(FaultSelector, KnobsReflectResolvedValues) {
  const auto knobs =
      local::resolve_faults_text("chaos:delay=5,per-mille=10,pieces=4")
          .knobs();
  EXPECT_EQ(knobs.delay_max, 5);
  EXPECT_EQ(knobs.loss_per_mille, 10);
  EXPECT_EQ(knobs.attempts, 4);  // chaos default
  EXPECT_EQ(knobs.fragments, 4);
}

TEST(FaultSelector, MalformedSelectorsThrow) {
  EXPECT_THROW(local::resolve_faults_text("nope"), Error);
  EXPECT_THROW(local::resolve_faults_text("drop:unknown=1"), Error);
  EXPECT_THROW(local::resolve_faults_text("drop:per-mille=2000"), Error);
  EXPECT_THROW(local::resolve_faults_text("drop:per-mille=1,per-mille=2"),
               Error);
  EXPECT_THROW(local::resolve_faults_text("drop:per-mille"), Error);
  EXPECT_THROW(local::resolve_faults_text(""), Error);
  EXPECT_THROW(local::resolve_faults_text("drop:per-mille=abc"), Error);
}

// --- CLI vs HTTP byte agreement under a fault profile ----------------------

// The serving layer's byte-identity contract must survive fault
// parameterization: `locald run --format json` (run_document) at one and at
// several threads, and a routed POST /v1/run, all emit literally the same
// bytes for the same (scenario, seed, size, trials, fault_profile) tuple.
TEST(FaultByteIdentity, CliAndServerAgreeAcrossThreadCounts) {
  server::RunRequest request;
  request.scenario = "fault-robustness";
  request.seed = 7;
  request.size = 12;
  request.trials = 2;
  request.fault_profile = "chaos:delay=1,per-mille=300,attempts=2,pieces=2";

  exec::VerdictCache serial_cache;
  exec::ExecContext serial;
  serial.cache = &serial_cache;
  const std::string cli_serial = server::run_document(request, serial, nullptr);

  exec::ThreadPool pool(3);
  exec::VerdictCache parallel_cache;
  exec::ExecContext parallel;
  parallel.pool = &pool;
  parallel.cache = &parallel_cache;
  const std::string cli_parallel =
      server::run_document(request, parallel, nullptr);
  EXPECT_EQ(cli_serial, cli_parallel);

  server::Server srv(server::ServeOptions{});
  server::HttpRequest http;
  http.method = "POST";
  http.target = "/v1/run";
  http.version = "HTTP/1.1";
  http.body =
      "{\"scenario\":\"fault-robustness\",\"seed\":7,\"size\":12,"
      "\"trials\":2,\"fault_profile\":"
      "\"chaos:delay=1,per-mille=300,attempts=2,pieces=2\"}";
  const server::HttpResponse response = srv.handle(http);
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, cli_serial);
}

TEST(FaultByteIdentity, UnsupportedScenarioRejectsFaultProfile) {
  server::Server srv(server::ServeOptions{});
  server::HttpRequest http;
  http.method = "POST";
  http.target = "/v1/run";
  http.version = "HTTP/1.1";
  http.body = "{\"scenario\":\"table1-matrix\",\"fault_profile\":\"chaos\"}";
  EXPECT_EQ(srv.handle(http).status, 400);
}

}  // namespace
}  // namespace locald
