// Tests for the window rules and the fragment collection C(M, r):
// rule/simulator agreement, table validity, DP-count vs materialization
// cross-checks, the fooling property, natural borders, the connectivity
// fix, and the Border property (unique reconstruction).
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "tm/fragments.h"
#include "tm/rules.h"
#include "tm/zoo.h"

namespace locald::tm {
namespace {

TEST(Rules, RealTablesHaveNoViolation) {
  for (const ZooEntry& e : small_zoo()) {
    const LocalRules rules(e.machine);
    const ExecutionTable t = ExecutionTable::build(e.machine, 10, 10);
    EXPECT_FALSE(rules.find_violation(t).has_value()) << e.machine.name();
  }
}

TEST(Rules, CorruptedTableCellIsDetected) {
  const TuringMachine m = halt_after(3, 0);
  const LocalRules rules(m);
  // Recompute a table and flip one interior cell via a copy helper: simplest
  // is to compare against a fresh table and patch through const_cast-free
  // reconstruction — instead, verify detection via the window primitive.
  const ExecutionTable t = ExecutionTable::build(m, 6, 6);
  // A head cell where the rules say plain must be a violation.
  const auto expected = rules.next_cell(t.cell(0, 1), t.cell(1, 1), t.cell(2, 1));
  ASSERT_TRUE(expected.has_value());
  EXPECT_EQ(*expected, t.cell(1, 2));
  EXPECT_NE(*expected, m.head_cell(0, 0));
}

TEST(Rules, HeadCollisionIsContradiction) {
  // Two heads converging on the same cell: left head moving right and right
  // head moving left.
  const TuringMachine m = bouncer();  // (q0,*) -> right, (q1,*) -> left
  const LocalRules rules(m);
  const int left = m.head_cell(0, 0);   // moves right
  const int mid = m.plain_cell(0);
  const int right = m.head_cell(1, 0);  // moves left
  EXPECT_FALSE(rules.next_cell(left, mid, right).has_value());
}

TEST(Rules, FrozenHaltingCellPersists) {
  const TuringMachine m = halt_after(1, 0);
  const LocalRules rules(m);
  const int frozen = m.head_cell(m.halt0(), 1);
  const auto next = rules.next_cell(m.plain_cell(0), frozen, m.plain_cell(0));
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, frozen);
  // A head arriving at a frozen cell is a contradiction.
  const int arriving = m.head_cell(0, 0);  // halt_after moves right
  EXPECT_FALSE(rules.next_cell(arriving, frozen, m.plain_cell(0)).has_value());
}

TEST(Rules, WallRejectsFallingOff) {
  // A machine with a left-moving transition: bouncer's q1.
  const TuringMachine m = bouncer();
  const LocalRules rules(m);
  const int leftmover = m.head_cell(1, 0);
  EXPECT_FALSE(rules.next_cell_at_wall(leftmover, m.plain_cell(0)).has_value());
  // Right-mover at the wall is fine.
  const int rightmover = m.head_cell(0, 0);
  const auto next = rules.next_cell_at_wall(rightmover, m.plain_cell(0));
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, m.plain_cell(1));  // bouncer writes 1
}

TEST(Rules, BoundaryAllowsHeadEntryExistentially) {
  const TuringMachine m = bouncer();
  const LocalRules rules(m);
  // Left-boundary cell under two plain blanks: either stays blank, or a
  // head enters from outside moving right; bouncer enters-left states = {1}.
  const auto allowed = rules.allowed_left_boundary(m.plain_cell(0), m.plain_cell(0));
  const std::set<int> expected{m.plain_cell(0), m.head_cell(1, 0)};
  EXPECT_EQ(std::set<int>(allowed.begin(), allowed.end()), expected);
}

TEST(Rules, EnterStateSets) {
  const TuringMachine m = bouncer();
  const LocalRules rules(m);
  // (q0,*) -> (q1, right): state 1 can enter from the left.
  EXPECT_EQ(rules.enter_from_left_states(), std::vector<int>{1});
  // (q1,*) -> (q0, left): state 0 can enter from the right.
  EXPECT_EQ(rules.enter_from_right_states(), std::vector<int>{0});
}

TEST(Fragments, SuccessorRowsNonEmptyForBlankRow) {
  const TuringMachine m = halt_after(2, 0);
  const LocalRules rules(m);
  const std::vector<int> blank(3, m.plain_cell(0));
  const auto succ = successor_rows(rules, blank);
  EXPECT_FALSE(succ.empty());
  // The all-blank row must be among the successors of itself.
  bool found = false;
  for (const auto& s : succ) {
    if (s == blank) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Fragments, CountMatchesExhaustiveMaterialization) {
  for (const ZooEntry& e : small_zoo()) {
    const unsigned long long count = count_fragments(e.machine, 3);
    FragmentPolicy policy;
    policy.max_fragments = 1'000'000;
    const FragmentCollection col =
        build_fragment_collection(e.machine, 3, policy);
    EXPECT_TRUE(col.exhaustive) << e.machine.name();
    // The connectivity fix can only add fragments beyond the raw count.
    EXPECT_GE(col.fragments.size(), static_cast<std::size_t>(count))
        << e.machine.name();
    EXPECT_EQ(col.exact_count, count);
  }
}

TEST(Fragments, CapsAreRespectedAndDeterministic) {
  const TuringMachine m = zigzag_expander();
  FragmentPolicy policy;
  policy.max_fragments = 500;
  policy.seed = 42;
  const FragmentCollection a = build_fragment_collection(m, 3, policy);
  const FragmentCollection b = build_fragment_collection(m, 3, policy);
  EXPECT_FALSE(a.exhaustive);
  EXPECT_GE(a.fragments.size(), 500u);
  ASSERT_EQ(a.fragments.size(), b.fragments.size());
  for (std::size_t i = 0; i < a.fragments.size(); ++i) {
    EXPECT_EQ(a.fragments[i].key(), b.fragments[i].key());
  }
}

TEST(Fragments, WindowsOfRealTableAreConsistentFragments) {
  // The fooling property's premise: every k x k window of a real execution
  // table satisfies the local rules, i.e. it appears in the exhaustive
  // collection.
  for (const ZooEntry& e : small_zoo()) {
    const ExecutionTable t = ExecutionTable::build(e.machine, 8, 8);
    FragmentPolicy policy;
    policy.max_fragments = 1'000'000;
    const FragmentCollection col =
        build_fragment_collection(e.machine, 3, policy);
    ASSERT_TRUE(col.exhaustive) << e.machine.name();
    std::unordered_set<std::string> keys;
    for (const Fragment& f : col.fragments) {
      keys.insert(f.key());
    }
    for (const Fragment& w : windows_of_table(t, 3)) {
      EXPECT_TRUE(keys.contains(w.key()))
          << e.machine.name() << ": table window missing from C(M, r)";
    }
  }
}

TEST(Fragments, MustIncludeUnionsTableWindows) {
  const TuringMachine m = zigzag_expander();
  const ExecutionTable t = ExecutionTable::build(m, 8, 8);
  FragmentPolicy policy;
  policy.max_fragments = 50;  // far below the true count
  const FragmentCollection col =
      build_fragment_collection(m, 3, policy, {&t});
  std::unordered_set<std::string> keys;
  for (const Fragment& f : col.fragments) {
    keys.insert(f.key());
  }
  for (const Fragment& w : windows_of_table(t, 3)) {
    EXPECT_TRUE(keys.contains(w.key()));
  }
}

TEST(Fragments, NaturalBorderClassification) {
  const TuringMachine m = halt_after(2, 0);
  const LocalRules rules(m);
  // An all-blank fragment: no head activity anywhere — both sides and the
  // bottom are natural.
  Fragment blank;
  blank.width = 3;
  blank.height = 3;
  blank.cells.assign(9, m.plain_cell(0));
  classify_borders(rules, blank);
  EXPECT_TRUE(blank.left_natural);
  EXPECT_TRUE(blank.right_natural);
  EXPECT_TRUE(blank.bottom_natural);
  EXPECT_FALSE(blank.glue_left);
  EXPECT_FALSE(blank.glue_bottom);
  // Its glued border is just the top row: connected.
  EXPECT_TRUE(blank.glued_borders_connected());
  EXPECT_EQ(blank.glued_border_cells().size(), 3u);

  // A fragment whose bottom row holds a working head is bottom-non-natural.
  Fragment live = blank;
  live.cells[7] = m.head_cell(0, 0);  // middle of bottom row
  classify_borders(rules, live);
  EXPECT_FALSE(live.bottom_natural);
  EXPECT_TRUE(live.glue_bottom);
}

TEST(Fragments, ConnectivityFixSplitsTopBottomOnly) {
  const TuringMachine m = halt_after(2, 0);
  const LocalRules rules(m);
  Fragment f;
  f.width = 3;
  f.height = 3;
  f.cells.assign(9, m.plain_cell(0));
  f.cells[7] = m.head_cell(0, 0);  // bottom-middle: glue bottom
  classify_borders(rules, f);
  ASSERT_TRUE(f.glue_bottom);
  ASSERT_FALSE(f.glue_left);
  ASSERT_FALSE(f.glue_right);
  EXPECT_FALSE(f.glued_borders_connected());
  const auto fixed = apply_connectivity_fix(f);
  ASSERT_EQ(fixed.size(), 2u);
  EXPECT_TRUE(fixed[0].glue_left);
  EXPECT_FALSE(fixed[0].glue_right);
  EXPECT_TRUE(fixed[1].glue_right);
  EXPECT_FALSE(fixed[1].glue_left);
  EXPECT_TRUE(fixed[0].glued_borders_connected());
  EXPECT_TRUE(fixed[1].glued_borders_connected());
}

TEST(Fragments, EveryEnumeratedFragmentHasConnectedGluedBorders) {
  for (const ZooEntry& e : small_zoo()) {
    FragmentPolicy policy;
    policy.max_fragments = 5'000;
    const FragmentCollection col =
        build_fragment_collection(e.machine, 3, policy);
    for (const Fragment& f : col.fragments) {
      ASSERT_TRUE(f.glued_borders_connected()) << e.machine.name();
    }
  }
}

TEST(Fragments, BorderPropertyReconstructsUniquely) {
  // For every fragment of a small exhaustive collection, feeding its glued
  // borders into reconstruct_fragment returns exactly the fragment.
  const TuringMachine m = halt_after(2, 0);
  const LocalRules rules(m);
  FragmentPolicy policy;
  policy.max_fragments = 1'000'000;
  const FragmentCollection col = build_fragment_collection(m, 3, policy);
  ASSERT_TRUE(col.exhaustive);
  int checked = 0;
  for (const Fragment& f : col.fragments) {
    std::vector<int> top(f.cells.begin(), f.cells.begin() + f.width);
    std::optional<std::vector<int>> left;
    std::optional<std::vector<int>> right;
    std::optional<std::vector<int>> bottom;
    if (f.glue_left) {
      left.emplace();
      for (int y = 0; y < f.height; ++y) left->push_back(f.cell(0, y));
    }
    if (f.glue_right) {
      right.emplace();
      for (int y = 0; y < f.height; ++y) right->push_back(f.cell(f.width - 1, y));
    }
    if (f.glue_bottom) {
      bottom.emplace();
      for (int x = 0; x < f.width; ++x) bottom->push_back(f.cell(x, f.height - 1));
    }
    const auto rebuilt =
        reconstruct_fragment(rules, f.width, f.height, top, left, right, bottom);
    ASSERT_TRUE(rebuilt.has_value());
    EXPECT_EQ(rebuilt->cells, f.cells);
    ++checked;
  }
  EXPECT_GT(checked, 100);
}

TEST(Fragments, ReconstructRejectsContradictoryBorders) {
  const TuringMachine m = halt_after(2, 0);
  const LocalRules rules(m);
  // Claim a natural-left fragment whose top row pushes the head out left:
  // halt_after never moves left, so instead use a top row with a head that
  // the natural right side cannot contain (head at last column moves right).
  std::vector<int> top{m.plain_cell(0), m.plain_cell(0), m.head_cell(0, 0)};
  const auto rebuilt = reconstruct_fragment(rules, 3, 3, top, std::nullopt,
                                            std::nullopt, std::nullopt);
  EXPECT_FALSE(rebuilt.has_value());
}

class FragmentCountSweep : public ::testing::TestWithParam<int> {};

// DP count equals brute-force count obtained from the exhaustive
// materialization, across the small zoo.
TEST_P(FragmentCountSweep, DpEqualsBruteForce) {
  const auto zoo = small_zoo();
  const ZooEntry& e = zoo[static_cast<std::size_t>(GetParam()) % zoo.size()];
  FragmentPolicy policy;
  policy.max_fragments = 2'000'000;
  const FragmentCollection col =
      build_fragment_collection(e.machine, 3, policy);
  ASSERT_TRUE(col.exhaustive);
  // Count distinct cell-grids among materialized fragments (the fix
  // duplicates grids with different glue flags).
  std::set<std::vector<int>> grids;
  for (const Fragment& f : col.fragments) {
    grids.insert(f.cells);
  }
  EXPECT_EQ(static_cast<unsigned long long>(grids.size()), col.exact_count)
      << e.machine.name();
}

INSTANTIATE_TEST_SUITE_P(Zoo, FragmentCountSweep, ::testing::Range(0, 9));

}  // namespace
}  // namespace locald::tm
