// Tests for the workload generator: selector parsing and canonical
// encodings, per-family declared invariants (node/edge counts, degree
// bound, connectivity, bipartiteness) across sizes and seeds, build
// determinism (same params + seed => identical edge list), the
// stream-seeded random builders, the deterministic family workload, and
// byte-identity of the `locald bench` document across thread grids.
#include <gtest/gtest.h>

#include <sstream>

#include "cli/bench.h"
#include "gen/family.h"
#include "gen/workload.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/pyramid.h"

namespace locald::gen {
namespace {

// ---- selector parsing and canonical encodings ------------------------------

TEST(FamilySpec, ParsesBareName) {
  const FamilySpec spec = parse_family_spec("cycle");
  EXPECT_EQ(spec.family, "cycle");
  EXPECT_TRUE(spec.params.empty());
}

TEST(FamilySpec, ParsesParameterList) {
  const FamilySpec spec = parse_family_spec("torus:width=8,height=6");
  EXPECT_EQ(spec.family, "torus");
  ASSERT_EQ(spec.params.size(), 2u);
  EXPECT_EQ(spec.params[0].first, "width");
  EXPECT_EQ(spec.params[0].second, 8);
  EXPECT_EQ(spec.params[1].first, "height");
  EXPECT_EQ(spec.params[1].second, 6);
}

TEST(FamilySpec, RejectsMalformedSelectors) {
  EXPECT_THROW(parse_family_spec(""), Error);
  EXPECT_THROW(parse_family_spec(":n=3"), Error);
  EXPECT_THROW(parse_family_spec("cycle:"), Error);
  EXPECT_THROW(parse_family_spec("cycle:n"), Error);
  EXPECT_THROW(parse_family_spec("cycle:n=abc"), Error);
  EXPECT_THROW(parse_family_spec("cycle:n=3,n=4"), Error);
  EXPECT_THROW(parse_family_spec("cycle:=3"), Error);
}

TEST(FamilySpec, ResolutionRejectsUnknownNamesAndParams) {
  EXPECT_THROW(resolve_family_text("moebius"), Error);
  EXPECT_THROW(resolve_family_text("cycle:girth=3"), Error);
  EXPECT_THROW(resolve_family_text("cycle:n=2"), Error);        // below min
  EXPECT_THROW(resolve_family_text("gnp:permille=1001"), Error);
}

TEST(FamilySpec, CanonicalEncodingSpellsOutEveryParameter) {
  EXPECT_EQ(resolve_family_text("torus").canonical(),
            "torus:width=8,height=8");
  EXPECT_EQ(resolve_family_text("torus:height=6").canonical(),
            "torus:width=8,height=6");
  EXPECT_EQ(resolve_family_text("cycle:n=10").canonical(), "cycle:n=10");
}

TEST(FamilySpec, CanonicalEncodingRoundTrips) {
  for (const Family& family : family_registry()) {
    const FamilyInstanceSpec spec = resolve_family_text(family.name, 40);
    const FamilyInstanceSpec again = resolve_family_text(spec.canonical());
    EXPECT_EQ(again.canonical(), spec.canonical());
    EXPECT_EQ(again.values(), spec.values());
  }
}

TEST(FamilySpec, ExplicitParametersOverrideSizeMapping) {
  const FamilyInstanceSpec spec = resolve_family_text("cycle:n=9", 100);
  EXPECT_EQ(spec.value("n"), 9);
}

TEST(FamilySpec, SizeMappingSeesExplicitSiblingParameters) {
  // The depth the mapping picks must be computed with the arity that will
  // actually build, not the default: at arity 3 a depth-4 tree has 121
  // nodes (> 100), so the largest fitting depth is 3 (40 nodes).
  const FamilyInstanceSpec tree =
      resolve_family_text("balanced-tree:arity=3", 100);
  EXPECT_EQ(tree.value("depth"), 3);
  EXPECT_LE(tree.build(1).node_count(), 100);
  const FamilyInstanceSpec cat = resolve_family_text("caterpillar:legs=9", 100);
  EXPECT_EQ(cat.value("spine"), 10);
  EXPECT_EQ(cat.build(1).node_count(), 100);
  // A pinned dimension turns the target into the other dimension.
  const FamilyInstanceSpec grid = resolve_family_text("grid:width=2", 100);
  EXPECT_EQ(grid.value("height"), 50);
  const FamilyInstanceSpec torus = resolve_family_text("torus:height=4", 100);
  EXPECT_EQ(torus.value("width"), 25);
  const FamilyInstanceSpec kab =
      resolve_family_text("complete-bipartite:a=1", 100);
  EXPECT_EQ(kab.value("b"), 99);
}

// ---- registry-wide invariants ----------------------------------------------

TEST(FamilyRegistry, HasAtLeastEightFamilies) {
  EXPECT_GE(family_registry().size(), 8u);
}

// Every declared invariant must hold on built instances, across the size
// grid and across seeds.
TEST(FamilyRegistry, DeclaredInvariantsHoldAcrossSizesAndSeeds) {
  for (const Family& family : family_registry()) {
    for (const std::int64_t size : {0, 12, 40, 150}) {
      const FamilyInstanceSpec spec = resolve_family_text(family.name, size);
      const Invariants declared = spec.invariants();
      for (const std::uint64_t seed : {7ull, 1234ull}) {
        SCOPED_TRACE(spec.canonical() + " seed " + std::to_string(seed));
        const graph::CsrGraph g = spec.build(seed);
        if (declared.node_count >= 0) {
          EXPECT_EQ(g.node_count(), declared.node_count);
        }
        if (declared.edge_count >= 0) {
          EXPECT_EQ(static_cast<std::int64_t>(g.edge_count()),
                    declared.edge_count);
        }
        if (declared.degree_bound >= 0 && g.node_count() > 0) {
          EXPECT_LE(g.max_degree(), declared.degree_bound);
        }
        if (declared.connected) {
          EXPECT_TRUE(graph::is_connected(g));
        }
        if (declared.bipartite) {
          EXPECT_TRUE(graph::is_bipartite(g));
        }
      }
    }
  }
}

TEST(FamilyRegistry, SizeMappingTracksTargetNodeCount) {
  for (const Family& family : family_registry()) {
    for (const std::int64_t size : {10, 50, 200}) {
      const FamilyInstanceSpec spec = resolve_family_text(family.name, size);
      const graph::CsrGraph g = spec.build(3);
      // The mapping never overshoots by more than the family's granularity
      // (the parity bump of random-regular is the one off-by-one).
      EXPECT_LE(g.node_count(), size + 1) << spec.canonical();
      EXPECT_GE(g.node_count(), 1) << spec.canonical();
    }
  }
}

TEST(FamilyRegistry, SameParamsAndSeedGiveIdenticalEdgeLists) {
  for (const Family& family : family_registry()) {
    const FamilyInstanceSpec spec = resolve_family_text(family.name, 40);
    const graph::CsrGraph a = spec.build(99);
    const graph::CsrGraph b = spec.build(99);
    EXPECT_EQ(a.edges(), b.edges()) << spec.canonical();
  }
}

TEST(FamilyRegistry, RandomFamiliesVaryWithTheSeed) {
  for (const Family& family : family_registry()) {
    if (!family.randomized) {
      continue;
    }
    const FamilyInstanceSpec spec = resolve_family_text(family.name, 64);
    EXPECT_NE(spec.build(1).edges(), spec.build(2).edges())
        << spec.canonical();
  }
}

TEST(FamilyRegistry, DeterministicFamiliesIgnoreTheSeed) {
  for (const Family& family : family_registry()) {
    if (family.randomized) {
      continue;
    }
    const FamilyInstanceSpec spec = resolve_family_text(family.name, 40);
    EXPECT_EQ(spec.build(1).edges(), spec.build(2).edges())
        << spec.canonical();
  }
}

// ---- specific families -----------------------------------------------------

TEST(Families, RandomRegularIsExactlyRegular) {
  const FamilyInstanceSpec spec =
      resolve_family_text("random-regular:n=30,d=4");
  const graph::CsrGraph g = spec.build(5);
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(g.degree(v), 4);
  }
}

TEST(Families, RandomRegularRejectsOddStubCount) {
  EXPECT_THROW(resolve_family_text("random-regular:n=7,d=3").build(1), Error);
}

TEST(Families, RandomRegularBuildsAtTheSchemaDegreeBound) {
  // d = 5 sits at the rejection-model bound the schema enforces; a spread
  // of seeds must all find a simple pairing within the retry budget.
  EXPECT_THROW(resolve_family_text("random-regular:n=64,d=6"), Error);
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 42ull}) {
    const graph::CsrGraph g =
        resolve_family_text("random-regular:n=64,d=5").build(seed);
    for (graph::NodeId v = 0; v < g.node_count(); ++v) {
      EXPECT_EQ(g.degree(v), 5);
    }
  }
}

TEST(Families, CompleteBipartiteMatchesTheOracle) {
  const graph::CsrGraph g = graph::make_complete_bipartite(3, 5);
  EXPECT_EQ(g.node_count(), 8);
  EXPECT_EQ(g.edge_count(), 15u);
  EXPECT_TRUE(graph::is_bipartite(g));
  for (graph::NodeId u = 0; u < 3; ++u) {
    EXPECT_EQ(g.degree(u), 5);
    for (graph::NodeId v = 0; v < 3; ++v) {
      EXPECT_FALSE(g.has_edge(u, v) && u != v);
    }
  }
}

TEST(Families, BalancedTreeGeneralizesTheBinaryBuilder) {
  EXPECT_EQ(graph::make_balanced_tree(2, 3).edges(),
            graph::make_complete_binary_tree(3).edges());
  const graph::CsrGraph t = graph::make_balanced_tree(3, 2);
  EXPECT_EQ(t.node_count(), 13);  // 1 + 3 + 9
  EXPECT_TRUE(graph::is_tree(t));
  EXPECT_EQ(t.degree(0), 3);
}

TEST(Families, CaterpillarIsATreeWithTheDeclaredShape) {
  const graph::CsrGraph g = graph::make_caterpillar(4, 2);
  EXPECT_EQ(g.node_count(), 12);
  EXPECT_TRUE(graph::is_tree(g));
  EXPECT_EQ(g.degree(0), 3);  // spine end: 1 spine + 2 legs
  EXPECT_EQ(g.degree(1), 4);  // interior: 2 spine + 2 legs
  EXPECT_EQ(g.degree(11), 1);  // a leg
}

TEST(Families, PyramidFamilySharesTheHaltingBuilder) {
  EXPECT_TRUE(graph::is_pyramid(graph::make_pyramid(2), 2));
  EXPECT_EQ(resolve_family_text("pyramid:height=2").build(0).edges(),
            graph::make_pyramid(2).edges());
}

TEST(Families, LayeredTreeFamilySharesTheSection2Builder) {
  EXPECT_EQ(resolve_family_text("layered-tree:depth=3").build(0).edges(),
            graph::make_layered_tree(3).edges());
}

// ---- stream-seeded random builders -----------------------------------------

TEST(StreamSeededGenerators, AreCallOrderIndependent) {
  // Interleaving other stream draws must not perturb a seed-based build —
  // unlike the legacy Rng& overloads, whose draws depend on generator
  // position.
  const graph::CsrGraph a = graph::make_random_gnp(24, 0.3, 77);
  graph::make_random_tree(10, 77);
  graph::make_random_regular(10, 3, 77);
  const graph::CsrGraph b = graph::make_random_gnp(24, 0.3, 77);
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(StreamSeededGenerators, FamiliesDrawFromDisjointStreamPlanes) {
  // Same seed, different family: the stream ids keep the coins apart, so
  // the tree inside make_random_connected differs from make_random_tree's
  // chords only by the chord plane.
  const graph::CsrGraph tree = graph::make_random_tree(20, 5);
  const graph::CsrGraph connected = graph::make_random_connected(20, 6, 5);
  for (const auto& [u, v] : tree.edges()) {
    EXPECT_TRUE(connected.has_edge(u, v));  // the tree plane is shared
  }
  EXPECT_EQ(connected.edge_count(), tree.edge_count() + 6);
  EXPECT_TRUE(graph::is_connected(connected));
}

// ---- the deterministic workload --------------------------------------------

TEST(Workload, CycleCellIsFullyDetermined) {
  const FamilyInstanceSpec spec = resolve_family_text("cycle:n=5");
  WorkloadOptions opts;
  opts.seed = 11;
  const WorkloadResult r = run_family_workload(spec, opts, {});
  EXPECT_EQ(r.family, "cycle:n=5");
  EXPECT_EQ(r.nodes, 5);
  EXPECT_EQ(r.edges, 5);
  EXPECT_EQ(r.max_degree, 2);
  EXPECT_TRUE(r.invariants_ok);
  EXPECT_EQ(r.ball_classes, 1);  // every radius-1 ball is a 3-path
  EXPECT_EQ(r.memo_hits,
            static_cast<std::int64_t>(workload_panel_names().size()) * 4);
  ASSERT_EQ(r.panel.size(), workload_panel_names().size());
  EXPECT_EQ(r.panel[0].algorithm, "even-degree");
  EXPECT_EQ(r.panel[0].yes_nodes, 5);
  EXPECT_TRUE(r.panel[0].accepted);
}

TEST(Workload, SymmetricFamilyCellsReportExactBallClassCounts) {
  // PR 4's census fell back to a degree-profile invariant on these shapes
  // (k >= 7 interchangeable star leaves); the two-tier engine censuses
  // them exactly. The expected counts are forced by the topology: every
  // radius-1 ball in a hypercube or K_{m,m} is a centre-marked star, so
  // Q_d has one class, K_{m,m} one (m = m), K_{a,b} two (a != b), and a
  // star host two (hub ball = the whole star, leaf ball = one edge).
  const auto classes_of = [](const std::string& selector) {
    WorkloadOptions opts;
    const WorkloadResult r =
        run_family_workload(resolve_family_text(selector), opts, {});
    EXPECT_TRUE(r.invariants_ok) << selector;
    return r.ball_classes;
  };
  EXPECT_EQ(classes_of("hypercube:dims=4"), 1);
  EXPECT_EQ(classes_of("hypercube:dims=6"), 1);
  EXPECT_EQ(classes_of("complete-bipartite:a=8,b=8"), 1);
  EXPECT_EQ(classes_of("complete-bipartite:a=4,b=7"), 2);
  EXPECT_EQ(classes_of("complete-bipartite:a=1,b=40"), 2);
}

TEST(Workload, PanelCountsMatchBetweenSerialAndPooledRuns) {
  const FamilyInstanceSpec spec = resolve_family_text("gnp:n=40,permille=200");
  WorkloadOptions opts;
  opts.seed = 4;
  const WorkloadResult serial = run_family_workload(spec, opts, {});
  exec::ThreadPool pool(4);
  exec::VerdictCache cache;
  exec::ExecContext ctx;
  ctx.pool = &pool;
  ctx.cache = &cache;
  const WorkloadResult pooled = run_family_workload(spec, opts, ctx);
  EXPECT_EQ(serial.nodes, pooled.nodes);
  EXPECT_EQ(serial.edges, pooled.edges);
  EXPECT_EQ(serial.ball_classes, pooled.ball_classes);
  EXPECT_EQ(serial.memo_hits, pooled.memo_hits);
  ASSERT_EQ(serial.panel.size(), pooled.panel.size());
  for (std::size_t i = 0; i < serial.panel.size(); ++i) {
    EXPECT_EQ(serial.panel[i].yes_nodes, pooled.panel[i].yes_nodes);
    EXPECT_EQ(serial.panel[i].accepted, pooled.panel[i].accepted);
  }
}

// ---- the bench document ----------------------------------------------------

TEST(Bench, DocumentIsByteIdenticalAcrossThreadGrids) {
  cli::BenchOptions base;
  base.seed = 9;
  base.families = {"cycle", "random-regular", "gnp:n=48"};
  base.sizes = {16, 33};
  std::ostringstream serial;
  std::ostringstream pooled;
  cli::BenchOptions a = base;
  a.thread_grid = {1};
  EXPECT_EQ(cli::run_bench(a, serial), 0);
  cli::BenchOptions b = base;
  b.thread_grid = {4, 2};  // internal cross-thread gate runs too
  EXPECT_EQ(cli::run_bench(b, pooled), 0);
  EXPECT_EQ(serial.str(), pooled.str());
}

TEST(Bench, UnknownFamilyFailsTheRunButKeepsTheDocument) {
  cli::BenchOptions bench;
  bench.families = {"cycle", "moebius"};
  std::ostringstream out;
  EXPECT_EQ(cli::run_bench(bench, out), 1);
  EXPECT_NE(out.str().find("\"error\""), std::string::npos);
  EXPECT_NE(out.str().find("\"all_ok\": false"), std::string::npos);
}

TEST(Bench, TimingFieldsStayOutOfTheDefaultDocument) {
  cli::BenchOptions bench;
  bench.families = {"cycle"};
  bench.thread_grid = {1, 2};
  std::ostringstream plain;
  std::ostringstream timed;
  EXPECT_EQ(cli::run_bench(bench, plain), 0);
  bench.timing = true;
  EXPECT_EQ(cli::run_bench(bench, timed), 0);
  EXPECT_EQ(plain.str().find("wall_ms"), std::string::npos);
  EXPECT_EQ(plain.str().find("\"threads\""), std::string::npos);
  EXPECT_NE(timed.str().find("wall_ms"), std::string::npos);
  EXPECT_NE(timed.str().find("\"threads\""), std::string::npos);
}

}  // namespace
}  // namespace locald::gen
