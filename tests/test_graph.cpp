// Unit and property tests for the graph substrate: construction invariants,
// traversals, generator families, induced subgraphs, IO round trips.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/induced.h"
#include "graph/io.h"
#include "support/rng.h"

namespace locald::graph {
namespace {

TEST(GraphBuilder, StartsEmpty) {
  GraphBuilder g;
  EXPECT_EQ(g.node_count(), 0);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(GraphBuilder, AddNodeGrowsSequentially) {
  GraphBuilder g;
  EXPECT_EQ(g.add_node(), 0);
  EXPECT_EQ(g.add_node(), 1);
  EXPECT_EQ(g.node_count(), 2);
}

TEST(GraphBuilder, AddEdgeIsSymmetric) {
  GraphBuilder g(3);
  g.add_edge(0, 2);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(GraphBuilder, NeighborsSortedAscending) {
  GraphBuilder g(5);
  g.add_edge(2, 4);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  const std::vector<NodeId> expected{0, 3, 4};
  EXPECT_EQ(g.neighbors(2), expected);
}

TEST(GraphBuilder, RejectsSelfLoop) {
  GraphBuilder g(2);
  EXPECT_THROW(g.add_edge(1, 1), Error);
}

TEST(GraphBuilder, RejectsDuplicateEdge) {
  GraphBuilder g(2);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(1, 0), Error);
  EXPECT_FALSE(g.add_edge_if_absent(0, 1));
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(GraphBuilder, RejectsOutOfRangeNode) {
  GraphBuilder g(2);
  EXPECT_THROW(g.add_edge(0, 2), Error);
  EXPECT_THROW(g.degree(-1), Error);
}

TEST(GraphBuilder, ResizeNeverShrinks) {
  GraphBuilder g(3);
  EXPECT_THROW(g.resize(2), Error);
  g.resize(5);
  EXPECT_EQ(g.node_count(), 5);
}

TEST(GraphBuilder, EdgesDeterministicOrder) {
  GraphBuilder g(4);
  g.add_edge(3, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 1);
  const std::vector<std::pair<NodeId, NodeId>> expected{
      {0, 1}, {0, 2}, {1, 3}};
  EXPECT_EQ(g.edges(), expected);
}

TEST(Algorithms, BfsDistancesOnPath) {
  const CsrGraph g = make_path(5);
  const auto d = bfs_distances(g, 0);
  const std::vector<int> expected{0, 1, 2, 3, 4};
  EXPECT_EQ(d, expected);
}

TEST(Algorithms, BfsRespectsMaxDist) {
  const CsrGraph g = make_path(6);
  const auto d = bfs_distances(g, 0, 2);
  EXPECT_EQ(d[2], 2);
  EXPECT_EQ(d[3], kUnreached);
}

TEST(Algorithms, NodesWithinMatchesBfs) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const CsrGraph g = make_random_connected(
        40, 20, static_cast<std::uint64_t>(trial));
    const NodeId src = static_cast<NodeId>(rng.below(40));
    const int radius = static_cast<int>(rng.below(4));
    const auto ball = nodes_within(g, src, radius);
    const auto dist = bfs_distances(g, src, radius);
    std::set<NodeId> from_ball(ball.begin(), ball.end());
    std::set<NodeId> from_bfs;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (dist[v] != kUnreached && dist[v] <= radius) {
        from_bfs.insert(v);
      }
    }
    EXPECT_EQ(from_ball, from_bfs);
    EXPECT_EQ(ball.size(), from_ball.size()) << "no duplicates";
  }
}

TEST(Algorithms, ConnectivityAndComponents) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const CsrGraph g = b.build();
  EXPECT_FALSE(is_connected(g));
  int count = 0;
  const auto comp = connected_components(g, &count);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[4], comp[0]);
}

TEST(Algorithms, DiameterOfCycleAndPath) {
  EXPECT_EQ(diameter(make_cycle(8)), 4);
  EXPECT_EQ(diameter(make_cycle(9)), 4);
  EXPECT_EQ(diameter(make_path(7)), 6);
  EXPECT_EQ(diameter(make_complete(5)), 1);
}

TEST(Algorithms, BipartiteFamilies) {
  EXPECT_TRUE(is_bipartite(make_cycle(10)));
  EXPECT_FALSE(is_bipartite(make_cycle(9)));
  EXPECT_TRUE(is_bipartite(make_grid(4, 5)));
  EXPECT_TRUE(is_bipartite(make_path(6)));
  EXPECT_FALSE(is_bipartite(make_complete(3)));
  // The layered tree contains triangles (parent + adjacent siblings).
  EXPECT_FALSE(is_bipartite(make_layered_tree(2)));
}

TEST(Algorithms, ShortestPathEndpointsAndLength) {
  const CsrGraph g = make_grid(5, 5);
  const auto p = shortest_path(g, 0, 24);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->front(), 0);
  EXPECT_EQ(p->back(), 24);
  EXPECT_EQ(p->size(), 9u);  // 8 hops manhattan distance
  for (std::size_t i = 0; i + 1 < p->size(); ++i) {
    EXPECT_TRUE(g.has_edge((*p)[i], (*p)[i + 1]));
  }
}

TEST(Algorithms, ShortestPathUnreachable) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  EXPECT_FALSE(shortest_path(b.build(), 0, 2).has_value());
}

TEST(Algorithms, TopologyRecognizers) {
  EXPECT_TRUE(is_cycle_graph(make_cycle(5)));
  EXPECT_FALSE(is_cycle_graph(make_path(5)));
  EXPECT_TRUE(is_path_graph(make_path(5)));
  EXPECT_FALSE(is_path_graph(make_cycle(5)));
  EXPECT_TRUE(is_tree(make_random_tree(20, 3)));
  EXPECT_FALSE(is_tree(make_cycle(4)));
}

TEST(Generators, PathCycleSizes) {
  EXPECT_EQ(make_path(1).node_count(), 1);
  EXPECT_EQ(make_path(4).edge_count(), 3u);
  EXPECT_EQ(make_cycle(7).edge_count(), 7u);
  EXPECT_THROW(make_cycle(2), Error);
}

TEST(Generators, GridStructure) {
  const CsrGraph g = make_grid(3, 4);
  EXPECT_EQ(g.node_count(), 12);
  EXPECT_EQ(g.edge_count(), 2u * 4 + 3u * 3);  // vertical 3*3, horizontal 2*4
  EXPECT_EQ(g.degree(0), 2);                   // corner
  EXPECT_EQ(g.degree(4), 4);                   // interior (1,1)
}

TEST(Generators, TorusIsFourRegular) {
  const CsrGraph g = make_torus(4, 5);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(g.degree(v), 4);
  }
  EXPECT_THROW(make_torus(2, 5), Error);
}

TEST(Generators, CompleteBinaryTreeShape) {
  const CsrGraph g = make_complete_binary_tree(3);
  EXPECT_EQ(g.node_count(), 15);
  EXPECT_TRUE(is_tree(g));
  EXPECT_EQ(g.degree(0), 2);
}

TEST(Generators, LayeredTreeShape) {
  // Depth 2: 7 nodes, 6 tree edges + 1 (level 1) + 3 (level 2) path edges.
  const CsrGraph g = make_layered_tree(2);
  EXPECT_EQ(g.node_count(), 7);
  EXPECT_EQ(g.edge_count(), 10u);
  EXPECT_TRUE(is_connected(g));
  // Level paths: node 1 and 2 adjacent, 3-4-5-6 chained.
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(3, 4));
  EXPECT_TRUE(g.has_edge(4, 5));
  EXPECT_TRUE(g.has_edge(5, 6));
  EXPECT_FALSE(g.has_edge(2, 3));
}

TEST(Generators, HypercubeRegularity) {
  const CsrGraph g = make_hypercube(4);
  EXPECT_EQ(g.node_count(), 16);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(g.degree(v), 4);
  }
  EXPECT_TRUE(is_bipartite(g));
}

TEST(Generators, RandomTreeIsTree) {
  for (NodeId n : {1, 2, 10, 100}) {
    EXPECT_TRUE(is_tree(make_random_tree(n, 77 + static_cast<std::uint64_t>(n))));
  }
}

TEST(Generators, RandomConnectedStaysConnected) {
  for (int trial = 0; trial < 10; ++trial) {
    const CsrGraph g = make_random_connected(
        30, 15, 78 + static_cast<std::uint64_t>(trial));
    EXPECT_TRUE(is_connected(g));
    EXPECT_GE(g.edge_count(), 29u);
  }
}

TEST(Generators, GnpEdgeCountConcentrates) {
  const CsrGraph g = make_random_gnp(60, 0.3, 79);
  const double expected = 0.3 * 60 * 59 / 2;
  EXPECT_NEAR(static_cast<double>(g.edge_count()), expected, expected * 0.35);
}

TEST(Generators, TreeIndexRoundTrip) {
  for (NodeId v = 0; v < 200; ++v) {
    const int y = TreeIndex::level(v);
    const std::int64_t x = TreeIndex::offset(v);
    EXPECT_EQ(TreeIndex::id(y, x), v);
    EXPECT_GE(x, 0);
    EXPECT_LT(x, 1LL << y);
  }
  EXPECT_EQ(TreeIndex::level(0), 0);
  EXPECT_EQ(TreeIndex::level(1), 1);
  EXPECT_EQ(TreeIndex::level(2), 1);
  EXPECT_EQ(TreeIndex::level(3), 2);
}

TEST(Induced, SubgraphKeepsInternalEdgesOnly) {
  const CsrGraph g = make_cycle(6);
  const auto sub = induced_subgraph(g, {0, 1, 2, 4});
  EXPECT_EQ(sub.graph.node_count(), 4);
  EXPECT_TRUE(sub.graph.has_edge(0, 1));  // cycle edge 0-1
  EXPECT_TRUE(sub.graph.has_edge(1, 2));  // cycle edge 1-2
  EXPECT_FALSE(sub.graph.has_edge(2, 3)); // host 2 and 4 not adjacent
  EXPECT_EQ(sub.graph.edge_count(), 2u);
  EXPECT_EQ(sub.to_parent[3], 4);
  EXPECT_EQ(sub.from_parent.at(4), 3);
}

TEST(Induced, RejectsDuplicates) {
  const CsrGraph g = make_path(3);
  EXPECT_THROW(induced_subgraph(g, {0, 0}), Error);
}

TEST(Io, EdgeListRoundTrip) {
  const CsrGraph g = make_random_connected(25, 12, 123);
  const CsrGraph h = from_edge_list(to_edge_list(g));
  EXPECT_EQ(g, h);
}

TEST(Io, DotContainsNodesAndEdges) {
  const CsrGraph g = make_path(3);
  const std::string dot = to_dot(g, {"a", "b", "c"});
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"b\""), std::string::npos);
}

// Parameterized sweep: generator families keep their defining invariants
// across sizes.
class CycleSweep : public ::testing::TestWithParam<NodeId> {};

TEST_P(CycleSweep, CycleInvariants) {
  const NodeId n = GetParam();
  const CsrGraph g = make_cycle(n);
  EXPECT_EQ(g.node_count(), n);
  EXPECT_EQ(g.edge_count(), static_cast<std::size_t>(n));
  EXPECT_TRUE(is_cycle_graph(g));
  EXPECT_EQ(diameter(g), n / 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CycleSweep,
                         ::testing::Values(3, 4, 5, 8, 13, 21, 34, 100));

class LayeredTreeSweep : public ::testing::TestWithParam<int> {};

TEST_P(LayeredTreeSweep, NodeAndEdgeCounts) {
  const int depth = GetParam();
  const CsrGraph g = make_layered_tree(depth);
  const NodeId n = static_cast<NodeId>((1LL << (depth + 1)) - 1);
  EXPECT_EQ(g.node_count(), n);
  // Tree edges: n - 1. Level-path edges at level y: 2^y - 1 for y=1..depth.
  std::size_t path_edges = 0;
  for (int y = 1; y <= depth; ++y) {
    path_edges += (1ULL << y) - 1;
  }
  EXPECT_EQ(g.edge_count(), static_cast<std::size_t>(n - 1) + path_edges);
  EXPECT_TRUE(is_connected(g));
}

INSTANTIATE_TEST_SUITE_P(Depths, LayeredTreeSweep,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 12));

}  // namespace
}  // namespace locald::graph
