// Tests for the Section-3 construction: pyramids, G(M, r) assembly, the
// structure verifier (completeness + mutation soundness), the LD decider,
// the neighbourhood generator's totality, the separation experiment, the
// Corollary-1 randomized decider, and the promise problem.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/pyramid.h"
#include "halting/analysis.h"
#include "halting/gmr.h"
#include "halting/promise_halting.h"
#include "halting/verifier.h"
#include "local/property.h"
#include "local/simulator.h"
#include "tm/run.h"
#include "tm/zoo.h"

namespace locald::halting {
namespace {

using graph::PyramidIndexer;
using graph::attach_pyramid;
using graph::build_pyramid;
using graph::is_pyramid;
using local::LabeledGraph;
using local::Verdict;

tm::FragmentPolicy small_policy(std::size_t cap = 400) {
  tm::FragmentPolicy policy;
  policy.max_fragments = cap;
  policy.seed = 7;
  return policy;
}

GmrParams make_params(tm::TuringMachine m, std::size_t cap = 400) {
  GmrParams p{std::move(m), 1, 3, small_policy(cap), false, 4096};
  return p;
}

TEST(Pyramid, IndexerCountsAndPositions) {
  const PyramidIndexer idx(2);  // 4x4 + 2x2 + 1
  EXPECT_EQ(idx.node_count(), 16 + 4 + 1);
  EXPECT_EQ(idx.side(0), 4);
  EXPECT_EQ(idx.side(2), 1);
  const auto pos = idx.position(idx.id(3, 1, 0));
  EXPECT_EQ(pos.x, 3);
  EXPECT_EQ(pos.y, 1);
  EXPECT_EQ(pos.z, 0);
  EXPECT_EQ(idx.apex(), idx.id(0, 0, 2));
}

TEST(Pyramid, BuildStructure) {
  const PyramidIndexer idx(2);
  const graph::CsrGraph g = build_pyramid(idx);
  EXPECT_EQ(g.node_count(), 21);
  // Apex: adjacent to the 2x2 level (4 children), no grid neighbours.
  EXPECT_EQ(g.degree(idx.apex()), 4);
  // Base corner (0,0,0): grid degree 2 + one parent.
  EXPECT_EQ(g.degree(idx.id(0, 0, 0)), 3);
  EXPECT_TRUE(is_pyramid(g, 2));
  EXPECT_FALSE(is_pyramid(g, 3));
  // A mutation breaks it.
  graph::GraphBuilder hb(g.node_count());
  for (const auto& [u, v] : g.edges()) {
    hb.add_edge(u, v);
  }
  hb.add_edge(idx.id(0, 0, 0), idx.id(3, 3, 0));
  EXPECT_FALSE(is_pyramid(hb.build(), 2));
}

TEST(Pyramid, AttachOverExistingGrid) {
  graph::GraphBuilder g(16);  // 4x4 grid nodes 0..15
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      if (x + 1 < 4) g.add_edge(y * 4 + x, y * 4 + x + 1);
      if (y + 1 < 4) g.add_edge(y * 4 + x, (y + 1) * 4 + x);
    }
  }
  const PyramidIndexer idx(2);
  const graph::NodeId first = attach_pyramid(
      g, idx, [](int x, int y) { return static_cast<graph::NodeId>(y * 4 + x); });
  EXPECT_EQ(first, 16);
  EXPECT_EQ(g.node_count(), 21);
  EXPECT_TRUE(is_pyramid(g.build(), 2));
}

TEST(Gmr, LabelRoundTrip) {
  const tm::TuringMachine m = tm::halt_after(2, 0);
  const local::Label l = cell_label(m, 1, 7, 5, 3);
  const auto d = decode_label(l);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->r, 1);
  EXPECT_EQ(d->role, kRoleTableCell);
  EXPECT_EQ(d->xm3, 1);
  EXPECT_EQ(d->ym3, 2);
  EXPECT_EQ(d->code, 3);
  EXPECT_EQ(tm::TuringMachine::decode(d->machine_encoding), m);
  EXPECT_FALSE(decode_label(local::Label{1, 2, 3}).has_value());
}

TEST(Gmr, BuildShape) {
  const GmrParams params = make_params(tm::halt_after(2, 0));
  const GmrInstance inst = build_gmr(params);
  // Table padded to 4x4 (3 rows needed).
  EXPECT_EQ(inst.table_side, 4);
  EXPECT_EQ(inst.halting_step, 2);
  EXPECT_GT(inst.fragment_count, 0u);
  EXPECT_EQ(inst.graph.node_count(),
            static_cast<graph::NodeId>(16 + 9 * inst.fragment_count));
  // The pivot is the start cell and carries all glue edges.
  const auto d = decode_label(inst.graph.label(inst.pivot));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->code, params.machine.head_cell(0, 0));
  EXPECT_GT(inst.graph.graph().degree(inst.pivot),
            static_cast<graph::NodeId>(inst.fragment_count));
}

TEST(Gmr, PyramidalBuildShape) {
  GmrParams params = make_params(tm::halt_after(2, 0), 60);
  params.pyramidal = true;
  params.fragment_size = 4;
  const GmrInstance inst = build_gmr(params);
  // Table pyramid: 4x4 -> +4+1; fragment pyramids: 4x4 -> +4+1 each.
  EXPECT_EQ(inst.graph.node_count(),
            static_cast<graph::NodeId>(16 + 5 +
                                       21 * inst.fragment_count));
}

TEST(Verifier, AcceptsGenuineInstances) {
  for (const tm::ZooEntry& e : tm::small_zoo()) {
    if (!e.halts) {
      continue;
    }
    const GmrParams params = make_params(e.machine);
    const GmrInstance inst = build_gmr(params);
    const auto verifier =
        make_gmr_verifier(3, params.policy, false, params.step_budget);
    const auto run = local::run_oblivious(*verifier, inst.graph);
    EXPECT_TRUE(run.accepted)
        << e.machine.name() << " rejected at node "
        << (run.first_rejecting ? *run.first_rejecting : -1);
  }
}

TEST(Verifier, RejectsCorruptedCellCode) {
  const GmrParams params = make_params(tm::halt_after(2, 0));
  const GmrInstance inst = build_gmr(params);
  const auto verifier =
      make_gmr_verifier(3, params.policy, false, params.step_budget);
  // Flip an interior table cell (cell (1,1): id = 1*4+1 = 5).
  LabeledGraph bad = inst.graph;
  auto d = decode_label(bad.label(5));
  ASSERT_TRUE(d.has_value());
  const int new_code =
      (d->code + 1) % params.machine.cell_code_count();
  bad.set_label(5, cell_label(params.machine, params.r, 1, 1, new_code));
  EXPECT_FALSE(local::run_oblivious(*verifier, bad).accepted);
}

TEST(Verifier, RejectsForeignMachineLabel) {
  const GmrParams params = make_params(tm::halt_after(2, 0));
  const GmrInstance inst = build_gmr(params);
  const auto verifier =
      make_gmr_verifier(3, params.policy, false, params.step_budget);
  LabeledGraph bad = inst.graph;
  bad.set_label(7, cell_label(tm::halt_after(2, 1), params.r, 3, 1,
                              decode_label(bad.label(7))->code));
  EXPECT_FALSE(local::run_oblivious(*verifier, bad).accepted);
}

TEST(Verifier, RejectsMissingFragment) {
  // Build with one policy, verify expecting a larger collection: the pivot's
  // Lemma-2 set comparison must fail.
  const GmrParams small = make_params(tm::halt_after(1, 0), 50);
  const GmrInstance inst = build_gmr(small);
  ASSERT_FALSE(inst.fragments_exhaustive);
  const auto verifier = make_gmr_verifier(3, small_policy(120), false, 4096);
  EXPECT_FALSE(local::run_oblivious(*verifier, inst.graph).accepted);
}

TEST(Verifier, RejectsPlainGarbage) {
  const auto verifier = make_gmr_verifier(3, small_policy(), false, 4096);
  const LabeledGraph junk = LabeledGraph::uniform(
      graph::make_cycle(6), local::Label{kGmrTag, 1, kRoleTableCell, 0, 0, 0});
  EXPECT_FALSE(local::run_oblivious(*verifier, junk).accepted);
}

TEST(Decider, SeparatesOutput0FromOutput1) {
  const GmrParams yes_params = make_params(tm::halt_after(2, 0));
  const GmrParams no_params = make_params(tm::halt_after(2, 1));
  const auto decider =
      make_gmr_decider(3, yes_params.policy, false, yes_params.step_budget);
  const auto property = property_gmr_outputs0(3, yes_params.policy, false,
                                              yes_params.step_budget);
  std::vector<LabeledGraph> instances;
  instances.push_back(build_gmr(yes_params).graph);
  instances.push_back(build_gmr(no_params).graph);
  ASSERT_TRUE(property->contains(instances[0]));
  ASSERT_FALSE(property->contains(instances[1]));
  Rng rng(3);
  const auto report = local::evaluate_decider(
      *decider, *property, instances, local::consecutive_policy(), 1, rng);
  EXPECT_TRUE(report.all_correct())
      << (report.failures.empty() ? "" : report.failures[0].detail);
}

TEST(Generator, ExactForHaltingMachines) {
  const GmrParams params = make_params(tm::halt_after(1, 0), 100);
  const GeneratedBalls gen = neighborhood_generator(params, 2);
  EXPECT_TRUE(gen.exact);
  EXPECT_EQ(gen.centers.size(),
            static_cast<std::size_t>(gen.host.node_count()));
}

TEST(Generator, TotalForDivergingMachines) {
  for (const tm::TuringMachine& m :
       {tm::bouncer(), tm::right_drifter(), tm::crawler()}) {
    const GmrParams params = make_params(m, 100);
    const GeneratedBalls gen = neighborhood_generator(params, 2);
    EXPECT_FALSE(gen.exact) << m.name();
    EXPECT_GT(gen.centers.size(), 0u) << m.name();
    EXPECT_LT(gen.centers.size(),
              static_cast<std::size_t>(gen.host.node_count()))
        << m.name() << ": bottom rows must be excluded";
  }
}

TEST(Separation, EveryComputableCandidateIsFooled) {
  const tm::FragmentPolicy policy = small_policy(150);
  std::vector<std::pair<std::string,
                        std::unique_ptr<local::LocalAlgorithm>>> candidates;
  candidates.emplace_back("always-yes", candidate_always_yes());
  candidates.emplace_back("structure-only",
                          candidate_structure_only(3, policy, false, 4096));
  candidates.emplace_back(
      "simulate-2", candidate_bounded_simulation(3, policy, false, 4096, 2));
  std::vector<tm::TuringMachine> machines;
  machines.push_back(tm::halt_after(1, 0));
  machines.push_back(tm::halt_after(1, 1));
  machines.push_back(tm::halt_after(4, 1));  // outlasts simulate-2
  const auto rows = run_separation_experiment(candidates, machines, 1, 3,
                                              policy, false, 4096);
  ASSERT_EQ(rows.size(), 9u);
  std::map<std::string, int> misclassifications;
  for (const auto& row : rows) {
    misclassifications[row.candidate] += row.misclassified;
  }
  // Lemma 1 in action: every candidate errs somewhere.
  for (const auto& [name, count] : misclassifications) {
    EXPECT_GT(count, 0) << name;
  }
  // And the specific predictions: structure-only accepts the L1 machines;
  // simulate-2 catches halt_after(1,1) but is fooled by halt_after(4,1).
  for (const auto& row : rows) {
    if (row.candidate == "simulate-2" && row.machine == "halt_after(1,1)") {
      EXPECT_FALSE(row.r_accepts);
      EXPECT_FALSE(row.misclassified);
    }
    if (row.candidate == "simulate-2" && row.machine == "halt_after(4,1)") {
      EXPECT_TRUE(row.r_accepts);
      EXPECT_TRUE(row.misclassified);
    }
  }
}

TEST(Randomized, PerfectCompletenessAndWhpSoundness) {
  const tm::FragmentPolicy policy = small_policy(80);
  const auto decider = make_randomized_gmr_decider(3, policy, false, 4096);
  GmrParams yes_params{tm::halt_after(2, 0), 1, 3, policy, false, 4096};
  GmrParams no_params{tm::zigzag_halt(2, 1), 1, 3, policy, false, 4096};
  const LabeledGraph yes = build_gmr(yes_params).graph;
  const LabeledGraph no = build_gmr(no_params).graph;
  const auto p_yes =
      local::estimate_acceptance(*decider, yes, nullptr, 10, {{}, 17});
  EXPECT_EQ(p_yes.accepted, p_yes.trials);  // one-sided: p = 1
  const auto p_no =
      local::estimate_acceptance(*decider, no, nullptr, 10, {{}, 18});
  EXPECT_EQ(p_no.accepted, 0);  // rejection probability ~ 1 at this n
}

TEST(Randomized, AnalyticBoundDecays) {
  EXPECT_GT(corollary1_failure_bound(16), corollary1_failure_bound(256));
  EXPECT_GT(corollary1_failure_bound(256), corollary1_failure_bound(4096));
  EXPECT_LT(corollary1_failure_bound(4096), 0.01);
}

TEST(PromiseHalting, DeciderAndCandidates) {
  const auto property = promise_halting_property(100'000);
  const auto decider = make_promise_halting_decider();
  // Yes: a diverging machine on any cycle; no: halting within the promise.
  const LabeledGraph yes =
      build_promise_halting_instance(tm::bouncer(), 12);
  const tm::TuringMachine m_halts = tm::halt_after(8, 0);
  const LabeledGraph no = build_promise_halting_instance(m_halts, 12);
  EXPECT_TRUE(property->contains(yes));
  EXPECT_FALSE(property->contains(no));
  Rng rng(5);
  const auto report = local::evaluate_decider(
      *decider, *property, {yes, no}, local::consecutive_policy(), 2, rng);
  EXPECT_TRUE(report.all_correct());
  // A bounded oblivious candidate is fooled by a machine outlasting it.
  const auto candidate = promise_halting_candidate(4);
  EXPECT_TRUE(local::run_oblivious(*candidate, no).accepted)
      << "halt_after(8) fools a budget-4 candidate";
  const LabeledGraph no_fast =
      build_promise_halting_instance(tm::halt_after(3, 0), 12);
  EXPECT_FALSE(local::run_oblivious(*candidate, no_fast).accepted);
}

class ZooVerifierSweep : public ::testing::TestWithParam<int> {};

// Verifier/builder agreement across zoo machines and both fragment caps.
TEST_P(ZooVerifierSweep, BuilderOutputVerifies) {
  const auto zoo = tm::small_zoo();
  const tm::ZooEntry& e =
      zoo[static_cast<std::size_t>(GetParam()) % zoo.size()];
  if (!e.halts) {
    GTEST_SKIP() << "G(M, r) is defined for halting machines";
  }
  const std::size_t cap = (GetParam() % 2 == 0) ? 120 : 700;
  const GmrParams params = make_params(e.machine, cap);
  const GmrInstance inst = build_gmr(params);
  const auto verifier =
      make_gmr_verifier(3, params.policy, false, params.step_budget);
  EXPECT_TRUE(local::run_oblivious(*verifier, inst.graph).accepted)
      << e.machine.name() << " cap=" << cap;
}

INSTANTIATE_TEST_SUITE_P(Zoo, ZooVerifierSweep, ::testing::Range(0, 9));

}  // namespace
}  // namespace locald::halting
