// Protocol-conformance battery for the HTTP/1.1 request reader and the
// keep-alive connection loop.
//
// The parser-level tables drive `read_http_request` through the string
// ByteSource (the exact code path the socket layer uses): keep-alive
// negotiation per RFC 7230, pipelined requests carried through the leftover
// buffer, chunked-transfer framing and its malformations, and a seeded
// byte-level fuzz loop (counter-based `Rng::stream`, so every CI run
// replays the same mutations) asserting the reader answers arbitrary
// garbage with a 4xx/501 verdict — never a crash, never a hang. The
// live-socket section pins the connection-loop behaviors that only exist
// above the parser: per-connection request caps, idle-timeout closes, and
// pipelined requests on one real connection.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "server/http.h"
#include "server/server.h"
#include "support/check.h"
#include "support/rng.h"

namespace locald::server {
namespace {

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

// A ByteSource backed by a string, delivering at most `chunk` bytes per
// pull — small chunks exercise the incremental accumulation paths.
ByteSource source_from(std::string data, std::size_t chunk = 7) {
  auto cursor = std::make_shared<std::size_t>(0);
  auto owned = std::make_shared<std::string>(std::move(data));
  return [cursor, owned, chunk](char* buf, std::size_t len) -> long {
    const std::size_t left = owned->size() - *cursor;
    const std::size_t n = std::min({len, left, chunk});
    std::memcpy(buf, owned->data() + *cursor, n);
    *cursor += n;
    return static_cast<long>(n);
  };
}

ParseResult parse(const std::string& raw) {
  return read_http_request(source_from(raw), HttpLimits{});
}

// A blocking client against 127.0.0.1:port with a receive deadline so a
// misbehaving server fails the test instead of hanging it.
int connect_to(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  LOCALD_CHECK(fd >= 0, "client socket()");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  LOCALD_CHECK(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                         sizeof(addr)) == 0,
               "client connect()");
  timeval tv{};
  tv.tv_sec = 10;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  return fd;
}

void send_raw(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    LOCALD_CHECK(n > 0, "client send()");
    sent += static_cast<std::size_t>(n);
  }
}

struct ClientResponse {
  int status = 0;
  std::string head;  // status line + headers
  std::string body;
};

// Reads framed responses off one connection. Responses beyond the one being
// read stay in `buf` (the client-side mirror of the server's pipelining
// buffer), so several responses on one keep-alive connection read cleanly.
struct WireClient {
  int fd;
  std::string buf;

  explicit WireClient(int port) : fd(connect_to(port)) {}
  ~WireClient() { ::close(fd); }

  // Pulls until `buf` satisfies `done()`; false on orderly EOF/timeout.
  template <typename Pred>
  bool fill_until(const Pred& done) {
    char chunk[4096];
    while (!done()) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buf.append(chunk, static_cast<std::size_t>(n));
    }
    return true;
  }

  // One Content-Length-framed response (every non-streamed response the
  // server emits declares its length).
  ClientResponse read_response() {
    LOCALD_CHECK(fill_until([&] { return buf.find("\r\n\r\n") !=
                                         std::string::npos; }),
                 "connection ended before a response head");
    const std::size_t cut = buf.find("\r\n\r\n");
    ClientResponse r;
    r.head = buf.substr(0, cut);
    LOCALD_CHECK(r.head.rfind("HTTP/1.1 ", 0) == 0, "bad status line");
    r.status = std::stoi(r.head.substr(9, 3));
    const std::size_t cl = r.head.find("Content-Length: ");
    LOCALD_CHECK(cl != std::string::npos, "response has no Content-Length");
    const std::size_t length = static_cast<std::size_t>(
        std::stoull(r.head.substr(cl + 16)));
    const std::size_t body_start = cut + 4;
    LOCALD_CHECK(fill_until([&] { return buf.size() >= body_start + length; }),
                 "connection ended mid-body");
    r.body = buf.substr(body_start, length);
    buf.erase(0, body_start + length);
    return r;
  }

  // True when the server closed the connection without sending more bytes.
  bool closed_cleanly() {
    char byte = 0;
    const ssize_t n = ::recv(fd, &byte, 1, 0);
    return n == 0;
  }
};

ServeOptions quick_options() {
  ServeOptions o;
  o.port = 0;  // ephemeral
  return o;
}

// ---------------------------------------------------------------------------
// Keep-alive negotiation (RFC 7230): table over version x Connection header
// ---------------------------------------------------------------------------

TEST(Conformance, KeepAliveNegotiationTable) {
  struct Case {
    const char* version;
    const char* connection;  // nullptr = no Connection header
    bool expect_keep_alive;
  };
  const Case cases[] = {
      // HTTP/1.1 persists by default; only an explicit close ends it.
      {"HTTP/1.1", nullptr, true},
      {"HTTP/1.1", "keep-alive", true},
      {"HTTP/1.1", "close", false},
      {"HTTP/1.1", "Close", false},          // token is case-insensitive
      {"HTTP/1.1", "keep-alive, close", false},  // close wins in a list
      {"HTTP/1.1", "te, close", false},
      // HTTP/1.0 closes by default; only an explicit keep-alive persists.
      {"HTTP/1.0", nullptr, false},
      {"HTTP/1.0", "keep-alive", true},
      {"HTTP/1.0", "Keep-Alive", true},
      {"HTTP/1.0", "close", false},
      {"HTTP/1.0", "close, keep-alive", false},  // close still wins
  };
  for (const Case& c : cases) {
    std::string wire = std::string("GET / ") + c.version + "\r\nHost: t\r\n";
    if (c.connection != nullptr) {
      wire += std::string("Connection: ") + c.connection + "\r\n";
    }
    wire += "\r\n";
    const ParseResult r = parse(wire);
    ASSERT_EQ(r.status, 200) << wire;
    EXPECT_EQ(request_keep_alive(r.request), c.expect_keep_alive)
        << c.version << " with Connection: "
        << (c.connection ? c.connection : "(absent)");
  }
}

// ---------------------------------------------------------------------------
// Pipelining through the leftover buffer
// ---------------------------------------------------------------------------

TEST(Conformance, PipelinedSecondRequestSurvivesTheReadBuffer) {
  // Both requests arrive in ONE source; a large pull chunk guarantees the
  // second request is sitting in the reader's buffer when the first ends.
  const std::string wire =
      "GET /first HTTP/1.1\r\nHost: t\r\n\r\n"
      "POST /second HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
  const ByteSource source = source_from(wire, 4096);
  std::string leftover;
  const ParseResult first = read_http_request(source, HttpLimits{}, &leftover);
  ASSERT_EQ(first.status, 200) << first.error;
  EXPECT_EQ(first.request.target, "/first");
  // The pipelined bytes moved into `leftover` instead of being discarded.
  EXPECT_EQ(leftover.rfind("POST /second", 0), 0u);

  const ParseResult second = read_http_request(source, HttpLimits{}, &leftover);
  ASSERT_EQ(second.status, 200) << second.error;
  EXPECT_EQ(second.request.target, "/second");
  EXPECT_EQ(second.request.body, "body");
  EXPECT_TRUE(leftover.empty());
}

TEST(Conformance, PipelinedBytesSplitAcrossPulls) {
  // Same two requests, delivered one byte per pull: the leftover hand-off
  // must work no matter where the request boundary lands in a read.
  const std::string wire =
      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n";
  const ByteSource source = source_from(wire, 1);
  std::string leftover;
  const ParseResult a = read_http_request(source, HttpLimits{}, &leftover);
  ASSERT_EQ(a.status, 200);
  EXPECT_EQ(a.request.target, "/a");
  const ParseResult b = read_http_request(source, HttpLimits{}, &leftover);
  ASSERT_EQ(b.status, 200);
  EXPECT_EQ(b.request.target, "/b");
  EXPECT_FALSE(request_keep_alive(b.request));

  // Nothing left: the next read is a clean between-requests EOF, which the
  // connection loop treats as the client hanging up, not an error.
  const ParseResult end = read_http_request(source, HttpLimits{}, &leftover);
  EXPECT_TRUE(end.idle_close);
}

// ---------------------------------------------------------------------------
// Chunked-transfer framing: well-formed and malformed
// ---------------------------------------------------------------------------

TEST(Conformance, ChunkedBodyReassembles) {
  const ParseResult r = parse(
      "POST /v1/run HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "4\r\nwxyz\r\n8\r\nabcdefgh\r\n0\r\n\r\n");
  ASSERT_EQ(r.status, 200) << r.error;
  EXPECT_EQ(r.request.body, "wxyzabcdefgh");
}

TEST(Conformance, ChunkExtensionsAndTrailersAreDiscarded) {
  const ParseResult r = parse(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5;ext=\"v\"\r\nhello\r\n0\r\nX-Trailer: ignored\r\n\r\n");
  ASSERT_EQ(r.status, 200) << r.error;
  EXPECT_EQ(r.request.body, "hello");
  // Trailer fields never surface as request headers.
  EXPECT_EQ(r.request.header("x-trailer"), nullptr);
}

TEST(Conformance, MalformedChunkFramingTable) {
  struct Case {
    const char* name;
    std::string framing;  // everything after the blank line
    int expect_status;
  };
  const std::string prefix =
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
  const Case cases[] = {
      {"non-hex chunk size", "zz\r\nhello\r\n0\r\n\r\n", 400},
      {"empty chunk-size line", "\r\nhello\r\n0\r\n\r\n", 400},
      {"chunk size over 8 hex digits", "000000005\r\nhello\r\n0\r\n\r\n", 400},
      {"negative chunk size", "-5\r\nhello\r\n0\r\n\r\n", 400},
      {"data not CRLF-terminated", "5\r\nhelloXX0\r\n\r\n", 400},
      {"EOF mid-chunk-data", "5\r\nhe", 400},
      {"EOF before the last chunk", "5\r\nhello\r\n", 400},
      {"EOF inside the trailer section", "0\r\nX-T: v\r\n", 400},
      {"oversized chunk-size line", std::string(2048, '0') + "5\r\n", 400},
      {"oversized trailer section",
       "0\r\n" + std::string(600, 'a') + ": v\r\n" + std::string(600, 'b') +
           ": v\r\n\r\n",
       400},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(parse(prefix + c.framing).status, c.expect_status) << c.name;
  }
}

TEST(Conformance, ChunkedBodyBeyondTheBoundIs413) {
  HttpLimits limits;
  limits.max_body_bytes = 8;
  const ParseResult r = read_http_request(
      source_from("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
                  "6\r\nabcdef\r\n6\r\nghijkl\r\n0\r\n\r\n"),
      limits);
  EXPECT_EQ(r.status, 413);
}

TEST(Conformance, DoubleLengthDeclarationIsRejectedAsSmuggling) {
  EXPECT_EQ(parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
                  "Content-Length: 5\r\n\r\n0\r\n\r\n")
                .status,
            400);
}

TEST(Conformance, NonChunkedTransferCodingIs501) {
  EXPECT_EQ(parse("POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n").status,
            501);
  EXPECT_EQ(
      parse("POST / HTTP/1.1\r\nTransfer-Encoding: gzip, chunked\r\n\r\n")
          .status,
      501);
}

// ---------------------------------------------------------------------------
// Seeded protocol fuzz: mutated requests never crash or hang the reader
// ---------------------------------------------------------------------------

TEST(Conformance, SeededByteFuzzOnlyEverYieldsAVerdict) {
  const std::vector<std::string> templates = {
      "GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n",
      "GET /v1/metrics HTTP/1.0\r\nConnection: keep-alive\r\n\r\n",
      "POST /v1/run HTTP/1.1\r\nContent-Length: 17\r\n\r\n"
      "{\"scenario\":\"x\"}\n",
      "POST /v1/sweep HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "6\r\n{\"a\":1\r\n1\r\n}\r\n0\r\n\r\n",
      "GET / HTTP/1.1\r\nConnection: close\r\nX-A: 1\r\nX-B: 2\r\n\r\n",
  };
  // Counter-based streams: iteration i fuzzes identically on every run and
  // every machine, so a failure here is replayable from the iteration
  // number alone.
  constexpr std::uint64_t kFuzzSeed = 0x48545450;  // "HTTP"
  constexpr int kIterations = 4000;
  for (int iter = 0; iter < kIterations; ++iter) {
    Rng rng = Rng::stream(kFuzzSeed, static_cast<std::uint64_t>(iter));
    std::string wire = templates[rng.below(templates.size())];
    // Occasionally splice a second template on: pipelines and half-merged
    // messages are exactly where framing parsers historically break.
    if (rng.bernoulli(0.25)) {
      wire += templates[rng.below(templates.size())];
    }
    const int mutations = 1 + static_cast<int>(rng.below(8));
    for (int m = 0; m < mutations; ++m) {
      if (wire.empty()) break;
      const std::size_t pos = rng.below(wire.size());
      switch (rng.below(4)) {
        case 0:  // flip a byte
          wire[pos] = static_cast<char>(rng.below(256));
          break;
        case 1:  // insert a byte
          wire.insert(pos, 1, static_cast<char>(rng.below(256)));
          break;
        case 2:  // delete a byte
          wire.erase(pos, 1);
          break;
        default:  // truncate (torn request)
          wire.resize(pos);
          break;
      }
    }
    std::string leftover;
    const ByteSource source = source_from(wire, 1 + rng.below(64));
    // The reader must terminate (the finite source guarantees EOF, so a
    // hang would be an internal loop bug) and return a verdict from the
    // documented status set — anything else is a contract violation.
    const ParseResult r = read_http_request(source, HttpLimits{}, &leftover);
    EXPECT_TRUE(r.status == 200 || r.status == 400 || r.status == 408 ||
                r.status == 413 || r.status == 431 || r.status == 501)
        << "iteration " << iter << " produced status " << r.status;
  }
}

// The same fuzz against a live server: whatever the bytes, the server
// answers (a response or a close) and the connection always terminates.
TEST(Conformance, LiveSocketFuzzNeverWedgesTheServer) {
  ServeOptions options = quick_options();
  options.idle_timeout_ms = 100;  // mutated-but-valid requests end quickly
  options.read_timeout_ms = 2000;
  Server server{options};
  server.start();

  constexpr std::uint64_t kFuzzSeed = 0x534f434b;  // "SOCK"
  for (int iter = 0; iter < 60; ++iter) {
    Rng rng = Rng::stream(kFuzzSeed, static_cast<std::uint64_t>(iter));
    std::string wire = "GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n";
    const int mutations = 1 + static_cast<int>(rng.below(6));
    for (int m = 0; m < mutations && !wire.empty(); ++m) {
      const std::size_t pos = rng.below(wire.size());
      if (rng.bernoulli(0.5)) {
        wire[pos] = static_cast<char>(rng.below(256));
      } else {
        wire.resize(pos);
      }
    }
    const int fd = connect_to(server.port());
    if (!wire.empty()) send_raw(fd, wire);
    // Half-close: the server sees EOF after the fuzzed bytes, so every
    // outcome — 2xx, 4xx, or silent close — ends promptly. recv draining
    // to EOF (not a timeout) IS the no-hang assertion.
    ::shutdown(fd, SHUT_WR);
    char buf[4096];
    while (true) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      ASSERT_GE(n, 0) << "iteration " << iter << ": recv timed out";
      if (n == 0) break;
    }
    ::close(fd);
  }
  // The fuzz left no connection stuck in a worker.
  EXPECT_EQ(server.metrics().in_flight, 0u);
  server.stop();
}

// ---------------------------------------------------------------------------
// Connection-loop behavior over live sockets
// ---------------------------------------------------------------------------

TEST(Conformance, KeepAliveServesManyRequestsOnOneConnection) {
  Server server{quick_options()};
  server.start();
  WireClient client(server.port());
  for (int i = 0; i < 3; ++i) {
    send_raw(client.fd, "GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    const ClientResponse r = client.read_response();
    EXPECT_EQ(r.status, 200);
    EXPECT_NE(r.head.find("Connection: keep-alive"), std::string::npos);
  }
  // All three rode one connection — the whole point of keep-alive.
  const MetricsSnapshot m = server.metrics();
  EXPECT_EQ(m.connections_total, 1u);
  EXPECT_EQ(m.requests_total, 3u);
  server.stop();
}

TEST(Conformance, PipelinedRequestsOnOneConnectionAllGetAnswered) {
  Server server{quick_options()};
  server.start();
  WireClient client(server.port());
  // Both requests in ONE write: the second arrives in the same read buffer
  // as the first and must be served from the leftover bytes.
  send_raw(client.fd,
           "GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n"
           "GET /v1/healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
  const ClientResponse first = client.read_response();
  EXPECT_EQ(first.status, 200);
  EXPECT_NE(first.head.find("Connection: keep-alive"), std::string::npos);
  const ClientResponse second = client.read_response();
  EXPECT_EQ(second.status, 200);
  EXPECT_NE(second.head.find("Connection: close"), std::string::npos);
  EXPECT_TRUE(client.closed_cleanly());
  EXPECT_EQ(server.metrics().connections_total, 1u);
  server.stop();
}

TEST(Conformance, ConnectionCloseIsHonoredPerRequest) {
  Server server{quick_options()};
  server.start();
  {
    WireClient client(server.port());
    send_raw(client.fd,
             "GET /v1/healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
    const ClientResponse r = client.read_response();
    EXPECT_EQ(r.status, 200);
    EXPECT_NE(r.head.find("Connection: close"), std::string::npos);
    EXPECT_TRUE(client.closed_cleanly());
  }
  {
    // HTTP/1.0 default: close after one response.
    WireClient client(server.port());
    send_raw(client.fd, "GET /v1/healthz HTTP/1.0\r\n\r\n");
    const ClientResponse r = client.read_response();
    EXPECT_EQ(r.status, 200);
    EXPECT_NE(r.head.find("Connection: close"), std::string::npos);
    EXPECT_TRUE(client.closed_cleanly());
  }
  server.stop();
}

TEST(Conformance, RequestCapClosesTheConnection) {
  ServeOptions options = quick_options();
  options.max_requests_per_connection = 2;
  Server server{options};
  server.start();
  WireClient client(server.port());
  const std::string wire = "GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n";

  send_raw(client.fd, wire);
  const ClientResponse first = client.read_response();
  EXPECT_EQ(first.status, 200);
  EXPECT_NE(first.head.find("Connection: keep-alive"), std::string::npos);

  // The cap-hitting response already announces the close...
  send_raw(client.fd, wire);
  const ClientResponse second = client.read_response();
  EXPECT_EQ(second.status, 200);
  EXPECT_NE(second.head.find("Connection: close"), std::string::npos);
  // ...and the server then hangs up instead of reading a third request.
  EXPECT_TRUE(client.closed_cleanly());
  server.stop();
}

TEST(Conformance, IdleConnectionIsClosedSilentlyAfterTheTimeout) {
  ServeOptions options = quick_options();
  options.idle_timeout_ms = 150;
  Server server{options};
  server.start();
  WireClient client(server.port());
  send_raw(client.fd, "GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(client.read_response().status, 200);

  // Send nothing more. The server must close the idle connection — and
  // close it SILENTLY: a 408 written into a connection nobody is speaking
  // on would corrupt the next request of a client that reuses sockets.
  EXPECT_TRUE(client.closed_cleanly());

  // The idle close is bookkept as the end of the conversation, not an
  // error.
  const MetricsSnapshot m = server.metrics();
  EXPECT_EQ(m.errors_total, 0u);
  EXPECT_EQ(m.in_flight, 0u);
  server.stop();
}

TEST(Conformance, FramingErrorAnswersThenCloses) {
  Server server{quick_options()};
  server.start();
  WireClient client(server.port());
  // A malformed request line: the server must answer 400 and close — after
  // a framing error the byte stream is unreliable, keep-alive would risk
  // smuggling.
  send_raw(client.fd, "BAD\r\n\r\nGET /v1/healthz HTTP/1.1\r\n\r\n");
  const ClientResponse r = client.read_response();
  EXPECT_EQ(r.status, 400);
  EXPECT_NE(r.head.find("Connection: close"), std::string::npos);
  EXPECT_TRUE(client.closed_cleanly());
  server.stop();
}

}  // namespace
}  // namespace locald::server
