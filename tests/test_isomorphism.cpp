// Tests for canonical forms: soundness (non-isomorphic graphs separate),
// completeness (random relabelings collide), label handling, and the
// families the paper's audits depend on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/isomorphism.h"
#include "support/rng.h"

namespace locald::graph {
namespace {

// Applies a random node permutation, returning the permuted graph and the
// payloads moved along with their nodes.
std::pair<CsrGraph, std::vector<std::string>> permuted(
    const CsrGraph& g, const std::vector<std::string>& payloads, Rng& rng) {
  const NodeId n = g.node_count();
  std::vector<NodeId> perm(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) perm[v] = v;
  rng.shuffle(perm);
  std::vector<std::pair<NodeId, NodeId>> permuted_edges;
  for (const auto& [u, v] : g.edges()) {
    permuted_edges.emplace_back(perm[u], perm[v]);
  }
  CsrGraph h = CsrGraph::from_edges(n, permuted_edges);
  std::vector<std::string> moved(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    moved[static_cast<std::size_t>(perm[v])] =
        payloads[static_cast<std::size_t>(v)];
  }
  return {std::move(h), std::move(moved)};
}

std::vector<std::string> blank_payloads(const CsrGraph& g) {
  return std::vector<std::string>(static_cast<std::size_t>(g.node_count()));
}

TEST(Canonical, EmptyAndSingleton) {
  const CsrGraph empty;
  EXPECT_EQ(canonical_form(empty).encoding, "n=0;");
  const CsrGraph one = CsrGraph::from_edges(1, {});
  const auto c = canonical_form(one);
  EXPECT_EQ(c.order.size(), 1u);
}

TEST(Canonical, PayloadCountValidated) {
  const CsrGraph g = CsrGraph::from_edges(2, {});
  EXPECT_THROW(canonical_form(g, std::vector<std::string>{"a"}), Error);
}

TEST(Canonical, InvariantUnderRandomRelabeling) {
  Rng rng(101);
  for (int trial = 0; trial < 25; ++trial) {
    const CsrGraph g = make_random_connected(
        12, 8, 1000 + static_cast<std::uint64_t>(trial));
    std::vector<std::string> payloads(12);
    for (auto& p : payloads) {
      p = std::string(1, static_cast<char>('a' + rng.below(3)));
    }
    const auto base = canonical_form(g, payloads);
    auto [h, moved] = permuted(g, payloads, rng);
    const auto other = canonical_form(h, moved);
    EXPECT_EQ(base.encoding, other.encoding) << "trial " << trial;
    EXPECT_EQ(base.fingerprint, other.fingerprint);
  }
}

TEST(Canonical, SeparatesNonIsomorphicSameDegreeSequence) {
  // C6 vs 2x C3 merged: both 2-regular on 6 nodes.
  const CsrGraph c6 = make_cycle(6);
  const CsrGraph two_triangles =
      CsrGraph::from_edges(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  EXPECT_FALSE(isomorphic(c6, two_triangles));
}

TEST(Canonical, SeparatesByLabels) {
  const CsrGraph g = make_path(3);
  const std::vector<std::string> a{"x", "y", "x"};
  const std::vector<std::string> b{"x", "x", "y"};
  EXPECT_FALSE(isomorphic(g, a, g, b));
  // But reversing the path maps a to itself.
  const std::vector<std::string> reversed{"x", "y", "x"};
  EXPECT_TRUE(isomorphic(g, a, g, reversed));
}

TEST(Canonical, LabelBytesNotConfusedByConcatenation) {
  // Payloads "ab"+"" vs "a"+"b" must not collide: length prefixes matter.
  const CsrGraph g = CsrGraph::from_edges(2, {{0, 1}});
  EXPECT_FALSE(isomorphic(g, {"ab", ""}, g, {"a", "b"}));
}

TEST(Canonical, HighlySymmetricFamiliesAgree) {
  // Complete graphs and hypercubes have huge automorphism groups; canonical
  // form must still terminate (within the leaf budget) and be stable.
  const CsrGraph k5a = make_complete(5);
  const CsrGraph k5b = make_complete(5);
  EXPECT_TRUE(isomorphic(k5a, k5b));
  Rng rng(7);
  const CsrGraph q3 = make_hypercube(3);
  auto [q3p, moved] = permuted(q3, blank_payloads(q3), rng);
  EXPECT_TRUE(isomorphic(q3, q3p));
}

TEST(Canonical, LeafBudgetEnforced) {
  // A complete graph no longer exhausts budgets (twin pruning collapses it
  // to one leaf); a torus genuinely branches — its orbits are discovered
  // from leaf automorphisms, so several leaves must be visited.
  const CsrGraph torus = make_torus(4, 4);
  EXPECT_THROW(canonical_form(torus, blank_payloads(torus), 2), Error);
  // The same search completes (and stays exact) under a realistic budget.
  CanonicalStats stats;
  const auto c = canonical_form(torus, blank_payloads(torus), 64, &stats);
  EXPECT_FALSE(c.encoding.empty());
  EXPECT_LE(stats.leaves, 64u);
}

TEST(Canonical, CycleLengthsSeparate) {
  for (NodeId n = 3; n <= 9; ++n) {
    for (NodeId m = n + 1; m <= 10; ++m) {
      EXPECT_FALSE(isomorphic(make_cycle(n), make_cycle(m)));
    }
  }
}

TEST(Canonical, OrderIsValidPermutation) {
  Rng rng(9);
  const CsrGraph g = make_random_connected(10, 5, 9);
  const auto c = canonical_form(g, blank_payloads(g));
  std::vector<bool> seen(10, false);
  for (NodeId v : c.order) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 10);
    EXPECT_FALSE(seen[static_cast<std::size_t>(v)]);
    seen[static_cast<std::size_t>(v)] = true;
  }
}

TEST(Canonical, TreeVsLayeredTreeDiffer) {
  EXPECT_FALSE(
      isomorphic(make_complete_binary_tree(3), make_layered_tree(3)));
}

// The audit machinery depends on this: a grid and a torus of the same size
// are locally similar but globally different; canonical forms must separate
// them.
TEST(Canonical, GridVsTorus) {
  EXPECT_FALSE(isomorphic(make_grid(4, 4), make_torus(4, 4)));
}

struct IsoSweepParam {
  int n;
  int extra;
  std::uint64_t seed;
};

class RelabelSweep : public ::testing::TestWithParam<IsoSweepParam> {};

TEST_P(RelabelSweep, CanonicalFormIsCompleteInvariant) {
  const auto p = GetParam();
  Rng rng(p.seed);
  const CsrGraph g = make_random_connected(
      static_cast<NodeId>(p.n), static_cast<NodeId>(p.extra), p.seed);
  std::vector<std::string> payloads(static_cast<std::size_t>(p.n));
  for (auto& s : payloads) {
    s = std::to_string(rng.below(4));
  }
  const auto base = canonical_form(g, payloads);
  for (int rep = 0; rep < 5; ++rep) {
    auto [h, moved] = permuted(g, payloads, rng);
    EXPECT_EQ(canonical_form(h, moved).encoding, base.encoding);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, RelabelSweep,
    ::testing::Values(IsoSweepParam{6, 3, 1}, IsoSweepParam{9, 6, 2},
                      IsoSweepParam{12, 4, 3}, IsoSweepParam{15, 10, 4},
                      IsoSweepParam{20, 8, 5}, IsoSweepParam{24, 16, 6}));

}  // namespace
}  // namespace locald::graph
