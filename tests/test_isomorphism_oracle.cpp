// Adversarial oracle suite for the two-tier canonicalization engine.
//
// The brute-force oracle decides label-preserving isomorphism by
// backtracking over all vertex bijections — exponential and obviously
// correct. The suite asserts `canonical_form` equality ⇔ oracle
// isomorphism on exhaustive enumerations of small connected graphs (with
// and without label payloads) and on seeded random graphs with random
// payloads; pins the exact isomorphism-class counts of ALL connected
// graphs up to n = 7 (OEIS A001349: 2, 6, 21, 112, 853 — a single merged
// or split class changes the count); checks the bulk census agrees
// byte-for-byte with per-ball `canonical_form` on every registered family;
// and proves the orbit pruning works by completing adversarially symmetric
// inputs (hypercubes, K_{m,m}, stars — k! search leaves without pruning)
// under tight `max_leaves` budgets, including on permuted copies.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "exec/thread_pool.h"
#include "gen/family.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/induced.h"
#include "graph/isomorphism.h"
#include "support/rng.h"

namespace locald::graph {
namespace {

// ---- the brute-force oracle ------------------------------------------------

bool oracle_extend(const CsrGraph& a, const std::vector<std::string>& pa,
                   const CsrGraph& b, const std::vector<std::string>& pb,
                   std::vector<NodeId>& mapping, std::vector<bool>& used,
                   NodeId v) {
  const NodeId n = a.node_count();
  if (v == n) {
    return true;
  }
  for (NodeId w = 0; w < n; ++w) {
    if (used[static_cast<std::size_t>(w)] ||
        pa[static_cast<std::size_t>(v)] != pb[static_cast<std::size_t>(w)] ||
        a.degree(v) != b.degree(w)) {
      continue;
    }
    bool consistent = true;
    for (NodeId u = 0; u < v && consistent; ++u) {
      consistent = a.has_edge(u, v) ==
                   b.has_edge(mapping[static_cast<std::size_t>(u)], w);
    }
    if (!consistent) {
      continue;
    }
    mapping[static_cast<std::size_t>(v)] = w;
    used[static_cast<std::size_t>(w)] = true;
    if (oracle_extend(a, pa, b, pb, mapping, used, v + 1)) {
      return true;
    }
    used[static_cast<std::size_t>(w)] = false;
  }
  return false;
}

// Tries every label-preserving bijection (with degree and prefix-edge
// pruning). Correct by construction; exponential by design.
bool oracle_isomorphic(const CsrGraph& a, const std::vector<std::string>& pa,
                       const CsrGraph& b, const std::vector<std::string>& pb) {
  if (a.node_count() != b.node_count() || a.edge_count() != b.edge_count()) {
    return false;
  }
  std::vector<NodeId> mapping(static_cast<std::size_t>(a.node_count()));
  std::vector<bool> used(static_cast<std::size_t>(a.node_count()));
  return oracle_extend(a, pa, b, pb, mapping, used, 0);
}

std::vector<std::string> blank(const CsrGraph& g) {
  return std::vector<std::string>(static_cast<std::size_t>(g.node_count()));
}

// Enumerate every graph on n nodes via its edge-set bitmask.
CsrGraph graph_from_mask(int n, long long mask) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  int bit = 0;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v, ++bit) {
      if ((mask >> bit) & 1) {
        edges.emplace_back(u, v);
      }
    }
  }
  return CsrGraph::from_edges(static_cast<NodeId>(n), edges);
}

std::pair<CsrGraph, std::vector<std::string>> permuted(
    const CsrGraph& g, const std::vector<std::string>& payloads, Rng& rng) {
  const NodeId n = g.node_count();
  std::vector<NodeId> perm(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) perm[static_cast<std::size_t>(v)] = v;
  rng.shuffle(perm);
  std::vector<std::pair<NodeId, NodeId>> permuted_edges;
  for (const auto& [u, v] : g.edges()) {
    permuted_edges.emplace_back(perm[static_cast<std::size_t>(u)],
                                perm[static_cast<std::size_t>(v)]);
  }
  CsrGraph h = CsrGraph::from_edges(n, permuted_edges);
  std::vector<std::string> moved(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    moved[static_cast<std::size_t>(perm[static_cast<std::size_t>(v)])] =
        payloads[static_cast<std::size_t>(v)];
  }
  return {std::move(h), std::move(moved)};
}

// ---- exhaustive: canonical equality ⇔ oracle isomorphism -------------------

// All connected graphs on n ≤ 5 nodes, blank payloads: within an encoding
// class every member is oracle-isomorphic to the representative, and
// across classes representatives are oracle-non-isomorphic. Together with
// transitivity this is full equivalence of the two relations.
TEST(Oracle, ExhaustiveConnectedUpTo5BothDirections) {
  for (int n = 2; n <= 5; ++n) {
    const int pairs = n * (n - 1) / 2;
    std::map<std::string, std::vector<long long>> classes;
    for (long long mask = 0; mask < (1LL << pairs); ++mask) {
      const CsrGraph g = graph_from_mask(n, mask);
      if (!is_connected(g)) {
        continue;
      }
      classes[canonical_form(g).encoding].push_back(mask);
    }
    std::vector<long long> reps;
    for (const auto& [enc, members] : classes) {
      const CsrGraph rep = graph_from_mask(n, members.front());
      for (const long long mask : members) {
        const CsrGraph g = graph_from_mask(n, mask);
        ASSERT_TRUE(oracle_isomorphic(rep, blank(rep), g, blank(g)))
            << "n=" << n << " merged non-isomorphic graphs";
      }
      reps.push_back(members.front());
    }
    for (std::size_t i = 0; i < reps.size(); ++i) {
      for (std::size_t j = i + 1; j < reps.size(); ++j) {
        const CsrGraph a = graph_from_mask(n, reps[i]);
        const CsrGraph b = graph_from_mask(n, reps[j]);
        ASSERT_FALSE(oracle_isomorphic(a, blank(a), b, blank(b)))
            << "n=" << n << " split one isomorphism class";
      }
    }
  }
}

// All connected graphs on n ≤ 4 nodes under EVERY payload assignment over
// a two-letter alphabet — the labelled half of the equivalence.
TEST(Oracle, ExhaustiveLabelledUpTo4BothDirections) {
  for (int n = 2; n <= 4; ++n) {
    const int pairs = n * (n - 1) / 2;
    struct Item {
      long long mask;
      std::vector<std::string> payloads;
    };
    std::map<std::string, std::vector<Item>> classes;
    for (long long mask = 0; mask < (1LL << pairs); ++mask) {
      const CsrGraph g = graph_from_mask(n, mask);
      if (!is_connected(g)) {
        continue;
      }
      for (int labels = 0; labels < (1 << n); ++labels) {
        std::vector<std::string> payloads(static_cast<std::size_t>(n));
        for (int v = 0; v < n; ++v) {
          // assign(count, char) rather than = "x": gcc-12's -Wrestrict
          // false-positives on the literal-assignment memcpy (PR105329).
          payloads[static_cast<std::size_t>(v)].assign(
              1, ((labels >> v) & 1) ? 'x' : 'y');
        }
        const std::string enc = canonical_form(g, payloads).encoding;
        classes[enc].push_back({mask, std::move(payloads)});
      }
    }
    std::vector<const Item*> reps;
    for (const auto& [enc, members] : classes) {
      const Item& rep = members.front();
      const CsrGraph rep_g = graph_from_mask(n, rep.mask);
      for (const Item& item : members) {
        const CsrGraph g = graph_from_mask(n, item.mask);
        ASSERT_TRUE(
            oracle_isomorphic(rep_g, rep.payloads, g, item.payloads))
            << "n=" << n << " merged non-isomorphic labelled graphs";
      }
      reps.push_back(&rep);
    }
    for (std::size_t i = 0; i < reps.size(); ++i) {
      for (std::size_t j = i + 1; j < reps.size(); ++j) {
        const CsrGraph a = graph_from_mask(n, reps[i]->mask);
        const CsrGraph b = graph_from_mask(n, reps[j]->mask);
        ASSERT_FALSE(
            oracle_isomorphic(a, reps[i]->payloads, b, reps[j]->payloads))
            << "n=" << n << " split one labelled class";
      }
    }
  }
}

// The complete census of connected graphs up to n = 7: the number of
// distinct encodings must equal the number of isomorphism classes of
// connected graphs (OEIS A001349). Any unsound merge or incomplete split
// anywhere in the 2^21-graph enumeration changes the count.
TEST(Oracle, ClassCountsMatchA001349UpTo7) {
  const std::map<int, std::size_t> expected{
      {3, 2}, {4, 6}, {5, 21}, {6, 112}, {7, 853}};
  for (const auto& [n, classes_expected] : expected) {
    const int pairs = n * (n - 1) / 2;
    std::unordered_set<std::string> classes;
    for (long long mask = 0; mask < (1LL << pairs); ++mask) {
      const CsrGraph g = graph_from_mask(n, mask);
      if (!is_connected(g)) {
        continue;
      }
      classes.insert(canonical_form(g).encoding);
    }
    EXPECT_EQ(classes.size(), classes_expected) << "n=" << n;
  }
}

// Seeded random graphs with random payloads: canonical equality must match
// the oracle on permuted copies (isomorphic by construction), on
// independent draws, and on single-edge perturbations.
TEST(Oracle, RandomGraphsWithRandomPayloadsMatchOracle) {
  Rng rng(4242);
  for (int trial = 0; trial < 60; ++trial) {
    const NodeId n = static_cast<NodeId>(5 + rng.below(3));  // oracle-sized
    const CsrGraph a = make_random_connected(
        n, static_cast<NodeId>(rng.below(5)),
        42420 + static_cast<std::uint64_t>(trial));
    std::vector<std::string> pa(static_cast<std::size_t>(n));
    for (auto& p : pa) {
      p = std::string(1, static_cast<char>('a' + rng.below(3)));
    }
    // Permuted copy: oracle says isomorphic; encodings must collide.
    auto [b, pb] = permuted(a, pa, rng);
    ASSERT_TRUE(oracle_isomorphic(a, pa, b, pb));
    EXPECT_EQ(canonical_form(a, pa).encoding, canonical_form(b, pb).encoding);
    // Independent draw: equality iff the oracle agrees.
    const CsrGraph c = make_random_connected(
        n, static_cast<NodeId>(rng.below(5)),
        42920 + static_cast<std::uint64_t>(trial));
    std::vector<std::string> pc(static_cast<std::size_t>(n));
    for (auto& p : pc) {
      p = std::string(1, static_cast<char>('a' + rng.below(3)));
    }
    EXPECT_EQ(canonical_form(a, pa).encoding == canonical_form(c, pc).encoding,
              oracle_isomorphic(a, pa, c, pc))
        << "trial " << trial;
  }
}

// Same-degree-sequence adversaries: random d-regular pairs are the classic
// trap for incomplete invariants (degree profiles cannot separate them).
TEST(Oracle, RandomRegularPairsMatchOracle) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    const CsrGraph a = make_random_regular(8, 3, seed);
    const CsrGraph b = make_random_regular(8, 3, seed + 100);
    EXPECT_EQ(canonical_form(a).encoding == canonical_form(b).encoding,
              oracle_isomorphic(a, blank(a), b, blank(b)))
        << "seed " << seed;
  }
}

// ---- metamorphic properties ------------------------------------------------

TEST(Metamorphic, NodePermutationsNeverChangeTheEncoding) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId n = static_cast<NodeId>(8 + rng.below(10));
    const CsrGraph g = make_random_connected(
        n, static_cast<NodeId>(rng.below(8)),
        7700 + static_cast<std::uint64_t>(trial));
    std::vector<std::string> payloads(static_cast<std::size_t>(n));
    for (auto& p : payloads) {
      p = std::to_string(rng.below(4));
    }
    const auto base = canonical_form(g, payloads);
    for (int rep = 0; rep < 3; ++rep) {
      auto [h, moved] = permuted(g, payloads, rng);
      EXPECT_EQ(canonical_form(h, moved).encoding, base.encoding);
    }
  }
}

// Re-encoding the label alphabet through any injective map preserves the
// equality relation between encodings (the bytes change, the classes
// cannot: payloads are compared only for equality).
TEST(Metamorphic, InjectiveLabelReencodingsPreserveTheClasses) {
  Rng rng(88);
  const auto reencode = [](const std::vector<std::string>& payloads) {
    std::vector<std::string> out;
    out.reserve(payloads.size());
    for (const std::string& p : payloads) {
      out.push_back("tag<" + p + ">");  // injective on any input set
    }
    return out;
  };
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId n = static_cast<NodeId>(6 + rng.below(6));
    const CsrGraph g = make_random_connected(
        n, static_cast<NodeId>(rng.below(6)),
        8800 + static_cast<std::uint64_t>(trial));
    std::vector<std::string> pa(static_cast<std::size_t>(n));
    for (auto& p : pa) {
      p = std::string(1, static_cast<char>('a' + rng.below(2)));
    }
    auto [h, pb] = permuted(g, pa, rng);
    std::vector<std::string> pb_mutated = pb;
    pb_mutated[static_cast<std::size_t>(rng.below(
        static_cast<std::uint64_t>(n)))] += "!";
    // Equal stays equal, unequal stays unequal, after re-encoding both.
    EXPECT_EQ(canonical_form(g, reencode(pa)).encoding,
              canonical_form(h, reencode(pb)).encoding);
    EXPECT_EQ(canonical_form(g, pa).encoding ==
                  canonical_form(h, pb_mutated).encoding,
              canonical_form(g, reencode(pa)).encoding ==
                  canonical_form(h, reencode(pb_mutated)).encoding);
  }
}

TEST(Metamorphic, SingleEdgePerturbationsAlwaysChangeTheEncoding) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId n = static_cast<NodeId>(6 + rng.below(6));
    const CsrGraph g = make_random_connected(
        n, static_cast<NodeId>(1 + rng.below(6)),
        9900 + static_cast<std::uint64_t>(trial));
    const auto base = canonical_form(g);
    // Remove one random edge (different edge count ⇒ provably different
    // class; the encoding must notice).
    const auto edges = g.edges();
    const auto& [ru, rv] =
        edges[static_cast<std::size_t>(rng.below(edges.size()))];
    std::vector<std::pair<NodeId, NodeId>> kept;
    for (const auto& [u, v] : edges) {
      if (u != ru || v != rv) {
        kept.emplace_back(u, v);
      }
    }
    const CsrGraph removed = CsrGraph::from_edges(n, kept);
    EXPECT_NE(canonical_form(removed).encoding, base.encoding);
    // Add one random absent edge.
    for (int attempts = 0; attempts < 64; ++attempts) {
      const NodeId u =
          static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
      const NodeId v =
          static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
      if (u == v || g.has_edge(u, v)) {
        continue;
      }
      std::vector<std::pair<NodeId, NodeId>> extended = edges;
      extended.emplace_back(u, v);
      const CsrGraph added = CsrGraph::from_edges(n, extended);
      EXPECT_NE(canonical_form(added).encoding, base.encoding);
      break;
    }
  }
}

TEST(Metamorphic, SingleLabelPerturbationsAlwaysChangeTheEncoding) {
  Rng rng(111);
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId n = static_cast<NodeId>(6 + rng.below(6));
    const CsrGraph g = make_random_connected(
        n, static_cast<NodeId>(rng.below(6)),
        11100 + static_cast<std::uint64_t>(trial));
    std::vector<std::string> payloads(static_cast<std::size_t>(n), "same");
    const auto base = canonical_form(g, payloads);
    std::vector<std::string> mutated = payloads;
    mutated[static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(n)))] = "other";
    // A payload multiset change is a class change; the encoding must see it.
    EXPECT_NE(canonical_form(g, mutated).encoding, base.encoding);
  }
}

// Certificates are sound: encoding-equal graphs always share their tier-1
// certificate (the converse direction is exactly what tier 2 exists for).
TEST(Metamorphic, CertificateIsImpliedByCanonicalEquality) {
  Rng rng(123);
  for (int trial = 0; trial < 15; ++trial) {
    const NodeId n = static_cast<NodeId>(6 + rng.below(8));
    const CsrGraph g = make_random_connected(
        n, static_cast<NodeId>(rng.below(6)),
        12300 + static_cast<std::uint64_t>(trial));
    auto [h, moved] = permuted(g, blank(g), rng);
    ASSERT_EQ(canonical_form(g).encoding, canonical_form(h).encoding);
    EXPECT_EQ(wl_certificate(g, blank(g)), wl_certificate(h, moved));
  }
  // Certificate inequality separates graphs refinement can tell apart —
  // P6 vs C3 + P3 share the degree profile {1,1,2,2,2,2} but refine apart.
  // (Regular same-degree pairs like C6 vs 2xC3 are exactly the 1-WL blind
  // spot; those share a certificate and are split by tier 2 only.)
  const CsrGraph p6 = make_path(6);
  const CsrGraph triangle_plus_path =
      CsrGraph::from_edges(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}});
  EXPECT_NE(wl_certificate(p6, blank(p6)),
            wl_certificate(triangle_plus_path, blank(triangle_plus_path)));
  const CsrGraph c6 = make_cycle(6);
  const CsrGraph two_triangles =
      CsrGraph::from_edges(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  // The blind spot, pinned: equal certificates, distinct canonical forms.
  EXPECT_EQ(wl_certificate(c6, blank(c6)),
            wl_certificate(two_triangles, blank(two_triangles)));
  EXPECT_NE(canonical_form(c6).encoding,
            canonical_form(two_triangles).encoding);
}

// ---- adversarially symmetric inputs under tight budgets --------------------

// A naive individualization–refinement search visits k! discrete orderings
// on a star with k interchangeable leaves and worse on hypercubes and
// K_{m,m}. The budgets below are orders of magnitude under those
// factorials — completing within them (also on permuted copies, which
// must not depend on a friendly input numbering) is the proof the orbit
// pruning works.
TEST(OrbitPruning, HypercubesCompleteUnderTightBudgets) {
  Rng rng(7);
  for (int dims = 3; dims <= 6; ++dims) {
    const CsrGraph q = make_hypercube(dims);
    CanonicalStats stats;
    const auto base = canonical_form(q, blank(q), /*max_leaves=*/64, &stats);
    // |Aut(Q_d)| = 2^d d! (46080 at d = 6); the orbit-pruned search stays
    // within a handful of leaves.
    EXPECT_LE(stats.leaves, 16u) << "Q" << dims;
    auto [p, moved] = permuted(q, blank(q), rng);
    EXPECT_EQ(canonical_form(p, moved, /*max_leaves=*/64).encoding,
              base.encoding)
        << "Q" << dims;
  }
}

TEST(OrbitPruning, CompleteBipartiteCompletesUnderTightBudgets) {
  Rng rng(8);
  for (NodeId m = 2; m <= 8; ++m) {
    const CsrGraph k = make_complete_bipartite(m, m);
    CanonicalStats stats;
    const auto base = canonical_form(k, blank(k), /*max_leaves=*/16, &stats);
    EXPECT_LE(stats.leaves, 8u) << "K_{" << m << "," << m << "}";
    auto [p, moved] = permuted(k, blank(k), rng);
    EXPECT_EQ(canonical_form(p, moved, /*max_leaves=*/16).encoding,
              base.encoding);
  }
}

TEST(OrbitPruning, StarBallsCompleteUnderTightBudgets) {
  // The exact shape that forced PR 4's degree-profile fallback: k
  // interchangeable degree-1 leaves around one centre (the radius-1 ball
  // at a hypercube or complete-bipartite node). k! at k = 64 is 1e89; the
  // twin-pruned search visits ONE leaf.
  Rng rng(9);
  for (const NodeId k : {7, 16, 64, 200}) {
    const CsrGraph star = make_star(k);
    CanonicalStats stats;
    const auto base =
        canonical_form(star, blank(star), /*max_leaves=*/4, &stats);
    EXPECT_EQ(stats.leaves, 1u) << "star " << k;
    auto [p, moved] = permuted(star, blank(star), rng);
    EXPECT_EQ(canonical_form(p, moved, /*max_leaves=*/4).encoding,
              base.encoding);
  }
  // Centre-marked star balls (the census shape) behave identically.
  const CsrGraph star = make_star(32);
  std::vector<std::string> payloads(33, "N");
  payloads[0] = "C";
  CanonicalStats stats;
  canonical_form(star, payloads, /*max_leaves=*/4, &stats);
  EXPECT_EQ(stats.leaves, 1u);
}

// ---- the bulk census vs per-ball canonical_form ----------------------------

// On every registered family: census encodings must agree byte-for-byte
// with extracting each ball and canonicalizing it alone (the census's
// dedup and parallel fan-out must be pure plumbing), at several radii and
// thread counts.
TEST(Census, AgreesWithPerBallCanonicalFormOnEveryFamily) {
  exec::ThreadPool pool(4);
  for (const gen::Family& family : gen::family_registry()) {
    const gen::FamilyInstanceSpec spec =
        gen::resolve_family_text(family.name, 24);
    const CsrGraph g = spec.build(11);
    const std::vector<std::string> payloads(
        static_cast<std::size_t>(g.node_count()));
    for (const int radius : {1, 2}) {
      const BallCensusResult serial =
          canonical_census(g, payloads, radius, nullptr);
      const BallCensusResult pooled =
          canonical_census(g, payloads, radius, &pool);
      ASSERT_EQ(serial.class_of, pooled.class_of)
          << spec.canonical() << " r=" << radius;
      ASSERT_EQ(serial.class_encoding, pooled.class_encoding)
          << spec.canonical() << " r=" << radius;
      EXPECT_EQ(serial.distinct, pooled.distinct);
      std::unordered_set<std::string> distinct;
      for (NodeId v = 0; v < g.node_count(); ++v) {
        const std::vector<NodeId> members = nodes_within(g, v, radius);
        InducedSubgraph sub = induced_subgraph(g, members);
        std::vector<std::string> ball_payloads;
        for (std::size_t i = 0; i < sub.to_parent.size(); ++i) {
          ball_payloads.push_back(
              static_cast<NodeId>(i) == sub.from_parent.at(v) ? "C" : "N");
        }
        const std::string direct =
            canonical_form(sub.graph, ball_payloads).encoding;
        ASSERT_EQ(serial.encoding_of(v), direct)
            << spec.canonical() << " node " << v << " r=" << radius;
        distinct.insert(direct);
      }
      EXPECT_EQ(static_cast<std::size_t>(serial.distinct), distinct.size())
          << spec.canonical() << " r=" << radius;
      // The class partition the census hands consumers is consistent with
      // its encodings: members share their representative's encoding.
      ASSERT_EQ(serial.class_of.size(),
                static_cast<std::size_t>(g.node_count()));
      ASSERT_EQ(serial.class_representative.size(),
                static_cast<std::size_t>(serial.distinct));
      for (NodeId v = 0; v < g.node_count(); ++v) {
        const std::size_t c = serial.class_of[static_cast<std::size_t>(v)];
        ASSERT_LT(c, serial.class_representative.size());
        EXPECT_EQ(serial.encoding_of(v),
                  serial.encoding_of(serial.class_representative[c]));
      }
    }
  }
}

// Tier-1 certificates are isomorphism-invariant, so equal canonical forms
// imply equal certificates and the certificate partition can only be
// coarser than (or equal to) the class partition.
TEST(Census, CertificateBucketsAreCoarserThanClasses) {
  for (const char* selector : {"hypercube:dims=4", "gnp:n=32,permille=200"}) {
    const gen::FamilyInstanceSpec spec = gen::resolve_family_text(selector);
    const CsrGraph g = spec.build(5);
    std::unordered_map<std::string, std::string> cert_of_encoding;
    std::unordered_set<std::string> certificates;
    std::unordered_set<std::string> encodings;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const std::vector<NodeId> members = nodes_within(g, v, 1);
      InducedSubgraph sub = induced_subgraph(g, members);
      std::vector<std::string> payloads;
      for (std::size_t i = 0; i < sub.to_parent.size(); ++i) {
        payloads.push_back(
            static_cast<NodeId>(i) == sub.from_parent.at(v) ? "C" : "N");
      }
      const std::string enc = canonical_form(sub.graph, payloads).encoding;
      const std::string cert = wl_certificate(sub.graph, payloads);
      const auto [it, inserted] = cert_of_encoding.emplace(enc, cert);
      EXPECT_EQ(it->second, cert) << selector;  // same class => same bucket
      certificates.insert(cert);
      encodings.insert(enc);
    }
    EXPECT_LE(certificates.size(), encodings.size()) << selector;
  }
}

// The census's exactness on the two families PR 4's fallback kept inexact,
// verified against the oracle: every pair of balls in one census class is
// oracle-isomorphic, every cross-class representative pair is not.
TEST(Census, HypercubeAndCompleteBipartiteClassesAreOracleExact) {
  for (const char* selector : {"hypercube:dims=4", "complete-bipartite"}) {
    const gen::FamilyInstanceSpec spec = gen::resolve_family_text(selector);
    const CsrGraph g = spec.build(3);
    const std::vector<std::string> payloads(
        static_cast<std::size_t>(g.node_count()));
    const BallCensusResult census = canonical_census(g, payloads, 1, nullptr);
    struct BallData {
      CsrGraph g;
      std::vector<std::string> payloads;
    };
    std::map<std::string, std::vector<BallData>> classes;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const std::vector<NodeId> members = nodes_within(g, v, 1);
      InducedSubgraph sub = induced_subgraph(g, members);
      std::vector<std::string> ball_payloads;
      for (std::size_t i = 0; i < sub.to_parent.size(); ++i) {
        ball_payloads.push_back(
            static_cast<NodeId>(i) == sub.from_parent.at(v) ? "C" : "N");
      }
      classes[census.encoding_of(v)].push_back(
          {std::move(sub.graph), std::move(ball_payloads)});
    }
    ASSERT_EQ(static_cast<std::int64_t>(classes.size()), census.distinct);
    std::vector<const BallData*> reps;
    for (const auto& [enc, members] : classes) {
      for (const BallData& ball : members) {
        ASSERT_TRUE(oracle_isomorphic(members.front().g,
                                      members.front().payloads, ball.g,
                                      ball.payloads))
            << selector;
      }
      reps.push_back(&members.front());
    }
    for (std::size_t i = 0; i < reps.size(); ++i) {
      for (std::size_t j = i + 1; j < reps.size(); ++j) {
        ASSERT_FALSE(oracle_isomorphic(reps[i]->g, reps[i]->payloads,
                                       reps[j]->g, reps[j]->payloads))
            << selector;
      }
    }
  }
}

// Raw-structure dedup bookkeeping: on a vertex-transitive host every
// extracted ball is byte-identical, so exactly one structure is
// canonicalized no matter how many nodes the host has.
TEST(Census, RawDedupCollapsesTransitiveHosts) {
  const CsrGraph cycle = make_cycle(48);
  const BallCensusResult census =
      canonical_census(cycle, blank(cycle), 1, nullptr);
  EXPECT_EQ(census.unique_structures, 1u);
  EXPECT_EQ(census.raw_duplicates, 47u);
  EXPECT_EQ(census.distinct, 1);
  const CsrGraph q6 = make_hypercube(6);
  const BallCensusResult hyper = canonical_census(q6, blank(q6), 1, nullptr);
  EXPECT_EQ(hyper.unique_structures, 1u);
  EXPECT_EQ(hyper.distinct, 1);
}

}  // namespace
}  // namespace locald::graph
